"""Tests for the telemetry target variant and multi-output criticality."""

import pytest

from repro.core.criticality import (
    OutputCriticalities,
    all_criticalities,
    criticality_ranking,
)
from repro.core.impact import impact, impact_on_all_outputs, impact_ranking
from repro.core.permeability import PermeabilityMatrix
from repro.experiments.paper_data import PAPER_TABLE1
from repro.model.graph import SignalGraph
from repro.target.variants import (
    VARIANT_MODULE_SLOTS,
    build_telemetry_arrestment_system,
    telemetry_simulator,
)


@pytest.fixture(scope="module")
def variant_system():
    return build_telemetry_arrestment_system()


@pytest.fixture(scope="module")
def variant_graph(variant_system):
    return SignalGraph(variant_system)


@pytest.fixture(scope="module")
def variant_matrix(variant_system):
    """Paper permeabilities for the base pairs + designer values for
    the REPORT pairs (from its packing quantization)."""
    values = {}
    for pair in variant_system.io_pairs():
        key = (pair.module, pair.in_port, pair.out_port)
        if key in PAPER_TABLE1:
            values[pair] = PAPER_TABLE1[key]
        else:
            assert pair.module == "REPORT"
            values[pair] = {
                "pulscnt": 13 / 16,   # bits >= 3 preserved
                "slow_speed": 0.9,
                "stopped": 0.9,
                "IsValue": 6 / 16,    # bits >= 10 preserved
            }[pair.in_port]
    return PermeabilityMatrix.from_values(variant_system, values)


class TestVariantStructure:
    def test_two_system_outputs(self, variant_system):
        assert set(variant_system.system_outputs()) == {"TOC2", "STATUS"}

    def test_29_pairs(self, variant_system):
        assert len(variant_system.io_pairs()) == 29

    def test_report_scheduled(self):
        assert "REPORT" in VARIANT_MODULE_SLOTS
        assert VARIANT_MODULE_SLOTS["REPORT"] not in (
            set(VARIANT_MODULE_SLOTS.values())
            - {VARIANT_MODULE_SLOTS["REPORT"]}
        )

    def test_variant_arrests_within_spec(self, test_cases):
        result = telemetry_simulator(test_cases[12]).run()
        assert result.arrested and not result.failed

    def test_status_traced_and_packed(self, test_cases):
        result = telemetry_simulator(test_cases[12]).run()
        stream = result.traces.stream("STATUS")
        assert stream
        final = stream[-1][1]
        assert final & 0x2  # stopped bit set at the end

    def test_base_behaviour_unchanged(self, test_cases, golden_result):
        """Adding a passive telemetry consumer must not perturb the
        control loop."""
        variant = telemetry_simulator(test_cases[12]).run()
        assert variant.stop_distance_m == golden_result.stop_distance_m
        assert variant.ticks_run == golden_result.ticks_run


class TestMultiOutputEffectAnalysis:
    def test_impact_per_output_differs(
        self, variant_matrix, variant_graph
    ):
        per_output = impact_on_all_outputs(
            variant_matrix, variant_graph, "stopped"
        )
        # stopped barely touches the brake command but is packed
        # directly into the status word
        assert per_output["TOC2"] < 0.05
        assert per_output["STATUS"] > 0.5

    def test_criticality_reorders_signals(
        self, variant_matrix, variant_graph
    ):
        """Two signals with comparable total impact across outputs can
        have very different criticalities (the paper's C3)."""
        criticalities = OutputCriticalities(
            variant_graph, {"TOC2": 1.0, "STATUS": 0.1}
        )
        crits = all_criticalities(
            variant_matrix, variant_graph, criticalities
        )
        # stopped matters a lot for STATUS but STATUS barely matters
        assert crits["stopped"] < 0.15
        # IsValue matters for the brake command
        assert crits["IsValue"] > 0.5
        # ordering: impact ranking (uniform criticality) vs weighted
        uniform = OutputCriticalities(
            variant_graph, {"TOC2": 1.0, "STATUS": 1.0}
        )
        by_uniform = [
            n for n, _ in criticality_ranking(
                variant_matrix, variant_graph, uniform
            )
        ]
        by_weighted = [
            n for n, _ in criticality_ranking(
                variant_matrix, variant_graph, criticalities
            )
        ]
        assert by_uniform != by_weighted
        assert by_uniform.index("stopped") < by_weighted.index("stopped")

    def test_single_output_shortcut_rejected(
        self, variant_matrix, variant_graph
    ):
        """all_impacts without an explicit output is ambiguous on a
        two-output system."""
        from repro.core.impact import all_impacts
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError):
            all_impacts(variant_matrix, variant_graph)

    def test_eq4_combines_outputs(self, variant_matrix, variant_graph):
        """C_s >= each single-output criticality (Eq. 4 is a noisy-or)."""
        criticalities = OutputCriticalities(
            variant_graph, {"TOC2": 0.8, "STATUS": 0.5}
        )
        for signal in ("pulscnt", "IsValue", "slow_speed"):
            total = all_criticalities(
                variant_matrix, variant_graph, criticalities
            )[signal]
            for output, weight in (("TOC2", 0.8), ("STATUS", 0.5)):
                single = weight * impact(
                    variant_matrix, variant_graph, signal, output
                )
                assert total >= single - 1e-12
