"""Unit tests for the service's durable job queue."""

import os

import pytest

from repro.errors import ServiceError
from repro.service.jobs import JOB_STATES, JobQueue
from repro.service.scheduler import validate_spec


@pytest.fixture
def queue(tmp_path):
    with JobQueue(str(tmp_path / "queue.db"), max_queued=4) as q:
        yield q


SPEC = {"experiment": "table1", "scale": "test"}


class TestSubmitClaim:
    def test_lifecycle(self, queue):
        job_id = queue.submit(SPEC)
        job = queue.get(job_id)
        assert job.state == "queued"
        assert job.spec["experiment"] == "table1"
        assert not job.terminal

        claimed = queue.claim("me", os.getpid())
        assert claimed.id == job_id
        assert claimed.state == "running"
        assert claimed.attempts == 1
        assert claimed.lease_pid == os.getpid()

        assert queue.finish(job_id, "done")
        job = queue.get(job_id)
        assert job.state == "done"
        assert job.terminal
        assert job.lease_pid is None

    def test_claim_is_fifo(self, queue):
        first = queue.submit(SPEC)
        second = queue.submit(SPEC)
        assert queue.claim("me", 1).id == first
        assert queue.claim("me", 1).id == second
        assert queue.claim("me", 1) is None

    def test_claim_exclude_defers_job(self, queue):
        first = queue.submit(SPEC)
        second = queue.submit(SPEC)
        claimed = queue.claim("me", 1, exclude=[first])
        assert claimed.id == second
        # the excluded job is still claimable once eligible again
        assert queue.claim("me", 1).id == first

    def test_submit_requires_experiment(self, queue):
        with pytest.raises(ServiceError):
            queue.submit({"scale": "test"})
        with pytest.raises(ServiceError):
            queue.submit("table1")

    def test_admission_bound(self, queue):
        for _ in range(4):
            queue.submit(SPEC)
        with pytest.raises(ServiceError, match="queue full"):
            queue.submit(SPEC)
        # terminal jobs free the bound; running ones do not
        queue.claim("me", 1)
        with pytest.raises(ServiceError):
            queue.submit(SPEC)
        queue.finish(1, "done")
        assert queue.submit(SPEC) == 5

    def test_persistence_across_connections(self, tmp_path):
        path = str(tmp_path / "queue.db")
        with JobQueue(path) as q:
            job_id = q.submit(SPEC)
        with JobQueue(path) as q:
            job = q.get(job_id)
            assert job is not None and job.state == "queued"


class TestTransitions:
    def test_requeue_refund_semantics(self, queue):
        job_id = queue.submit(SPEC)
        queue.claim("me", 1)
        assert queue.requeue(job_id, give_back_attempt=True)
        assert queue.get(job_id).attempts == 0
        queue.claim("me", 1)
        assert queue.requeue(job_id, give_back_attempt=False)
        assert queue.get(job_id).attempts == 1
        # requeue of a non-running job is a no-op
        assert not queue.requeue(job_id, give_back_attempt=False)

    def test_finish_requires_terminal_state(self, queue):
        job_id = queue.submit(SPEC)
        queue.claim("me", 1)
        with pytest.raises(ServiceError):
            queue.finish(job_id, "queued")
        assert queue.finish(job_id, "failed", "boom")
        assert queue.get(job_id).error == "boom"
        # double-finish loses the guarded update
        assert not queue.finish(job_id, "done")

    def test_cancel_queued_is_immediate(self, queue):
        job_id = queue.submit(SPEC)
        assert queue.request_cancel(job_id) == "cancelled"
        assert queue.get(job_id).state == "cancelled"
        # cancelled jobs are never claimed
        assert queue.claim("me", 1) is None

    def test_cancel_running_is_flagged(self, queue):
        job_id = queue.submit(SPEC)
        queue.claim("me", 1)
        assert queue.request_cancel(job_id) == "running"
        job = queue.get(job_id)
        assert job.cancel_requested and job.state == "running"

    def test_cancel_terminal_left_alone(self, queue):
        job_id = queue.submit(SPEC)
        queue.claim("me", 1)
        queue.finish(job_id, "done")
        assert queue.request_cancel(job_id) == "done"


class TestLeases:
    def test_reclaim_dead_lease(self, queue):
        job_id = queue.submit(SPEC)
        # a pid from a scheduler that no longer exists
        queue.claim("dead-scheduler", 2 ** 22 + 1)
        stale = queue.reclaim_stale(0.0)
        assert [job.id for job in stale] == [job_id]
        job = queue.get(job_id)
        assert job.state == "queued"
        assert job.attempts == 0  # the reclaim refunds the attempt
        assert queue.counters().get("leases_reclaimed") == 1

    def test_live_lease_kept(self, queue):
        queue.submit(SPEC)
        queue.claim("me", os.getpid())  # our own, definitely alive
        assert queue.reclaim_stale(0.0) == []

    def test_fresh_lease_kept_within_timeout(self, queue):
        queue.submit(SPEC)
        queue.claim("dead-scheduler", 2 ** 22 + 1)
        assert queue.reclaim_stale(3600.0) == []

    def test_heartbeat_refreshes_lease(self, queue):
        job_id = queue.submit(SPEC)
        before = queue.claim("me", 1).lease_ts
        queue.heartbeat(job_id)
        assert queue.get(job_id).lease_ts >= before


class TestCountersAndDepth:
    def test_depth_zero_filled(self, queue):
        assert queue.depth() == {state: 0 for state in JOB_STATES}
        queue.submit(SPEC)
        assert queue.depth()["queued"] == 1

    def test_bump_accumulates(self, queue):
        queue.bump("jobs_retried")
        queue.bump("jobs_retried", 2)
        assert queue.counters() == {"jobs_retried": 3}

    def test_bad_bounds_rejected(self, tmp_path):
        with pytest.raises(ServiceError):
            JobQueue(str(tmp_path / "q.db"), max_queued=0)


class TestValidateSpec:
    def test_accepts_known_keys(self):
        spec = {"experiment": "table1", "jobs": 4, "env": {"A": "1"}}
        assert validate_spec(spec) is spec

    def test_rejects_unknown_key(self):
        with pytest.raises(ServiceError, match="targt"):
            validate_spec({"experiment": "table1", "targt": "x"})

    def test_rejects_unknown_experiment(self):
        with pytest.raises(ServiceError, match="table99"):
            validate_spec({"experiment": "table99"})

    def test_rejects_non_object_env(self):
        with pytest.raises(ServiceError, match="env"):
            validate_spec({"experiment": "table1", "env": "X=1"})

    def test_rejects_non_object_spec(self):
        with pytest.raises(ServiceError):
            validate_spec(["table1"])
