"""Unit tests for repro.core.impact — checked against paper Table 5."""

import pytest

from repro.core.impact import (
    all_impacts,
    impact,
    impact_on_all_outputs,
    impact_ranking,
    path_weights,
)
from repro.errors import AnalysisError
from repro.experiments.paper_data import PAPER_TABLE5_IMPACT


class TestImpactValues:
    @pytest.mark.parametrize(
        "signal,expected",
        sorted(
            (k, v) for k, v in PAPER_TABLE5_IMPACT.items() if v is not None
        ),
    )
    def test_matches_paper_table5(self, matrix, graph, signal, expected):
        assert impact(matrix, graph, signal, "TOC2") == pytest.approx(
            expected, abs=1.5e-3
        )

    def test_worked_example_pulscnt(self, matrix, graph):
        """Section 8's worked example: impact(pulscnt -> TOC2) = 0.021."""
        assert impact(matrix, graph, "pulscnt", "TOC2") == pytest.approx(
            0.021, abs=5e-4
        )

    def test_impact_in_unit_interval(self, matrix, graph, system):
        for signal in system.signal_names():
            if system.signal(signal).is_system_output:
                continue
            value = impact(matrix, graph, signal, "TOC2")
            assert 0.0 <= value <= 1.0

    def test_impact_requires_output_destination(self, matrix, graph):
        with pytest.raises(AnalysisError):
            impact(matrix, graph, "pulscnt", "SetValue")


class TestPathWeights:
    def test_fig4_weights(self, matrix, graph):
        weights = path_weights(matrix, graph, "pulscnt", "TOC2")
        assert len(weights) == 2
        values = sorted(w for _, w in weights)
        assert values[0] == pytest.approx(0.0)
        assert values[1] == pytest.approx(
            0.494 * 0.056 * 0.885 * 0.875
        )

    def test_weights_nonnegative(self, matrix, graph, system):
        for signal in system.signal_names():
            if system.signal(signal).is_system_output:
                continue
            for _, weight in path_weights(matrix, graph, signal, "TOC2"):
                assert 0.0 <= weight <= 1.0


class TestAllImpacts:
    def test_single_output_default(self, matrix, graph):
        impacts = all_impacts(matrix, graph)
        assert impacts["TOC2"] is None
        assert impacts["OutValue"] == pytest.approx(0.875)

    def test_output_has_no_impact_value(self, matrix, graph):
        assert all_impacts(matrix, graph, "TOC2")["TOC2"] is None

    def test_impact_on_all_outputs(self, matrix, graph):
        per_output = impact_on_all_outputs(matrix, graph, "OutValue")
        assert set(per_output) == {"TOC2"}

    def test_ranking_descending(self, matrix, graph):
        ranking = impact_ranking(matrix, graph)
        values = [v for _, v in ranking]
        assert values == sorted(values, reverse=True)
        assert ranking[0][0] == "OutValue"

    def test_paper_high_impact_group(self, matrix, graph):
        """Section 10: IsValue, mscnt and slow_speed stand out."""
        impacts = all_impacts(matrix, graph)
        assert impacts["IsValue"] > 0.7
        assert impacts["mscnt"] > 0.3
        assert impacts["slow_speed"] > 0.6
        # despite all three having (near-)zero exposure
