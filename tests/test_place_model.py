"""The placement model and solvers on the paper's arrestment instance.

Everything here runs off the published Table 1 permeabilities (no
injections), pinning the headline ``repro place`` result: on the
six-module arrestment system under the PA hand set's budget, the
branch-and-bound ILP proves an optimal EA set that dominates both
hand-derived placements on coverage per byte.
"""

import math

import pytest

from repro.edm.catalogue import EA_BY_NAME, EH_SET, PA_SET
from repro.errors import PlacementError
from repro.experiments.paper_data import paper_matrix
from repro.place import (
    Budget,
    build_instance,
    build_report,
    explain_selection,
    greedy_solve,
    ilp_solve,
    items_for_signals,
)
from repro.target.wiring import build_arrestment_system


@pytest.fixture(scope="module")
def system():
    return build_arrestment_system()


@pytest.fixture(scope="module")
def instance(system):
    return build_instance(
        system,
        paper_matrix(system),
        list(EA_BY_NAME.values()),
        Budget(rom_bytes=150, ram_bytes=54),
    )


class TestModel:
    def test_one_stratum_per_module_input(self, system, instance):
        expected = sum(
            len(module.inputs) for module in system.modules()
        )
        assert len(instance.strata) == expected
        assert math.isclose(
            sum(stratum.weight for stratum in instance.strata), 1.0
        )

    def test_guarded_input_is_fully_covered(self, instance):
        # EA4 guards pulscnt; the stratum whose input carries pulscnt
        # must be detected with probability 1
        item = instance.item("EA4")
        for s, stratum in enumerate(instance.strata):
            if stratum.signal == "pulscnt":
                assert item.p[s] == 1.0

    def test_coverage_is_monotone_and_submodular(self, instance):
        names = [item.name for item in instance.items]
        small, large = names[:2], names[:4]
        assert instance.coverage(large) >= instance.coverage(small)
        # submodularity: the marginal of EA7 shrinks as the set grows
        assert (
            instance.marginal(large, "EA7")
            <= instance.marginal(small, "EA7") + 1e-12
        )

    def test_point_estimate_bounds_collapse(self, instance):
        names = ["EA3", "EA7"]
        assert instance.coverage(names, level="low") == instance.coverage(
            names
        )
        assert instance.coverage(names, level="high") == instance.coverage(
            names
        )

    def test_unknown_level_and_item_are_rejected(self, instance):
        with pytest.raises(PlacementError):
            instance.coverage(["EA1"], level="median")
        with pytest.raises(PlacementError):
            instance.item("EA99")
        with pytest.raises(PlacementError):
            items_for_signals(instance, ["no_such_signal"])


class TestArrestmentSolve:
    def test_ilp_certifies_optimality(self, instance):
        result = ilp_solve(instance)
        assert result.optimal
        assert result.upper_bound == result.coverage
        assert result.selected == ("EA3", "EA4", "EA5", "EA7")
        assert result.nodes > 0

    def test_greedy_matches_the_ilp_here(self, instance):
        greedy = greedy_solve(instance)
        exact = ilp_solve(instance)
        assert greedy.selected == exact.selected
        assert greedy.guarantee is not None
        assert greedy.coverage >= greedy.guarantee * greedy.upper_bound

    def test_solved_set_dominates_both_hand_sets(self, instance):
        result = ilp_solve(instance)
        report = build_report(
            "arrestment", instance, result,
            [
                ("EH", items_for_signals(instance, EH_SET)),
                ("PA", items_for_signals(instance, PA_SET)),
            ],
        )
        assert report.dominates_all
        solved_cpb = instance.coverage_per_byte(result.selected)
        for comparison in report.hand_sets:
            assert solved_cpb + 1e-12 >= comparison.coverage_per_byte

    def test_solved_set_respects_the_pa_budget(self, instance):
        cost = instance.cost_of(ilp_solve(instance).selected)
        assert cost["rom_bytes"] <= 150
        assert cost["ram_bytes"] <= 54

    def test_explanations_cover_each_selected_ea(self, instance):
        result = ilp_solve(instance)
        assert tuple(sorted(e.name for e in result.explanations)) == (
            result.selected
        )
        marginals = [e.marginal for e in result.explanations]
        assert marginals == sorted(marginals, reverse=True)
        assert math.isclose(
            sum(marginals), result.coverage, abs_tol=1e-9
        )

    def test_render_mentions_the_verdicts(self, instance):
        result = ilp_solve(instance)
        report = build_report(
            "arrestment", instance, result,
            [("PA", items_for_signals(instance, PA_SET))],
        )
        text = report.render()
        assert "optimality proven" in text
        assert "vs PA" in text and "-> dominated" in text
        assert "EA5   ms_slot_nbr" in text

    def test_explain_selection_is_order_free(self, instance):
        a = explain_selection(instance, ["EA3", "EA7", "EA4"])
        b = explain_selection(instance, ["EA7", "EA4", "EA3"])
        assert a == b


class TestWeights:
    def test_weights_reshape_the_solution(self, system):
        specs = list(EA_BY_NAME.values())
        matrix = paper_matrix(system)
        keys = [
            (module.name, in_port)
            for module in system.modules()
            for in_port in module.inputs
        ]
        # all the probability mass on CLOCK's one input, ms_slot_nbr:
        # EA5 guards that signal directly (p = 1) and becomes the
        # whole optimum, displacing the uniform-weight winner EA7
        weights = {key: 1.0 if key[0] == "CLOCK" else 1e-9 for key in keys}
        budget = Budget(rom_bytes=60, ram_bytes=20)
        weighted = build_instance(
            system, matrix, specs, budget, weights=weights
        )
        uniform = build_instance(system, matrix, specs, budget)
        assert "EA5" in ilp_solve(weighted).selected
        assert ilp_solve(weighted).selected != ilp_solve(uniform).selected

    def test_bad_weights_are_rejected(self, system):
        specs = list(EA_BY_NAME.values())
        matrix = paper_matrix(system)
        keys = [
            (module.name, in_port)
            for module in system.modules()
            for in_port in module.inputs
        ]
        with pytest.raises(PlacementError):
            build_instance(
                system, matrix, specs, Budget(),
                weights={key: -1.0 for key in keys},
            )
        with pytest.raises(PlacementError):
            build_instance(
                system, matrix, specs, Budget(),
                weights={key: 0.0 for key in keys},
            )
