"""Unit tests for repro.model.module."""

import pytest

from repro.errors import ModelError
from repro.model.module import (
    CellSpec,
    ExecutionContext,
    FunctionModule,
    Module,
    ModuleState,
)
from repro.model.signal import SignalType


def make_doubler():
    return FunctionModule(
        "DOUBLE",
        inputs=["x"],
        outputs=["y"],
        fn=lambda args, state: {"y": 2 * args["x"]},
    )


class TestCellSpec:
    def test_defaults(self):
        cell = CellSpec("c")
        assert cell.width == 16
        assert cell.cell_type is SignalType.UINT

    def test_empty_name_rejected(self):
        with pytest.raises(ModelError):
            CellSpec("")

    def test_bad_width_rejected(self):
        with pytest.raises(ModelError):
            CellSpec("c", width=0)

    def test_quantize(self):
        cell = CellSpec("c", width=8)
        assert cell.quantize(257) == 1


class TestModuleState:
    def test_initial_values_quantized(self):
        state = ModuleState([CellSpec("a", width=8, initial=300)])
        assert state["a"] == 44

    def test_set_get_roundtrip(self):
        state = ModuleState([CellSpec("a")])
        state["a"] = 123
        assert state["a"] == 123

    def test_set_quantizes(self):
        state = ModuleState([CellSpec("a", width=8)])
        state["a"] = 256
        assert state["a"] == 0

    def test_unknown_cell_read_rejected(self):
        state = ModuleState([])
        with pytest.raises(ModelError):
            state["nope"]

    def test_unknown_cell_write_rejected(self):
        state = ModuleState([])
        with pytest.raises(ModelError):
            state["nope"] = 1

    def test_duplicate_cells_rejected(self):
        with pytest.raises(ModelError):
            ModuleState([CellSpec("a"), CellSpec("a")])

    def test_reset_restores_initials(self):
        state = ModuleState([CellSpec("a", initial=5)])
        state["a"] = 99
        state.reset()
        assert state["a"] == 5

    def test_peek_poke(self):
        state = ModuleState([CellSpec("a")])
        state.poke("a", 7)
        assert state.peek("a") == 7

    def test_snapshot_restore(self):
        state = ModuleState([CellSpec("a"), CellSpec("b")])
        state["a"], state["b"] = 1, 2
        snap = state.snapshot()
        state["a"] = 9
        state.restore(snap)
        assert state["a"] == 1 and state["b"] == 2

    def test_contains_and_names(self):
        state = ModuleState([CellSpec("a")])
        assert "a" in state and "b" not in state
        assert state.names() == ["a"]

    def test_spec_lookup(self):
        state = ModuleState([CellSpec("a", width=8)])
        assert state.spec("a").width == 8
        with pytest.raises(ModelError):
            state.spec("b")


class TestModulePorts:
    def test_port_indices_are_one_based(self):
        mod = FunctionModule(
            "M", inputs=["a", "b"], outputs=["y", "z"],
            fn=lambda args, state: {"y": 0, "z": 0},
        )
        assert mod.input_index("a") == 1
        assert mod.input_index("b") == 2
        assert mod.output_index("z") == 2
        assert mod.input_name(1) == "a"
        assert mod.output_name(2) == "z"

    def test_unknown_port_rejected(self):
        mod = make_doubler()
        with pytest.raises(ModelError):
            mod.input_index("nope")
        with pytest.raises(ModelError):
            mod.output_index("nope")
        with pytest.raises(ModelError):
            mod.input_name(2)
        with pytest.raises(ModelError):
            mod.output_name(0)

    def test_module_needs_output(self):
        with pytest.raises(ModelError):
            FunctionModule("M", inputs=["a"], outputs=[], fn=lambda a, s: {})

    def test_duplicate_ports_rejected(self):
        with pytest.raises(ModelError):
            FunctionModule(
                "M", inputs=["a", "a"], outputs=["y"],
                fn=lambda args, state: {"y": 0},
            )


class TestExecutionContext:
    def test_arg_access(self):
        mod = make_doubler()
        ctx = ExecutionContext(mod, {"x": 21})
        assert ctx.arg("x") == 21
        assert ctx.args() == {"x": 21}

    def test_unknown_arg_rejected(self):
        ctx = ExecutionContext(make_doubler(), {"x": 1})
        with pytest.raises(ModelError):
            ctx.arg("zzz")

    def test_locals_roundtrip(self):
        mod = FunctionModule(
            "M", inputs=["x"], outputs=["y"],
            fn=lambda args, state: {"y": 0},
            locals_=[CellSpec("tmp", width=8)],
        )
        ctx = ExecutionContext(mod, {"x": 1})
        stored = ctx.set_local("tmp", 300)
        assert stored == 44  # quantized to 8 bits
        assert ctx.local("tmp") == 44

    def test_undeclared_local_rejected(self):
        ctx = ExecutionContext(make_doubler(), {"x": 1})
        with pytest.raises(ModelError):
            ctx.set_local("tmp", 1)
        with pytest.raises(ModelError):
            ctx.local("tmp")

    def test_local_read_before_write_rejected(self):
        mod = FunctionModule(
            "M", inputs=["x"], outputs=["y"],
            fn=lambda args, state: {"y": 0},
            locals_=[CellSpec("tmp")],
        )
        ctx = ExecutionContext(mod, {"x": 1})
        with pytest.raises(ModelError):
            ctx.local("tmp")

    def test_local_hook_corrupts_stored_value(self):
        mod = FunctionModule(
            "M", inputs=["x"], outputs=["y"],
            fn=lambda args, state: {"y": 0},
            locals_=[CellSpec("tmp")],
        )
        ctx = ExecutionContext(
            mod, {"x": 1}, local_hook=lambda m, n, v: v + 1
        )
        assert ctx.set_local("tmp", 10) == 11
        assert ctx.local("tmp") == 11


class TestFunctionModule:
    def test_invoke_produces_outputs(self):
        mod = make_doubler()
        result = mod.invoke(ExecutionContext(mod, {"x": 21}))
        assert result == {"y": 42}

    def test_missing_output_rejected(self):
        mod = FunctionModule(
            "M", inputs=["x"], outputs=["y", "z"],
            fn=lambda args, state: {"y": 1},
        )
        with pytest.raises(ModelError):
            mod.invoke(ExecutionContext(mod, {"x": 1}))

    def test_state_cells_usable(self):
        def accumulate(args, state):
            state["acc"] = state["acc"] + args["x"]
            return {"y": state["acc"]}

        mod = FunctionModule(
            "ACC", inputs=["x"], outputs=["y"], fn=accumulate,
            state_cells=[CellSpec("acc")],
        )
        mod.invoke(ExecutionContext(mod, {"x": 5}))
        result = mod.invoke(ExecutionContext(mod, {"x": 3}))
        assert result == {"y": 8}

    def test_reset_clears_state(self):
        mod = FunctionModule(
            "M", inputs=["x"], outputs=["y"],
            fn=lambda args, state: {"y": 0},
            state_cells=[CellSpec("acc", initial=2)],
        )
        mod.state["acc"] = 50
        mod.reset()
        assert mod.state["acc"] == 2
