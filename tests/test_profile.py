"""Unit tests for repro.core.profile (Figs. 5-6 profiles)."""

import pytest

from repro.core.criticality import OutputCriticalities
from repro.core.profile import SystemProfile, ValueBand, classify
from repro.errors import AnalysisError


@pytest.fixture
def profile(matrix, graph):
    return SystemProfile(matrix, graph, output="TOC2")


class TestClassify:
    def test_none_is_unassigned(self):
        assert classify(None, {"a": 1.0}, "x") is ValueBand.UNASSIGNED

    def test_zero_band(self):
        assert classify(0.0, {"a": 1.0, "b": 0.5}, "x") is ValueBand.ZERO

    def test_extremes(self):
        assigned = {"a": 1.0, "b": 0.5, "c": 0.1}
        assert classify(1.0, assigned, "a") is ValueBand.HIGHEST
        assert classify(0.1, assigned, "c") is ValueBand.LOWEST

    def test_middle_bands(self):
        assigned = {"a": 1.0, "b": 0.7, "c": 0.3, "d": 0.1}
        assert classify(0.7, assigned, "b") is ValueBand.HIGH
        assert classify(0.3, assigned, "c") is ValueBand.LOW


class TestExposureProfile(object):
    def test_system_inputs_unassigned(self, profile):
        for signal in ("PACNT", "TIC1", "TCNT", "ADC"):
            assert profile.entry(signal).exposure_band is ValueBand.UNASSIGNED

    def test_outvalue_highest_exposure(self, profile):
        assert profile.entry("OutValue").exposure_band is ValueBand.HIGHEST

    def test_zero_exposure_signals(self, profile):
        for signal in ("IsValue", "mscnt", "stopped"):
            assert profile.entry(signal).exposure_band is ValueBand.ZERO

    def test_profile_rows_sorted_descending(self, profile):
        rows = profile.exposure_profile()
        values = [v for _, v, _ in rows if v is not None]
        assert values == sorted(values, reverse=True)
        # unassigned rows trail
        assert rows[-1][1] is None


class TestImpactProfile:
    def test_output_unassigned(self, profile):
        assert profile.entry("TOC2").impact_band is ValueBand.UNASSIGNED

    def test_outvalue_highest_impact(self, profile):
        assert profile.entry("OutValue").impact_band is ValueBand.HIGHEST

    def test_ms_slot_nbr_zero_impact(self, profile):
        assert profile.entry("ms_slot_nbr").impact_band is ValueBand.ZERO

    def test_fig5_vs_fig6_contrast(self, profile):
        """The paper's headline contrast: IsValue and mscnt have zero
        exposure yet high impact; ms_slot_nbr the reverse."""
        is_value = profile.entry("IsValue")
        assert is_value.exposure_band is ValueBand.ZERO
        assert is_value.impact_band in (ValueBand.HIGH, ValueBand.HIGHEST)
        slot = profile.entry("ms_slot_nbr")
        assert slot.exposure_band in (ValueBand.HIGH, ValueBand.HIGHEST)
        assert slot.impact_band is ValueBand.ZERO


class TestRendering:
    def test_render_both_sections(self, profile):
        text = profile.render("both")
        assert "Exposure profile" in text and "Impact profile" in text

    def test_render_single_section(self, profile):
        assert "Impact" not in profile.render("exposure")

    def test_render_invalid_selector(self, profile):
        with pytest.raises(AnalysisError):
            profile.render("nope")

    def test_unknown_entry_rejected(self, profile):
        with pytest.raises(AnalysisError):
            profile.entry("nope")


class TestWithCriticalities:
    def test_criticalities_populated(self, matrix, graph):
        oc = OutputCriticalities(graph, {"TOC2": 0.5})
        profile = SystemProfile(matrix, graph, criticalities=oc)
        entry = profile.entry("OutValue")
        assert entry.criticality == pytest.approx(0.5 * 0.875)
