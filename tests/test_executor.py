"""Tests for the campaign execution engine.

The core contract under test: parallel execution is bit-identical to
serial execution for the same seed, and a checkpointed campaign that
is killed and resumed converges to the same final result as an
uninterrupted run.
"""

import json
import time

import pytest

from repro.edm.catalogue import EA_BY_NAME
from repro.errors import CampaignError
from repro.fi import (
    CampaignConfig,
    CampaignExecutor,
    DetectionCampaign,
    GoldenRunCache,
    MemoryCampaign,
    MemoryMap,
    PermeabilityCampaign,
    TaskFailure,
)
from repro.target.simulation import ArrestmentSimulator


def factory(tc):
    return ArrestmentSimulator(tc)


@pytest.fixture(scope="module")
def two_cases(test_cases):
    return [test_cases[4], test_cases[20]]


class TestCampaignConfig:
    def test_defaults(self):
        config = CampaignConfig()
        assert config.seed == 2002
        assert config.resolved_backend() == "serial"

    def test_jobs_select_process_backend(self):
        assert CampaignConfig(jobs=4).resolved_backend() == "process"
        assert CampaignConfig(jobs=4, backend="serial").resolved_backend() \
            == "serial"

    def test_validation(self):
        with pytest.raises(CampaignError):
            CampaignConfig(jobs=0)
        with pytest.raises(CampaignError):
            CampaignConfig(backend="threads")
        with pytest.raises(CampaignError):
            CampaignConfig(checkpoint_every=0)


class TestExecutorMechanics:
    def test_results_in_task_order(self):
        executor = CampaignExecutor(CampaignConfig(), campaign="unit")
        assert executor.run_tasks(lambda i: i * i, 5, "fp") == [
            0, 1, 4, 9, 16,
        ]
        telemetry = executor.telemetry
        assert telemetry.total_runs == 5
        assert telemetry.executed_runs == 5
        assert telemetry.resumed_runs == 0

    def test_process_backend_matches_serial(self):
        executor = CampaignExecutor(
            CampaignConfig(jobs=2), campaign="unit"
        )
        assert executor.run_tasks(lambda i: i + 1, 8, "fp") == list(
            range(1, 9)
        )
        # falls back to serial only where fork is unavailable
        assert executor.telemetry.backend in ("process", "serial")

    def test_checkpoint_written_and_resumed(self, tmp_path):
        path = str(tmp_path / "cp.json")
        config = CampaignConfig(checkpoint_path=path, checkpoint_every=1)
        CampaignExecutor(config, campaign="unit").run_tasks(
            lambda i: i * 2, 6, "fp"
        )

        # simulate a kill: drop the second half of the results
        with open(path) as handle:
            payload = json.load(handle)
        payload["results"] = {
            k: v for k, v in payload["results"].items() if int(k) < 3
        }
        with open(path, "w") as handle:
            json.dump(payload, handle)

        executed = []

        def runner(index):
            executed.append(index)
            return index * 2

        resumed = CampaignExecutor(config, campaign="unit")
        assert resumed.run_tasks(runner, 6, "fp") == [0, 2, 4, 6, 8, 10]
        assert sorted(executed) == [3, 4, 5]
        assert resumed.telemetry.resumed_runs == 3
        assert resumed.telemetry.executed_runs == 3

    def test_fingerprint_mismatch_discards_checkpoint(self, tmp_path):
        path = str(tmp_path / "cp.json")
        config = CampaignConfig(checkpoint_path=path)
        CampaignExecutor(config, campaign="unit").run_tasks(
            lambda i: i, 4, "fp-a"
        )
        executor = CampaignExecutor(config, campaign="unit")
        executor.run_tasks(lambda i: i, 4, "fp-b")
        assert executor.telemetry.resumed_runs == 0
        assert executor.telemetry.executed_runs == 4


class TestSerialParallelDeterminism:
    def test_permeability_bit_identical(self, two_cases):
        serial = PermeabilityCampaign(
            factory, two_cases, runs_per_input=2, seed=7
        ).run()
        parallel = PermeabilityCampaign(
            factory, two_cases, runs_per_input=2, seed=7,
            config=CampaignConfig(jobs=2),
        ).run()
        assert serial.values == parallel.values
        assert serial.direct_counts == parallel.direct_counts
        assert serial.active_runs == parallel.active_runs

    def test_detection_counts_identical(self, two_cases):
        specs = list(EA_BY_NAME.values())

        def run(config=None):
            return DetectionCampaign(
                factory, two_cases, specs,
                runs_per_signal=4, targets=["ADC", "PACNT"], seed=7,
                config=config,
            ).run()

        serial = run()
        parallel = run(CampaignConfig(jobs=2))
        assert serial.n_injected == parallel.n_injected
        assert serial.n_err == parallel.n_err
        assert serial.detections == parallel.detections
        assert serial.run_records == parallel.run_records
        assert serial.run_latencies == parallel.run_latencies


class TestCampaignCheckpointing:
    def test_memory_campaign_kill_resume(self, two_cases, tmp_path):
        path = str(tmp_path / "memory.json")
        locations = MemoryMap(factory(two_cases[0]).system).locations()[::25]
        specs = list(EA_BY_NAME.values())

        def campaign(config=None):
            return MemoryCampaign(
                factory, two_cases[:1], specs,
                locations=locations, seed=7, config=config,
            )

        fresh = campaign().run()
        campaign(
            CampaignConfig(checkpoint_path=path, checkpoint_every=1)
        ).run()

        # kill: keep only the first two completed tasks
        with open(path) as handle:
            payload = json.load(handle)
        payload["results"] = {
            k: v for k, v in payload["results"].items() if int(k) < 2
        }
        with open(path, "w") as handle:
            json.dump(payload, handle)

        resumed_campaign = campaign(CampaignConfig(checkpoint_path=path))
        resumed = resumed_campaign.run()
        assert resumed.records == fresh.records
        assert resumed_campaign.telemetry.resumed_runs == 2

    def test_seed_flows_from_config(self, two_cases):
        specs = list(EA_BY_NAME.values())

        def run(**kwargs):
            return DetectionCampaign(
                factory, two_cases, specs,
                runs_per_signal=2, targets=["ADC"], **kwargs,
            ).run()

        assert run(seed=7).detections == run(
            config=CampaignConfig(seed=7)
        ).detections

    def test_test_cases_flow_from_config(self, two_cases):
        campaign = DetectionCampaign(
            factory,
            assertion_specs=list(EA_BY_NAME.values()),
            runs_per_signal=2,
            targets=["ADC"],
            config=CampaignConfig(test_cases=two_cases),
        )
        assert campaign.test_cases == list(two_cases)

    def test_telemetry_populated(self, two_cases):
        campaign = DetectionCampaign(
            factory, two_cases, list(EA_BY_NAME.values()),
            runs_per_signal=2, targets=["ADC"], seed=7,
        )
        campaign.run()
        telemetry = campaign.telemetry
        assert telemetry is not None
        assert telemetry.campaign == "detection"
        assert telemetry.total_runs == 2
        assert telemetry.executed_runs == 2
        assert telemetry.wall_s > 0
        assert 0.0 <= telemetry.worker_utilization <= 1.0
        assert "runs" in telemetry.render()


# ======================================================================
# Fault tolerance: retries, quarantine, timeouts, broken pools.
# ======================================================================
def _fast_config(**kwargs):
    kwargs.setdefault("retry_backoff_s", 0.0)
    return CampaignConfig(**kwargs)


class TestCorruptedCheckpoints:
    def _executor(self, path, **kwargs):
        return CampaignExecutor(
            _fast_config(checkpoint_path=str(path), **kwargs),
            campaign="unit",
        )

    def test_non_numeric_result_keys_discarded(self, tmp_path):
        path = tmp_path / "cp.json"
        path.write_text(json.dumps({
            "campaign": "unit", "fingerprint": "fp", "n_tasks": 4,
            "results": {"not-a-number": 1, "0": 0},
        }))
        executor = self._executor(path)
        assert executor.run_tasks(lambda i: i, 4, "fp") == [0, 1, 2, 3]
        assert executor.telemetry.resumed_runs == 0

    def test_results_not_a_mapping_discarded(self, tmp_path):
        path = tmp_path / "cp.json"
        path.write_text(json.dumps({
            "campaign": "unit", "fingerprint": "fp", "n_tasks": 3,
            "results": [1, 2, 3],
        }))
        executor = self._executor(path)
        assert executor.run_tasks(lambda i: i, 3, "fp") == [0, 1, 2]
        assert executor.telemetry.resumed_runs == 0

    def test_garbage_json_discarded(self, tmp_path):
        path = tmp_path / "cp.json"
        path.write_text("{not json at all")
        executor = self._executor(path)
        assert executor.run_tasks(lambda i: i, 3, "fp") == [0, 1, 2]
        assert executor.telemetry.resumed_runs == 0

    def test_mangled_failure_record_discarded(self, tmp_path):
        path = tmp_path / "cp.json"
        path.write_text(json.dumps({
            "campaign": "unit", "fingerprint": "fp", "n_tasks": 2,
            "results": {"0": {"__task_failure__": 1, "index": "zero"}},
        }))
        executor = self._executor(path)
        assert executor.run_tasks(lambda i: i, 2, "fp") == [0, 1]
        assert executor.telemetry.resumed_runs == 0

    def test_out_of_range_indices_dropped(self, tmp_path):
        path = tmp_path / "cp.json"
        path.write_text(json.dumps({
            "campaign": "unit", "fingerprint": "fp", "n_tasks": 3,
            "results": {"0": 0, "7": 99, "-1": 98},
        }))
        executor = self._executor(path)
        assert executor.run_tasks(lambda i: i, 3, "fp") == [0, 1, 2]
        assert executor.telemetry.resumed_runs == 1


class TestQuarantine:
    def test_poison_task_quarantined_not_fatal(self):
        def runner(index):
            if index == 2:
                raise ValueError("poison")
            return index

        executor = CampaignExecutor(_fast_config(retries=1), campaign="unit")
        results = executor.run_tasks(runner, 5, "fp")
        assert results[0] == 0 and results[4] == 4
        failure = results[2]
        assert isinstance(failure, TaskFailure)
        assert failure.kind == "exception"
        assert failure.attempts == 2
        assert "poison" in failure.error
        telemetry = executor.telemetry
        assert telemetry.failures == 1
        assert telemetry.retries == 1
        assert telemetry.executed_runs == 4
        assert telemetry.faulted

    def test_retry_recovers_transient_failure(self):
        calls = {}

        def runner(index):
            calls[index] = calls.get(index, 0) + 1
            if index == 1 and calls[index] == 1:
                raise RuntimeError("transient")
            return index * 10

        executor = CampaignExecutor(_fast_config(retries=2), campaign="unit")
        assert executor.run_tasks(runner, 3, "fp") == [0, 10, 20]
        assert executor.telemetry.retries == 1
        assert executor.telemetry.failures == 0
        assert calls[1] == 2

    def test_timeout_quarantines(self):
        def runner(index):
            if index == 1:
                time.sleep(5.0)
            return index

        executor = CampaignExecutor(
            _fast_config(task_timeout=0.2, retries=0), campaign="unit"
        )
        results = executor.run_tasks(runner, 3, "fp")
        assert isinstance(results[1], TaskFailure)
        assert results[1].kind == "timeout"
        assert executor.telemetry.timeouts == 1

    def test_task_alarm_restores_outer_timer(self):
        # a per-task alarm nested inside an outer ITIMER_REAL deadline
        # (e.g. a batch-level watchdog) must hand the timer back with
        # its remaining budget instead of silently cancelling it
        import signal

        from repro.fi.executor import _task_alarm

        fired = []
        previous = signal.signal(
            signal.SIGALRM, lambda s, f: fired.append(s)
        )
        signal.setitimer(signal.ITIMER_REAL, 30.0)
        try:
            with _task_alarm(5.0):
                inner, _ = signal.getitimer(signal.ITIMER_REAL)
                assert 0.0 < inner <= 5.0
            remaining, _ = signal.getitimer(signal.ITIMER_REAL)
            assert 0.0 < remaining <= 30.0
            assert signal.getsignal(signal.SIGALRM) is not previous
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
        assert fired == []

    def test_task_alarm_leaves_timer_clear_when_none_ran(self):
        import signal

        from repro.fi.executor import _task_alarm

        with _task_alarm(5.0):
            pass
        assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)

    def test_failure_checkpointed_and_resumed(self, tmp_path):
        path = str(tmp_path / "cp.json")

        def runner(index):
            if index == 2:
                raise ValueError("poison")
            return index

        config = _fast_config(checkpoint_path=path, retries=0)
        CampaignExecutor(config, campaign="unit").run_tasks(runner, 4, "fp")

        executed = []

        def resumed_runner(index):
            executed.append(index)
            return index

        resumed = CampaignExecutor(config, campaign="unit")
        results = resumed.run_tasks(resumed_runner, 4, "fp")
        assert executed == []  # everything, including the failure, resumed
        assert resumed.telemetry.resumed_runs == 4
        assert isinstance(results[2], TaskFailure)

    def test_interrupt_flushes_checkpoint(self, tmp_path):
        path = str(tmp_path / "cp.json")
        config = _fast_config(checkpoint_path=path, checkpoint_every=100)

        def runner(index):
            if index == 3:
                raise KeyboardInterrupt
            return index

        executor = CampaignExecutor(config, campaign="unit")
        with pytest.raises(KeyboardInterrupt):
            executor.run_tasks(runner, 6, "fp")
        with open(path) as handle:
            saved = json.load(handle)["results"]
        assert sorted(int(k) for k in saved) == [0, 1, 2]


class TestBackendReporting:
    def test_small_workload_reports_serial(self):
        executor = CampaignExecutor(CampaignConfig(jobs=4), campaign="unit")
        executor.run_tasks(lambda i: i, 1, "fp")
        assert executor.telemetry.backend == "serial"
        assert executor.telemetry.jobs == 1

    def test_resumed_workload_reports_serial(self, tmp_path):
        path = str(tmp_path / "cp.json")
        config = CampaignConfig(checkpoint_path=path)
        CampaignExecutor(config, campaign="unit").run_tasks(
            lambda i: i, 4, "fp"
        )
        resumed = CampaignExecutor(
            CampaignConfig(jobs=4, checkpoint_path=path), campaign="unit"
        )
        resumed.run_tasks(lambda i: i, 4, "fp")
        assert resumed.telemetry.backend == "serial"
        assert resumed.telemetry.resumed_runs == 4

    def test_chunked_dispatch_without_timeout(self):
        # with no task_timeout and a large workload the dispatch
        # heuristic batches tasks (64 // (4*8) = 2 per chunk); the
        # watchdog must still see a timeout-capable iterator
        # (regression: pool-level chunksize>1 returns a generator
        # without next(timeout), which read as a broken pool and
        # quarantined every task as "lost")
        executor = CampaignExecutor(
            _fast_config(jobs=4), campaign="unit"
        )
        results = executor.run_tasks(lambda i: i * 3, 64, "fp")
        assert results == [i * 3 for i in range(64)]
        telemetry = executor.telemetry
        assert telemetry.backend == "process"
        assert telemetry.failures == 0
        assert telemetry.retries == 0
        assert telemetry.pool_respawns == 0


class TestWorkerCrash:
    """Chaos: a worker hard-dies mid-campaign; the pool is respawned
    and the task re-dispatched, loss-free."""

    def test_killed_worker_respawned(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CHAOS_KILL_INDEX", "3")
        path = str(tmp_path / "cp.json")
        config = _fast_config(
            jobs=2, retries=2, pool_watchdog_s=1.5,
            checkpoint_path=path, checkpoint_every=1,
        )
        executor = CampaignExecutor(config, campaign="unit")
        results = executor.run_tasks(lambda i: i * 2, 8, "fp")
        assert results == [i * 2 for i in range(8)]
        telemetry = executor.telemetry
        assert telemetry.pool_respawns >= 1
        assert telemetry.failures == 0
        # the checkpoint survived the crash and covers every task
        with open(path) as handle:
            saved = json.load(handle)["results"]
        assert sorted(int(k) for k in saved) == list(range(8))

    def test_degrades_to_serial_when_pool_unrebuildable(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_KILL_INDEX", "2")
        config = _fast_config(
            jobs=2, retries=2, pool_watchdog_s=1.5, max_pool_respawns=0
        )
        executor = CampaignExecutor(config, campaign="unit")
        assert executor.run_tasks(lambda i: i + 1, 6, "fp") == list(
            range(1, 7)
        )
        assert executor.telemetry.degraded

    def test_crash_resume_bit_identical_to_serial(
        self, monkeypatch, tmp_path, two_cases
    ):
        """Kill a worker mid-campaign, resume, and compare against a
        clean serial run of the same seed: no progress lost, no drift."""
        locations = MemoryMap(factory(two_cases[0]).system).locations()[::25]
        specs = list(EA_BY_NAME.values())

        def campaign(config=None):
            return MemoryCampaign(
                factory, two_cases[:1], specs,
                locations=locations, seed=7, config=config,
            )

        clean = campaign().run()

        monkeypatch.setenv("REPRO_CHAOS_KILL_INDEX", "1")
        path = str(tmp_path / "memory.json")
        crashed = campaign(_fast_config(
            jobs=2, retries=2, pool_watchdog_s=2.0,
            checkpoint_path=path, checkpoint_every=1,
        ))
        first = crashed.run()
        assert crashed.telemetry.pool_respawns >= 1
        assert first.records == clean.records
        assert first.task_failures == []

        monkeypatch.delenv("REPRO_CHAOS_KILL_INDEX")
        resumed_campaign = campaign(_fast_config(checkpoint_path=path))
        resumed = resumed_campaign.run()
        assert resumed.records == clean.records
        assert resumed_campaign.telemetry.executed_runs == 0


class TestCampaignQuarantineAccounting:
    def test_permeability_tolerates_quarantined_task(
        self, monkeypatch, two_cases
    ):
        monkeypatch.setenv("REPRO_CHAOS_FAIL_INDEX", "0")
        faulty = PermeabilityCampaign(
            factory, two_cases, runs_per_input=2, seed=7,
            config=_fast_config(retries=0),
        )
        estimate = faulty.run()
        assert len(estimate.task_failures) == 1
        assert estimate.task_failures[0].index == 0
        assert faulty.telemetry.failures == 1

    def test_detection_skips_quarantined_runs(self, monkeypatch, two_cases):
        specs = list(EA_BY_NAME.values())

        def run(config=None):
            return DetectionCampaign(
                factory, two_cases, specs,
                runs_per_signal=4, targets=["ADC"], seed=7, config=config,
            ).run()

        clean = run()
        monkeypatch.setenv("REPRO_CHAOS_FAIL_INDEX", "1")
        faulty = run(_fast_config(retries=0))
        assert len(faulty.task_failures) == 1
        assert faulty.n_injected["ADC"] == clean.n_injected["ADC"] - 1


class TestEventLog:
    def test_events_recorded(self, tmp_path):
        log = str(tmp_path / "events.jsonl")

        def runner(index):
            if index == 1:
                raise ValueError("poison")
            return index

        config = _fast_config(
            retries=1, event_log_path=log,
            checkpoint_path=str(tmp_path / "cp.json"), checkpoint_every=1,
        )
        CampaignExecutor(config, campaign="unit").run_tasks(runner, 3, "fp")
        with open(log) as handle:
            events = [json.loads(line) for line in handle]
        names = [e["event"] for e in events]
        assert names[0] == "run_start"
        assert names[-1] == "run_end"
        assert "task_finish" in names
        assert "task_retry" in names
        assert "task_failure" in names
        assert "checkpoint_flush" in names
        assert all(e["campaign"] == "unit" for e in events)
        end = events[-1]
        assert end["status"] == "ok"
        assert end["failures"] == 1 and end["retries"] == 1

    def test_disabled_by_default(self, tmp_path):
        executor = CampaignExecutor(CampaignConfig(), campaign="unit")
        executor.run_tasks(lambda i: i, 2, "fp")
        assert list(tmp_path.iterdir()) == []


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"task_timeout": 0.0},
        {"task_timeout": -1.0},
        {"retries": -1},
        {"retry_backoff_s": -0.1},
        {"max_pool_respawns": -1},
        {"pool_watchdog_s": 0.0},
    ])
    def test_rejects_bad_fault_tolerance_knobs(self, kwargs):
        with pytest.raises(CampaignError):
            CampaignConfig(**kwargs)


class TestGoldenCacheEviction:
    class _StubStore:
        """Stands in for GoldenRunStore: records what it computed."""

        def __init__(self, factory):
            self.factory = factory

        def get(self, test_case):
            return ("run", id(self.factory), test_case.case_id)

    class _Case:
        def __init__(self, case_id):
            self.case_id = case_id

    @pytest.fixture(autouse=True)
    def stub_store(self, monkeypatch):
        import repro.fi.executor as executor_module

        monkeypatch.setattr(
            executor_module, "GoldenRunStore", self._StubStore
        )

    def test_lru_eviction_bounds_runs(self):
        cache = GoldenRunCache(max_runs=2)
        fa, fb = object(), object()
        cache.get("t", fa, self._Case(1))
        cache.get("t", fa, self._Case(2))
        cache.get("t", fb, self._Case(3))
        assert len(cache) == 2
        # the LRU entry (fa, case 1) was evicted: refetch recomputes
        hits0, misses0 = cache.hits, cache.misses
        cache.get("t", fa, self._Case(1))
        assert cache.misses == misses0 + 1 and cache.hits == hits0

    def test_orphaned_stores_and_factories_dropped(self):
        cache = GoldenRunCache(max_runs=1)
        fa, fb = object(), object()
        cache.get("t", fa, self._Case(1))
        cache.get("t", fb, self._Case(2))  # evicts fa's only run
        assert len(cache._stores) == 1
        assert list(cache._factories.values()) == [fb]

    def test_flight_locks_pruned(self):
        cache = GoldenRunCache(max_runs=8)
        factory = object()
        for case_id in range(5):
            cache.get("t", factory, self._Case(case_id))
        assert cache._flight == {}

    def test_hit_refreshes_lru_position(self):
        cache = GoldenRunCache(max_runs=2)
        factory = object()
        cache.get("t", factory, self._Case(1))
        cache.get("t", factory, self._Case(2))
        cache.get("t", factory, self._Case(1))  # refresh case 1
        cache.get("t", factory, self._Case(3))  # evicts case 2, not 1
        misses0 = cache.misses
        cache.get("t", factory, self._Case(1))
        assert cache.misses == misses0  # still cached
