"""Tests for the campaign execution engine.

The core contract under test: parallel execution is bit-identical to
serial execution for the same seed, and a checkpointed campaign that
is killed and resumed converges to the same final result as an
uninterrupted run.
"""

import json

import pytest

from repro.edm.catalogue import EA_BY_NAME
from repro.errors import CampaignError
from repro.fi import (
    CampaignConfig,
    CampaignExecutor,
    DetectionCampaign,
    MemoryCampaign,
    MemoryMap,
    PermeabilityCampaign,
)
from repro.target.simulation import ArrestmentSimulator


def factory(tc):
    return ArrestmentSimulator(tc)


@pytest.fixture(scope="module")
def two_cases(test_cases):
    return [test_cases[4], test_cases[20]]


class TestCampaignConfig:
    def test_defaults(self):
        config = CampaignConfig()
        assert config.seed == 2002
        assert config.resolved_backend() == "serial"

    def test_jobs_select_process_backend(self):
        assert CampaignConfig(jobs=4).resolved_backend() == "process"
        assert CampaignConfig(jobs=4, backend="serial").resolved_backend() \
            == "serial"

    def test_validation(self):
        with pytest.raises(CampaignError):
            CampaignConfig(jobs=0)
        with pytest.raises(CampaignError):
            CampaignConfig(backend="threads")
        with pytest.raises(CampaignError):
            CampaignConfig(checkpoint_every=0)


class TestExecutorMechanics:
    def test_results_in_task_order(self):
        executor = CampaignExecutor(CampaignConfig(), campaign="unit")
        assert executor.run_tasks(lambda i: i * i, 5, "fp") == [
            0, 1, 4, 9, 16,
        ]
        telemetry = executor.telemetry
        assert telemetry.total_runs == 5
        assert telemetry.executed_runs == 5
        assert telemetry.resumed_runs == 0

    def test_process_backend_matches_serial(self):
        executor = CampaignExecutor(
            CampaignConfig(jobs=2), campaign="unit"
        )
        assert executor.run_tasks(lambda i: i + 1, 8, "fp") == list(
            range(1, 9)
        )
        # falls back to serial only where fork is unavailable
        assert executor.telemetry.backend in ("process", "serial")

    def test_checkpoint_written_and_resumed(self, tmp_path):
        path = str(tmp_path / "cp.json")
        config = CampaignConfig(checkpoint_path=path, checkpoint_every=1)
        CampaignExecutor(config, campaign="unit").run_tasks(
            lambda i: i * 2, 6, "fp"
        )

        # simulate a kill: drop the second half of the results
        with open(path) as handle:
            payload = json.load(handle)
        payload["results"] = {
            k: v for k, v in payload["results"].items() if int(k) < 3
        }
        with open(path, "w") as handle:
            json.dump(payload, handle)

        executed = []

        def runner(index):
            executed.append(index)
            return index * 2

        resumed = CampaignExecutor(config, campaign="unit")
        assert resumed.run_tasks(runner, 6, "fp") == [0, 2, 4, 6, 8, 10]
        assert sorted(executed) == [3, 4, 5]
        assert resumed.telemetry.resumed_runs == 3
        assert resumed.telemetry.executed_runs == 3

    def test_fingerprint_mismatch_discards_checkpoint(self, tmp_path):
        path = str(tmp_path / "cp.json")
        config = CampaignConfig(checkpoint_path=path)
        CampaignExecutor(config, campaign="unit").run_tasks(
            lambda i: i, 4, "fp-a"
        )
        executor = CampaignExecutor(config, campaign="unit")
        executor.run_tasks(lambda i: i, 4, "fp-b")
        assert executor.telemetry.resumed_runs == 0
        assert executor.telemetry.executed_runs == 4


class TestSerialParallelDeterminism:
    def test_permeability_bit_identical(self, two_cases):
        serial = PermeabilityCampaign(
            factory, two_cases, runs_per_input=2, seed=7
        ).run()
        parallel = PermeabilityCampaign(
            factory, two_cases, runs_per_input=2, seed=7,
            config=CampaignConfig(jobs=2),
        ).run()
        assert serial.values == parallel.values
        assert serial.direct_counts == parallel.direct_counts
        assert serial.active_runs == parallel.active_runs

    def test_detection_counts_identical(self, two_cases):
        specs = list(EA_BY_NAME.values())

        def run(config=None):
            return DetectionCampaign(
                factory, two_cases, specs,
                runs_per_signal=4, targets=["ADC", "PACNT"], seed=7,
                config=config,
            ).run()

        serial = run()
        parallel = run(CampaignConfig(jobs=2))
        assert serial.n_injected == parallel.n_injected
        assert serial.n_err == parallel.n_err
        assert serial.detections == parallel.detections
        assert serial.run_records == parallel.run_records
        assert serial.run_latencies == parallel.run_latencies


class TestCampaignCheckpointing:
    def test_memory_campaign_kill_resume(self, two_cases, tmp_path):
        path = str(tmp_path / "memory.json")
        locations = MemoryMap(factory(two_cases[0]).system).locations()[::25]
        specs = list(EA_BY_NAME.values())

        def campaign(config=None):
            return MemoryCampaign(
                factory, two_cases[:1], specs,
                locations=locations, seed=7, config=config,
            )

        fresh = campaign().run()
        campaign(
            CampaignConfig(checkpoint_path=path, checkpoint_every=1)
        ).run()

        # kill: keep only the first two completed tasks
        with open(path) as handle:
            payload = json.load(handle)
        payload["results"] = {
            k: v for k, v in payload["results"].items() if int(k) < 2
        }
        with open(path, "w") as handle:
            json.dump(payload, handle)

        resumed_campaign = campaign(CampaignConfig(checkpoint_path=path))
        resumed = resumed_campaign.run()
        assert resumed.records == fresh.records
        assert resumed_campaign.telemetry.resumed_runs == 2

    def test_seed_flows_from_config(self, two_cases):
        specs = list(EA_BY_NAME.values())

        def run(**kwargs):
            return DetectionCampaign(
                factory, two_cases, specs,
                runs_per_signal=2, targets=["ADC"], **kwargs,
            ).run()

        assert run(seed=7).detections == run(
            config=CampaignConfig(seed=7)
        ).detections

    def test_test_cases_flow_from_config(self, two_cases):
        campaign = DetectionCampaign(
            factory,
            assertion_specs=list(EA_BY_NAME.values()),
            runs_per_signal=2,
            targets=["ADC"],
            config=CampaignConfig(test_cases=two_cases),
        )
        assert campaign.test_cases == list(two_cases)

    def test_telemetry_populated(self, two_cases):
        campaign = DetectionCampaign(
            factory, two_cases, list(EA_BY_NAME.values()),
            runs_per_signal=2, targets=["ADC"], seed=7,
        )
        campaign.run()
        telemetry = campaign.telemetry
        assert telemetry is not None
        assert telemetry.campaign == "detection"
        assert telemetry.total_runs == 2
        assert telemetry.executed_runs == 2
        assert telemetry.wall_s > 0
        assert 0.0 <= telemetry.worker_utilization <= 1.0
        assert "runs" in telemetry.render()
