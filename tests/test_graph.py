"""Unit tests for repro.model.graph (signal graph, path enumeration)."""

import pytest

from repro.errors import AnalysisError, UnknownSignalError
from repro.model.graph import PropagationPath, SignalGraph


class TestStructure:
    def test_all_signals_are_nodes(self, system, graph):
        assert set(graph.signals()) == set(system.signal_names())

    def test_out_edges_of_pulscnt(self, graph):
        # pulscnt feeds CALC inputs -> edges to i and SetValue
        outs = {(e.module, e.out_signal) for e in graph.out_edges("pulscnt")}
        assert outs == {("CALC", "i"), ("CALC", "SetValue")}

    def test_in_edges_of_toc2(self, graph):
        ins = [(e.module, e.in_signal) for e in graph.in_edges("TOC2")]
        assert ins == [("PRES_A", "OutValue")]

    def test_self_loop_edges_exist(self, graph):
        self_edges = [
            e for e in graph.out_edges("ms_slot_nbr")
            if e.out_signal == "ms_slot_nbr"
        ]
        assert len(self_edges) == 1
        assert self_edges[0].module == "CLOCK"

    def test_unknown_signal_rejected(self, graph):
        with pytest.raises(UnknownSignalError):
            graph.out_edges("nope")


class TestPaths:
    def test_pulscnt_to_toc2_has_two_paths(self, graph):
        """The paper's Fig. 4: exactly two propagation paths."""
        paths = graph.paths("pulscnt", "TOC2")
        assert len(paths) == 2
        lengths = sorted(len(p) for p in paths)
        assert lengths == [3, 4]

    def test_paths_do_not_revisit_signals(self, graph):
        for source in graph.signals():
            for path in graph.paths_to_outputs(source):
                signals = path.signals
                assert len(set(signals)) == len(signals)

    def test_self_loop_never_in_path(self, graph):
        for path in graph.paths("i", "TOC2"):
            for edge in path.edges:
                assert edge.in_signal != edge.out_signal

    def test_pacnt_to_toc2_paths(self, graph):
        paths = graph.paths("PACNT", "TOC2")
        # PACNT -> {pulscnt, slow_speed, stopped} -> ... -> TOC2
        assert len(paths) >= 3
        for path in paths:
            assert path.source == "PACNT"
            assert path.destination == "TOC2"

    def test_no_path_from_output(self, graph):
        assert graph.paths("TOC2", "TOC2") == []

    def test_max_length_limits(self, graph):
        paths = graph.paths("pulscnt", "TOC2", max_length=3)
        assert all(len(p) <= 3 for p in paths)
        assert len(paths) == 1

    def test_paths_from_inputs(self, graph):
        paths = graph.paths_from_inputs("pulscnt")
        assert {p.source for p in paths} <= {"PACNT", "TIC1", "TCNT", "ADC"}
        assert all(p.destination == "pulscnt" for p in paths)


class TestReachability:
    def test_reachable_from_pacnt(self, graph):
        reachable = graph.reachable_from("PACNT")
        assert "TOC2" in reachable
        assert "pulscnt" in reachable
        assert "IsValue" not in reachable  # ADC chain is separate

    def test_reaching_toc2(self, graph):
        reaching = graph.reaching("TOC2")
        assert "PACNT" in reaching and "ADC" in reaching
        assert "TOC2" not in reaching  # no cycle through the output

    def test_has_cycle_true_for_target(self, graph):
        # the i and ms_slot_nbr self-loops are cycles
        assert graph.has_cycle()

    def test_has_cycle_false_for_dag(self):
        from repro.model.module import FunctionModule
        from repro.model.signal import SignalRole, SignalSpec
        from repro.model.system import SystemModel

        system = SystemModel()
        system.add_signal(SignalSpec("a", role=SignalRole.SYSTEM_INPUT))
        system.add_signal(SignalSpec("b", role=SignalRole.SYSTEM_OUTPUT))
        system.add_module(FunctionModule(
            "M", inputs=["a"], outputs=["b"],
            fn=lambda args, state: {"b": args["a"]}))
        system.connect_input("a", "M", "a")
        system.bind_output("b", "M", "b")
        assert not SignalGraph(system).has_cycle()


class TestPropagationPath:
    def test_weight_is_product(self, graph, matrix):
        path = graph.paths("pulscnt", "TOC2", max_length=4)
        long_path = [p for p in path if len(p) == 4][0]
        expected = 0.494 * 0.056 * 0.885 * 0.875
        assert long_path.weight(matrix.__getitem__) == pytest.approx(expected)

    def test_describe_mentions_labels(self, graph):
        path = graph.paths("OutValue", "TOC2")[0]
        text = path.describe()
        assert "OutValue" in text and "TOC2" in text
        assert "P^PRES_A_{1,1}" in text

    def test_empty_path_rejected(self):
        with pytest.raises(AnalysisError):
            PropagationPath(())

    def test_discontinuous_path_rejected(self, graph):
        e1 = graph.out_edges("OutValue")[0]  # OutValue -> TOC2
        e2 = graph.out_edges("pulscnt")[0]
        with pytest.raises(AnalysisError):
            PropagationPath((e1, e2))

    def test_signals_sequence(self, graph):
        path = graph.paths("OutValue", "TOC2")[0]
        assert path.signals == ("OutValue", "TOC2")
