"""Tests for the result store layer.

The core contracts under test: the sqlite backend is a drop-in
replacement for the legacy JSON checkpoint files (bit-identical
campaign results, identical resume schedules, identical integrity
outcomes), a legacy checkpoint migrates into the database losslessly,
and the deprecated flat-config/serialization entry points keep working
behind their warning shims.
"""

import json
import os
import sqlite3
import warnings

import pytest

from repro.edm.catalogue import EA_BY_NAME
from repro.errors import CampaignError, IntegrityError
from repro.fi import (
    AdaptivePolicy,
    CampaignConfig,
    CampaignExecutor,
    CheckpointPolicy,
    DetectionCampaign,
    IntegrityPolicy,
    JsonCheckpointStore,
    MemoryCampaign,
    MemoryMap,
    PermeabilityCampaign,
    SqliteResultStore,
    backend_for_path,
    load_json,
    open_store,
    save_json,
)
from repro.fi import serialization
from repro.target.simulation import ArrestmentSimulator

BACKENDS = ("json", "sqlite")


def factory(tc):
    return ArrestmentSimulator(tc)


@pytest.fixture(scope="module")
def two_cases(test_cases):
    return [test_cases[4], test_cases[20]]


def _path(tmp_path, backend, name="cp"):
    suffix = ".json" if backend == "json" else ".db"
    return str(tmp_path / f"{name}{suffix}")


def _drop_tail(path, backend, keep):
    """Simulate a kill: drop every record with index >= *keep*."""
    if backend == "json":
        with open(path) as handle:
            payload = json.load(handle)
        payload["results"] = {
            k: v for k, v in payload["results"].items() if int(k) < keep
        }
        if isinstance(payload.get("digests"), dict):
            payload["digests"] = {
                k: v
                for k, v in payload["digests"].items()
                if int(k) < keep
            }
        with open(path, "w") as handle:
            json.dump(payload, handle)
    else:
        conn = sqlite3.connect(path)
        conn.execute("DELETE FROM tasks WHERE idx >= ?", (keep,))
        conn.commit()
        conn.close()


class TestBackendSelection:
    def test_suffix_rules(self):
        assert backend_for_path("cp.json") == "json"
        assert backend_for_path("cp.txt") == "json"
        for suffix in (".db", ".sqlite", ".sqlite3"):
            assert backend_for_path(f"cp{suffix}") == "sqlite"

    def test_explicit_backend_wins(self):
        assert backend_for_path("cp.json", "sqlite") == "sqlite"
        assert backend_for_path("cp.db", "json") == "json"

    def test_unknown_backend_rejected(self):
        with pytest.raises(CampaignError):
            backend_for_path("cp.json", "mongodb")

    def test_open_store_types(self, tmp_path):
        assert isinstance(
            open_store(str(tmp_path / "a.json")), JsonCheckpointStore
        )
        assert isinstance(
            open_store(str(tmp_path / "a.db")), SqliteResultStore
        )


class TestStoreProtocol:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_checkpoint_round_trip(self, tmp_path, backend):
        path = _path(tmp_path, backend)
        with open_store(path) as store:
            assert store.backend == backend
            assert store.open_campaign("unit", "fp", 4) == 0
            assert store.completed_indices() == set()
            for index in range(3):
                store.put_record(index, {"value": index})
            assert store.flush() is True
            assert store.stats.records_written == 3

        with open_store(path) as reopened:
            assert reopened.open_campaign("unit", "fp", 4) == 0
            assert reopened.completed_indices() == {0, 1, 2}
            assert reopened.get_record(1) == {"value": 1}

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_clean_flush_skipped(self, tmp_path, backend):
        path = _path(tmp_path, backend)
        with open_store(path) as store:
            store.open_campaign("unit", "fp", 2)
            store.put_record(0, {"value": 0})
            assert store.flush() is True
            assert store.flush() is False
            assert store.stats.skipped_flushes == 1
            assert store.stats.flushes == 1

    def test_json_flush_is_atomic(self, tmp_path):
        path = _path(tmp_path, "json")
        with open_store(path) as store:
            store.open_campaign("unit", "fp", 2)
            store.put_record(0, {"value": 0})
            store.flush()
        # write-temp-then-rename leaves no partial sibling behind
        assert os.listdir(tmp_path) == [os.path.basename(path)]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fingerprint_mismatch_is_absent(self, tmp_path, backend):
        path = _path(tmp_path, backend)
        with open_store(path) as store:
            store.open_campaign("unit", "fp-a", 3)
            store.put_record(0, {"value": 0})
            store.flush()
        with open_store(path) as reopened:
            reopened.open_campaign("unit", "fp-b", 3)
            assert reopened.completed_indices() == set()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_discard_campaign(self, tmp_path, backend):
        path = _path(tmp_path, backend)
        with open_store(path) as store:
            store.open_campaign("unit", "fp", 3)
            store.put_record(0, {"value": 0})
            store.flush()
        with open_store(path) as again:
            again.discard_campaign("unit")
            again.open_campaign("unit", "fp", 3)
            assert again.completed_indices() == set()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_list_campaigns(self, tmp_path, backend):
        path = _path(tmp_path, backend)
        with open_store(path) as store:
            store.open_campaign("unit", "fp", 5)
            store.put_record(0, {"value": 0})
            store.put_record(1, {"value": 1})
            store.flush()
        with open_store(path) as reopened:
            (entry,) = reopened.list_campaigns()
            assert entry.campaign == "unit"
            assert entry.fingerprint == "fp"
            assert entry.n_tasks == 5
            assert entry.completed == 2
            assert entry.failures == 0

    def test_sqlite_tamper_repair_drops_record(self, tmp_path):
        path = _path(tmp_path, "sqlite")
        with open_store(path) as store:
            store.open_campaign("unit", "fp", 3)
            for index in range(3):
                store.put_record(index, {"value": index})
            store.flush()
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE tasks SET record = ? WHERE idx = 1",
            (json.dumps({"value": 666}),),
        )
        conn.commit()
        conn.close()

        violations = []
        with open_store(path) as repaired:
            rejects = repaired.open_campaign(
                "unit", "fp", 3, policy="repair",
                on_violation=violations.append,
            )
            assert rejects == 1
            assert repaired.completed_indices() == {0, 2}
        assert len(violations) == 1

        with open_store(path) as strict:
            conn = sqlite3.connect(path)
            conn.execute(
                "UPDATE tasks SET record = ? WHERE idx = 0",
                (json.dumps({"value": 667}),),
            )
            conn.commit()
            conn.close()
            with pytest.raises(IntegrityError):
                strict.open_campaign("unit", "fp", 3, policy="strict")


@pytest.mark.slow
class TestBackendEquivalence:
    """A/B: the sqlite store must reproduce the JSON store bit for
    bit — same campaign results, same resume schedules, same
    integrity outcomes — serial and parallel, fixed-n and adaptive.
    """

    def _permeability(self, two_cases, config=None):
        return PermeabilityCampaign(
            factory, two_cases, runs_per_input=2, seed=7, config=config
        ).run()

    def test_permeability_identical(self, two_cases, tmp_path):
        baseline = self._permeability(two_cases)
        for jobs in (1, 2):
            by_backend = {}
            for backend in BACKENDS:
                config = CampaignConfig(
                    jobs=jobs,
                    checkpoint=CheckpointPolicy(
                        path=_path(tmp_path, backend, f"perm{jobs}")
                    ),
                )
                by_backend[backend] = self._permeability(two_cases, config)
            for estimate in by_backend.values():
                assert estimate.values == baseline.values
                assert estimate.direct_counts == baseline.direct_counts
                assert estimate.active_runs == baseline.active_runs

    def test_resume_schedule_identical(self, tmp_path):
        schedules = {}
        for backend in BACKENDS:
            path = _path(tmp_path, backend)
            config = CampaignConfig(
                checkpoint=CheckpointPolicy(path=path, every=1)
            )
            CampaignExecutor(config, campaign="unit").run_tasks(
                lambda i: i * 2, 6, "fp"
            )
            _drop_tail(path, backend, keep=3)

            executed = []

            def runner(index):
                executed.append(index)
                return index * 2

            resumed = CampaignExecutor(config, campaign="unit")
            results = resumed.run_tasks(runner, 6, "fp")
            assert results == [0, 2, 4, 6, 8, 10]
            assert resumed.telemetry.resumed_runs == 3
            schedules[backend] = sorted(executed)
        assert schedules["json"] == schedules["sqlite"] == [3, 4, 5]

    def test_detection_identical_fixed_and_adaptive(
        self, two_cases, tmp_path
    ):
        specs = list(EA_BY_NAME.values())

        def run(backend, adaptive):
            name = f"det-{'a' if adaptive else 'f'}"
            config = CampaignConfig(
                checkpoint=CheckpointPolicy(
                    path=_path(tmp_path, backend, name)
                ),
                sampling=AdaptivePolicy(
                    enabled=adaptive, ci_halfwidth=0.0
                ),
            )
            return DetectionCampaign(
                factory, two_cases, specs,
                runs_per_signal=4, targets=["ADC", "PACNT"], seed=7,
                config=config,
            ).run()

        for adaptive in (False, True):
            a = run("json", adaptive)
            b = run("sqlite", adaptive)
            assert a.detections == b.detections
            assert a.n_err == b.n_err
            assert a.run_records == b.run_records

    def test_integrity_audit_outcome_identical(self, two_cases, tmp_path):
        results = {}
        for backend in BACKENDS:
            config = CampaignConfig(
                checkpoint=CheckpointPolicy(
                    path=_path(tmp_path, backend, "audit")
                ),
                integrity=IntegrityPolicy(
                    audit_fraction=0.5, audit_seed=11
                ),
            )
            campaign = PermeabilityCampaign(
                factory, two_cases, runs_per_input=2, seed=7,
                config=config,
            )
            results[backend] = campaign.run()
            assert campaign.integrity_violations == []
        assert results["json"].values == results["sqlite"].values

    def test_recovery_campaign_identical(self, two_cases, tmp_path):
        from repro.fi.campaign import RecoveryCampaign

        system = factory(two_cases[0]).system
        locations = [
            loc for loc in MemoryMap(system).locations()
            if loc.cell in ("mscnt", "pulscnt_acc")
        ]
        specs = list(EA_BY_NAME.values())

        def run(backend):
            return RecoveryCampaign(
                ArrestmentSimulator, two_cases[:1], specs,
                locations=locations, seed=9,
                config=CampaignConfig(
                    checkpoint=CheckpointPolicy(
                        path=_path(tmp_path, backend, "recovery")
                    )
                ),
            ).run()

        a, b = run("json"), run("sqlite")
        assert a.outcomes == b.outcomes

    def test_memory_campaign_kill_resume_sqlite(self, two_cases, tmp_path):
        path = _path(tmp_path, "sqlite", "memory")
        locations = MemoryMap(factory(two_cases[0]).system).locations()[::25]
        specs = list(EA_BY_NAME.values())

        def campaign(config=None):
            return MemoryCampaign(
                factory, two_cases[:1], specs,
                locations=locations, seed=7, config=config,
            )

        fresh = campaign().run()
        campaign(
            CampaignConfig(checkpoint=CheckpointPolicy(path=path, every=1))
        ).run()
        _drop_tail(path, "sqlite", keep=2)

        resumed_campaign = campaign(
            CampaignConfig(checkpoint=CheckpointPolicy(path=path))
        )
        resumed = resumed_campaign.run()
        assert resumed.records == fresh.records
        assert resumed_campaign.telemetry.resumed_runs == 2


class TestMigration:
    def test_import_round_trips_losslessly(self, tmp_path):
        json_path = _path(tmp_path, "json")
        db_path = _path(tmp_path, "sqlite")
        config = CampaignConfig(
            checkpoint=CheckpointPolicy(path=json_path, every=1)
        )
        CampaignExecutor(config, campaign="unit").run_tasks(
            lambda i: {"value": i * 2}, 5, "fp"
        )
        with open(json_path) as handle:
            original = json.load(handle)

        with SqliteResultStore(db_path) as store:
            entry = store.import_checkpoint(json_path)
            assert entry.campaign == "unit"
            assert entry.completed == 5
            exported = store.checkpoint_document("unit")
        assert exported == original

    def test_resume_from_imported_checkpoint(self, tmp_path):
        json_path = _path(tmp_path, "json")
        db_path = _path(tmp_path, "sqlite")
        CampaignExecutor(
            CampaignConfig(checkpoint=CheckpointPolicy(path=json_path)),
            campaign="unit",
        ).run_tasks(lambda i: i * 3, 4, "fp")
        with SqliteResultStore(db_path) as store:
            store.import_checkpoint(json_path)

        executed = []

        def runner(index):
            executed.append(index)
            return index * 3

        resumed = CampaignExecutor(
            CampaignConfig(checkpoint=CheckpointPolicy(path=db_path)),
            campaign="unit",
        )
        assert resumed.run_tasks(runner, 4, "fp") == [0, 3, 6, 9]
        assert executed == []
        assert resumed.telemetry.resumed_runs == 4

    def test_import_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"not": "a checkpoint"}))
        with SqliteResultStore(_path(tmp_path, "sqlite")) as store:
            with pytest.raises(CampaignError):
                store.import_checkpoint(str(bad))


class TestResultPersistence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_result_round_trip(self, two_cases, tmp_path, backend):
        estimate = PermeabilityCampaign(
            factory, two_cases, runs_per_input=2, seed=7
        ).run()
        path = _path(tmp_path, backend, "result")
        with open_store(path) as store:
            run = store.save_result(estimate, run="unit/permeability")
            assert run == "unit/permeability"
        with open_store(path) as reopened:
            loaded = reopened.load_result(
                "unit/permeability" if backend == "sqlite" else None
            )
        assert loaded.values == estimate.values
        assert loaded.direct_counts == estimate.direct_counts

    def test_sqlite_meta_and_catalogue(self, two_cases, tmp_path):
        estimate = PermeabilityCampaign(
            factory, two_cases, runs_per_input=2, seed=7
        ).run()
        path = _path(tmp_path, "sqlite")
        with SqliteResultStore(path) as store:
            store.save_result(
                estimate, run="a/permeability", meta={"seed": 7}
            )
            (entry,) = store.list_results()
            assert entry.run == "a/permeability"
            assert entry.kind == "permeability_estimate"
            assert store.result_meta("a/permeability") == {"seed": 7}

    def test_sqlite_tampered_result_fails_verification(
        self, two_cases, tmp_path
    ):
        estimate = PermeabilityCampaign(
            factory, two_cases, runs_per_input=2, seed=7
        ).run()
        path = _path(tmp_path, "sqlite")
        with SqliteResultStore(path) as store:
            store.save_result(estimate, run="a/permeability")
        conn = sqlite3.connect(path)
        (payload,) = conn.execute(
            "SELECT payload FROM results"
        ).fetchone()
        doc = json.loads(payload)
        doc["direct_counts"][0]["count"] += 1
        conn.execute(
            "UPDATE results SET payload = ?", (json.dumps(doc),)
        )
        conn.commit()
        conn.close()
        with SqliteResultStore(path) as store:
            with pytest.raises(IntegrityError):
                store.load_result("a/permeability")


class TestDeprecationShims:
    def test_save_load_json_still_work_and_warn_once(
        self, two_cases, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(serialization, "_shim_warned", False)
        estimate = PermeabilityCampaign(
            factory, two_cases, runs_per_input=2, seed=7
        ).run()
        path = tmp_path / "estimate.json"
        with pytest.warns(DeprecationWarning, match="save_json"):
            save_json(estimate, path)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # warn-once: no second warning
            loaded = load_json(path)
        assert loaded.values == estimate.values

    def test_flat_config_kwargs_warn(self, tmp_path):
        with pytest.warns(DeprecationWarning, match="checkpoint_path"):
            config = CampaignConfig(
                checkpoint_path=str(tmp_path / "cp.json"),
                checkpoint_every=2,
            )
        assert config.checkpoint.path == str(tmp_path / "cp.json")
        assert config.checkpoint.every == 2
        # the read-side flat aliases stay warning-free
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert config.checkpoint_path == config.checkpoint.path
            assert config.checkpoint_every == 2

    def test_nested_config_does_not_warn(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            CampaignConfig(
                checkpoint=CheckpointPolicy(path=str(tmp_path / "cp.json"))
            )

    def test_flat_conflicts_with_nested(self, tmp_path):
        with pytest.raises(CampaignError, match="conflicts"):
            CampaignConfig(
                checkpoint=CheckpointPolicy(path="a.json"),
                checkpoint_path="b.json",
            )
