"""Unit and integration tests for the recovery (ERM) substrate."""

import pytest

from repro.edm.assertions import AssertionSpec, EAKind
from repro.edm.catalogue import EA_BY_NAME
from repro.edm.recovery import (
    RecoveringMonitorBank,
    RecoveryPolicy,
)
from repro.errors import AssertionSpecError
from repro.fi import (
    FaultInjector,
    MemoryMap,
    PeriodicMemoryFlip,
    RecoveryCampaign,
    Region,
)
from repro.target.simulation import ArrestmentSimulator


class TestRecoveringBank:
    def test_unknown_policy_target_rejected(self):
        with pytest.raises(AssertionSpecError):
            RecoveringMonitorBank(
                [EA_BY_NAME["EA1"]],
                policies={"EA9": RecoveryPolicy.HOLD_LAST_GOOD},
            )

    def test_policy_defaulting(self):
        bank = RecoveringMonitorBank(
            [EA_BY_NAME["EA1"], EA_BY_NAME["EA4"]],
            policies={"EA4": RecoveryPolicy.DETECT_ONLY},
        )
        assert bank.policy_for("EA4") is RecoveryPolicy.DETECT_ONLY
        assert bank.policy_for("EA1") is RecoveryPolicy.HOLD_LAST_GOOD

    def test_holds_last_good_on_store_corruption(self, mid_case):
        """Corrupting pulscnt's store right before the EA slot: the
        recovering bank must substitute the last good value."""
        sim = ArrestmentSimulator(mid_case)
        bank = RecoveringMonitorBank([EA_BY_NAME["EA4"]]).attach(sim)
        observed = {}

        def corrupt(tick):
            if tick == 1018:
                sim.executor.store.poke("pulscnt", 60000)
            if tick == 1020:
                # the EA slot (end of tick 1019) has run: recovered
                observed["value"] = sim.executor.store["pulscnt"]
        sim.add_pre_tick(corrupt)
        sim.run()
        assert bank.recovery_count >= 1
        action = bank.actions[0]
        assert action.signal == "pulscnt"
        assert action.observed == 60000
        assert action.substituted < 60000
        assert observed["value"] == action.substituted

    def test_detect_only_does_not_interfere(self, mid_case):
        sim = ArrestmentSimulator(mid_case)
        bank = RecoveringMonitorBank(
            [EA_BY_NAME["EA4"]],
            policies={"EA4": RecoveryPolicy.DETECT_ONLY},
        ).attach(sim)
        sim.add_pre_tick(
            lambda tick: (
                sim.executor.store.poke("pulscnt", 60000)
                if tick == 1018 else None
            )
        )
        sim.run()
        assert bank.state("EA4").fired
        assert bank.recovery_count == 0

    def test_clamp_policy_clamps_range_violation(self, mid_case):
        spec = AssertionSpec(
            "EAX", "SetValue", EAKind.RANGE_RATE,
            minimum=0, maximum=30000, max_delta=10**6,
        )
        sim = ArrestmentSimulator(mid_case)
        bank = RecoveringMonitorBank(
            [spec], policies={"EAX": RecoveryPolicy.CLAMP_TO_SPEC},
        ).attach(sim)
        sim.add_pre_tick(
            lambda tick: (
                sim.executor.store.poke("SetValue", 65000)
                if tick == 2018 else None
            )
        )
        sim.run()
        assert bank.recovery_count >= 1
        assert bank.actions[0].substituted == 30000

    def test_silent_on_golden_run(self, mid_case):
        sim = ArrestmentSimulator(mid_case)
        bank = RecoveringMonitorBank(list(EA_BY_NAME.values())).attach(sim)
        result = sim.run()
        assert bank.recovery_count == 0
        assert result.arrested and not result.failed


class TestRecoveryCampaign:
    @pytest.fixture(scope="class")
    def recovery_result(self, test_cases):
        system = ArrestmentSimulator(test_cases[0]).system
        # pick locations whose corruption the EH EAs can both detect
        # and contain, plus a few undetectable ones
        locations = [
            loc for loc in MemoryMap(system).locations()
            if loc.cell in ("mscnt", "pulscnt_acc", "win3", "set_prev")
        ]
        campaign = RecoveryCampaign(
            ArrestmentSimulator,
            [test_cases[4], test_cases[20]],
            list(EA_BY_NAME.values()),
            locations=locations,
            seed=9,
        )
        return campaign.run()

    def test_outcomes_recorded(self, recovery_result):
        assert recovery_result.outcomes
        for outcome in recovery_result.outcomes:
            assert outcome.region in (Region.RAM, Region.STACK)
            assert outcome.recovery_actions >= 0

    def test_recovery_never_on_undetected(self, recovery_result):
        for outcome in recovery_result.outcomes:
            if not outcome.detected:
                # detection-only and recovering banks share the same
                # assertions: undetected means uncontained
                assert outcome.recovery_actions == 0

    def test_failure_rates_bounded(self, recovery_result):
        for with_recovery in (False, True):
            rate = recovery_result.failure_rate(with_recovery)
            assert 0.0 <= rate <= 1.0

    def test_bookkeeping_consistent(self, recovery_result):
        prevented = recovery_result.failures_prevented()
        introduced = recovery_result.failures_introduced()
        n = len(recovery_result.outcomes)
        base = recovery_result.failure_rate(False) * n
        rec = recovery_result.failure_rate(True) * n
        assert rec == pytest.approx(base - prevented + introduced)
