"""Property-based tests of the placement solvers.

The solvers carry the ``repro place`` verb's claims — the greedy's
(1 - 1/e) certificate and the ILP's optimality proof — so hypothesis
sweeps randomly generated coverage-maximization instances for the
structural properties behind those claims: approximation quality
against the exact optimum, exact budget feasibility, determinism and
invariance under item permutations, and the two budget extremes
(zero budget selects nothing; no budget leaves nothing with positive
marginal coverage on the table).

Detection probabilities are drawn from a coarse 1/16 grid so marginal
coverages are either exactly zero or comfortably above the solver
tolerance ``EPS``.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlacementError
from repro.place import (
    EPS,
    GREEDY_GUARANTEE,
    Budget,
    PlacementInstance,
    PlacementItem,
    Stratum,
    greedy_solve,
    ilp_solve,
)
import pytest

GRID = [i / 16.0 for i in range(17)]


def _instance(n_items, n_strata, ps, roms, rams, rom_limit, ram_limit):
    strata = tuple(
        Stratum(f"M{s}", f"in{s}", f"sig{s}", 1.0 / n_strata)
        for s in range(n_strata)
    )
    items = tuple(
        PlacementItem(
            name=f"EA{i:02d}",
            signal=f"g{i}",
            rom_bytes=roms[i],
            ram_bytes=rams[i],
            time_cost=1,
            p=tuple(ps[i]),
            p_low=tuple(ps[i]),
            p_high=tuple(ps[i]),
        )
        for i in range(n_items)
    )
    budget = Budget(rom_bytes=rom_limit, ram_bytes=ram_limit)
    return PlacementInstance(strata=strata, items=items, budget=budget)


@st.composite
def instances(draw, max_items=8, max_strata=6, budgeted=True):
    n_items = draw(st.integers(min_value=1, max_value=max_items))
    n_strata = draw(st.integers(min_value=1, max_value=max_strata))
    ps = [
        [draw(st.sampled_from(GRID)) for _ in range(n_strata)]
        for _ in range(n_items)
    ]
    roms = [draw(st.integers(min_value=0, max_value=60)) for _ in range(n_items)]
    rams = [draw(st.integers(min_value=0, max_value=20)) for _ in range(n_items)]
    if budgeted:
        rom_limit = draw(st.integers(min_value=0, max_value=sum(roms)))
        ram_limit = draw(st.integers(min_value=0, max_value=sum(rams)))
    else:
        rom_limit = ram_limit = None
    return _instance(n_items, n_strata, ps, roms, rams, rom_limit, ram_limit)


def _exhaustive_optimum(instance):
    """Brute-force optimum by enumerating all 2^n subsets."""
    names = [item.name for item in instance.items]
    best = 0.0
    for mask in range(1 << len(names)):
        subset = [names[i] for i in range(len(names)) if mask >> i & 1]
        if instance.feasible(subset):
            best = max(best, instance.coverage(subset))
    return best


class TestGreedyApproximation:
    @settings(max_examples=30, deadline=None)
    @given(instances(max_items=8))
    def test_greedy_within_guarantee_of_ilp_optimum(self, instance):
        greedy = greedy_solve(instance)
        exact = ilp_solve(instance)
        assert exact.optimal
        assert greedy.coverage >= GREEDY_GUARANTEE * exact.coverage - 1e-9

    @settings(max_examples=15, deadline=None)
    @given(instances(max_items=12, max_strata=4))
    def test_certificate_bounds_the_true_optimum(self, instance):
        greedy = greedy_solve(instance)
        exact = ilp_solve(instance)
        assert greedy.upper_bound + 1e-9 >= exact.coverage
        assert greedy.coverage <= exact.coverage + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(instances(max_items=8))
    def test_solutions_respect_the_budget_exactly(self, instance):
        for result in (greedy_solve(instance), ilp_solve(instance)):
            cost = instance.cost_of(result.selected)
            for dim, limit in instance.budget.dims():
                assert cost[dim] <= limit


class TestDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(instances(max_items=7), st.randoms(use_true_random=False))
    def test_item_permutation_invariance(self, instance, rng):
        shuffled = list(instance.items)
        rng.shuffle(shuffled)
        permuted = PlacementInstance(
            strata=instance.strata,
            items=tuple(shuffled),
            budget=instance.budget,
        )
        for solve in (greedy_solve, ilp_solve):
            a, b = solve(instance), solve(permuted)
            assert a.selected == b.selected
            assert a.coverage == b.coverage

    @settings(max_examples=25, deadline=None)
    @given(instances(max_items=8))
    def test_repeat_solves_are_identical(self, instance):
        for solve in (greedy_solve, ilp_solve):
            a, b = solve(instance), solve(instance)
            assert a.selected == b.selected
            assert a.explanations == b.explanations


class TestBudgetExtremes:
    @settings(max_examples=25, deadline=None)
    @given(instances(max_items=6))
    def test_zero_budget_selects_nothing(self, instance):
        pinched = PlacementInstance(
            strata=instance.strata,
            items=instance.items,
            budget=Budget(rom_bytes=0, ram_bytes=0, time_slots=0),
        )
        # items costing 0 bytes still cost one time slot, so a fully
        # zeroed budget admits only the empty set
        assert greedy_solve(pinched).selected == ()
        assert ilp_solve(pinched).selected == ()

    @settings(max_examples=25, deadline=None)
    @given(instances(max_items=6, budgeted=False))
    def test_infinite_budget_exhausts_positive_marginals(self, instance):
        for result in (greedy_solve(instance), ilp_solve(instance)):
            selected = list(result.selected)
            for item in instance.items:
                if item.name in selected:
                    continue
                assert instance.marginal(selected, item.name) <= EPS

    @settings(max_examples=10, deadline=None)
    @given(instances(max_items=6, budgeted=False))
    def test_unbudgeted_solve_is_exactly_optimal(self, instance):
        # with no constraints the noisy-or objective is maximized by
        # taking every EA that helps, so both solvers must hit the
        # exhaustive optimum exactly
        exact = _exhaustive_optimum(instance)
        assert math.isclose(
            greedy_solve(instance).coverage, exact, abs_tol=1e-9
        )
        assert math.isclose(
            ilp_solve(instance).coverage, exact, abs_tol=1e-9
        )


class TestSmallInstanceOptimality:
    @settings(max_examples=20, deadline=None)
    @given(instances(max_items=6, max_strata=4))
    def test_ilp_matches_exhaustive_enumeration(self, instance):
        result = ilp_solve(instance)
        assert result.optimal
        assert math.isclose(
            result.coverage, _exhaustive_optimum(instance), abs_tol=1e-9
        )


class TestSolverContracts:
    def test_ilp_refuses_oversized_instances(self):
        instance = _instance(
            3, 2,
            [[0.5, 0.5]] * 3, [10] * 3, [5] * 3, None, None,
        )
        with pytest.raises(PlacementError):
            ilp_solve(instance, max_items=2)

    def test_explanations_telescope_to_total_coverage(self):
        instance = _instance(
            4, 3,
            [[0.5, 0.0, 0.25], [0.0, 0.75, 0.0],
             [0.25, 0.25, 0.25], [1.0, 0.0, 0.0]],
            [10, 20, 30, 40], [1, 2, 3, 4], 100, 10,
        )
        result = ilp_solve(instance)
        total = sum(exp.marginal for exp in result.explanations)
        assert math.isclose(total, result.coverage, abs_tol=1e-9)
        if result.explanations:
            assert math.isclose(
                result.explanations[-1].coverage_after,
                result.coverage,
                abs_tol=1e-9,
            )
