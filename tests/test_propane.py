"""Tests for the PROPANE-style orchestration layer."""

import json

import pytest

from repro.errors import ExperimentError
from repro.fi.campaign import (
    DetectionResult,
    MemoryCampaignResult,
    PermeabilityEstimate,
    RecoveryResult,
)
from repro.propane import (
    CampaignKind,
    ExperimentDatabase,
    ExperimentDescription,
    readout,
    run_description,
)


def tiny(name, kind, **params):
    return ExperimentDescription(
        name=name,
        kind=kind,
        test_case_ids=(12,),
        seed=7,
        params=params,
    )


class TestDescription:
    def test_roundtrip(self):
        desc = tiny("d1", CampaignKind.DETECTION, runs_per_signal=4)
        assert ExperimentDescription.from_dict(desc.to_dict()) == desc

    def test_unknown_param_rejected(self):
        with pytest.raises(ExperimentError, match="unknown parameters"):
            tiny("d1", CampaignKind.DETECTION, runs_per_input=4)

    def test_bad_name_rejected(self):
        with pytest.raises(ExperimentError):
            tiny("", CampaignKind.MEMORY)
        with pytest.raises(ExperimentError):
            tiny("a/b", CampaignKind.MEMORY)

    def test_bad_test_case_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentDescription(
                "d", CampaignKind.MEMORY, test_case_ids=(99,)
            )

    def test_bad_kind_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentDescription.from_dict({"name": "x", "kind": "bogus"})

    def test_resolve_test_cases(self):
        desc = tiny("d", CampaignKind.MEMORY)
        cases = desc.resolve_test_cases()
        assert len(cases) == 1 and cases[0].case_id == 12
        everything = ExperimentDescription("d", CampaignKind.MEMORY)
        assert len(everything.resolve_test_cases()) == 25


class TestRunner:
    def test_permeability(self):
        result = run_description(
            tiny("p", CampaignKind.PERMEABILITY, runs_per_input=2)
        )
        assert isinstance(result, PermeabilityEstimate)
        assert len(result.values) == 25

    def test_detection(self):
        result = run_description(
            tiny("d", CampaignKind.DETECTION, runs_per_signal=2,
                 targets=["PACNT"])
        )
        assert isinstance(result, DetectionResult)
        assert result.targets == ["PACNT"]

    def test_memory(self):
        result = run_description(
            tiny("m", CampaignKind.MEMORY, location_stride=40)
        )
        assert isinstance(result, MemoryCampaignResult)
        assert result.records

    def test_recovery(self):
        result = run_description(
            tiny("r", CampaignKind.RECOVERY, location_stride=60)
        )
        assert isinstance(result, RecoveryResult)

    def test_bad_stride_rejected(self):
        with pytest.raises(ExperimentError, match="location_stride"):
            run_description(
                tiny("m", CampaignKind.MEMORY, location_stride=0)
            )


class TestDatabase:
    def test_add_and_list(self, tmp_path):
        db = ExperimentDatabase(tmp_path)
        db.add(tiny("m1", CampaignKind.MEMORY, location_stride=50))
        db.add(tiny("p1", CampaignKind.PERMEABILITY, runs_per_input=2))
        assert db.names() == ["m1", "p1"]
        assert db.description("m1").kind is CampaignKind.MEMORY

    def test_conflicting_redefinition_rejected(self, tmp_path):
        db = ExperimentDatabase(tmp_path)
        db.add(tiny("m1", CampaignKind.MEMORY, location_stride=50))
        db.add(tiny("m1", CampaignKind.MEMORY, location_stride=50))  # same
        with pytest.raises(ExperimentError, match="different description"):
            db.add(tiny("m1", CampaignKind.MEMORY, location_stride=10))

    def test_unknown_experiment_rejected(self, tmp_path):
        db = ExperimentDatabase(tmp_path)
        with pytest.raises(ExperimentError):
            db.description("ghost")
        with pytest.raises(ExperimentError):
            db.result("ghost")

    def test_run_persists_and_caches(self, tmp_path):
        db = ExperimentDatabase(tmp_path)
        db.add(tiny("m1", CampaignKind.MEMORY, location_stride=50))
        first = db.run("m1")
        assert db.is_complete("m1")
        status = db.status("m1")
        assert status["persisted"] and status["elapsed_seconds"] > 0
        # second run loads from disk (same content)
        second = db.run("m1")
        assert len(second.records) == len(first.records)
        loaded = db.result("m1")
        assert len(loaded.records) == len(first.records)

    def test_run_all(self, tmp_path):
        db = ExperimentDatabase(tmp_path)
        db.add(tiny("m1", CampaignKind.MEMORY, location_stride=60))
        db.add(tiny("p1", CampaignKind.PERMEABILITY, runs_per_input=2))
        results = db.run_all()
        assert set(results) == {"m1", "p1"}

    def test_recovery_not_persisted(self, tmp_path):
        db = ExperimentDatabase(tmp_path)
        db.add(tiny("r1", CampaignKind.RECOVERY, location_stride=60))
        result = db.run("r1")
        assert isinstance(result, RecoveryResult)
        assert db.is_complete("r1")
        assert not db.status("r1")["persisted"]
        with pytest.raises(ExperimentError):
            db.result("r1")


class TestReadout:
    def test_permeability_readout(self, ctx):
        text = readout(ctx.permeability_estimate())
        assert "Wilson" in text and "CLOCK" in text

    def test_detection_readout(self, ctx):
        text = readout(ctx.detection_result())
        assert "EH-set" in text and "PA-set" in text
        assert "latency" in text

    def test_memory_readout(self, ctx):
        text = readout(ctx.memory_result())
        assert "ram" in text and "stack" in text and "total" in text

    def test_unknown_type_rejected(self):
        with pytest.raises(ExperimentError):
            readout(object())
