"""Unit tests for repro.fi.golden (golden runs, direct-error accounting)."""

import pytest

from repro.errors import CampaignError
from repro.fi.golden import (
    GoldenRunStore,
    InvocationLog,
    first_output_differences,
)
from repro.target.simulation import ArrestmentSimulator


class TestInvocationLog:
    def test_records_selected_modules_only(self, mid_case):
        sim = ArrestmentSimulator(mid_case, timeout_s=0.2)
        log = InvocationLog(["CALC"]).attach(sim)
        sim.run()
        assert log.modules() == ["CALC"]
        assert log.stream("CLOCK") == []

    def test_records_port_ordered_tuples(self, mid_case):
        sim = ArrestmentSimulator(mid_case, timeout_s=0.2)
        log = InvocationLog(["CALC"]).attach(sim)
        sim.run()
        tick, inputs, outputs = log.stream("CALC")[0]
        assert len(inputs) == 5  # i, mscnt, pulscnt, slow_speed, stopped
        assert len(outputs) == 2  # i, SetValue

    def test_all_modules_by_default(self, mid_case):
        sim = ArrestmentSimulator(mid_case, timeout_s=0.1)
        log = InvocationLog().attach(sim)
        sim.run()
        assert set(log.modules()) == {
            "CLOCK", "DIST_S", "CALC", "PRES_S", "V_REG", "PRES_A",
        }

    def test_clock_runs_every_tick(self, mid_case):
        sim = ArrestmentSimulator(mid_case, timeout_s=0.1)
        log = InvocationLog(["CLOCK"]).attach(sim)
        result = sim.run()
        assert len(log.stream("CLOCK")) == result.ticks_run

    def test_slot_modules_run_once_per_cycle(self, mid_case):
        sim = ArrestmentSimulator(mid_case, timeout_s=0.2)
        log = InvocationLog(["DIST_S"]).attach(sim)
        result = sim.run()
        assert len(log.stream("DIST_S")) == result.ticks_run // 20


class TestGoldenRunStore:
    def test_caches_per_test_case(self, test_cases):
        store = GoldenRunStore(lambda tc: ArrestmentSimulator(tc))
        first = store.get(test_cases[0])
        second = store.get(test_cases[0])
        assert first is second
        assert len(store) == 1

    def test_golden_run_completes(self, test_cases):
        store = GoldenRunStore(lambda tc: ArrestmentSimulator(tc))
        golden = store.get(test_cases[0])
        assert golden.completion_tick > 0
        assert not golden.result.verdict.failed

    def test_preload(self, test_cases):
        store = GoldenRunStore(lambda tc: ArrestmentSimulator(tc))
        store.preload(test_cases[:2])
        assert len(store) == 2

    def test_failing_golden_run_rejected(self, test_cases):
        def broken_factory(tc):
            sim = ArrestmentSimulator(tc, timeout_s=0.05)
            return sim

        store = GoldenRunStore(broken_factory)
        with pytest.raises(CampaignError):
            store.get(test_cases[0])


class TestFirstOutputDifferences:
    IN_PORTS = ("a", "b")
    OUT_PORTS = ("y", "z")

    def test_no_difference(self):
        stream = [(0, (1, 2), (3, 4)), (1, (1, 2), (3, 4))]
        assert first_output_differences(
            stream, list(stream), self.IN_PORTS, self.OUT_PORTS, "a"
        ) == {}

    def test_direct_difference_detected(self):
        golden = [(0, (1, 2), (3, 4)), (20, (1, 2), (3, 4))]
        injected = [(0, (9, 2), (5, 4)), (20, (1, 2), (3, 4))]
        diffs = first_output_differences(
            golden, injected, self.IN_PORTS, self.OUT_PORTS, "a"
        )
        assert set(diffs) == {"y"}
        assert diffs["y"].direct
        assert diffs["y"].invocation_index == 0
        assert diffs["y"].tick == 0

    def test_indirect_difference_flagged(self):
        """Output differs while ANOTHER input is already disturbed ->
        the error came back around a loop: not direct."""
        golden = [(0, (1, 2), (3, 4)), (20, (1, 2), (3, 4))]
        injected = [(0, (9, 2), (3, 4)), (20, (1, 7), (3, 9))]
        diffs = first_output_differences(
            golden, injected, self.IN_PORTS, self.OUT_PORTS, "a"
        )
        assert not diffs["z"].direct

    def test_only_first_difference_per_output(self):
        golden = [(0, (1, 2), (3, 4)), (20, (1, 2), (3, 4))]
        injected = [(0, (9, 2), (5, 4)), (20, (9, 2), (6, 4))]
        diffs = first_output_differences(
            golden, injected, self.IN_PORTS, self.OUT_PORTS, "a"
        )
        assert diffs["y"].invocation_index == 0

    def test_later_state_mediated_difference_is_direct(self):
        """Inputs back to normal but state carries the error: still a
        direct consequence of the injected input."""
        golden = [(0, (1, 2), (3, 4)), (20, (1, 2), (3, 4))]
        injected = [(0, (9, 2), (3, 4)), (20, (1, 2), (8, 4))]
        diffs = first_output_differences(
            golden, injected, self.IN_PORTS, self.OUT_PORTS, "a"
        )
        assert diffs["y"].direct

    def test_unknown_injected_port_rejected(self):
        with pytest.raises(CampaignError):
            first_output_differences(
                [], [], self.IN_PORTS, self.OUT_PORTS, "nope"
            )

    def test_stream_length_mismatch_truncates(self):
        golden = [(0, (1, 2), (3, 4)), (20, (1, 2), (3, 4))]
        injected = [(0, (1, 2), (3, 4))]
        assert first_output_differences(
            golden, injected, self.IN_PORTS, self.OUT_PORTS, "a"
        ) == {}
