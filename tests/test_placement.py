"""Unit tests for repro.core.placement — checked against the paper's sets."""

import pytest

from repro.core.criticality import OutputCriticalities
from repro.core.placement import (
    PolicyLimits,
    check_policy,
    default_guardable,
    eh_placement,
    extended_placement,
    pa_placement,
)
from repro.errors import PlacementError
from repro.experiments.paper_data import PAPER_EH_SET, PAPER_PA_SET
from repro.model.signal import SignalSpec, SignalType


class TestGuardable:
    def test_booleans_not_guardable(self):
        assert not default_guardable(
            SignalSpec("b", SignalType.BOOL, width=8)
        )

    def test_numerics_guardable(self):
        assert default_guardable(SignalSpec("x", SignalType.UINT))
        assert default_guardable(SignalSpec("x", SignalType.INT))


class TestEHPlacement:
    def test_reproduces_paper_eh_set(self, system):
        result = eh_placement(system)
        assert set(result.selected) == set(PAPER_EH_SET)

    def test_booleans_rejected_with_motivation(self, system):
        result = eh_placement(system)
        decision = result.decision_for("slow_speed")
        assert not decision.selected
        assert "boolean" in decision.motivation

    def test_system_boundary_signals_rejected(self, system):
        result = eh_placement(system)
        assert not result.decision_for("PACNT").selected
        assert not result.decision_for("TOC2").selected

    def test_every_signal_has_a_decision(self, system):
        result = eh_placement(system)
        assert len(result.decisions) == len(system.signal_names())


class TestPAPlacement:
    def test_reproduces_paper_pa_set(self, matrix, graph):
        result = pa_placement(matrix, graph)
        assert set(result.selected) == set(PAPER_PA_SET)

    def test_pa_is_subset_of_eh(self, system, matrix, graph):
        pa = pa_placement(matrix, graph)
        eh = eh_placement(system)
        assert pa.is_subset_of(eh)

    def test_ms_slot_nbr_motivation(self, matrix, graph):
        decision = pa_placement(matrix, graph).decision_for("ms_slot_nbr")
        assert not decision.selected
        assert "Zero error permeability to mscnt" in decision.motivation

    def test_toc2_motivation(self, matrix, graph):
        decision = pa_placement(matrix, graph).decision_for("TOC2")
        assert not decision.selected
        assert "OutValue" in decision.motivation

    def test_zero_exposure_motivation(self, matrix, graph):
        decision = pa_placement(matrix, graph).decision_for("mscnt")
        assert decision.motivation == "Zero error exposure"

    def test_threshold_must_be_positive(self, matrix, graph):
        with pytest.raises(PlacementError):
            pa_placement(matrix, graph, exposure_threshold=0.0)

    def test_high_threshold_selects_fewer(self, matrix, graph):
        strict = pa_placement(matrix, graph, exposure_threshold=1.6)
        assert set(strict.selected) == {"OutValue"}

    def test_render_mentions_selection(self, matrix, graph):
        text = pa_placement(matrix, graph).render()
        assert "High error exposure" in text
        assert "pulscnt" in text


class TestExtendedPlacement:
    def test_reproduces_paper_section10(self, matrix, graph):
        result = extended_placement(
            matrix, graph, impact_threshold=0.10, output="TOC2",
            memory_error_model=True, self_permeability_threshold=0.8,
        )
        assert set(result.selected) == set(PAPER_EH_SET)

    def test_without_memory_model_ms_slot_nbr_stays_out(self, matrix, graph):
        result = extended_placement(
            matrix, graph, impact_threshold=0.10, output="TOC2",
            memory_error_model=False,
        )
        assert "ms_slot_nbr" not in result.selected
        assert {"IsValue", "mscnt"} <= set(result.selected)

    def test_slow_speed_rejected_as_boolean(self, matrix, graph):
        result = extended_placement(
            matrix, graph, impact_threshold=0.10, output="TOC2",
        )
        decision = result.decision_for("slow_speed")
        assert not decision.selected
        assert "boolean" in decision.motivation
        assert decision.impact == pytest.approx(0.691, abs=1e-3)

    def test_criticality_variant_single_output(self, matrix, graph):
        oc = OutputCriticalities(graph, {"TOC2": 1.0})
        via_crit = extended_placement(
            matrix, graph, criticalities=oc,
            criticality_threshold=0.10, memory_error_model=True,
            self_permeability_threshold=0.8,
        )
        assert set(via_crit.selected) == set(PAPER_EH_SET)

    def test_impact_threshold_positive(self, matrix, graph):
        with pytest.raises(PlacementError):
            extended_placement(matrix, graph, impact_threshold=0.0)

    def test_keeps_pa_selection(self, matrix, graph):
        result = extended_placement(matrix, graph)
        assert set(PAPER_PA_SET) <= set(result.selected)


class TestPolicy:
    def test_no_limits_no_violations(self, matrix, graph):
        assert check_policy(matrix, graph, PolicyLimits()) == []

    def test_permeability_limit(self, matrix, graph):
        violations = check_policy(
            matrix, graph, PolicyLimits(max_permeability=0.95)
        )
        locations = {v.location for v in violations}
        assert "P^CLOCK_{1,1}" in locations
        assert "P^CALC_{1,1}" in locations
        assert all(v.kind == "permeability" for v in violations)

    def test_exposure_limit(self, matrix, graph):
        violations = check_policy(
            matrix, graph, PolicyLimits(max_exposure=1.5)
        )
        assert {v.location for v in violations} == {"OutValue", "i"}

    def test_impact_limit(self, matrix, graph):
        violations = check_policy(
            matrix, graph, PolicyLimits(max_impact=0.8), output="TOC2"
        )
        assert {v.location for v in violations} == {"OutValue"}

    def test_violation_describe(self, matrix, graph):
        violation = check_policy(
            matrix, graph, PolicyLimits(max_exposure=1.7)
        )[0]
        text = violation.describe()
        assert "exceeds" in text and "OutValue" in text


class TestPlacementResult:
    def test_decision_for_unknown_rejected(self, matrix, graph):
        result = pa_placement(matrix, graph)
        with pytest.raises(PlacementError):
            result.decision_for("nope")

    def test_rejected_complements_selected(self, matrix, graph):
        result = pa_placement(matrix, graph)
        assert set(result.selected).isdisjoint(result.rejected)
        assert len(result.selected) + len(result.rejected) == len(
            result.decisions
        )
