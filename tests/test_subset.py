"""Tests for cost-optimal EA subset selection (paper ref [18])."""

import pytest

from repro.edm.subset import (
    fired_sets_of,
    marginal_coverages,
    overlap_matrix,
    select_subset,
)
from repro.errors import AnalysisError

EAS = ("EA1", "EA4", "EA7")


def runs(*sets):
    return [frozenset(s) for s in sets]


class TestOverlapMatrix:
    def test_diagonal_one_when_firing(self):
        matrix = overlap_matrix(runs({"EA1"}, {"EA1", "EA4"}), EAS)
        assert matrix[("EA1", "EA1")] == 1.0

    def test_silent_ea_all_zero(self):
        matrix = overlap_matrix(runs({"EA1"}), EAS)
        assert matrix[("EA7", "EA7")] == 0.0
        assert matrix[("EA7", "EA1")] == 0.0

    def test_dominance_shows_as_full_overlap(self):
        """Paper Table 4: every EA1 detection was also an EA4
        detection -> overlap(EA1 -> EA4) = 1.0, but not vice versa."""
        fired = runs({"EA1", "EA4"}, {"EA1", "EA4"}, {"EA4"})
        matrix = overlap_matrix(fired, EAS)
        assert matrix[("EA1", "EA4")] == 1.0
        assert matrix[("EA4", "EA1")] == pytest.approx(2 / 3)

    def test_asymmetry(self):
        fired = runs({"EA1"}, {"EA1", "EA7"})
        matrix = overlap_matrix(fired, EAS)
        assert matrix[("EA7", "EA1")] == 1.0
        assert matrix[("EA1", "EA7")] == 0.5


class TestMarginalCoverages:
    def test_exclusive_detections_counted(self):
        fired = runs({"EA1"}, {"EA1", "EA4"}, {"EA4"}, set())
        marginal = marginal_coverages(fired, EAS)
        assert marginal["EA1"] == 0.25
        assert marginal["EA4"] == 0.25
        assert marginal["EA7"] == 0.0

    def test_empty_runs(self):
        assert marginal_coverages([], EAS) == {
            "EA1": 0.0, "EA4": 0.0, "EA7": 0.0,
        }


class TestSelectSubset:
    def test_dominant_ea_selected_alone(self):
        """When one EA covers everything the others cover, greedy
        selection picks just that one (the paper's EA4 situation)."""
        fired = runs(
            {"EA1", "EA4"}, {"EA2", "EA4"}, {"EA4"}, {"EA4", "EA7"}, set(),
        )
        selection = select_subset(
            fired, ["EA1", "EA2", "EA4", "EA7"],
        )
        assert selection.selected == ["EA4"]
        assert selection.coverage == selection.full_coverage == 0.8
        assert selection.cost_saving > 0.5

    def test_complementary_eas_both_selected(self):
        fired = runs({"EA1"}, {"EA7"}, {"EA1"}, {"EA7"})
        selection = select_subset(fired, ["EA1", "EA7"])
        assert set(selection.selected) == {"EA1", "EA7"}
        assert selection.coverage == 1.0

    def test_cost_breaks_ties(self):
        # EA4 (38 bytes) and EA1 (64 bytes) detect the same runs:
        # the cheaper one wins
        fired = runs({"EA1", "EA4"}, {"EA1", "EA4"})
        selection = select_subset(fired, ["EA1", "EA4"])
        assert selection.selected == ["EA4"]

    def test_coverage_target_stops_early(self):
        fired = runs({"EA4"}, {"EA4"}, {"EA4"}, {"EA1"})
        selection = select_subset(
            fired, ["EA1", "EA4"], coverage_target=0.75,
        )
        assert selection.selected == ["EA4"]
        assert selection.coverage == 0.75

    def test_explicit_costs(self):
        fired = runs({"A", "B"}, {"A", "B"})
        selection = select_subset(
            fired, ["A", "B"], costs={"A": 10, "B": 100},
        )
        assert selection.selected == ["A"]

    def test_missing_cost_rejected(self):
        with pytest.raises(AnalysisError, match="cost"):
            select_subset(runs({"X"}), ["X"])
        with pytest.raises(AnalysisError, match="no cost"):
            select_subset(runs({"X"}), ["X"], costs={"Y": 1})

    def test_bad_target_rejected(self):
        with pytest.raises(AnalysisError):
            select_subset(runs({"EA4"}), ["EA4"], coverage_target=1.5)

    def test_render(self):
        fired = runs({"EA4"}, {"EA1"})
        text = select_subset(fired, ["EA1", "EA4"]).render()
        assert "greedy" in text and "EA4" in text


class TestOnCampaignResults:
    def test_fired_sets_extraction(self, ctx):
        detection_sets = fired_sets_of(ctx.detection_result())
        memory_sets = fired_sets_of(ctx.memory_result())
        assert all(isinstance(s, frozenset) for s in detection_sets)
        assert len(memory_sets) == len(ctx.memory_result().records)

    def test_unknown_result_rejected(self):
        with pytest.raises(AnalysisError):
            fired_sets_of(42)

    def test_subset_on_memory_campaign(self, ctx):
        result = ctx.memory_result()
        selection = select_subset(
            fired_sets_of(result), result.ea_names,
        )
        # the greedy subset reaches the full bank's coverage
        assert selection.coverage == pytest.approx(
            selection.full_coverage
        )
        assert selection.cost_bytes <= selection.full_cost_bytes

    def test_ea4_dominates_input_model(self, ctx):
        """The paper's Table-4 observation as a subset-selection fact:
        under the input error model EA4 alone suffices."""
        result = ctx.detection_result()
        fired = fired_sets_of(result)
        detected = [f for f in fired if f]
        if detected:  # at test scale there are a few detections
            selection = select_subset(fired, result.ea_names)
            assert selection.selected == ["EA4"]
