"""Tests for the result-integrity layer (``repro.fi.integrity``).

The contract under test: silent corruption of campaign artefacts —
checkpoint records tampered at rest, saved result files flipped on
disk, fast-forward state drifting from a full replay, pool workers
computing different goldens than the parent — is *detected* (strict
aborts with :class:`IntegrityError`) or *repaired* (results converge
bit-identically to a trusted full recomputation), never silently
merged into the paper's numbers.
"""

import json
import math

import pytest

from repro.edm.catalogue import EA_BY_NAME
from repro.errors import CampaignError, IntegrityError
from repro.fi import (
    CampaignConfig,
    CampaignExecutor,
    DetectionCampaign,
    IntegrityViolation,
    RunAuditor,
    canonical_digest,
    field_diff,
    fingerprint_of,
    run_digest,
    save_json,
    load_json,
)
from repro.fi.snapshot import checkpoint_cache
from repro.target.simulation import ArrestmentSimulator


def factory(tc):
    return ArrestmentSimulator(tc)


@pytest.fixture(scope="module")
def two_cases(test_cases):
    return [test_cases[4], test_cases[20]]


def _fast_config(**kwargs):
    kwargs.setdefault("retry_backoff_s", 0.0)
    return CampaignConfig(**kwargs)


def detection(two_cases, **kwargs):
    config = kwargs.pop("config", None)
    return DetectionCampaign(
        factory, two_cases, list(EA_BY_NAME.values()),
        runs_per_signal=4, targets=["ADC", "PACNT"], seed=7,
        config=config, **kwargs,
    )


# ======================================================================
# Canonical content digests.
# ======================================================================
class TestCanonicalDigest:
    def test_deterministic_and_key_order_free(self):
        a = {"x": [1, 2.5, "s"], "y": {"nested": True}}
        b = {"y": {"nested": True}, "x": [1, 2.5, "s"]}
        assert canonical_digest(a) == canonical_digest(b)

    def test_json_round_trip_stable(self):
        value = {"t": [0, 1, 2], "v": [0.1, -0.0, 3e9], "n": None}
        rebuilt = json.loads(json.dumps(value))
        assert canonical_digest(rebuilt) == canonical_digest(value)

    def test_type_distinctions(self):
        assert canonical_digest(1) != canonical_digest(1.0)
        assert canonical_digest(True) != canonical_digest(1)
        assert canonical_digest(0.0) != canonical_digest(-0.0)
        assert canonical_digest("1") != canonical_digest(1)
        assert canonical_digest([]) != canonical_digest({})

    def test_all_nans_collapse(self):
        quiet = float("nan")
        negated = -quiet
        assert canonical_digest(quiet) == canonical_digest(negated)
        assert canonical_digest(math.inf) != canonical_digest(quiet)

    def test_tuples_digest_like_lists(self):
        assert canonical_digest((1, 2)) == canonical_digest([1, 2])

    def test_sets_are_order_free(self):
        assert canonical_digest({3, 1, 2}) == canonical_digest({2, 3, 1})

    def test_undigestable_raises(self):
        with pytest.raises(IntegrityError):
            canonical_digest(object())

    def test_perturbation_changes_digest(self):
        base = {"traces": {"s": [[0, 1], [0.5, 0.25]]}}
        poked = {"traces": {"s": [[0, 1], [0.5, 0.250001]]}}
        assert canonical_digest(base) != canonical_digest(poked)


class TestFieldDiff:
    def test_equal_is_none(self):
        value = {"a": [1, 2.0, None], "b": {"c": "x"}}
        assert field_diff(value, json.loads(json.dumps(value))) is None

    def test_nested_location(self):
        assert field_diff({"x": [1, 2, 3]}, {"x": [1, 2, 4]}) == \
            "$.x[2]: expected 3, observed 4"

    def test_key_set_mismatch(self):
        diff = field_diff({"a": 1}, {"a": 1, "b": 2})
        assert diff is not None and "$" in diff

    def test_float_bits(self):
        assert field_diff([0.0], [-0.0]) is not None
        assert field_diff([float("nan")], [float("nan")]) is None

    def test_length_mismatch(self):
        assert field_diff([1, 2], [1]) is not None


class TestRunDigest:
    def test_stable_across_recomputation(self, mid_case):
        assert run_digest(ArrestmentSimulator(mid_case).run()) == \
            run_digest(ArrestmentSimulator(mid_case).run())

    def test_differs_between_cases(self, test_cases):
        assert run_digest(ArrestmentSimulator(test_cases[4]).run()) != \
            run_digest(ArrestmentSimulator(test_cases[20]).run())

    def test_golden_run_digest(self, two_cases):
        from repro.fi.golden import GoldenRunStore

        golden = GoldenRunStore(factory).get(two_cases[0])
        assert golden.digest() == run_digest(golden.result)


# ======================================================================
# Config plumbing.
# ======================================================================
class TestIntegrityConfig:
    def test_defaults(self):
        config = CampaignConfig()
        assert config.audit_fraction == 0.0
        assert config.audit_seed is None
        assert config.integrity_policy == "repair"

    def test_validation(self):
        with pytest.raises(CampaignError):
            CampaignConfig(audit_fraction=-0.1)
        with pytest.raises(CampaignError):
            CampaignConfig(audit_fraction=1.5)
        with pytest.raises(CampaignError):
            CampaignConfig(integrity_policy="paranoid")

    class _StubFF:
        enabled = True

    def test_sampling_deterministic(self):
        auditor = RunAuditor(
            self._StubFF(), CampaignConfig(audit_fraction=0.5, audit_seed=11)
        )
        again = RunAuditor(
            self._StubFF(), CampaignConfig(audit_fraction=0.5, audit_seed=11)
        )
        picks = [auditor.should_audit(i) for i in range(200)]
        assert picks == [again.should_audit(i) for i in range(200)]
        assert 40 < sum(picks) < 160  # roughly half, deterministic

    def test_sampling_extremes(self):
        none = RunAuditor(self._StubFF(), CampaignConfig(audit_fraction=0.0))
        every = RunAuditor(self._StubFF(), CampaignConfig(audit_fraction=1.0))
        assert not any(none.should_audit(i) for i in range(50))
        assert all(every.should_audit(i) for i in range(50))


# ======================================================================
# Checkpoint record digests.
# ======================================================================
class TestCheckpointDigests:
    def _run(self, path, **kwargs):
        config = _fast_config(
            checkpoint_path=str(path), checkpoint_every=1, **kwargs
        )
        executor = CampaignExecutor(config, campaign="unit")
        results = executor.run_tasks(lambda i: {"v": i * 2}, 4, "fp")
        return executor, results

    def _tamper(self, path, index="2", value=None):
        payload = json.loads(path.read_text())
        payload["results"][index] = value if value is not None else {"v": 99}
        path.write_text(json.dumps(payload))
        return payload

    def test_digests_written(self, tmp_path):
        path = tmp_path / "cp.json"
        self._run(path)
        payload = json.loads(path.read_text())
        assert set(payload["digests"]) == {"0", "1", "2", "3"}
        assert payload["digests"]["1"] == canonical_digest({"v": 2})

    def test_repair_reexecutes_tampered_record(self, tmp_path):
        path = tmp_path / "cp.json"
        self._run(path)
        self._tamper(path)
        executor, results = self._run(path, integrity_policy="repair")
        assert results == [{"v": 0}, {"v": 2}, {"v": 4}, {"v": 6}]
        assert executor.telemetry.checkpoint_rejects == 1
        assert executor.telemetry.resumed_runs == 3
        assert [v.kind for v in executor.violations] == ["checkpoint_digest"]

    def test_strict_raises_on_tampered_record(self, tmp_path):
        path = tmp_path / "cp.json"
        self._run(path)
        self._tamper(path)
        executor = CampaignExecutor(
            _fast_config(
                checkpoint_path=str(path), integrity_policy="strict"
            ),
            campaign="unit",
        )
        with pytest.raises(IntegrityError):
            executor.run_tasks(lambda i: {"v": i * 2}, 4, "fp")

    def test_off_merges_unverified(self, tmp_path):
        path = tmp_path / "cp.json"
        self._run(path)
        self._tamper(path)
        _, results = self._run(path, integrity_policy="off")
        assert results[2] == {"v": 99}  # corruption silently accepted

    def test_pre_digest_checkpoint_resumes(self, tmp_path):
        path = tmp_path / "cp.json"
        path.write_text(json.dumps({
            "campaign": "unit", "fingerprint": "fp", "n_tasks": 3,
            "results": {"0": {"v": 0}, "1": {"v": 2}},
        }))
        executor, results = self._run(path)
        assert results == [{"v": 0}, {"v": 2}, {"v": 4}, {"v": 6}]
        assert executor.telemetry.checkpoint_rejects == 0


# ======================================================================
# Saved campaign files.
# ======================================================================
class TestSaveLoadDigest:
    @pytest.fixture(scope="class")
    def result(self, two_cases):
        return detection(two_cases).run()

    def test_round_trip_verified(self, result, tmp_path):
        path = save_json(result, tmp_path / "detection.json")
        data = json.loads(path.read_text())
        assert "digest" in data
        assert load_json(path) == result

    def test_tampered_file_raises(self, result, tmp_path):
        path = save_json(result, tmp_path / "detection.json")
        data = json.loads(path.read_text())
        data["n_err"] = {k: v + 1 for k, v in data["n_err"].items()}
        path.write_text(json.dumps(data))
        with pytest.raises(IntegrityError):
            load_json(path)

    def test_pre_digest_file_loads(self, result, tmp_path):
        path = save_json(result, tmp_path / "detection.json")
        data = json.loads(path.read_text())
        del data["digest"]
        path.write_text(json.dumps(data))
        assert load_json(path) == result


# ======================================================================
# Sampled audit replay (with the chaos fast-forward corruptor).
# ======================================================================
class TestAuditReplay:
    @pytest.fixture(autouse=True)
    def fresh_checkpoint_cache(self):
        checkpoint_cache.clear()
        yield
        checkpoint_cache.clear()

    def test_clean_audit_passes_and_preserves_results(self, two_cases):
        plain = detection(two_cases).run()
        campaign = detection(
            two_cases,
            config=_fast_config(
                audit_fraction=1.0, integrity_policy="strict"
            ),
        )
        assert campaign.run() == plain
        assert campaign.telemetry.audits > 0
        assert campaign.telemetry.audit_mismatches == 0
        assert campaign.integrity_violations == []

    def test_strict_detects_corrupted_fast_forward(
        self, monkeypatch, two_cases
    ):
        monkeypatch.setenv("REPRO_CHAOS_CORRUPT_FF_RESTORE", "all")
        campaign = detection(
            two_cases,
            config=_fast_config(
                audit_fraction=1.0, integrity_policy="strict"
            ),
        )
        with pytest.raises(IntegrityError):
            campaign.run()

    def test_repair_converges_to_full_replay(self, monkeypatch, two_cases):
        trusted = detection(
            two_cases, config=_fast_config(fast_forward=False)
        ).run()
        monkeypatch.setenv("REPRO_CHAOS_CORRUPT_FF_RESTORE", "all")
        campaign = detection(
            two_cases,
            config=_fast_config(
                audit_fraction=1.0, integrity_policy="repair"
            ),
        )
        repaired = campaign.run()
        assert repaired == trusted
        telemetry = campaign.telemetry
        assert telemetry.audits > 0
        assert telemetry.audit_mismatches > 0
        assert telemetry.audit_repairs == telemetry.audit_mismatches
        assert campaign.integrity_violations
        violation = campaign.integrity_violations[0]
        assert violation.kind == "audit_mismatch"
        assert violation.campaign == "detection"
        assert "integrity" in telemetry.render()

    def test_violations_and_counters_reach_event_log(
        self, monkeypatch, tmp_path, two_cases
    ):
        log = tmp_path / "events.jsonl"
        monkeypatch.setenv("REPRO_CHAOS_CORRUPT_FF_RESTORE", "all")
        monkeypatch.setenv("REPRO_EVENT_LOG_FSYNC", "1")
        detection(
            two_cases,
            config=_fast_config(
                audit_fraction=1.0, integrity_policy="repair",
                event_log_path=str(log),
            ),
        ).run()
        events = [json.loads(line) for line in log.read_text().splitlines()]
        kinds = {event["event"] for event in events}
        assert "integrity_violation" in kinds
        run_end = [e for e in events if e["event"] == "run_end"][-1]
        assert run_end["audit_mismatches"] > 0
        assert run_end["violations"] > 0

    def test_violation_json_round_trip(self):
        violation = IntegrityViolation(
            kind="audit_mismatch", campaign="detection", index=3,
            detail="$.x: expected 1, observed 2",
        )
        rebuilt = IntegrityViolation.from_json(violation.to_json())
        assert rebuilt == violation
        assert "audit_mismatch" in violation.describe()


# ======================================================================
# Worker drift sentinels.
# ======================================================================
class TestDriftSentinel:
    def test_drifted_pool_degrades_and_stays_correct(
        self, monkeypatch, two_cases
    ):
        plain = detection(two_cases).run()
        monkeypatch.setenv("REPRO_CHAOS_DRIFT_WORKER", "1")
        campaign = detection(
            two_cases,
            config=_fast_config(jobs=2, max_pool_respawns=0),
        )
        assert campaign.run() == plain
        telemetry = campaign.telemetry
        if telemetry.backend == "serial":
            pytest.skip("fork unavailable: no pool to drift")
        assert telemetry.drift_events > 0
        assert telemetry.degraded
        assert any(
            v.kind == "worker_drift" for v in campaign.integrity_violations
        )

    def test_policy_off_skips_sentinel(self, monkeypatch, two_cases):
        monkeypatch.setenv("REPRO_CHAOS_DRIFT_WORKER", "1")
        campaign = detection(
            two_cases,
            config=_fast_config(
                jobs=2, max_pool_respawns=0, integrity_policy="off"
            ),
        )
        campaign.run()
        assert campaign.telemetry.drift_events == 0
        assert not campaign.telemetry.degraded


# ======================================================================
# Fingerprint salting.
# ======================================================================
class TestFingerprintSalt:
    def test_version_change_invalidates_checkpoints(self, monkeypatch):
        before = fingerprint_of("campaign", 7)
        monkeypatch.setattr("repro.__version__", "0.0.0-test")
        assert fingerprint_of("campaign", 7) != before

    def test_stable_within_a_version(self):
        assert fingerprint_of("campaign", 7) == fingerprint_of("campaign", 7)
        assert fingerprint_of("campaign", 7) != fingerprint_of("campaign", 8)
