"""Unit tests for the EA catalogue, cost model and monitor bank."""

import pytest

from repro.edm.assertions import EAKind
from repro.edm.catalogue import (
    EA_BY_NAME,
    EA_BY_SIGNAL,
    EH_SET,
    EXTENDED_SET,
    PA_SET,
    assertion_names_for_signals,
    assertions_for_signals,
)
from repro.edm.cost import compare_costs, cost_of_signals
from repro.edm.monitors import MonitorBank
from repro.errors import AssertionSpecError
from repro.experiments.paper_data import (
    PAPER_TABLE3_EA_COSTS,
    PAPER_TABLE3_TOTALS,
)
from repro.target.simulation import ArrestmentSimulator


class TestCatalogue:
    def test_seven_assertions(self):
        assert sorted(EA_BY_NAME) == [f"EA{i}" for i in range(1, 8)]

    @pytest.mark.parametrize("name", sorted(EA_BY_NAME))
    def test_costs_match_paper_table3(self, name):
        rom, ram = PAPER_TABLE3_EA_COSTS[name]
        assert EA_BY_NAME[name].rom_bytes == rom
        assert EA_BY_NAME[name].ram_bytes == ram

    def test_signals_unique(self):
        signals = [spec.signal for spec in EA_BY_NAME.values()]
        assert len(set(signals)) == len(signals)

    def test_paper_set_membership(self):
        assert set(PA_SET) < set(EH_SET)
        assert set(EXTENDED_SET) == set(EH_SET)

    def test_assertions_for_signals(self):
        specs = assertions_for_signals(PA_SET)
        assert {s.name for s in specs} == {"EA1", "EA3", "EA4", "EA7"}

    def test_unknown_signal_rejected(self):
        with pytest.raises(AssertionSpecError, match="slow_speed"):
            assertions_for_signals(["slow_speed"])

    def test_counter_assertions_are_sequences(self):
        assert EA_BY_SIGNAL["mscnt"].kind is EAKind.SEQUENCE
        assert EA_BY_SIGNAL["ms_slot_nbr"].kind is EAKind.SEQUENCE

    def test_accumulator_assertions_are_monotonic(self):
        assert EA_BY_SIGNAL["pulscnt"].kind is EAKind.MONOTONIC
        assert EA_BY_SIGNAL["i"].kind is EAKind.MONOTONIC


class TestCosts:
    def test_eh_totals_match_paper(self):
        cost = cost_of_signals(EH_SET)
        assert (cost.rom_bytes, cost.ram_bytes) == PAPER_TABLE3_TOTALS["EH"]

    def test_pa_totals_match_paper(self):
        cost = cost_of_signals(PA_SET)
        assert (cost.rom_bytes, cost.ram_bytes) == PAPER_TABLE3_TOTALS["PA"]

    def test_memory_saving_about_40_percent(self):
        savings = compare_costs(cost_of_signals(EH_SET), cost_of_signals(PA_SET))
        assert 0.35 <= savings["memory_saving"] <= 0.50

    def test_execution_saving_tracks_ea_count(self):
        savings = compare_costs(cost_of_signals(EH_SET), cost_of_signals(PA_SET))
        assert savings["execution_saving"] == pytest.approx(3 / 7)

    def test_relative_execution_overhead(self):
        eh = cost_of_signals(EH_SET)
        pa = cost_of_signals(PA_SET)
        assert pa.execution_overhead_relative_to(eh) == pytest.approx(4 / 7)


class TestMonitorBank:
    def test_duplicate_names_rejected(self):
        spec = EA_BY_NAME["EA1"]
        with pytest.raises(AssertionSpecError):
            MonitorBank([spec, spec])

    def test_bad_period_rejected(self):
        with pytest.raises(AssertionSpecError):
            MonitorBank([EA_BY_NAME["EA1"]], period=0)

    def test_unknown_signal_rejected_at_attach(self, mid_case):
        from repro.edm.assertions import AssertionSpec

        bank = MonitorBank([
            AssertionSpec("X", "ghost", EAKind.BOOLEAN)
        ])
        with pytest.raises(AssertionSpecError, match="ghost"):
            bank.attach(ArrestmentSimulator(mid_case))

    def test_silent_on_golden_run(self, mid_case):
        sim = ArrestmentSimulator(mid_case)
        bank = MonitorBank(list(EA_BY_NAME.values())).attach(sim)
        sim.run()
        records = bank.records()
        assert len(records) == 7
        assert not any(r.fired for r in records.values())
        assert not bank.any_fired()

    def test_fired_eas_filters_by_tick(self, mid_case):
        sim = ArrestmentSimulator(mid_case)
        bank = MonitorBank(list(EA_BY_NAME.values())).attach(sim)
        # corrupt pulscnt's backing store right before an EA slot (the
        # producer would rewrite it within the next cycle otherwise)
        def corrupt(tick):
            if tick == 1018:
                sim.executor.store.poke("pulscnt", 60000)
        sim.add_pre_tick(corrupt)
        sim.run()
        assert "EA4" in bank.fired_eas()
        assert "EA4" in bank.fired_eas(after_tick=500)
        assert bank.any_fired({"EA4"})
        assert not bank.any_fired({"EA6"})

    def test_state_lookup(self):
        bank = MonitorBank([EA_BY_NAME["EA1"]])
        assert bank.state("EA1").spec.signal == "SetValue"
        with pytest.raises(AssertionSpecError):
            bank.state("EA9")
