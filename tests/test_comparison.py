"""Tests for repro.fi.comparison (propagation timelines)."""

import pytest

from repro.errors import AnalysisError
from repro.fi.comparison import (
    PropagationTimeline,
    SignalDivergence,
    compare_runs,
)
from repro.fi.injector import FaultInjector
from repro.fi.models import InputSignalFlip, PeriodicMemoryFlip
from repro.target.simulation import ArrestmentSimulator, SignalTraces


class TestTimelineBasics:
    def test_identical_runs_empty_timeline(self, mid_case, golden_result):
        again = ArrestmentSimulator(mid_case).run()
        timeline = compare_runs(golden_result.traces, again.traces)
        assert not timeline
        assert len(timeline) == 0
        assert timeline.first() is None
        assert "identical" in timeline.render()

    def test_duplicate_signal_rejected(self):
        d = SignalDivergence("s", 0, 1, 2)
        with pytest.raises(AnalysisError):
            PropagationTimeline([d, d])

    def test_sorted_by_tick(self):
        timeline = PropagationTimeline([
            SignalDivergence("b", 20, 0, 1),
            SignalDivergence("a", 5, 0, 1),
        ])
        assert timeline.order() == ["a", "b"]
        assert timeline.first().signal == "a"

    def test_value_extraction(self):
        golden, injected = SignalTraces(), SignalTraces()
        golden.record("s", 0, 10)
        golden.record("s", 5, 11)
        injected.record("s", 0, 10)
        injected.record("s", 5, 99)
        timeline = compare_runs(golden, injected)
        divergence = timeline.divergence_of("s")
        assert divergence.tick == 5
        assert divergence.golden_value == 11
        assert divergence.injected_value == 99


class TestTimelineOnTarget:
    @pytest.fixture(scope="class")
    def pacnt_timeline(self, mid_case, golden_result):
        sim = ArrestmentSimulator(mid_case)
        FaultInjector(InputSignalFlip("PACNT", 1000, 7)).attach(sim)
        result = sim.run()
        return compare_runs(golden_result.traces, result.traces)

    def test_injection_point_diverges_first(self, pacnt_timeline):
        assert pacnt_timeline.first().signal == "PACNT"
        # the trace records the sensor refresh of each tick *before*
        # the injection hook runs, so the corrupted register value is
        # first traced at the refresh of the following tick
        assert pacnt_timeline.first().tick == 1001

    def test_propagation_order_follows_graph(
        self, pacnt_timeline, graph
    ):
        """pulscnt must diverge no later than i/SetValue etc."""
        assert pacnt_timeline.consistent_with(graph, origin="PACNT") == []
        order = pacnt_timeline.order()
        assert order.index("PACNT") < order.index("pulscnt")

    def test_pulscnt_diverges(self, pacnt_timeline):
        # the persistent counter corruption always reaches pulscnt;
        # whether it reaches TOC2 depends on the flat pressure table
        assert pacnt_timeline.diverged("pulscnt")

    def test_capture_corruption_stays_local(
        self, mid_case, golden_result, graph
    ):
        """A TIC1 flip diverges TIC1 itself and nothing downstream."""
        sim = ArrestmentSimulator(mid_case)
        FaultInjector(InputSignalFlip("TIC1", 1000, 12)).attach(sim)
        result = sim.run()
        timeline = compare_runs(golden_result.traces, result.traces)
        assert timeline.order() == ["TIC1"]
        assert not timeline.reached_output(graph)

    def test_memory_corruption_timeline_consistent(
        self, mid_case, golden_result, graph, system
    ):
        from repro.fi.memory import CellKind, MemoryMap

        loc = next(
            l for l in MemoryMap(system).locations()
            if l.cell == "SetValue" and l.kind is CellKind.SIGNAL
            and l.byte_offset == 1
        )
        sim = ArrestmentSimulator(mid_case)
        FaultInjector(
            PeriodicMemoryFlip(loc, 6, period_ticks=20, start_tick=7)
        ).attach(sim)
        result = sim.run()
        timeline = compare_runs(golden_result.traces, result.traces)
        # the corrupted store reaches the regulator and the output
        assert timeline.diverged("OutValue")
        assert timeline.reached_output(graph)
        # the store corruption is the origin: everything else must be
        # explained by graph predecessors (the origin's own write
        # trace never diverges — CALC recomputes it from state)
        assert timeline.consistent_with(graph, origin="SetValue") == []
