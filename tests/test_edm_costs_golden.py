"""Golden-file regression of the Table 3 EA cost catalogue.

The placement solver's budgets, the dominance metric and the paper's
ROM/RAM overhead comparison all price EAs off these numbers, so a
drive-by edit to the catalogue would silently re-weight every solved
placement.  The golden file is transcribed from the published paper
(Table 3) and must only ever change against the paper itself.
"""

import json
from pathlib import Path

import pytest

from repro.edm.catalogue import (
    EA_BY_NAME,
    EH_SET,
    PA_SET,
    assertions_for_signals,
)

GOLDEN = json.loads(
    (Path(__file__).parent / "data" / "table3_golden.json").read_text()
)


class TestPerAssertionCosts:
    def test_catalogue_names_match_the_paper(self):
        assert sorted(EA_BY_NAME) == sorted(GOLDEN["assertions"])

    @pytest.mark.parametrize("name", sorted(GOLDEN["assertions"]))
    def test_costs_and_signal_match_table3(self, name):
        golden = GOLDEN["assertions"][name]
        spec = EA_BY_NAME[name]
        assert spec.signal == golden["signal"]
        assert spec.rom_bytes == golden["rom_bytes"]
        assert spec.ram_bytes == golden["ram_bytes"]


class TestHandSetTotals:
    @pytest.mark.parametrize(
        "name,signals", [("EH", EH_SET), ("PA", PA_SET)]
    )
    def test_placement_totals_match_table3(self, name, signals):
        specs = assertions_for_signals(signals)
        golden = GOLDEN["totals"][name]
        assert sum(s.rom_bytes for s in specs) == golden["rom_bytes"]
        assert sum(s.ram_bytes for s in specs) == golden["ram_bytes"]
