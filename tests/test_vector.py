"""The vectorized batch core: bit-identical to the scalar path.

Two layers of A/B coverage: :class:`~repro.fi.vector.BatchRunner`
directly against the campaigns' scalar ``_one_run`` (fast, surgical —
including forced tick-0 dispatch divergence), and whole campaigns with
``batch_width`` on vs off (serial in the default suite, the process
backend under the ``slow`` marker).
"""

import random

import pytest

from repro.fi.campaign import (
    DetectionCampaign,
    MemoryCampaign,
    PermeabilityCampaign,
    RecoveryCampaign,
)
from repro.fi.executor import CampaignConfig
from repro.fi.memory import MemoryMap
from repro.fi.vector import BatchRunner, vector_stats, wrap_runner
from repro.edm.catalogue import EA_BY_NAME
from repro.target.simulation import ArrestmentSimulator
from repro.target.testcases import standard_test_cases
from repro.watertank.catalogue import tank_assertions
from repro.watertank.simulation import WaterTankSimulator
from repro.watertank.testcases import standard_tank_cases


def tank_factory(tc):
    return WaterTankSimulator(tc, mission_ticks=300)


def arrestment_factory(tc):
    return ArrestmentSimulator(tc, timeout_s=6.0)


@pytest.fixture(scope="module")
def tank_cases():
    return standard_tank_cases()[:2]


@pytest.fixture(scope="module")
def arrestment_cases():
    cases = standard_test_cases()
    return [cases[4], cases[20]]


def batch_vs_scalar(kind, campaign, tasks, width=16, **kwargs):
    """Outcomes of a BatchRunner over *tasks* next to the scalar
    reference, plus the vector-stats delta of the batched pass."""

    def scalar(index):
        return campaign._one_run(*tasks[index])

    runner = BatchRunner(
        kind, tasks, scalar, width, campaign.factory, **kwargs
    )
    assert runner._kernel is not None, "kernel refused the target"
    before = vector_stats.as_tuple()
    try:
        batched = [runner(i) for i in range(len(tasks))]
    finally:
        runner.close()
    delta = tuple(
        after - b for b, after in zip(before, vector_stats.as_tuple())
    )
    reference = [scalar(i) for i in range(len(tasks))]
    return batched, reference, delta


def memory_tasks(campaign, cases, count, seed):
    """Randomized ``(location, case, bit, phase)`` tuples mixing both
    test cases, the way the memory/recovery campaigns pre-draw them."""
    probe = campaign.factory(cases[0])
    locations = MemoryMap(probe.system).locations()
    rng = random.Random(seed)
    tasks = []
    for index in range(count):
        location = locations[rng.randrange(len(locations))]
        tasks.append((
            location,
            cases[index % len(cases)],
            rng.randrange(location.valid_bits),
            rng.randrange(campaign.period_ticks),
        ))
    return tasks


class TestWatertankKernel:
    def test_permeability_rows_match_scalar(self, tank_cases):
        campaign = PermeabilityCampaign(
            tank_factory, tank_cases, runs_per_input=1, seed=3
        )
        tasks = [
            ("LEVEL_S", "LVL_ADC", tank_cases[0], 40, 2),
            ("LEVEL_S", "LVL_ADC", tank_cases[1], 120, 9),
            ("LEVEL_S", "LVL_ADC", tank_cases[0], 299, 0),
            ("CTRL", "level_f", tank_cases[0], 7, 14),
            ("CTRL", "inflow_rate", tank_cases[1], 55, 3),
            ("CTRL", "ticks", tank_cases[0], 90, 1),
            ("FLOW_S", "FLOW_CNT", tank_cases[1], 33, 7),
            ("FLOW_S", "FLOW_CNT", tank_cases[0], 34, 0),
        ]
        batched, reference, delta = batch_vs_scalar(
            "permeability", campaign, tasks, goldens=campaign.goldens
        )
        assert batched == reference
        assert delta[3] == len(tasks)  # every row answered by a batch

    def test_timer_divergence_retires_to_scalar(self, tank_cases):
        """A tick-0 flip of the dispatch slot leaves the golden
        schedule immediately: the rows retire and are recomputed by
        the scalar path, so outcomes still match exactly."""
        campaign = PermeabilityCampaign(
            tank_factory, tank_cases, runs_per_input=1, seed=3
        )
        tasks = [
            ("TIMER", "tick_nbr", tank_cases[0], 0, 0),
            ("TIMER", "tick_nbr", tank_cases[0], 0, 1),
            ("TIMER", "tick_nbr", tank_cases[1], 150, 2),
        ]
        batched, reference, delta = batch_vs_scalar(
            "permeability", campaign, tasks, goldens=campaign.goldens
        )
        assert batched == reference
        assert delta[1] == len(tasks)  # all rows dispatch-diverged
        assert delta[3] == 0

    def test_detection_rows_match_scalar(self, tank_cases):
        specs = tank_assertions()
        campaign = DetectionCampaign(
            tank_factory, tank_cases, specs, runs_per_signal=1, seed=3
        )
        tasks = [
            ("LVL_ADC", tank_cases[0], 0, 9),
            ("LVL_ADC", tank_cases[1], 60, 5),
            ("FLOW_CNT", tank_cases[0], 120, 7),
            ("FLOW_CNT", tank_cases[1], 299, 0),
        ]
        batched, reference, delta = batch_vs_scalar(
            "detection", campaign, tasks, specs=specs
        )
        assert batched == reference
        assert delta[3] == len(tasks)

    def test_memory_rows_match_scalar(self, tank_cases):
        specs = tank_assertions()
        campaign = MemoryCampaign(
            tank_factory, tank_cases, specs, seed=5
        )
        tasks = memory_tasks(campaign, tank_cases, 12, seed=5)
        batched, reference, delta = batch_vs_scalar(
            "memory", campaign, tasks, specs=specs,
            period_ticks=campaign.period_ticks,
        )
        assert batched == reference
        assert delta[3] > 0  # some rows really ran batched

    def test_memory_cross_case_group(self, tank_cases):
        """Two cases sharing one (location, bit, phase) land in the
        same group: per-row golden indirection in action."""
        specs = tank_assertions()
        campaign = MemoryCampaign(
            tank_factory, tank_cases, specs, seed=5
        )
        probe = campaign.factory(tank_cases[0])
        location = MemoryMap(probe.system).locations()[0]
        tasks = [
            (location, tank_cases[0], 0, 3),
            (location, tank_cases[1], 0, 3),
        ]
        batched, reference, delta = batch_vs_scalar(
            "memory", campaign, tasks, specs=specs,
            period_ticks=campaign.period_ticks,
        )
        assert batched == reference
        assert delta[2] == 1  # one group for both cases
        assert delta[5] == 1  # counted as cross-case
        assert delta[6] == 16  # one group's slots at width 16

    def test_recovery_rows_match_scalar(self, tank_cases):
        specs = tank_assertions()
        campaign = RecoveryCampaign(
            tank_factory, tank_cases, specs, seed=5
        )
        tasks = memory_tasks(campaign, tank_cases, 10, seed=7)
        batched, reference, delta = batch_vs_scalar(
            "recovery", campaign, tasks, specs=specs,
            policies=campaign.policies,
            period_ticks=campaign.period_ticks,
        )
        assert batched == reference
        assert delta[3] > 0


class TestArrestmentKernel:
    def test_permeability_rows_match_scalar(self, arrestment_cases):
        campaign = PermeabilityCampaign(
            arrestment_factory, arrestment_cases, runs_per_input=1, seed=3
        )
        tasks = [
            ("DIST_S", "PACNT", arrestment_cases[0], 500, 3),
            ("DIST_S", "TIC1", arrestment_cases[1], 1200, 11),
            ("DIST_S", "TCNT", arrestment_cases[0], 40, 0),
            ("CALC", "pulscnt", arrestment_cases[1], 2500, 8),
            ("CALC", "i", arrestment_cases[0], 700, 1),
            ("CALC", "stopped", arrestment_cases[1], 900, 0),
            ("V_REG", "SetValue", arrestment_cases[0], 3000, 13),
            ("V_REG", "IsValue", arrestment_cases[1], 100, 6),
        ]
        batched, reference, delta = batch_vs_scalar(
            "permeability", campaign, tasks, goldens=campaign.goldens
        )
        assert batched == reference
        assert delta[3] == len(tasks)

    def test_clock_divergence_retires_to_scalar(self, arrestment_cases):
        campaign = PermeabilityCampaign(
            arrestment_factory, arrestment_cases, runs_per_input=1, seed=3
        )
        tasks = [
            ("CLOCK", "ms_slot_nbr", arrestment_cases[0], 0, 0),
            ("CLOCK", "ms_slot_nbr", arrestment_cases[1], 0, 4),
        ]
        batched, reference, delta = batch_vs_scalar(
            "permeability", campaign, tasks, goldens=campaign.goldens
        )
        assert batched == reference
        assert delta[1] == len(tasks)

    def test_detection_rows_match_scalar(self, arrestment_cases):
        specs = list(EA_BY_NAME.values())
        campaign = DetectionCampaign(
            arrestment_factory, arrestment_cases, specs,
            runs_per_signal=1, seed=3,
        )
        tasks = [
            ("PACNT", arrestment_cases[0], 0, 2),
            ("ADC", arrestment_cases[1], 800, 9),
            ("TCNT", arrestment_cases[0], 3000, 15),
            ("TIC1", arrestment_cases[1], 5500, 1),
        ]
        batched, reference, delta = batch_vs_scalar(
            "detection", campaign, tasks, specs=specs
        )
        assert batched == reference
        assert delta[3] == len(tasks)

    def test_memory_rows_match_scalar(self, arrestment_cases):
        specs = list(EA_BY_NAME.values())
        campaign = MemoryCampaign(
            arrestment_factory, arrestment_cases, specs, seed=5
        )
        tasks = memory_tasks(campaign, arrestment_cases, 10, seed=5)
        batched, reference, delta = batch_vs_scalar(
            "memory", campaign, tasks, specs=specs,
            period_ticks=campaign.period_ticks,
        )
        assert batched == reference
        assert delta[3] > 0

    def test_memory_dispatch_chain_rows_stay_batched(self, arrestment_cases):
        """Memory flips on the dispatch chain — CLOCK's slot-successor
        cells and the ``ms_slot_nbr`` backing store — corrupt the
        schedule itself.  Per-row masked dispatch follows each row's
        own (possibly corrupted) slot, so these rows stay in the batch
        (0 retired) and still match the scalar path bit for bit."""
        specs = list(EA_BY_NAME.values())
        campaign = MemoryCampaign(
            arrestment_factory, arrestment_cases, specs, seed=5
        )
        probe = campaign.factory(arrestment_cases[0])
        chain = [
            loc for loc in MemoryMap(probe.system).locations()
            if loc.module == "CLOCK"
            and (loc.cell.startswith("slot_succ") or loc.cell == "ms_slot_nbr")
        ]
        assert chain, "no dispatch-chain locations on the arrestment map"
        rng = random.Random(13)
        tasks = []
        for index in range(8):
            location = chain[index % len(chain)]
            tasks.append((
                location,
                arrestment_cases[index % 2],
                rng.randrange(location.valid_bits),
                rng.randrange(campaign.period_ticks),
            ))
        batched, reference, delta = batch_vs_scalar(
            "memory", campaign, tasks, specs=specs,
            period_ticks=campaign.period_ticks,
        )
        assert batched == reference
        assert delta[1] == 0  # no dispatch-divergence retirements
        assert delta[3] == len(tasks)  # every row answered by the batch

    def test_recovery_rows_match_scalar(self, arrestment_cases):
        specs = list(EA_BY_NAME.values())
        campaign = RecoveryCampaign(
            arrestment_factory, arrestment_cases, specs, seed=5
        )
        tasks = memory_tasks(campaign, arrestment_cases, 8, seed=9)
        batched, reference, delta = batch_vs_scalar(
            "recovery", campaign, tasks, specs=specs,
            policies=campaign.policies,
            period_ticks=campaign.period_ticks,
        )
        assert batched == reference
        assert delta[3] > 0


class TestCampaignAB:
    """Whole campaigns: batch_width on vs off is invisible in results."""

    def test_tank_permeability_identical(self, tank_cases):
        def run(config):
            estimate = PermeabilityCampaign(
                tank_factory, tank_cases, runs_per_input=4, seed=11,
                config=config,
            ).run()
            return estimate.direct_counts, estimate.active_runs

        assert run(None) == run(CampaignConfig(batch_width=32))

    def test_tank_detection_identical(self, tank_cases):
        def run(config):
            result = DetectionCampaign(
                tank_factory, tank_cases, tank_assertions(),
                runs_per_signal=8, seed=11, config=config,
            ).run()
            return (
                result.n_injected, result.n_err, result.detections,
                result.run_records, result.run_latencies,
            )

        assert run(None) == run(CampaignConfig(batch_width=32))

    def test_tank_memory_identical(self, tank_cases):
        def run(config):
            result = MemoryCampaign(
                tank_factory, tank_cases, tank_assertions(),
                seed=11, config=config,
            ).run()
            return [
                (r.region, r.location_label, r.fired, r.failed)
                for r in result.records
            ]

        assert run(None) == run(CampaignConfig(batch_width=32))

    def test_tank_recovery_identical(self, tank_cases):
        def run(config):
            result = RecoveryCampaign(
                tank_factory, tank_cases, tank_assertions(),
                seed=11, config=config,
            ).run()
            return [
                (
                    o.region, o.location_label, o.detected,
                    o.baseline_failed, o.recovered_failed,
                    o.recovery_actions,
                )
                for o in result.outcomes
            ]

        assert run(None) == run(CampaignConfig(batch_width=32))

    def test_telemetry_counts_batched_rows(self, tank_cases):
        campaign = DetectionCampaign(
            tank_factory, tank_cases, tank_assertions(),
            runs_per_signal=8, seed=11,
            config=CampaignConfig(batch_width=32),
        )
        campaign.run()
        telemetry = campaign.telemetry
        assert telemetry.vec_rows > 0
        assert telemetry.vec_groups > 0
        assert telemetry.vec_batched_ticks > 0
        assert "vector" in telemetry.render()

    def test_telemetry_occupancy_and_cross_case(self, tank_cases):
        """Group occupancy (rows over offered slots) and cross-case
        group counts reach the telemetry line and run-event log."""
        campaign = MemoryCampaign(
            tank_factory, tank_cases, tank_assertions(),
            seed=11, config=CampaignConfig(batch_width=32),
        )
        campaign.run()
        telemetry = campaign.telemetry
        assert telemetry.vec_group_capacity >= telemetry.vec_rows > 0
        assert 0.0 < telemetry.vec_occupancy <= 1.0
        # a memory sweep pairs every location with every case: the
        # planner must have packed cross-case groups
        assert telemetry.vec_cross_case_groups > 0
        rendered = telemetry.render()
        assert "occupancy=" in rendered
        assert "cross-case=" in rendered

    def test_run_event_carries_vector_fields(self, tank_cases, tmp_path):
        import json

        log = tmp_path / "events.jsonl"
        MemoryCampaign(
            tank_factory, tank_cases, tank_assertions(), seed=11,
            config=CampaignConfig(
                batch_width=32, event_log_path=str(log)
            ),
        ).run()
        events = [
            json.loads(line) for line in log.read_text().splitlines()
        ]
        run_end = [e for e in events if e["event"] == "run_end"][-1]
        assert run_end["vec_rows"] > 0
        assert run_end["vec_cross_case_groups"] > 0
        assert 0.0 < run_end["vec_occupancy"] <= 1.0

    def test_default_config_stays_scalar(self, tank_cases):
        campaign = DetectionCampaign(
            tank_factory, tank_cases, tank_assertions(),
            runs_per_signal=2, seed=11, config=CampaignConfig(),
        )
        campaign.run()
        assert campaign.telemetry.vec_rows == 0
        assert campaign.telemetry.vec_groups == 0

    def test_wrap_runner_passthrough_when_off(self):
        def runner(index):
            return index

        assert wrap_runner(
            "detection", runner, [], None, tank_factory
        ) is runner
        assert wrap_runner(
            "detection", runner, [], CampaignConfig(), tank_factory
        ) is runner


@pytest.mark.slow
class TestCampaignABProcess:
    """The batched core composes with the process pool: groups are
    computed whole inside one worker and results stay bit-identical."""

    def test_arrestment_detection_identical(self, arrestment_cases):
        def run(batch_width):
            result = DetectionCampaign(
                arrestment_factory, arrestment_cases,
                list(EA_BY_NAME.values()),
                runs_per_signal=6, seed=11,
                config=CampaignConfig(
                    backend="process", jobs=2, batch_width=batch_width
                ),
            ).run()
            return (
                result.n_injected, result.n_err, result.detections,
                result.run_records, result.run_latencies,
            )

        assert run(0) == run(16)

    def test_tank_permeability_identical(self, tank_cases):
        def run(batch_width):
            estimate = PermeabilityCampaign(
                tank_factory, tank_cases, runs_per_input=4, seed=11,
                config=CampaignConfig(
                    backend="process", jobs=2, batch_width=batch_width
                ),
            ).run()
            return estimate.direct_counts, estimate.active_runs

        assert run(0) == run(16)

    def test_tank_memory_identical(self, tank_cases):
        def run(batch_width):
            result = MemoryCampaign(
                tank_factory, tank_cases, tank_assertions(), seed=11,
                config=CampaignConfig(
                    backend="process", jobs=2, batch_width=batch_width
                ),
            ).run()
            return [
                (r.region, r.location_label, r.fired, r.failed)
                for r in result.records
            ]

        assert run(0) == run(16)

    def test_arrestment_recovery_identical(self, arrestment_cases):
        def run(batch_width):
            result = RecoveryCampaign(
                arrestment_factory, arrestment_cases,
                list(EA_BY_NAME.values()), seed=11,
                config=CampaignConfig(
                    backend="process", jobs=2, batch_width=batch_width
                ),
            ).run()
            return [
                (
                    o.region, o.location_label, o.detected,
                    o.baseline_failed, o.recovered_failed,
                    o.recovery_actions,
                )
                for o in result.outcomes
            ]

        assert run(0) == run(16)
