"""Property-based tests of the binomial interval machinery.

The adaptive campaign engine stops strata on these intervals, so they
carry statistical load: a too-narrow interval stops campaigns before
the estimates deserve it.  Hypothesis sweeps the (k, n, level) space
for the structural properties — containment against the exact
Clopper-Pearson reference, monotonicity, boundary degeneracy — and a
pure-Python exact-binomial computation checks frequentist coverage at
the nominal level.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.analysis.estimators import estimate_confidence
from repro.analysis.intervals import (
    beta_quantile,
    certifies_saturation,
    certifies_zero,
    clopper_pearson_interval,
    jeffreys_interval,
    regularized_incomplete_beta,
    wilson_halfwidth,
    wilson_interval,
    wilson_lower_bound,
    wilson_upper_bound,
    z_value,
)
from repro.errors import AnalysisError
from repro.fi.campaign import PermeabilityEstimate


counts = st.integers(min_value=0, max_value=200).flatmap(
    lambda n: st.tuples(st.integers(min_value=0, max_value=n), st.just(n))
)
levels = st.sampled_from([0.8, 0.9, 0.95, 0.99])


def _binomial_pmf(n, p):
    """Exact pmf over 0..n (pure Python, log-space for stability)."""
    if p == 0.0:
        return [1.0] + [0.0] * n
    if p == 1.0:
        return [0.0] * n + [1.0]
    log_p, log_q = math.log(p), math.log1p(-p)
    return [
        math.exp(
            math.lgamma(n + 1)
            - math.lgamma(k + 1)
            - math.lgamma(n - k + 1)
            + k * log_p
            + (n - k) * log_q
        )
        for k in range(n + 1)
    ]


class TestIntervalShape:
    @given(counts, levels)
    def test_intervals_are_ordered_and_contain_point(self, kn, level):
        k, n = kn
        for interval_fn in (
            wilson_interval, jeffreys_interval, clopper_pearson_interval
        ):
            low, high = interval_fn(k, n, level)
            assert 0.0 <= low <= high <= 1.0
            if n:
                assert low - 1e-12 <= k / n <= high + 1e-12

    @given(counts, levels)
    def test_degenerate_counts_pin_bounds(self, kn, level):
        k, n = kn
        for interval_fn in (
            wilson_interval, jeffreys_interval, clopper_pearson_interval
        ):
            low, high = interval_fn(k, n, level)
            if k == 0:
                assert low == 0.0
            if k == n:
                assert high == 1.0

    @given(counts, levels)
    def test_jeffreys_within_clopper_pearson(self, kn, level):
        k, n = kn
        j_low, j_high = jeffreys_interval(k, n, level)
        cp_low, cp_high = clopper_pearson_interval(k, n, level)
        assert j_low >= cp_low - 1e-9
        assert j_high <= cp_high + 1e-9

    @given(counts, levels)
    def test_halfwidth_nonincreasing_in_n(self, kn, level):
        # doubling the sample at the same proportion never widens the
        # interval — the monotonicity the stopping criterion relies on
        k, n = kn
        if n == 0:
            return
        assert wilson_halfwidth(2 * k, 2 * n, level) <= (
            wilson_halfwidth(k, n, level) + 1e-12
        )

    @given(counts)
    def test_higher_level_is_wider(self, kn):
        k, n = kn
        assert wilson_halfwidth(k, n, 0.99) >= (
            wilson_halfwidth(k, n, 0.90) - 1e-12
        )

    @given(counts, levels)
    def test_one_sided_bounds_bracket_point(self, kn, level):
        k, n = kn
        if n == 0:
            return
        assert wilson_lower_bound(k, n, level) <= k / n + 1e-12
        assert wilson_upper_bound(k, n, level) >= k / n - 1e-12

    def test_invalid_inputs_rejected(self):
        with pytest.raises(AnalysisError):
            wilson_interval(3, 2)
        with pytest.raises(AnalysisError):
            wilson_interval(-1, 2)
        with pytest.raises(AnalysisError):
            wilson_interval(1, 2, level=1.0)
        with pytest.raises(AnalysisError):
            z_value(0.0)


class TestExactCoverage:
    @settings(deadline=None, max_examples=25)
    @given(
        st.integers(min_value=1, max_value=40),
        st.floats(min_value=0.02, max_value=0.98),
    )
    def test_clopper_pearson_coverage_at_least_nominal(self, n, p):
        """P(p in CP interval) >= level, exactly, for every (n, p)."""
        level = 0.95
        pmf = _binomial_pmf(n, p)
        coverage = sum(
            prob
            for k, prob in enumerate(pmf)
            if clopper_pearson_interval(k, n, level)[0] - 1e-12
            <= p
            <= clopper_pearson_interval(k, n, level)[1] + 1e-12
        )
        assert coverage >= level - 1e-9

    @settings(deadline=None, max_examples=25)
    @given(
        st.integers(min_value=4, max_value=40),
        st.floats(min_value=0.35, max_value=0.98),
    )
    def test_zero_certification_error_bounded(self, n, p):
        """If a proportion truly exceeds the zero threshold + margin,
        the chance of a (wrong) zero certificate is at most 1-level:
        certification requires k=0, whose probability (1-p)^n is below
        alpha whenever the upper bound admits p."""
        level, threshold = 0.95, 0.3
        if not certifies_zero(0, n, level, threshold):
            return
        if p <= threshold:
            return
        # the certificate fires only on k=0; bound its probability
        # under the true p using the Wilson upper bound's guarantee
        upper = wilson_upper_bound(0, n, level)
        if p > upper:
            assert (1 - p) ** n <= (1 - level) + 1e-9


class TestBetaSpecialFunctions:
    @settings(deadline=None)
    @given(
        st.floats(min_value=0.5, max_value=50),
        st.floats(min_value=0.5, max_value=50),
        st.floats(min_value=0.001, max_value=0.999),
    )
    def test_quantile_inverts_cdf(self, a, b, q):
        x = beta_quantile(a, b, q)
        assert regularized_incomplete_beta(a, b, x) == pytest.approx(
            q, abs=1e-8
        )

    @given(
        st.floats(min_value=0.5, max_value=50),
        st.floats(min_value=0.5, max_value=50),
    )
    def test_cdf_monotone_and_bounded(self, a, b):
        values = [
            regularized_incomplete_beta(a, b, x / 10.0) for x in range(11)
        ]
        assert values[0] == 0.0
        assert values[-1] == 1.0
        assert all(lo <= hi + 1e-12 for lo, hi in zip(values, values[1:]))

    def test_known_values(self):
        # Beta(1, 1) is uniform
        assert regularized_incomplete_beta(1, 1, 0.3) == pytest.approx(0.3)
        assert beta_quantile(1, 1, 0.7) == pytest.approx(0.7)
        # symmetric Beta(2, 2) median
        assert beta_quantile(2, 2, 0.5) == pytest.approx(0.5, abs=1e-9)

    def test_invalid_shapes_rejected(self):
        with pytest.raises(AnalysisError):
            regularized_incomplete_beta(0.0, 1.0, 0.5)
        with pytest.raises(AnalysisError):
            beta_quantile(1.0, 1.0, 1.5)


class TestCertificationPredicates:
    @given(st.integers(min_value=1, max_value=200), levels)
    def test_zero_needs_no_successes(self, n, level):
        assert not certifies_zero(1, n, level, 0.99)

    @given(counts, levels)
    def test_saturation_monotone_in_threshold(self, kn, level):
        k, n = kn
        if certifies_saturation(k, n, level, 0.6):
            assert certifies_saturation(k, n, level, 0.3)

    def test_no_data_certifies_nothing(self):
        assert not certifies_zero(0, 0, 0.95, 0.5)
        assert not certifies_saturation(0, 0, 0.95, 0.5)


class TestEstimateConfidenceEdges:
    def _estimate(self, values, active, counts=None):
        return PermeabilityEstimate(
            direct_counts=counts or {}, active_runs=active, values=values
        )

    def test_no_active_runs_gives_maximal_halfwidth(self):
        estimate = self._estimate(
            {("M", "i", "o"): 0.0}, {("M", "i"): 0}
        )
        confidence = estimate_confidence(estimate)[("M", "i", "o")]
        assert confidence.n == 0
        assert confidence.half_width_95 == 1.0
        assert (confidence.low, confidence.high) == (0.0, 1.0)

    def test_saturated_estimate_clips_to_unit_interval(self):
        estimate = self._estimate(
            {("M", "i", "o"): 1.0}, {("M", "i"): 10}
        )
        confidence = estimate_confidence(estimate)[("M", "i", "o")]
        assert confidence.high == 1.0
        assert confidence.low <= 1.0

    @given(counts)
    def test_halfwidth_shrinks_with_n(self, kn):
        k, n = kn
        if n == 0:
            return
        estimate = self._estimate(
            {("M", "i", "o"): k / n}, {("M", "i"): n}
        )
        small = estimate_confidence(estimate)[("M", "i", "o")]
        bigger = self._estimate(
            {("M", "i", "o"): k / n}, {("M", "i"): 4 * n}
        )
        large = estimate_confidence(bigger)[("M", "i", "o")]
        assert large.half_width_95 <= small.half_width_95 + 1e-12
