"""Tests for the command-line interfaces."""

import pytest

from repro.__main__ import main as repro_main
from repro.experiments.__main__ import main as experiments_main


class TestTopLevelCLI:
    def test_simulate(self, capsys):
        assert repro_main(["simulate", "--case", "0"]) == 0
        out = capsys.readouterr().out
        assert "arrested   : True" in out
        assert "tc00" in out

    def test_simulate_bad_case(self, capsys):
        assert repro_main(["simulate", "--case", "99"]) == 2
        assert "0..24" in capsys.readouterr().err

    def test_profile(self, capsys):
        assert repro_main(["profile"]) == 0
        out = capsys.readouterr().out
        assert "Exposure profile" in out
        assert "Placement (PA)" in out
        assert "Placement (EH)" in out

    def test_memmap(self, capsys):
        assert repro_main(["memmap"]) == 0
        out = capsys.readouterr().out
        assert "RAM" in out and "stack" in out
        assert "ram:CLOCK.mscnt" in out

    def test_sensitivity(self, capsys):
        assert repro_main(
            ["sensitivity", "--samples", "5", "--epsilon", "0.02"]
        ) == 0
        out = capsys.readouterr().out
        assert "stable selections" in out

    def test_dot_system(self, capsys):
        assert repro_main(["dot", "system"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert '"DIST_S"' in out

    def test_dot_impact_tree(self, capsys):
        assert repro_main(["dot", "impact-tree", "--signal", "pulscnt"]) == 0
        assert "P^CALC_{3,1}" in capsys.readouterr().out

    def test_dot_profiles_and_backtrack(self, capsys):
        for figure in ("exposure", "impact", "backtrack"):
            assert repro_main(["dot", figure]) == 0
            assert "digraph" in capsys.readouterr().out

    def test_dot_bad_figure(self):
        with pytest.raises(SystemExit):
            repro_main(["dot", "nonsense"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            repro_main([])


class TestPlaceCLI:
    def _solve(self, cache, extra=(), monkeypatch=None):
        return repro_main(
            ["place", "--scale", "test", "--runs", "1",
             "--cache", str(cache), *extra]
        )

    def test_cold_then_warm_solve(self, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        assert self._solve(cache) == 0
        cold = capsys.readouterr().out
        assert "Budgeted EDM placement" in cold
        assert "Certificate: optimality proven" in cold
        assert "misses=6" in cold
        assert self._solve(cache) == 0
        warm = capsys.readouterr().out
        assert "hits=6 misses=0" in warm
        # everything above the telemetry line is byte-identical
        strip = lambda text: text.rsplit("\n", 2)[0]
        assert strip(cold) == strip(warm)

    def test_invalidate_reinjects_one_module(self, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        assert self._solve(cache) == 0
        capsys.readouterr()
        assert self._solve(cache, ["--invalidate", "CLOCK"]) == 0
        assert "reinjected=CLOCK" in capsys.readouterr().out

    def test_unknown_module_rejected(self, tmp_path, capsys):
        assert self._solve(
            tmp_path / "c.json", ["--invalidate", "NOPE"]
        ) == 2
        assert "unknown modules" in capsys.readouterr().err

    def test_solver_choice_and_budget_flags(self, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        assert self._solve(cache, ["--solver", "greedy"]) in (0, 1)
        out = capsys.readouterr().out
        assert "solver=greedy" in out
        assert "Greedy cross-check" not in out
        assert self._solve(
            cache, ["--budget-rom", "25", "--budget-ram", "13"]
        ) in (0, 1)
        out = capsys.readouterr().out
        assert "Budget: ROM<=25 RAM<=13" in out

    def test_missing_results_db_rejected(self, tmp_path, capsys):
        assert repro_main(
            ["place", "--db", str(tmp_path / "none.db"), "--run", "x/y"]
        ) == 2
        assert "no such results database" in capsys.readouterr().err

    def test_bad_target_rejected(self, tmp_path, capsys):
        assert self._solve(
            tmp_path / "c.json", ["--target", "nonsense"]
        ) == 2
        assert "unknown target" in capsys.readouterr().err


class TestExperimentsCLI:
    def test_single_analytic_experiment(self, capsys):
        assert experiments_main(["table3", "--scale", "test"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "262/94" in out

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            experiments_main(["table3", "--scale", "galactic"])

    def test_bad_experiment_rejected(self):
        with pytest.raises(SystemExit):
            experiments_main(["table99"])

    def test_delegation_from_top_level(self, capsys):
        assert repro_main(
            ["experiments", "table3", "--scale", "test"]
        ) == 0
        assert "Table 3" in capsys.readouterr().out

    def test_integrity_flags_reach_the_config(self):
        import argparse

        from repro.experiments.__main__ import (
            add_execution_options,
            context_from_args,
        )

        parser = argparse.ArgumentParser()
        add_execution_options(parser)
        args = parser.parse_args([
            "--scale", "test", "--audit-fraction", "0.25",
            "--audit-seed", "11", "--integrity-policy", "strict",
        ])
        config = context_from_args(args).campaign_config("detection")
        assert config.audit_fraction == 0.25
        assert config.audit_seed == 11
        assert config.integrity_policy == "strict"

    def test_bad_integrity_policy_rejected(self):
        with pytest.raises(SystemExit):
            experiments_main(
                ["table3", "--integrity-policy", "paranoid"]
            )
