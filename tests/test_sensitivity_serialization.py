"""Tests for placement sensitivity analysis and campaign serialization."""

import pytest

from repro.core.placement import extended_placement, pa_placement
from repro.core.sensitivity import placement_sensitivity
from repro.errors import AnalysisError, CampaignError
from repro.fi.serialization import (
    detection_from_dict,
    detection_to_dict,
    load_json,
    memory_from_dict,
    memory_to_dict,
    permeability_from_dict,
    permeability_to_dict,
    save_json,
)


class TestSensitivity:
    def test_pa_selection_stable_at_small_epsilon(self, matrix, graph):
        report = placement_sensitivity(
            matrix, graph, lambda m, g: pa_placement(m, g),
            epsilon=0.05, n_samples=30,
        )
        assert report.is_stable()
        assert report.stable_selected() == sorted(
            ["SetValue", "i", "pulscnt", "OutValue"]
        )
        assert set(report.stable_rejected()) >= {"mscnt", "IsValue", "TOC2"}

    def test_extended_selection_stable(self, matrix, graph):
        report = placement_sensitivity(
            matrix, graph,
            lambda m, g: extended_placement(
                m, g, impact_threshold=0.10, output="TOC2",
                memory_error_model=True, self_permeability_threshold=0.8,
            ),
            epsilon=0.03, n_samples=20,
        )
        assert set(report.stable_selected()) == set(
            report.baseline_selected
        )

    def test_large_epsilon_flushes_out_marginal_decisions(
        self, matrix, graph
    ):
        """Near a threshold, heavy perturbation must flip decisions."""
        report = placement_sensitivity(
            matrix, graph,
            lambda m, g: pa_placement(m, g, exposure_threshold=1.45),
            epsilon=0.40, n_samples=60,
        )
        # SetValue's exposure (1.478) straddles the 1.45 threshold
        assert "SetValue" in report.marginal()

    def test_architectural_extremes_not_perturbed(self, matrix, graph):
        report = placement_sensitivity(
            matrix, graph, lambda m, g: pa_placement(m, g),
            epsilon=0.5, n_samples=20,
        )
        # ms_slot_nbr's exclusion rests on exact 1.0/0.0 permeabilities,
        # which are architectural and never perturbed
        assert report.selection_frequency["ms_slot_nbr"] == 0.0

    def test_validation(self, matrix, graph):
        with pytest.raises(AnalysisError):
            placement_sensitivity(
                matrix, graph, lambda m, g: pa_placement(m, g),
                epsilon=-0.1,
            )
        with pytest.raises(AnalysisError):
            placement_sensitivity(
                matrix, graph, lambda m, g: pa_placement(m, g),
                n_samples=0,
            )

    def test_render(self, matrix, graph):
        report = placement_sensitivity(
            matrix, graph, lambda m, g: pa_placement(m, g),
            epsilon=0.05, n_samples=5,
        )
        text = report.render()
        assert "sensitivity" in text and "pulscnt" in text


class TestSerialization:
    def test_permeability_roundtrip(self, ctx):
        estimate = ctx.permeability_estimate()
        restored = permeability_from_dict(permeability_to_dict(estimate))
        assert restored.values == estimate.values
        assert restored.active_runs == estimate.active_runs

    def test_detection_roundtrip(self, ctx):
        result = ctx.detection_result()
        restored = detection_from_dict(detection_to_dict(result))
        assert restored.n_err == result.n_err
        assert restored.detections == result.detections
        assert restored.run_records == result.run_records
        for target in result.targets:
            assert restored.total_coverage(target) == pytest.approx(
                result.total_coverage(target)
            )

    def test_memory_roundtrip(self, ctx):
        result = ctx.memory_result()
        restored = memory_from_dict(memory_to_dict(result))
        assert len(restored.records) == len(result.records)
        triple_a = result.coverage(result.ea_names, None)
        triple_b = restored.coverage(result.ea_names, None)
        assert triple_a.c_tot == pytest.approx(triple_b.c_tot)
        assert triple_a.n_fail == triple_b.n_fail

    def test_file_roundtrip(self, ctx, tmp_path):
        estimate = ctx.permeability_estimate()
        path = save_json(estimate, tmp_path / "perm.json")
        restored = load_json(path)
        assert restored.values == estimate.values

    def test_kind_mismatch_rejected(self, ctx):
        data = permeability_to_dict(ctx.permeability_estimate())
        with pytest.raises(CampaignError, match="expected"):
            detection_from_dict(data)

    def test_version_mismatch_rejected(self, ctx):
        data = permeability_to_dict(ctx.permeability_estimate())
        data["format_version"] = 999
        with pytest.raises(CampaignError, match="version"):
            permeability_from_dict(data)

    def test_unknown_file_kind_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format_version": 1, "kind": "bogus"}')
        with pytest.raises(CampaignError, match="unknown kind"):
            load_json(path)


class TestLatency:
    def test_latencies_recorded_for_detections(self, ctx):
        result = ctx.detection_result()
        stats = result.latency_stats()
        total_detected = sum(result.any_detections.values())
        assert stats.count == total_detected
        if stats.count:
            assert 0 <= stats.mean <= stats.maximum
            assert stats.median <= stats.maximum

    def test_subset_latency_no_faster_than_full(self, ctx):
        result = ctx.detection_result()
        full = result.latency_stats()
        sub = result.latency_stats(ea_subset=["EA4"])
        assert sub.count <= full.count

    def test_empty_stats(self):
        from repro.fi.campaign import LatencyStats

        stats = LatencyStats.from_samples([])
        assert stats.count == 0 and stats.mean == 0.0

    def test_stats_from_samples(self):
        from repro.fi.campaign import LatencyStats

        stats = LatencyStats.from_samples([4, 2, 8])
        assert stats.median == 4 and stats.maximum == 8
        assert stats.mean == pytest.approx(14 / 3)
        even = LatencyStats.from_samples([1, 3])
        assert even.median == 2.0
