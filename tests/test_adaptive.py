"""Tests for the adaptive (sequential-sampling) campaign engine.

The core contracts under test:

* an adaptive campaign with early stopping **disabled**
  (``ci_halfwidth=0``) is bit-identical to the fixed-n campaign on the
  serial and the process backend — the batched scheduler changes the
  dispatch order, never the results;
* early stopping saves injections while preserving the shape verdicts
  (architectural zeros stay zero, saturated pairs stay saturated);
* an adaptive campaign that crashes mid-stratum and resumes from its
  checkpoint reaches the same estimates and the same stop decisions
  as an uninterrupted run, with a clean strict-integrity audit.
"""

import pytest

from repro.edm.catalogue import EA_BY_NAME
from repro.errors import CampaignError
from repro.fi import (
    SKIPPED,
    AdaptiveSampler,
    AdaptiveStratum,
    CampaignConfig,
    CampaignExecutor,
    DetectionCampaign,
    PermeabilityCampaign,
    StoppingRule,
    canonical_digest,
    stopping_rule_from,
)
from repro.fi.serialization import (
    detection_to_dict,
    permeability_to_dict,
    stratum_reports_from_dict,
    stratum_reports_to_dict,
)
from repro.target.simulation import ArrestmentSimulator


def factory(tc):
    return ArrestmentSimulator(tc)


@pytest.fixture(scope="module")
def two_cases(test_cases):
    return [test_cases[4], test_cases[20]]


def _config(**kwargs):
    kwargs.setdefault("retry_backoff_s", 0.0)
    return CampaignConfig(**kwargs)


# ======================================================================
# Stopping rule.
# ======================================================================
class TestStoppingRule:
    def test_zero_certification_needs_enough_misses(self):
        rule = StoppingRule()  # zero_threshold 0.3, one-sided 95 %
        assert rule.classify(0, 4) is None  # upper bound 0.404 > 0.3
        assert rule.classify(0, 8) == "zero"  # upper bound 0.253
        assert rule.classify(1, 50) != "zero"  # a hit forbids zero

    def test_saturation_certification(self):
        rule = StoppingRule()  # saturation_threshold 0.6
        assert rule.classify(8, 8) == "saturated"  # lower bound 0.747
        assert rule.classify(4, 4) is None  # lower bound 0.596
        assert rule.classify(5, 5) == "saturated"

    def test_halfwidth_target(self):
        rule = StoppingRule(halfwidth=0.2)
        assert rule.classify(12, 24) == "halfwidth"
        assert rule.classify(6, 12) is None  # half-width 0.252

    def test_halfwidth_zero_never_stops_on_precision(self):
        rule = StoppingRule(halfwidth=0.0)
        assert rule.classify(12, 24) is None
        assert rule.classify(500, 1000) is None
        # certification still applies (the rule, not the off switch —
        # the engine-level off switch is rule=None)
        assert rule.classify(0, 50) == "zero"

    def test_no_observations_never_decided(self):
        assert StoppingRule().classify(0, 0) is None

    def test_config_off_switch(self):
        assert stopping_rule_from(_config(ci_halfwidth=0.0)) is None
        rule = stopping_rule_from(
            _config(ci_level=0.9, ci_halfwidth=0.15, zero_threshold=0.2)
        )
        assert rule is not None
        assert rule.level == 0.9
        assert rule.halfwidth == 0.15
        assert rule.zero_threshold == 0.2

    def test_config_validation(self):
        with pytest.raises(CampaignError):
            _config(ci_level=1.0)
        with pytest.raises(CampaignError):
            _config(ci_halfwidth=1.0)
        with pytest.raises(CampaignError):
            _config(min_batch=0)
        with pytest.raises(CampaignError):
            _config(max_runs=0)


# ======================================================================
# Sampler mechanics on synthetic tasks (no simulator).
# ======================================================================
def _synthetic_sampler(outcomes, rule, min_batch=4, **config_kwargs):
    """Sampler over len(outcomes) tasks in two equal strata.

    *outcomes* maps task index -> bool (success); counts_of folds the
    executed booleans into one monitored proportion per stratum.
    """
    n = len(outcomes)
    half = n // 2
    strata = [
        AdaptiveStratum("first", tuple(range(half))),
        AdaptiveStratum("second", tuple(range(half, n))),
    ]

    def counts_of(stratum, executed):
        real = [r for r in executed if r is not None]
        return {"p": (sum(1 for r in real if r), len(real))}

    executor = CampaignExecutor(_config(**config_kwargs), campaign="unit")
    sampler = AdaptiveSampler(
        executor, strata, counts_of, rule=rule, min_batch=min_batch
    )
    results = sampler.run(lambda i: outcomes[i], n, "fp")
    return sampler, results


class TestSamplerMechanics:
    def test_early_stop_leaves_skipped_slots(self):
        # first stratum: all failures -> zero-certified after 8;
        # second: all successes -> saturated after 5 (min_batch rounds
        # of 4 -> stops at 8 too)
        outcomes = [False] * 16 + [True] * 16
        sampler, results = _synthetic_sampler(outcomes, StoppingRule())
        assert results[:8] == [False] * 8
        assert results[8:16] == [SKIPPED] * 8
        assert results[16:24] == [True] * 8
        assert results[24:] == [SKIPPED] * 8
        telemetry = sampler.telemetry
        assert telemetry.adaptive
        assert telemetry.strata == 2
        assert telemetry.strata_early == 2
        assert telemetry.runs_saved == 16
        assert telemetry.executed_runs == 16
        assert telemetry.total_runs == 32
        assert telemetry.stop_reasons == {"zero": 1, "saturated": 1}
        assert "adaptive runs_saved=16" in telemetry.render()

    def test_reports_in_stratum_order(self):
        outcomes = [False] * 16 + [True] * 16
        sampler, _ = _synthetic_sampler(outcomes, StoppingRule())
        assert [r.label for r in sampler.reports] == ["first", "second"]
        first, second = sampler.reports
        assert (first.stop_reason, first.spent, first.saved) == ("zero", 8, 8)
        assert second.stop_reason == "saturated"
        assert first.decisions == {"p": "zero"}
        assert first.counts == {"p": (0, 8)}

    def test_undecided_stratum_exhausts_budget(self):
        # alternate hits: p = 0.5, needs n ~ 24 for half-width 0.2
        outcomes = [i % 2 == 0 for i in range(16)] * 2
        sampler, results = _synthetic_sampler(outcomes, StoppingRule())
        assert SKIPPED not in results
        assert sampler.telemetry.runs_saved == 0
        assert sampler.telemetry.stop_reasons == {"budget": 2}
        assert all(r.stop_reason == "budget" for r in sampler.reports)

    def test_rule_none_runs_full_budget(self):
        outcomes = [False] * 32  # would zero-certify instantly
        sampler, results = _synthetic_sampler(outcomes, rule=None)
        assert results == [False] * 32
        assert sampler.telemetry.runs_saved == 0
        assert sampler.telemetry.stop_reasons == {"budget": 2}

    def test_batch_indices_validated(self):
        executor = CampaignExecutor(_config(), campaign="unit")
        with pytest.raises(CampaignError):
            executor.run_tasks(lambda i: i, 4, "fp", indices=[0, 7])

    def test_empty_stratum_rejected(self):
        with pytest.raises(CampaignError):
            AdaptiveStratum("empty", ())

    def test_report_roundtrip(self):
        outcomes = [False] * 16 + [True] * 16
        sampler, _ = _synthetic_sampler(outcomes, StoppingRule())
        data = stratum_reports_to_dict(sampler.reports)
        assert data["budget"] == 32
        assert data["spent"] == 16
        assert data["saved"] == 16
        assert stratum_reports_from_dict(data) == sampler.reports


# ======================================================================
# A/B determinism: stopping disabled == fixed-n, bit for bit.
# ======================================================================
@pytest.mark.slow
class TestAdaptiveDeterminism:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_permeability_disabled_stopping_matches_fixed_n(
        self, two_cases, jobs
    ):
        fixed = PermeabilityCampaign(
            factory, two_cases, runs_per_input=8, seed=7,
            config=_config(jobs=jobs),
        ).run()
        adaptive = PermeabilityCampaign(
            factory, two_cases, runs_per_input=8, seed=7,
            config=_config(jobs=jobs, adaptive=True, ci_halfwidth=0.0),
        ).run()
        assert canonical_digest(
            permeability_to_dict(adaptive)
        ) == canonical_digest(permeability_to_dict(fixed))

    def test_detection_disabled_stopping_matches_fixed_n(self, two_cases):
        specs = list(EA_BY_NAME.values())

        def run(config):
            return DetectionCampaign(
                factory, two_cases, specs,
                runs_per_signal=6, targets=["ADC", "PACNT"], seed=7,
                config=config,
            ).run()

        fixed = run(_config())
        adaptive = run(_config(adaptive=True, ci_halfwidth=0.0))
        assert canonical_digest(
            detection_to_dict(adaptive)
        ) == canonical_digest(detection_to_dict(fixed))

    def test_adaptive_serial_parallel_identical(self, two_cases):
        def run(jobs):
            campaign = PermeabilityCampaign(
                factory, two_cases, runs_per_input=8, seed=7,
                config=_config(jobs=jobs, adaptive=True, min_batch=2),
            )
            return campaign.run(), campaign.stratum_reports

        serial, serial_reports = run(1)
        parallel, parallel_reports = run(2)
        assert serial.values == parallel.values
        assert serial.direct_counts == parallel.direct_counts
        assert serial_reports == parallel_reports


# ======================================================================
# Early stopping on the real target: spend less, conclude the same.
# ======================================================================
@pytest.mark.slow
class TestAdaptiveSavings:
    def test_saves_runs_and_preserves_shape(self, two_cases):
        fixed = PermeabilityCampaign(
            factory, two_cases, runs_per_input=16, seed=7,
        ).run()
        campaign = PermeabilityCampaign(
            factory, two_cases, runs_per_input=16, seed=7,
            config=_config(adaptive=True),
        )
        adaptive = campaign.run()

        telemetry = campaign.telemetry
        assert telemetry.adaptive
        assert telemetry.runs_saved > 0
        assert telemetry.strata_early > 0
        assert telemetry.executed_runs < sum(
            r.budget for r in campaign.stratum_reports
        )
        # every fixed-n architectural zero stays an exact zero
        fixed_zeros = {k for k, v in fixed.values.items() if v == 0.0}
        adaptive_zeros = {k for k, v in adaptive.values.items() if v == 0.0}
        assert fixed_zeros <= adaptive_zeros
        # every fixed-n pass-through pair stays in the high class
        for key, value in fixed.values.items():
            if value >= 0.7:
                assert adaptive.values[key] >= 0.5

    def test_max_runs_caps_budget(self, two_cases):
        campaign = PermeabilityCampaign(
            factory, two_cases, runs_per_input=16, seed=7,
            config=_config(adaptive=True, max_runs=8),
        )
        campaign.run()
        assert all(r.budget == 8 for r in campaign.stratum_reports)


# ======================================================================
# Crash/resume and integrity interplay.
# ======================================================================
@pytest.mark.slow
class TestAdaptiveResume:
    def test_kill_resume_matches_uninterrupted(
        self, monkeypatch, tmp_path, two_cases
    ):
        """Kill a pool worker mid-stratum; the respawned pool finishes
        the campaign and its estimates, spend accounting and stop
        decisions match a clean serial adaptive run."""

        def campaign(config):
            return PermeabilityCampaign(
                factory, two_cases, runs_per_input=8, seed=7,
                config=config,
            )

        clean_campaign = campaign(_config(adaptive=True))
        clean = clean_campaign.run()

        monkeypatch.setenv("REPRO_CHAOS_KILL_INDEX", "5")
        path = str(tmp_path / "perm.json")
        crashed_campaign = campaign(_config(
            adaptive=True, jobs=2, retries=2, pool_watchdog_s=2.0,
            checkpoint_path=path, checkpoint_every=1,
        ))
        crashed = crashed_campaign.run()
        assert crashed_campaign.telemetry.pool_respawns >= 1
        assert crashed.values == clean.values
        assert crashed_campaign.stratum_reports == (
            clean_campaign.stratum_reports
        )

        # a resume of the finished campaign re-executes nothing and
        # reaches the identical estimates and decisions
        monkeypatch.delenv("REPRO_CHAOS_KILL_INDEX")
        resumed_campaign = campaign(_config(
            adaptive=True, checkpoint_path=path,
        ))
        resumed = resumed_campaign.run()
        assert resumed.values == clean.values
        assert resumed_campaign.telemetry.executed_runs == 0
        assert resumed_campaign.stratum_reports == (
            clean_campaign.stratum_reports
        )

    def test_truncated_checkpoint_resume_strict_audit_clean(
        self, tmp_path, two_cases
    ):
        """Drop half the checkpoint mid-stratum and resume under the
        strict integrity policy: the surviving digest-verified records
        are trusted, the tail re-executes, and the outcome matches."""
        import json

        path = str(tmp_path / "perm.json")
        full_campaign = PermeabilityCampaign(
            factory, two_cases, runs_per_input=8, seed=7,
            config=_config(
                adaptive=True, checkpoint_path=path, checkpoint_every=1,
            ),
        )
        full = full_campaign.run()

        with open(path) as handle:
            payload = json.load(handle)
        kept = {
            k: v for k, v in payload["results"].items() if int(k) % 2 == 0
        }
        payload["results"] = kept
        payload["digests"] = {
            k: v for k, v in payload.get("digests", {}).items() if k in kept
        }
        with open(path, "w") as handle:
            json.dump(payload, handle)

        resumed_campaign = PermeabilityCampaign(
            factory, two_cases, runs_per_input=8, seed=7,
            config=_config(
                adaptive=True, checkpoint_path=path, checkpoint_every=1,
                integrity_policy="strict", audit_fraction=0.25,
            ),
        )
        resumed = resumed_campaign.run()
        assert resumed.values == full.values
        assert resumed_campaign.telemetry.executed_runs > 0
        assert resumed_campaign.integrity_violations == []
        assert resumed_campaign.stratum_reports == (
            full_campaign.stratum_reports
        )
