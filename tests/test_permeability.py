"""Unit tests for repro.core.permeability."""

import pytest

from repro.core.permeability import PermeabilityMatrix
from repro.errors import AnalysisError
from repro.experiments.paper_data import PAPER_TABLE1


class TestConstruction:
    def test_from_values_complete(self, system, matrix):
        assert matrix.is_complete()
        assert len(matrix) == 25

    def test_missing_values_rejected(self, system):
        with pytest.raises(AnalysisError, match="missing"):
            PermeabilityMatrix.from_values(
                system, {("CLOCK", 1, 1): 1.0}
            )

    def test_incomplete_read_rejected(self, system):
        empty = PermeabilityMatrix(system)
        with pytest.raises(AnalysisError, match="not been set"):
            empty[("CLOCK", 1, 1)]

    def test_out_of_range_value_rejected(self, system):
        empty = PermeabilityMatrix(system)
        with pytest.raises(AnalysisError, match=r"\[0, 1\]"):
            empty.set(("CLOCK", 1, 1), 1.5)
        with pytest.raises(AnalysisError):
            empty.set(("CLOCK", 1, 1), -0.1)

    def test_unknown_pair_rejected(self, system):
        empty = PermeabilityMatrix(system)
        with pytest.raises(AnalysisError, match="no input/output pair"):
            empty.set(("CLOCK", 9, 9), 0.5)

    def test_bad_key_rejected(self, system):
        empty = PermeabilityMatrix(system)
        with pytest.raises(AnalysisError, match="invalid permeability key"):
            empty.set("CLOCK", 0.5)


class TestAccess:
    def test_index_key_lookup(self, matrix):
        # P^CALC_{3,1}: pulscnt -> i
        assert matrix[("CALC", 3, 1)] == pytest.approx(0.494)

    def test_iopair_key_lookup(self, system, matrix):
        pair = [
            p for p in system.io_pairs("PRES_A")
        ][0]
        assert matrix[pair] == pytest.approx(0.875)

    def test_get_with_default(self, system):
        empty = PermeabilityMatrix(system)
        assert empty.get(("CLOCK", 1, 1)) is None
        assert empty.get(("CLOCK", 1, 1), 0.5) == 0.5

    def test_items_in_table_order(self, matrix):
        pairs = [pair for pair, _ in matrix.items()]
        assert pairs[0].module == "CLOCK"
        assert pairs[-1].module == "PRES_A"
        assert len(pairs) == 25

    def test_as_dict_roundtrip(self, system, matrix):
        rebuilt = PermeabilityMatrix(system)
        rebuilt.update(matrix.as_dict())
        assert rebuilt.is_complete()
        assert rebuilt[("CALC", 3, 1)] == matrix[("CALC", 3, 1)]


class TestAggregates:
    def test_relative_permeability_bounds(self, system, matrix):
        for name in system.module_names():
            value = matrix.relative_permeability(name)
            assert 0.0 <= value <= 1.0

    def test_non_weighted_is_sum(self, matrix):
        # CLOCK: 1.000 + 0.000
        assert matrix.non_weighted_relative_permeability(
            "CLOCK"
        ) == pytest.approx(1.0)

    def test_relative_is_normalized(self, matrix):
        # CLOCK has 2 pairs
        assert matrix.relative_permeability("CLOCK") == pytest.approx(0.5)

    def test_calc_aggregate(self, matrix):
        total = sum(
            PAPER_TABLE1[key] for key in PAPER_TABLE1 if key[0] == "CALC"
        )
        assert matrix.non_weighted_relative_permeability(
            "CALC"
        ) == pytest.approx(total)

    def test_module_ranking_order(self, matrix):
        ranking = matrix.module_ranking()
        values = [v for _, v in ranking]
        assert values == sorted(values, reverse=True)
        # V_REG passes nearly everything through -> highest
        assert ranking[0][0] in ("V_REG", "PRES_A")
