"""Unit tests for repro.model.system (wiring, store, schedule, executor)."""

import pytest

from repro.errors import ModelError, SchedulingError, UnknownSignalError, WiringError
from repro.model.module import CellSpec, FunctionModule
from repro.model.signal import SignalRole, SignalSpec, SignalType
from repro.model.system import (
    ExecutorHooks,
    SlotSchedule,
    SystemExecutor,
    SystemModel,
)


def build_chain():
    """IN -> A -> mid -> B -> OUT, plus a self-loop on A."""
    system = SystemModel("chain")
    system.add_signal(
        SignalSpec("IN", role=SignalRole.SYSTEM_INPUT)
    )
    system.add_signal(SignalSpec("mid"))
    system.add_signal(SignalSpec("loop"))
    system.add_signal(
        SignalSpec("OUT", role=SignalRole.SYSTEM_OUTPUT)
    )
    a = FunctionModule(
        "A", inputs=["in", "fb"], outputs=["mid", "loop"],
        fn=lambda args, state: {
            "mid": args["in"] + 1, "loop": args["fb"] + 1,
        },
    )
    b = FunctionModule(
        "B", inputs=["mid"], outputs=["out"],
        fn=lambda args, state: {"out": 2 * args["mid"]},
    )
    system.add_module(a)
    system.add_module(b)
    system.connect_input("IN", "A", "in")
    system.connect_input("loop", "A", "fb")
    system.bind_output("mid", "A", "mid")
    system.bind_output("loop", "A", "loop")
    system.connect_input("mid", "B", "mid")
    system.bind_output("OUT", "B", "out")
    return system


class TestWiring:
    def test_valid_chain_passes_validation(self):
        build_chain().validate()

    def test_duplicate_module_rejected(self):
        system = SystemModel()
        system.add_module(FunctionModule(
            "A", inputs=[], outputs=["y"], fn=lambda a, s: {"y": 0}))
        with pytest.raises(ModelError):
            system.add_module(FunctionModule(
                "A", inputs=[], outputs=["y"], fn=lambda a, s: {"y": 0}))

    def test_duplicate_signal_rejected(self):
        system = SystemModel()
        system.add_signal(SignalSpec("s"))
        with pytest.raises(ModelError):
            system.add_signal(SignalSpec("s"))

    def test_unconnected_input_fails_validation(self):
        system = build_chain()
        system.add_module(FunctionModule(
            "C", inputs=["dangling"], outputs=["w"],
            fn=lambda a, s: {"w": 0}))
        system.add_signal(SignalSpec("w_sig", role=SignalRole.SYSTEM_OUTPUT))
        system.bind_output("w_sig", "C", "w")
        with pytest.raises(WiringError, match="dangling"):
            system.validate()

    def test_two_drivers_rejected(self):
        system = build_chain()
        with pytest.raises(WiringError):
            system.bind_output("mid", "B", "out")

    def test_system_input_cannot_have_producer(self):
        system = build_chain()
        system.add_module(FunctionModule(
            "C", inputs=[], outputs=["w"], fn=lambda a, s: {"w": 0}))
        with pytest.raises(WiringError):
            system.bind_output("IN", "C", "w")

    def test_input_port_single_binding(self):
        system = build_chain()
        with pytest.raises(WiringError):
            system.connect_input("mid", "A", "in")

    def test_unknown_signal_lookup(self):
        system = build_chain()
        with pytest.raises(UnknownSignalError):
            system.signal("nope")

    def test_signal_without_consumer_fails_validation(self):
        system = build_chain()
        system.add_signal(SignalSpec("orphan"))
        system.add_module(FunctionModule(
            "C", inputs=[], outputs=["w"], fn=lambda a, s: {"w": 0}))
        system.bind_output("orphan", "C", "w")
        with pytest.raises(WiringError, match="orphan"):
            system.validate()


class TestQueries:
    def test_system_inputs_outputs(self):
        system = build_chain()
        assert system.system_inputs() == ["IN"]
        assert system.system_outputs() == ["OUT"]

    def test_producer_consumers(self):
        system = build_chain()
        assert system.producer_of("mid").module == "A"
        assert system.producer_of("IN") is None
        consumers = system.consumers_of("mid")
        assert len(consumers) == 1 and consumers[0].module == "B"

    def test_io_pairs_count(self):
        system = build_chain()
        # A: 2 inputs x 2 outputs + B: 1 x 1
        assert len(system.io_pairs()) == 5
        assert len(system.io_pairs("A")) == 4

    def test_io_pair_indices(self):
        system = build_chain()
        pair = [
            p for p in system.io_pairs("A")
            if p.in_port == "fb" and p.out_port == "loop"
        ][0]
        assert (pair.in_index, pair.out_index) == (2, 2)
        assert pair.label == "P^A_{2,2}"
        assert pair.in_signal == "loop" and pair.out_signal == "loop"

    def test_pairs_into_and_from_signal(self):
        system = build_chain()
        into_mid = system.pairs_into_signal("mid")
        assert {p.in_signal for p in into_mid} == {"IN", "loop"}
        from_mid = system.pairs_from_signal("mid")
        assert {p.out_signal for p in from_mid} == {"OUT"}

    def test_arrestment_has_25_pairs(self, system):
        assert len(system.io_pairs()) == 25


class TestSignalStore:
    def test_initial_values(self):
        system = build_chain()
        from repro.model.system import SignalStore
        store = SignalStore(system)
        assert store["IN"] == 0

    def test_write_quantizes(self):
        system = SystemModel()
        system.add_signal(SignalSpec("s", SignalType.UINT, width=8))
        from repro.model.system import SignalStore
        store = SignalStore(system)
        store["s"] = 257
        assert store["s"] == 1

    def test_unknown_signal(self):
        system = build_chain()
        from repro.model.system import SignalStore
        store = SignalStore(system)
        with pytest.raises(UnknownSignalError):
            store["nope"]


class TestSlotSchedule:
    def test_modules_for_tick_cycles(self):
        sched = SlotSchedule(3)
        sched.every_tick("CLK").assign(0, "A").assign(2, "B")
        assert sched.modules_for_tick(0) == ["CLK", "A"]
        assert sched.modules_for_tick(1) == ["CLK"]
        assert sched.modules_for_tick(2) == ["CLK", "B"]
        assert sched.modules_for_tick(3) == ["CLK", "A"]

    def test_bad_slot_rejected(self):
        sched = SlotSchedule(3)
        with pytest.raises(SchedulingError):
            sched.assign(3, "A")

    def test_nonpositive_slots_rejected(self):
        with pytest.raises(SchedulingError):
            SlotSchedule(0)

    def test_validate_against_unknown_module(self):
        system = build_chain()
        sched = SlotSchedule(2)
        sched.assign(0, "A").assign(1, "B").assign(1, "GHOST")
        with pytest.raises(SchedulingError, match="GHOST"):
            sched.validate_against(system)

    def test_validate_against_unscheduled_module(self):
        system = build_chain()
        sched = SlotSchedule(2)
        sched.assign(0, "A")
        with pytest.raises(SchedulingError, match="B"):
            sched.validate_against(system)


def full_schedule():
    sched = SlotSchedule(2)
    sched.assign(0, "A").assign(1, "B")
    return sched


class TestSystemExecutor:
    def test_run_tick_propagates_values(self):
        system = build_chain()
        executor = SystemExecutor(system, full_schedule())
        executor.store["IN"] = 10
        executor.run_tick()  # slot 0: A
        assert executor.store["mid"] == 11
        executor.run_tick()  # slot 1: B
        assert executor.store["OUT"] == 22

    def test_self_loop_signal_accumulates(self):
        system = build_chain()
        executor = SystemExecutor(system, full_schedule())
        for _ in range(4):
            executor.run_tick()
        # A ran at ticks 0 and 2 -> loop incremented twice
        assert executor.store["loop"] == 2

    def test_reset(self):
        system = build_chain()
        executor = SystemExecutor(system, full_schedule())
        executor.store["IN"] = 10
        executor.run(4)
        executor.reset()
        assert executor.tick == 0
        assert executor.store["mid"] == 0

    def test_marshal_hook_rewrites_args(self):
        system = build_chain()
        hooks = ExecutorHooks(
            marshal=lambda module, args: (
                {**args, "in": 100} if module == "A" else args
            )
        )
        executor = SystemExecutor(system, full_schedule(), hooks)
        executor.run_tick()
        assert executor.store["mid"] == 101

    def test_post_invoke_hook_sees_records(self):
        system = build_chain()
        seen = []
        hooks = ExecutorHooks(post_invoke=seen.append)
        executor = SystemExecutor(system, full_schedule(), hooks)
        executor.run_tick()
        assert [r.module for r in seen] == ["A"]
        assert seen[0].tick == 0
        assert seen[0].outputs["mid"] == 1

    def test_pre_and_post_tick_hooks_fire_in_order(self):
        system = build_chain()
        events = []
        hooks = ExecutorHooks(
            pre_tick=lambda t: events.append(("pre", t)),
            post_tick=lambda t: events.append(("post", t)),
        )
        executor = SystemExecutor(system, full_schedule(), hooks)
        executor.run(2)
        assert events == [("pre", 0), ("post", 0), ("pre", 1), ("post", 1)]

    def test_begin_invoke_end_manual_tick(self):
        system = build_chain()
        executor = SystemExecutor(system, full_schedule())
        executor.begin_tick()
        executor.invoke("A")
        executor.invoke("B")
        executor.end_tick()
        assert executor.tick == 1
        assert executor.store["OUT"] == 2

    def test_invalid_wiring_rejected_at_construction(self):
        system = build_chain()
        system.add_signal(SignalSpec("orphan"))
        system.add_module(FunctionModule(
            "C", inputs=[], outputs=["w"], fn=lambda a, s: {"w": 0}))
        system.bind_output("orphan", "C", "w")
        with pytest.raises(WiringError):
            SystemExecutor(system, full_schedule())
