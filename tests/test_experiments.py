"""Integration tests: the paper's experiments at test scale.

These assert the *qualitative* claims the paper makes — the exact
values depend on campaign scale and are exercised in the benchmark
harness.  All experiments share the session-scoped context, so each
campaign runs at most once for the whole test session.
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    run_extended,
    run_figure3,
    run_profiles,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)
from repro.experiments.context import ExperimentContext, SCALES, default_scale
from repro.experiments.paper_data import PAPER_EH_SET, PAPER_PA_SET
from repro.edm.catalogue import EH_SET


class TestContext:
    def test_unknown_scale_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentContext(scale="huge")

    def test_scales_defined(self):
        assert {"test", "bench", "full"} <= set(SCALES)

    def test_default_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "test")
        assert default_scale() == "test"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ExperimentError):
            default_scale()

    def test_campaigns_cached(self, ctx):
        assert ctx.permeability_estimate() is ctx.permeability_estimate()
        assert ctx.measured_matrix() is ctx.measured_matrix()


class TestTable1:
    def test_rows_cover_all_pairs(self, ctx):
        result = run_table1(ctx)
        assert len(result.rows) == 25
        labels = {row.label for row in result.rows}
        assert "P^CALC_{3,1}" in labels

    def test_zero_pairs_match_paper_exactly(self, ctx):
        """Pairs the paper reports as exactly zero must measure zero:
        they are architectural (debounce, masking), not statistical."""
        result = run_table1(ctx)
        measured = result.measured()
        for key in (
            ("CLOCK", "ms_slot_nbr", "mscnt"),
            ("DIST_S", "TIC1", "pulscnt"),
            ("DIST_S", "TCNT", "stopped"),
            ("CALC", "pulscnt", "SetValue"),
            ("CALC", "slow_speed", "i"),
            ("CALC", "stopped", "SetValue"),
        ):
            assert measured[key] == 0.0

    def test_high_pairs_are_high(self, ctx):
        measured = run_table1(ctx).measured()
        for key in (
            ("CLOCK", "ms_slot_nbr", "ms_slot_nbr"),
            ("DIST_S", "PACNT", "pulscnt"),
            ("CALC", "i", "i"),
            ("V_REG", "SetValue", "OutValue"),
            ("V_REG", "IsValue", "OutValue"),
            ("PRES_A", "OutValue", "TOC2"),
            ("CALC", "slow_speed", "SetValue"),
        ):
            assert measured[key] >= 0.7, key

    def test_render(self, ctx):
        text = run_table1(ctx).render()
        assert "Table 1" in text and "P^CLOCK_{1,1}" in text


class TestTable2:
    def test_selection_matches_paper(self, ctx):
        result = run_table2(ctx)
        assert set(result.selected) == set(PAPER_PA_SET)
        assert result.selection_matches_paper()

    def test_rows_sorted_by_measured_exposure(self, ctx):
        rows = run_table2(ctx).rows
        values = [row.measured_exposure for row in rows]
        assert values == sorted(values, reverse=True)

    def test_render(self, ctx):
        text = run_table2(ctx).render()
        assert "Table 2" in text and "High error exposure" in text


class TestTable3:
    def test_pa_subset_and_costs(self):
        result = run_table3()
        assert result.pa_is_subset
        assert result.eh_cost.rom_bytes == 262
        assert result.pa_cost.ram_bytes == 54
        assert 0.35 <= result.savings["memory_saving"] <= 0.5

    def test_render(self):
        text = run_table3().render()
        assert "262/94" in text and "150/54" in text


class TestTable4:
    def test_eh_equals_pa(self, ctx):
        """The paper's headline for the input error model."""
        result = run_table4(ctx)
        assert result.eh_equals_pa()

    def test_pacnt_dominates(self, ctx):
        result = run_table4(ctx)
        pacnt = result.row("PACNT")
        assert pacnt.total > 0.3
        for quiet in ("TIC1", "TCNT", "ADC"):
            assert result.row(quiet).total == 0.0

    def test_ea4_is_the_dominant_detector(self, ctx):
        pacnt = run_table4(ctx).row("PACNT")
        assert pacnt.per_ea["EA4"] == max(pacnt.per_ea.values())

    def test_all_row_aggregates(self, ctx):
        result = run_table4(ctx)
        all_row = result.row("All")
        assert all_row.n_err == sum(
            result.row(t).n_err for t in ("PACNT", "TIC1", "TCNT", "ADC")
        )

    def test_render(self, ctx):
        assert "Table 4" in run_table4(ctx).render()


class TestFigure3:
    def test_pa_collapses_under_memory_model(self, ctx):
        result = run_figure3(ctx)
        assert result.pa_collapses()

    def test_extended_matches_eh(self, ctx):
        assert run_figure3(ctx).extended_matches_eh()

    def test_groups_present(self, ctx):
        result = run_figure3(ctx)
        for set_name in ("EH", "PA", "extended"):
            for group in ("RAM", "Stack", "Total"):
                triple = result.coverage(set_name, group)
                assert triple.n_runs > 0

    def test_render(self, ctx):
        assert "Figure 3" in run_figure3(ctx).render()


class TestTable5:
    def test_pulscnt_worked_example_shape(self, ctx):
        result = run_table5(ctx)
        assert len(result.pulscnt_paths) == 2

    def test_high_impact_low_exposure_signals(self, ctx):
        """Section 10: IsValue and mscnt matter by impact, not exposure."""
        result = run_table5(ctx)
        assert result.impact_of("IsValue") > 0.5
        assert result.impact_of("mscnt") > 0.10
        assert result.impact_of("ms_slot_nbr") == 0.0

    def test_output_has_no_impact(self, ctx):
        assert run_table5(ctx).impact_of("TOC2") is None

    def test_render(self, ctx):
        text = run_table5(ctx).render()
        assert "Figure 4" in text and "pulscnt" in text


class TestProfilesAndExtended:
    def test_profiles_cover_all_signals(self, ctx):
        result = run_profiles(ctx)
        assert len(result.exposure_rows) == 14
        assert len(result.impact_rows) == 14

    def test_profile_render(self, ctx):
        text = run_profiles(ctx).render()
        assert "Exposure profile" in text and "Impact profile" in text

    def test_extended_selection_equals_eh(self, ctx):
        """Section 10's conclusion, from *measured* permeabilities."""
        result = run_extended(ctx)
        assert result.matches_eh_set()
        assert set(result.selected) == set(EH_SET) == set(PAPER_EH_SET)

    def test_extended_render(self, ctx):
        assert "Section 10" in run_extended(ctx).render()
