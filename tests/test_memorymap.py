"""Unit tests for repro.fi.memory (the injectable address space)."""

import pytest

from repro.errors import InjectionError
from repro.fi.memory import CellKind, MemoryMap, Region


@pytest.fixture
def memory_map(system):
    return MemoryMap(system)


class TestMapStructure:
    def test_regions_partition_the_map(self, memory_map):
        assert memory_map.ram_size() + memory_map.stack_size() == len(
            memory_map
        )

    def test_ram_contains_state_and_signal_stores(self, memory_map):
        kinds = {
            loc.kind for loc in memory_map.locations(Region.RAM)
        }
        assert kinds == {CellKind.STATE, CellKind.SIGNAL}

    def test_stack_contains_args_and_locals(self, memory_map):
        kinds = {
            loc.kind for loc in memory_map.locations(Region.STACK)
        }
        assert kinds == {CellKind.ARG, CellKind.LOCAL}

    def test_multi_byte_cells_have_multiple_locations(self, memory_map):
        pulscnt = [
            loc for loc in memory_map.locations(Region.RAM)
            if loc.cell == "pulscnt_acc"
        ]
        assert len(pulscnt) == 2  # 16-bit = two byte locations
        assert {loc.byte_offset for loc in pulscnt} == {0, 1}

    def test_every_module_has_ram_presence(self, system, memory_map):
        modules_in_ram = {
            loc.module for loc in memory_map.locations(Region.RAM)
        }
        assert modules_in_ram == set(system.module_names())

    def test_indices_are_sequential(self, memory_map):
        for idx, loc in enumerate(memory_map.locations()):
            assert loc.index == idx

    def test_comparable_to_paper_scale(self, memory_map):
        """The paper used 150 RAM + 50 stack locations; our map is of
        the same order of magnitude."""
        assert 50 <= memory_map.ram_size() <= 250
        assert 30 <= memory_map.stack_size() <= 120


class TestLocations:
    def test_valid_bits_of_partial_byte(self, memory_map):
        adc_args = [
            loc for loc in memory_map.locations(Region.STACK)
            if loc.module == "PRES_S" and loc.cell == "ADC"
        ]
        # 10-bit cell: byte 0 has 8 valid bits, byte 1 has 2
        by_offset = {loc.byte_offset: loc.valid_bits for loc in adc_args}
        assert by_offset == {0: 8, 1: 2}

    def test_bit_in_cell_translation(self, memory_map):
        loc = [
            l for l in memory_map.locations()
            if l.cell == "pulscnt_acc" and l.byte_offset == 1
        ][0]
        assert loc.bit_in_cell(0) == 8
        assert loc.bit_in_cell(7) == 15

    def test_bit_out_of_range_rejected(self, memory_map):
        loc = memory_map.locations()[0]
        with pytest.raises(InjectionError):
            loc.bit_in_cell(loc.valid_bits)

    def test_location_lookup_by_index(self, memory_map):
        loc = memory_map.location(0)
        assert loc.index == 0
        with pytest.raises(InjectionError):
            memory_map.location(len(memory_map))

    def test_labels_are_unique(self, memory_map):
        labels = [loc.label for loc in memory_map.locations()]
        assert len(set(labels)) == len(labels)

    def test_describe_lists_everything(self, memory_map):
        text = memory_map.describe()
        assert f"{memory_map.ram_size()} RAM" in text
        assert len(text.splitlines()) == len(memory_map) + 1
