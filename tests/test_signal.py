"""Unit tests for repro.model.signal."""

import pytest

from repro.errors import ModelError
from repro.model.signal import (
    SignalRole,
    SignalSpec,
    SignalType,
    flip_bit,
    quantize,
)


class TestQuantize:
    def test_uint_passthrough_in_range(self):
        assert quantize(1234, SignalType.UINT, 16) == 1234

    def test_uint_wraps_at_width(self):
        assert quantize(65536, SignalType.UINT, 16) == 0
        assert quantize(65537, SignalType.UINT, 16) == 1

    def test_uint_negative_wraps(self):
        assert quantize(-1, SignalType.UINT, 16) == 65535

    def test_uint_8bit(self):
        assert quantize(256, SignalType.UINT, 8) == 0
        assert quantize(300, SignalType.UINT, 8) == 44

    def test_int_two_complement_positive(self):
        assert quantize(32767, SignalType.INT, 16) == 32767

    def test_int_two_complement_negative(self):
        assert quantize(32768, SignalType.INT, 16) == -32768
        assert quantize(-1, SignalType.INT, 16) == -1

    def test_int_wraps(self):
        assert quantize(65536, SignalType.INT, 16) == 0

    def test_bool_collapses(self):
        assert quantize(7, SignalType.BOOL, 8) == 1
        assert quantize(0, SignalType.BOOL, 8) == 0
        assert quantize(True, SignalType.BOOL, 8) == 1

    def test_float_passthrough(self):
        assert quantize(1.5, SignalType.FLOAT, 32) == 1.5

    def test_float_converts_int(self):
        result = quantize(3, SignalType.FLOAT, 32)
        assert isinstance(result, float)
        assert result == 3.0

    def test_truncates_fractional_int(self):
        assert quantize(3.9, SignalType.UINT, 16) == 3


class TestFlipBit:
    def test_flip_sets_bit(self):
        assert flip_bit(0, 3, SignalType.UINT, 16) == 8

    def test_flip_clears_bit(self):
        assert flip_bit(8, 3, SignalType.UINT, 16) == 0

    def test_flip_is_involution(self):
        value = 0xBEEF
        once = flip_bit(value, 7, SignalType.UINT, 16)
        assert flip_bit(once, 7, SignalType.UINT, 16) == value

    def test_flip_high_bit_of_int_changes_sign(self):
        assert flip_bit(0, 15, SignalType.INT, 16) == -32768

    def test_flip_bool_false_becomes_true(self):
        # any set bit makes the stored boolean truthy
        for bit in range(8):
            assert flip_bit(0, bit, SignalType.BOOL, 8) == 1

    def test_flip_bool_true_low_bit_clears(self):
        assert flip_bit(1, 0, SignalType.BOOL, 8) == 0

    def test_flip_bool_true_high_bit_stays_true(self):
        # 1 ^ 0b10 = 0b11, still truthy
        assert flip_bit(1, 1, SignalType.BOOL, 8) == 1

    def test_flip_out_of_range_bit_rejected(self):
        with pytest.raises(ModelError):
            flip_bit(0, 16, SignalType.UINT, 16)

    def test_flip_negative_bit_rejected(self):
        with pytest.raises(ModelError):
            flip_bit(0, -1, SignalType.UINT, 16)

    def test_flip_float_fixed_point(self):
        # bit 16 is the 1.0 bit at <<16 scaling: set it on 0.5, clear on 1.0
        assert flip_bit(0.5, 16, SignalType.FLOAT, 32) == 1.5
        assert flip_bit(1.0, 16, SignalType.FLOAT, 32) == 0.0


class TestSignalSpec:
    def test_basic_construction(self):
        spec = SignalSpec("x", SignalType.UINT, width=8)
        assert spec.name == "x"
        assert spec.role is SignalRole.INTERNAL

    def test_empty_name_rejected(self):
        with pytest.raises(ModelError):
            SignalSpec("")

    def test_bad_width_rejected(self):
        with pytest.raises(ModelError):
            SignalSpec("x", width=0)
        with pytest.raises(ModelError):
            SignalSpec("x", width=65)

    def test_bool_width_limited(self):
        with pytest.raises(ModelError):
            SignalSpec("x", SignalType.BOOL, width=16)

    def test_min_above_max_rejected(self):
        with pytest.raises(ModelError):
            SignalSpec("x", minimum=10, maximum=5)

    def test_role_predicates(self):
        inp = SignalSpec("a", role=SignalRole.SYSTEM_INPUT)
        out = SignalSpec("b", role=SignalRole.SYSTEM_OUTPUT)
        mid = SignalSpec("c")
        assert inp.is_system_input and not inp.is_system_output
        assert out.is_system_output and not out.is_internal
        assert mid.is_internal

    def test_in_spec_bounds(self):
        spec = SignalSpec("x", minimum=0, maximum=10)
        assert spec.in_spec(0)
        assert spec.in_spec(10)
        assert not spec.in_spec(-1)
        assert not spec.in_spec(11)

    def test_in_spec_unbounded(self):
        spec = SignalSpec("x")
        assert spec.in_spec(10**9)

    def test_quantize_delegates(self):
        spec = SignalSpec("x", SignalType.UINT, width=8)
        assert spec.quantize(257) == 1

    def test_flip_bit_delegates(self):
        spec = SignalSpec("x", SignalType.UINT, width=8)
        assert spec.flip_bit(0, 7) == 128

    def test_representable_range_uint(self):
        assert SignalSpec("x", SignalType.UINT, width=8).representable_range() == (0, 255)

    def test_representable_range_int(self):
        assert SignalSpec("x", SignalType.INT, width=8).representable_range() == (-128, 127)

    def test_representable_range_bool(self):
        assert SignalSpec("x", SignalType.BOOL, width=8).representable_range() == (0, 1)

    def test_frozen(self):
        spec = SignalSpec("x")
        with pytest.raises(AttributeError):
            spec.name = "y"
