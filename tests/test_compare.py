"""Tests for cross-campaign analytics and the ``analyze`` CLI.

A diff between two runs must flag a changed proportion only when its
Wilson intervals actually separate, orient the regression direction by
metric (detection coverage down = bad, permeability up = bad), and be
reachable end-to-end through ``python -m repro analyze`` on a results
database populated by a real experiment run.
"""

import math

import pytest

from repro.__main__ import main as repro_main
from repro.analysis.compare import (
    ProportionDelta,
    RunComparison,
    compare_detection,
    compare_permeability,
    compare_results,
)
from repro.analysis.intervals import wilson_interval
from repro.errors import AnalysisError
from repro.fi.campaign import (
    DetectionResult,
    MemoryCampaignResult,
    PermeabilityEstimate,
)
from repro.fi.store import SqliteResultStore


def _estimate(counts):
    """A PermeabilityEstimate from {(m, i, k): (direct, active)}."""
    direct = {key: pair[0] for key, pair in counts.items()}
    active = {key[:2]: pair[1] for key, pair in counts.items()}
    values = {
        key: (pair[0] / pair[1] if pair[1] else 0.0)
        for key, pair in counts.items()
    }
    return PermeabilityEstimate(
        direct_counts=direct, active_runs=active, values=values
    )


def _detection(per_target):
    """A DetectionResult from {target: {ea: count, "n": trials}}."""
    targets = sorted(per_target)
    eas = sorted(
        {ea for rows in per_target.values() for ea in rows if ea != "n"}
    )
    detections = {
        (target, ea): rows.get(ea, 0)
        for target, rows in per_target.items()
        for ea in eas
    }
    return DetectionResult(
        targets=targets,
        ea_names=eas,
        n_injected={t: per_target[t]["n"] for t in targets},
        n_err={t: per_target[t]["n"] for t in targets},
        detections=detections,
        any_detections={
            t: max(per_target[t].get(ea, 0) for ea in eas) for t in targets
        },
        run_records={},
        run_latencies={},
    )


class TestProportionDelta:
    def _delta(self, a, b, polarity=1, level=0.95):
        return ProportionDelta(
            key="x",
            metric="m",
            counts_a=a,
            counts_b=b,
            ci_a=wilson_interval(*a, level) if a[1] else (0.0, 1.0),
            ci_b=wilson_interval(*b, level) if b[1] else (0.0, 1.0),
            polarity=polarity,
        )

    def test_noise_is_not_significant(self):
        delta = self._delta((3, 6), (4, 6))
        assert not delta.significant
        assert not delta.regression and not delta.improvement

    def test_separated_intervals_flag(self):
        delta = self._delta((95, 100), (5, 100))
        assert delta.significant
        assert delta.regression  # coverage dropped (polarity +1)
        flipped = self._delta((95, 100), (5, 100), polarity=-1)
        assert flipped.improvement  # permeability dropped: good

    def test_zero_trials_maximally_uncertain(self):
        delta = self._delta((0, 0), (10, 10))
        assert delta.ci_a == (0.0, 1.0)
        assert not delta.significant

    def test_empty_stratum_is_unknown_not_zero(self):
        # a stratum nobody sampled must never separate from a sampled
        # one: 0/0 is "unknown", not a certified 0.0 that a healthy
        # 8/10 would then read as a regression against
        delta = self._delta((0, 0), (8, 10))
        assert not delta.measured
        assert math.isnan(delta.value_a)
        assert math.isnan(delta.delta)
        assert not delta.significant
        assert not delta.regression and not delta.improvement

    def test_empty_stratum_describe_renders_dashes(self):
        text = self._delta((0, 0), (8, 10)).describe()
        assert text.startswith("  ")  # no !! / ++ marker
        assert "—" in text
        assert "nan" not in text
        # the sampled side still renders its numbers
        assert "0.800" in text

    def test_describe_markers(self):
        assert self._delta((95, 100), (5, 100)).describe().startswith("!!")
        assert self._delta(
            (5, 100), (95, 100)
        ).describe().startswith("++")


class TestComparePermeability:
    def test_union_of_keys_and_polarity(self):
        a = _estimate({("M", "i", "o"): (0, 50)})
        b = _estimate({("M", "i", "o"): (45, 50), ("N", "x", "y"): (1, 4)})
        comparison = compare_permeability(a, b, "ra", "rb")
        keys = [d.key for d in comparison.deltas]
        assert keys == ["M.i->o", "N.x->y"]
        (worse,) = comparison.regressions  # permeability shot up
        assert worse.key == "M.i->o"
        assert "ra" in comparison.render() and "!!" in comparison.render()

    def test_identical_runs_all_noise(self):
        a = _estimate({("M", "i", "o"): (3, 6)})
        assert compare_permeability(a, a).significant == []

    def test_empty_stratum_not_reported_as_regression(self):
        # run A never exercised M.i->o (0 active runs); run B measured
        # a high permeability there — the diff must stay quiet rather
        # than compare B against a phantom 0.0
        a = _estimate({("M", "i", "o"): (0, 0), ("N", "x", "y"): (2, 8)})
        b = _estimate({("M", "i", "o"): (8, 10), ("N", "x", "y"): (2, 8)})
        comparison = compare_permeability(a, b, "ra", "rb")
        assert comparison.regressions == []
        assert comparison.significant == []
        assert "0 regressions" in comparison.render()


class TestCompareDetection:
    def test_per_ea_and_any_rows(self):
        a = _detection({"ADC": {"EA1": 40, "EA2": 2, "n": 40}})
        b = _detection({"ADC": {"EA1": 4, "EA2": 2, "n": 40}})
        comparison = compare_detection(a, b)
        keys = [d.key for d in comparison.deltas]
        assert keys == ["ADC/EA1", "ADC/EA2", "ADC/*"]
        assert [d.key for d in comparison.regressions] == [
            "ADC/EA1", "ADC/*",
        ]

    def test_disjoint_ea_sets_stay_comparable(self):
        a = _detection({"ADC": {"OLD": 30, "n": 40}})
        b = _detection({"ADC": {"NEW": 30, "n": 40}})
        comparison = compare_detection(a, b)
        assert {d.key for d in comparison.deltas} == {
            "ADC/OLD", "ADC/NEW", "ADC/*",
        }


class TestCompareResults:
    def test_dispatch(self):
        perm = _estimate({("M", "i", "o"): (1, 4)})
        det = _detection({"ADC": {"EA1": 1, "n": 4}})
        assert compare_results(perm, perm).metric == "permeability"
        assert compare_results(det, det).metric == "detection"
        with pytest.raises(AnalysisError):
            compare_results(perm, det)
        with pytest.raises(AnalysisError):
            memory = MemoryCampaignResult(ea_names=[], records=[])
            compare_results(memory, memory)

    def test_render_summary_line(self):
        comparison = RunComparison(
            run_a="a", run_b="b", metric="permeability", level=0.9
        )
        assert "0 keys compared" in comparison.render()


@pytest.fixture(scope="module")
def results_db(tmp_path_factory):
    """A results database with two seeds' worth of test-scale runs."""
    from repro.experiments.context import ExperimentContext
    from repro.experiments.runner import EXPERIMENTS

    path = str(tmp_path_factory.mktemp("analyze") / "results.db")
    for run, seed in (("base", 2002), ("next", 7)):
        ctx = ExperimentContext(
            scale="test", seed=seed, results_db=path, run_name=run
        )
        EXPERIMENTS["table1"](ctx)
    return path


class TestAnalyzeCLI:
    def test_list_empty_db(self, tmp_path, capsys):
        from repro.fi.store import SqliteResultStore

        path = str(tmp_path / "results.db")
        with SqliteResultStore(path) as store:
            store.list_results()  # forces schema creation, no content
        assert repro_main(["analyze", "--db", path, "list"]) == 0
        assert "empty results database" in capsys.readouterr().out

    def test_list(self, results_db, capsys):
        assert repro_main(["analyze", "--db", results_db, "list"]) == 0
        out = capsys.readouterr().out
        assert "base/permeability" in out
        assert "next/permeability" in out
        assert "seed=7" in out

    def test_show(self, results_db, capsys):
        assert repro_main(
            ["analyze", "--db", results_db, "show", "base/permeability"]
        ) == 0
        out = capsys.readouterr().out
        assert "permeability estimate" in out
        assert "module-port pairs" in out

    def test_diff_same_run_is_quiet(self, results_db, capsys):
        assert repro_main([
            "analyze", "--db", results_db,
            "diff", "base/permeability", "base/permeability",
        ]) == 0
        out = capsys.readouterr().out
        assert "0 regressions" in out
        assert "Wilson 95% CIs" in out

    def test_diff_across_seeds_reports_deltas(self, results_db, capsys):
        repro_main([
            "analyze", "--db", results_db,
            "diff", "base/permeability", "next/permeability",
            "--level", "0.9",
        ])
        out = capsys.readouterr().out
        assert "Wilson 90% CIs" in out
        assert "keys compared" in out

    def test_unknown_run_errors(self, results_db, capsys):
        assert repro_main(
            ["analyze", "--db", results_db, "show", "nope/nothing"]
        ) == 2
        assert "error" in capsys.readouterr().err

    def test_import_and_rely_on_db(self, results_db, tmp_path, capsys):
        from repro.fi import CampaignConfig, CampaignExecutor, CheckpointPolicy

        checkpoint = str(tmp_path / "unit.json")
        CampaignExecutor(
            CampaignConfig(checkpoint=CheckpointPolicy(path=checkpoint)),
            campaign="unit",
        ).run_tasks(lambda i: i, 3, "fp")
        assert repro_main(
            ["analyze", "--db", results_db, "import", checkpoint]
        ) == 0
        assert "3/3 tasks" in capsys.readouterr().out
        assert repro_main(["analyze", "--db", results_db, "list"]) == 0
        assert "unit" in capsys.readouterr().out

    def test_missing_db_is_one_clean_error_line(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.db")
        assert repro_main(["analyze", "--db", missing, "list"]) == 2
        err = capsys.readouterr().err
        assert err == f"error: {missing}: no such results database\n"
        assert repro_main(
            ["analyze", "--db", missing, "diff", "a", "b"]
        ) == 2
        assert "no such results database" in capsys.readouterr().err

    def test_non_database_file_is_one_clean_error_line(
        self, tmp_path, capsys
    ):
        bogus = tmp_path / "notes.txt"
        bogus.write_text("this is not a sqlite database\n" * 20)
        assert repro_main(["analyze", "--db", str(bogus), "list"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert err.count("\n") == 1  # one line, no traceback
        assert "not a usable sqlite results database" in err

    def test_saved_results_survive_in_sqlite(self, results_db):
        with SqliteResultStore(results_db) as store:
            loaded = store.load_result("base/permeability")
            assert loaded.values
            meta = store.result_meta("base/permeability")
            assert meta["scale"] == "test"
