"""Edge-case and failure-injection tests across the stack.

These exercise the corners the main suites do not: derailed
scheduling, starvation, extreme corruption values, boundary timing,
and variant-target campaigns.
"""

import pytest

from repro.edm import EA_BY_NAME, MonitorBank
from repro.fi import (
    FaultInjector,
    InputSignalFlip,
    MemoryMap,
    PeriodicMemoryFlip,
    PermeabilityCampaign,
    Region,
)
from repro.fi.memory import CellKind
from repro.target import constants as C
from repro.target.simulation import ArrestmentSimulator
from repro.target.variants import telemetry_simulator


class TestSchedulerDerailment:
    """Corrupting the slot machinery must degrade gracefully."""

    def _slot_location(self, system, cell):
        return next(
            loc for loc in MemoryMap(system).locations()
            if loc.module == "CLOCK" and loc.cell == cell
            and loc.byte_offset == 0
        )

    def test_corrupted_successor_table_starves_modules(
        self, mid_case, system
    ):
        """A successor entry pointing backwards traps the cycle; the
        run must still terminate (timeout/abort) and EA5 must see it."""
        loc = self._slot_location(system, "slot_succ7")
        sim = ArrestmentSimulator(mid_case)
        bank = MonitorBank(list(EA_BY_NAME.values())).attach(sim)
        FaultInjector(
            # one early flip; period longer than any run
            PeriodicMemoryFlip(loc, 2, period_ticks=10**6, start_tick=100)
        ).attach(sim)
        result = sim.run()
        assert result.ticks_run > 0  # terminated
        assert bank.state("EA5").fired

    def test_out_of_range_slot_recovers(self, mid_case):
        """Poking a huge slot value restarts the cycle instead of
        hanging the dispatcher."""
        sim = ArrestmentSimulator(mid_case)
        sim.add_pre_tick(
            lambda tick: (
                sim.executor.store.poke("ms_slot_nbr", 40000)
                if tick == 500 else None
            )
        )
        result = sim.run()
        # the system recovers and still arrests the aircraft
        assert result.arrested

    def test_modules_keep_running_after_phase_shift(self, mid_case):
        sim = ArrestmentSimulator(mid_case)
        invocations = []
        sim.add_post_invoke(lambda r: invocations.append(r.module))
        sim.add_pre_tick(
            lambda tick: (
                sim.executor.store.poke("ms_slot_nbr", 40000)
                if tick == 500 else None
            )
        )
        sim.run()
        late = invocations[-200:]
        assert "CALC" in late and "V_REG" in late


class TestExtremeCorruption:
    def test_max_value_pokes_everywhere_survive(self, mid_case, system):
        """Poking every internal signal to its maximum representable
        value mid-run must never crash the modules."""
        internal = [
            s.name for s in system.signals() if not s.is_system_input
        ]

        def clobber(tick):
            if tick == 800:
                for name in internal:
                    spec = system.signal(name)
                    sim.executor.store.poke(
                        name, spec.representable_range()[1]
                    )

        sim = ArrestmentSimulator(mid_case, timeout_s=2.0)
        sim.add_pre_tick(clobber)
        sim.run()  # must not raise

    def test_all_state_cells_clobbered_survive(self, mid_case, system):
        def clobber(tick):
            if tick == 800:
                for module in sim.system.modules():
                    for spec in module.state.specs():
                        module.state.poke(spec.name, (1 << spec.width) - 1)

        sim = ArrestmentSimulator(mid_case, timeout_s=2.0)
        sim.add_pre_tick(clobber)
        sim.run()  # must not raise


class TestBoundaryTiming:
    def test_injection_at_tick_zero(self, mid_case):
        sim = ArrestmentSimulator(mid_case)
        injector = FaultInjector(InputSignalFlip("TCNT", 0, 15)).attach(sim)
        sim.run()
        assert injector.injected
        assert injector.first_injection_tick == 0

    def test_injection_at_last_tick(self, mid_case, golden_result):
        last = golden_result.ticks_run - 1
        sim = ArrestmentSimulator(mid_case)
        injector = FaultInjector(
            InputSignalFlip("PACNT", last, 0)
        ).attach(sim)
        result = sim.run()
        assert injector.injected
        # injected after completion: not an active error
        assert injector.first_injection_tick > result.completion_tick

    def test_period_one_injects_every_tick(self, mid_case, system):
        loc = next(
            l for l in MemoryMap(system).locations()
            if l.kind is CellKind.STATE and l.cell == "mscnt"
        )
        sim = ArrestmentSimulator(mid_case, timeout_s=0.05)
        injector = FaultInjector(
            PeriodicMemoryFlip(loc, 0, period_ticks=1)
        ).attach(sim)
        result = sim.run()
        assert len(injector.events) == result.ticks_run


class TestVariantCampaigns:
    def test_permeability_campaign_on_variant(self, test_cases):
        """The campaign drivers are target-shape agnostic."""
        campaign = PermeabilityCampaign(
            telemetry_simulator, [test_cases[12]],
            runs_per_input=2, seed=3,
        )
        estimate = campaign.run()
        assert len(estimate.values) == 29
        report_pairs = [
            k for k in estimate.values if k[0] == "REPORT"
        ]
        assert len(report_pairs) == 4

    def test_variant_memory_map_includes_report(self, test_cases):
        sim = telemetry_simulator(test_cases[0])
        memory_map = MemoryMap(sim.system)
        report_locations = [
            loc for loc in memory_map.locations()
            if loc.module == "REPORT"
        ]
        kinds = {loc.kind for loc in report_locations}
        assert CellKind.STATE in kinds and CellKind.ARG in kinds


class TestOverrunAbort:
    def test_stuck_low_pressure_aborts_at_limit(self, test_cases):
        """Forcing the brake command to zero overruns the runway; the
        simulation aborts at the margin instead of running forever."""
        tc = test_cases[4]  # light and fast
        sim = ArrestmentSimulator(tc)
        sim.add_pre_tick(
            lambda tick: sim.executor.store.poke("TOC2", 0)
        )
        result = sim.run()
        assert not result.arrested
        assert result.failed
        limit = C.MAX_STOPPING_DISTANCE_M + C.OVERRUN_ABORT_MARGIN_M
        assert result.stop_distance_m <= limit + 1.0
