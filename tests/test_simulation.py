"""Integration tests for the closed-loop arrestment simulation."""

import pytest

from repro.target import constants as C
from repro.target.simulation import ArrestmentSimulator, SignalTraces
from repro.target.testcases import standard_test_cases


class TestHealthyArrestment:
    def test_mid_case_arrests_within_spec(self, golden_result):
        assert golden_result.arrested
        assert not golden_result.failed
        assert golden_result.stop_distance_m < C.MAX_STOPPING_DISTANCE_M
        assert golden_result.verdict.peak_retardation_g < C.MAX_RETARDATION_G

    def test_completion_tick_before_end(self, golden_result):
        assert 0 < golden_result.completion_tick <= golden_result.ticks_run

    @pytest.mark.parametrize("index", [0, 4, 20, 24])
    def test_envelope_corners_arrest_within_spec(self, test_cases, index):
        result = ArrestmentSimulator(test_cases[index]).run()
        assert result.arrested and not result.failed

    def test_determinism(self, mid_case, golden_result):
        again = ArrestmentSimulator(mid_case).run()
        assert again.ticks_run == golden_result.ticks_run
        assert again.stop_distance_m == golden_result.stop_distance_m
        for signal in ("pulscnt", "SetValue", "TOC2"):
            assert again.traces.first_difference(
                golden_result.traces, signal
            ) is None

    def test_faster_engagement_longer_runout(self, test_cases):
        slow = ArrestmentSimulator(test_cases[0]).run()   # 40 m/s
        fast = ArrestmentSimulator(test_cases[4]).run()   # 70 m/s
        assert fast.stop_distance_m > slow.stop_distance_m

    def test_traces_recorded_for_all_signals(self, system, golden_result):
        traced = set(golden_result.traces.signals())
        assert traced == set(system.signal_names())

    def test_trace_recording_can_be_disabled(self, mid_case):
        sim = ArrestmentSimulator(mid_case, timeout_s=0.1)
        sim.record_traces = False
        result = sim.run()
        assert result.traces.signals() == []

    def test_timeout_without_arrest(self, mid_case):
        result = ArrestmentSimulator(mid_case, timeout_s=0.05).run()
        assert not result.arrested
        assert result.failed  # not arrested -> distance failure


class TestSlotDispatch:
    def test_modules_run_in_their_slots(self, mid_case):
        sim = ArrestmentSimulator(mid_case, timeout_s=0.1)
        invocations = []
        sim.add_post_invoke(
            lambda record: invocations.append((record.tick, record.module))
        )
        sim.run()
        for tick, module in invocations:
            if module == "CLOCK":
                continue
            # module M at slot s runs at ticks == s - 1 (mod N_SLOTS),
            # because CLOCK emits slot (tick + 1) at tick `tick`
            slot = C.MODULE_SLOTS[module]
            assert (tick + 1) % C.N_SLOTS == slot

    def test_each_module_runs(self, mid_case):
        sim = ArrestmentSimulator(mid_case, timeout_s=0.1)
        modules = set()
        sim.add_post_invoke(lambda r: modules.add(r.module))
        sim.run()
        assert modules == {
            "CLOCK", "DIST_S", "CALC", "PRES_S", "V_REG", "PRES_A",
        }


class TestSignalTraces:
    def test_first_difference_none_for_identical(self):
        a, b = SignalTraces(), SignalTraces()
        for traces in (a, b):
            traces.record("s", 0, 1)
            traces.record("s", 1, 2)
        assert a.first_difference(b, "s") is None

    def test_first_difference_value(self):
        a, b = SignalTraces(), SignalTraces()
        a.record("s", 0, 1)
        a.record("s", 1, 2)
        b.record("s", 0, 1)
        b.record("s", 1, 99)
        assert a.first_difference(b, "s") == 1

    def test_first_difference_missing_write(self):
        a, b = SignalTraces(), SignalTraces()
        a.record("s", 0, 1)
        a.record("s", 5, 2)
        b.record("s", 0, 1)
        assert a.first_difference(b, "s") == 5

    def test_first_difference_tick_mismatch(self):
        a, b = SignalTraces(), SignalTraces()
        a.record("s", 0, 1)
        b.record("s", 2, 1)
        assert a.first_difference(b, "s") == 0

    def test_unknown_signal_is_empty_stream(self):
        traces = SignalTraces()
        assert traces.stream("ghost") == []


class TestCorruptInput:
    def test_corrupt_input_flips_register_and_store(self, mid_case):
        sim = ArrestmentSimulator(mid_case)
        before, after = sim.corrupt_input("TCNT", 4)
        assert after == before ^ 16
        assert sim.sensors.tcnt == after
        assert sim.executor.store["TCNT"] == after

    def test_corrupt_adc_is_transient(self, mid_case):
        """The ADC result register is refreshed at the next conversion."""
        sim = ArrestmentSimulator(mid_case)
        sim.corrupt_input("ADC", 9)
        assert sim.sensors.adc == 512
        sim.sensors.advance(0.0, 0.0)
        assert sim.sensors.adc == 0
