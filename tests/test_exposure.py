"""Unit tests for repro.core.exposure — checked against paper Table 2."""

import pytest

from repro.core.exposure import (
    all_signal_exposures,
    exposure_ranking,
    module_exposure,
    non_weighted_module_exposure,
    signal_exposure,
)
from repro.experiments.paper_data import PAPER_TABLE2_EXPOSURE


class TestSignalExposure:
    @pytest.mark.parametrize(
        "signal,expected", sorted(PAPER_TABLE2_EXPOSURE.items())
    )
    def test_matches_paper_table2(self, matrix, signal, expected):
        assert signal_exposure(matrix, signal) == pytest.approx(
            expected, abs=5e-4
        )

    def test_system_inputs_have_no_exposure(self, matrix):
        for signal in ("PACNT", "TIC1", "TCNT", "ADC"):
            assert signal_exposure(matrix, signal) is None

    def test_all_signal_exposures_covers_everything(self, system, matrix):
        exposures = all_signal_exposures(matrix)
        assert set(exposures) == set(system.signal_names())

    def test_exposure_is_column_sum(self, system, matrix):
        # X_s(i) = sum of CALC permeabilities into output i
        expected = sum(
            matrix[pair] for pair in system.pairs_into_signal("i")
        )
        assert signal_exposure(matrix, "i") == pytest.approx(expected)


class TestModuleExposure:
    def test_non_weighted_sums_input_signal_exposures(self, matrix):
        # V_REG inputs: SetValue (1.478) + IsValue (0.000)
        assert non_weighted_module_exposure(
            matrix, "V_REG"
        ) == pytest.approx(1.478, abs=5e-4)

    def test_weighted_divides_by_input_count(self, matrix):
        assert module_exposure(matrix, "V_REG") == pytest.approx(
            1.478 / 2, abs=5e-4
        )

    def test_system_input_signals_contribute_zero(self, matrix):
        # DIST_S reads only system inputs -> zero exposure
        assert non_weighted_module_exposure(matrix, "DIST_S") == 0.0
        assert module_exposure(matrix, "DIST_S") == 0.0

    def test_pres_a_exposure_is_outvalue(self, matrix):
        assert non_weighted_module_exposure(
            matrix, "PRES_A"
        ) == pytest.approx(1.781, abs=5e-4)


class TestRanking:
    def test_ranking_descending_and_complete(self, matrix):
        ranking = exposure_ranking(matrix)
        values = [v for _, v in ranking]
        assert values == sorted(values, reverse=True)
        # 10 non-system-input signals
        assert len(ranking) == 10

    def test_paper_top_three(self, matrix):
        top = [name for name, _ in exposure_ranking(matrix)[:3]]
        assert top == ["OutValue", "i", "SetValue"]

    def test_system_inputs_excluded(self, matrix):
        names = {name for name, _ in exposure_ranking(matrix)}
        assert names.isdisjoint({"PACNT", "TIC1", "TCNT", "ADC"})
