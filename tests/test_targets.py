"""Tests for the target-system registry."""

import pytest

from repro.errors import ModelError
from repro.experiments.context import ExperimentContext
from repro.fi.campaign import DetectionCampaign, PermeabilityCampaign
from repro.targets import (
    TargetSystem,
    available_targets,
    get_target,
    register_target,
)


class TestRegistry:
    def test_both_shipped_targets_registered(self):
        names = available_targets()
        assert "arrestment" in names
        assert "watertank" in names

    def test_unknown_target_rejected(self):
        with pytest.raises(ModelError):
            get_target("toaster")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ModelError):
            register_target(get_target("arrestment"))

    def test_replace_allows_override(self):
        target = get_target("arrestment")
        assert register_target(target, replace=True) is target

    def test_non_target_rejected(self):
        with pytest.raises(ModelError):
            register_target("arrestment")


class TestArrestmentTarget:
    def test_bundles_everything(self):
        target = get_target("arrestment")
        system = target.build_system()
        assert system.name == "arrestment"
        assert len(target.standard_test_cases()) == 25
        assert [spec.name for spec in target.assertion_specs()] == [
            f"EA{i}" for i in range(1, 8)
        ]
        memory_map = target.memory_map()
        assert memory_map.ram_size() > 0
        assert memory_map.stack_size() > 0

    def test_simulator_factory_runs(self):
        target = get_target("arrestment")
        case = target.standard_test_cases()[12]
        result = target.simulator_factory(case).run()
        assert result.arrested and not result.failed


class TestWatertankTarget:
    def test_simulator_factory_runs(self):
        target = get_target("watertank")
        case = target.standard_test_cases()[4]
        result = target.simulator_factory(case).run()
        assert not result.failed

    def test_assertions_guard_tank_signals(self):
        specs = get_target("watertank").assertion_specs()
        assert len(specs) == 6


class TestCampaignsAcceptTargets:
    def test_factory_resolution(self, test_cases):
        campaign = PermeabilityCampaign(
            get_target("arrestment"), [test_cases[12]],
            runs_per_input=1, seed=3,
        )
        simulator = campaign.factory(test_cases[12])
        assert simulator.system.name == "arrestment"

    def test_default_cases_come_from_target(self):
        target = get_target("watertank")
        campaign = DetectionCampaign(
            target,
            assertion_specs=target.assertion_specs(),
            runs_per_signal=1,
        )
        assert len(campaign.test_cases) == len(
            target.standard_test_cases()
        )


class TestContextTargets:
    def test_context_accepts_target_name(self):
        ctx = ExperimentContext(scale="test", target="watertank")
        assert ctx.target.name == "watertank"
        assert ctx.test_cases
        assert "VALVE_POS" in ctx.system.system_outputs()

    def test_context_accepts_target_object(self):
        ctx = ExperimentContext(
            scale="test", target=get_target("arrestment")
        )
        assert ctx.target.name == "arrestment"

    def test_default_target_is_arrestment(self):
        ctx = ExperimentContext(scale="test")
        assert ctx.target.name == "arrestment"
        assert ctx.simulator_factory is get_target(
            "arrestment"
        ).simulator_factory
