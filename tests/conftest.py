"""Shared fixtures for the test suite.

Expensive artefacts (experiment context with its cached campaigns,
golden runs) are session-scoped; cheap structural fixtures are
function-scoped so tests can mutate them freely.
"""

from __future__ import annotations

import pytest

from repro.experiments.context import ExperimentContext
from repro.experiments.paper_data import paper_matrix
from repro.model.graph import SignalGraph
from repro.target.simulation import ArrestmentSimulator
from repro.target.testcases import standard_test_cases
from repro.target.wiring import build_arrestment_system


@pytest.fixture
def system():
    """A fresh arrestment system model."""
    return build_arrestment_system()


@pytest.fixture
def graph(system):
    return SignalGraph(system)


@pytest.fixture
def matrix(system):
    """The paper's Table-1 permeabilities on the fresh system."""
    return paper_matrix(system)


@pytest.fixture(scope="session")
def test_cases():
    return standard_test_cases()


@pytest.fixture(scope="session")
def mid_case(test_cases):
    """The mid-envelope test case (14 t at 55 m/s)."""
    return test_cases[12]


@pytest.fixture(scope="session")
def golden_result(mid_case):
    """One completed fault-free arrestment (shared, read-only)."""
    return ArrestmentSimulator(mid_case).run()


@pytest.fixture(scope="session")
def ctx():
    """Session-scoped experiment context at the smallest scale.

    The campaigns inside are cached, so the integration tests share
    one permeability / detection / memory campaign each.
    """
    return ExperimentContext(scale="test", seed=2002)
