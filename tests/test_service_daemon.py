"""End-to-end campaign-service tests.

Two layers:

* protocol tests against an **in-process** daemon (job children are
  stubbed, so they are fast and deterministic);
* crash-recovery tests against a **subprocess** daemon running real
  campaigns: ``kill -9`` mid-run, restart, and the recovered output
  must be bit-identical to an uninterrupted run — on the serial and
  the process backend, including a child hard-killed mid-checkpoint-
  flush (``REPRO_CHAOS_KILL_FLUSH``).
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import ServiceError
from repro.experiments.runner import EXPERIMENTS
from repro.service import ServiceClient, ServiceDaemon
from repro.service.jobs import JobQueue
from repro.service.scheduler import Scheduler, SchedulerConfig

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


@pytest.fixture(scope="session")
def expected_table1(ctx):
    """What an uninterrupted table1 run renders (the conftest context
    is the same target/scale/seed the service specs below use)."""
    return EXPERIMENTS["table1"](ctx).render() + "\n"


# ======================================================================
# Protocol, against an in-process daemon with stubbed children.
# ======================================================================
@pytest.fixture
def daemon(tmp_path, monkeypatch):
    def stub(job_id, spec, job_dir, width, results_db, attempt):
        signal.signal(signal.SIGTERM, lambda *_: os._exit(75))
        with open(os.path.join(job_dir, "output.txt"), "w") as f:
            f.write("stub\n")
        time.sleep(float(spec.get("env", {}).get("STUB_SLEEP", 0)))
        os._exit(0)

    monkeypatch.setattr("repro.service.scheduler._job_main", stub)
    spool = str(tmp_path / "spool")
    daemon = ServiceDaemon(
        spool,
        SchedulerConfig(
            budget=2, backoff_base_s=0.01, backoff_seed=3, prewarm=False,
        ),
        status_interval_s=0.05,
        echo=lambda *_: None,
    )
    thread = threading.Thread(target=daemon.serve, daemon=True)
    thread.start()
    client = ServiceClient(spool)
    deadline = time.time() + 10
    while not client.alive() and time.time() < deadline:
        time.sleep(0.02)
    assert client.alive(), "daemon did not come up"
    yield daemon, client
    client.drain()
    thread.join(timeout=10)
    assert not thread.is_alive()


class TestProtocol:
    def test_ping(self, daemon):
        _, client = daemon
        reply = client.request({"op": "ping"})
        assert reply["ok"] and reply["pid"] == os.getpid()

    def test_submit_runs_to_done(self, daemon):
        _, client = daemon
        reply = client.submit({"experiment": "table1", "scale": "test"})
        assert reply["ok"] and not reply.get("offline")
        job_id = reply["job"]
        final = None
        for payload in client.status_stream(job_id):
            final = payload
            if payload.get("final"):
                break
        assert final["jobs"][0]["state"] == "done"
        assert final["queue"]["done"] == 1

    def test_submit_refuses_bad_spec(self, daemon):
        _, client = daemon
        with pytest.raises(ServiceError, match="unknown job spec"):
            client.submit({"experiment": "table1", "bogus": 1})
        reply = client.request(
            {"op": "submit", "spec": {"experiment": "nope"}}
        )
        assert not reply["ok"] and "nope" in reply["error"]

    def test_cancel_running_job(self, daemon):
        _, client = daemon
        job_id = client.submit({
            "experiment": "table1",
            "env": {"STUB_SLEEP": "30"},
        })["job"]
        deadline = time.time() + 10
        state = None
        while time.time() < deadline:
            rows = client.status(job_id)["jobs"]
            state = rows[0]["state"] if rows else None
            if state == "running":
                break
            time.sleep(0.02)
        assert state == "running"
        client.cancel(job_id)
        while time.time() < deadline:
            state = client.status(job_id)["jobs"][0]["state"]
            if state in ("cancelled", "done", "failed"):
                break
            time.sleep(0.05)
        assert state == "cancelled"

    def test_unknown_op_rejected(self, daemon):
        _, client = daemon
        reply = client.request({"op": "frobnicate"})
        assert not reply["ok"] and "frobnicate" in reply["error"]

    def test_status_reports_counters(self, daemon):
        daemon_obj, client = daemon
        payload = client.status()
        assert payload["ok"]
        assert set(payload["queue"]) == {
            "queued", "running", "done", "failed", "cancelled",
        }
        assert isinstance(payload["counters"], dict)


class TestOfflineClient:
    def test_offline_submit_enqueues_durably(self, tmp_path):
        spool = str(tmp_path / "spool")
        os.makedirs(spool)
        client = ServiceClient(spool)
        reply = client.submit({"experiment": "table1", "scale": "test"})
        assert reply["offline"] and reply["job"] == 1
        with JobQueue(os.path.join(spool, "queue.db")) as queue:
            assert queue.get(1).state == "queued"

    def test_offline_status_reads_the_queue(self, tmp_path):
        spool = str(tmp_path / "spool")
        os.makedirs(spool)
        client = ServiceClient(spool)
        client.submit({"experiment": "table1"})
        payload = client.status()
        assert payload["offline"]
        assert payload["queue"]["queued"] == 1
        assert payload["jobs"][0]["state"] == "queued"

    def test_offline_cancel_of_queued_job(self, tmp_path):
        spool = str(tmp_path / "spool")
        os.makedirs(spool)
        client = ServiceClient(spool)
        job_id = client.submit({"experiment": "table1"})["job"]
        reply = client.cancel(job_id)
        assert reply["offline"] and reply["state"] == "cancelled"

    def test_offline_status_without_queue_errors(self, tmp_path):
        client = ServiceClient(str(tmp_path / "nothing"))
        with pytest.raises(ServiceError, match="no daemon"):
            client.status()
        with pytest.raises(ServiceError):
            client.drain()


# ======================================================================
# Crash recovery, against a subprocess daemon running real campaigns.
# ======================================================================
def _spawn_daemon(spool, *extra, env=None):
    full_env = dict(os.environ)
    full_env["PYTHONPATH"] = SRC
    if env:
        full_env.update(env)
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "--spool", spool,
            "--budget", "2", *extra,
        ],
        env=full_env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait_alive(client, timeout_s=15.0):
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        if client.alive():
            return
        time.sleep(0.05)
    raise AssertionError("daemon did not come up")


def _wait_mid_campaign(client, job_id, timeout_s=120.0):
    """Until the job has flushed some — but not all — of a campaign."""
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        payload = client.status(job_id)
        for row in payload["jobs"]:
            for progress in row["progress"]:
                if 0 < progress["done"] < progress["total"]:
                    return progress
            if row["state"] in ("done", "failed"):
                return None  # too late to interrupt; still a valid run
        time.sleep(0.02)
    raise AssertionError("no campaign progress appeared")


def _recovery_round_trip(tmp_path, expected, spec):
    """Submit *spec*, kill -9 the daemon mid-campaign, restart, and
    check the finished output is bit-identical to *expected*."""
    spool = str(tmp_path / "spool")
    daemon = _spawn_daemon(spool)
    client = ServiceClient(spool)
    try:
        _wait_alive(client)
        job_id = client.submit(spec)["job"]
        interrupted = _wait_mid_campaign(client, job_id) is not None
        with open(os.path.join(spool, "daemon.pid")) as handle:
            pid = int(handle.read().strip())
        os.kill(pid, signal.SIGKILL)
        daemon.wait(timeout=30)
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()
    assert daemon.returncode == -signal.SIGKILL

    second = _spawn_daemon(spool, "--drain-when-idle")
    try:
        assert second.wait(timeout=240) == 0
    finally:
        if second.poll() is None:
            second.kill()
            second.wait()

    payload = ServiceClient(spool).status(job_id)
    job = payload["jobs"][0]
    assert job["state"] == "done"
    # clean recovery: reclaims refund the attempt, so an interrupted
    # first run must not march the job down the degradation ladder
    assert job["attempts"] == 1
    if interrupted:
        assert payload["counters"].get("leases_reclaimed", 0) >= 1
    output_path = os.path.join(spool, "jobs", str(job_id), "output.txt")
    with open(output_path, "r", encoding="utf-8") as handle:
        assert handle.read() == expected
    return payload


class TestKill9Recovery:
    def test_serial_backend(self, tmp_path, expected_table1):
        _recovery_round_trip(
            tmp_path, expected_table1,
            {
                "experiment": "table1", "scale": "test",
                "backend": "serial", "store": "sqlite",
            },
        )

    def test_process_backend(self, tmp_path, expected_table1):
        _recovery_round_trip(
            tmp_path, expected_table1,
            {
                "experiment": "table1", "scale": "test",
                "jobs": 2, "backend": "process", "store": "sqlite",
            },
        )


class TestChaosKillFlush:
    def test_child_killed_mid_flush_recovers(
        self, tmp_path, expected_table1
    ):
        """A job child hard-killed *during* a checkpoint flush (before
        the bytes become durable) is retried and resumes from the last
        durable flush — final output bit-identical."""
        spool = str(tmp_path)
        with JobQueue(os.path.join(spool, "queue.db")) as queue:
            scheduler = Scheduler(
                spool, queue,
                SchedulerConfig(
                    budget=1, backoff_base_s=0.01, backoff_seed=5,
                    prewarm=True,
                ),
            )
            job_id = queue.submit({
                "experiment": "table1", "scale": "test",
                "backend": "serial", "store": "sqlite",
                "env": {"REPRO_CHAOS_KILL_FLUSH": "2"},
            })
            deadline = time.time() + 240
            while time.time() < deadline:
                scheduler.tick()
                job = queue.get(job_id)
                if job.terminal:
                    break
                time.sleep(0.02)
            scheduler.drain()
            assert job.state == "done"
            assert job.attempts == 2  # the chaos kill burned attempt 1
            assert queue.counters().get("jobs_retried") == 1
        output = os.path.join(spool, "jobs", str(job_id), "output.txt")
        with open(output, "r", encoding="utf-8") as handle:
            assert handle.read() == expected_table1
        # the first durable flush really survived into the retry: the
        # job's event log shows the resumed campaign skipping tasks
        telemetry_path = os.path.join(
            spool, "jobs", str(job_id), "telemetry.json"
        )
        with open(telemetry_path, "r", encoding="utf-8") as handle:
            telemetry = json.load(handle)
        assert telemetry["permeability"]["executed_runs"] < 78
