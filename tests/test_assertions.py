"""Unit tests for repro.edm.assertions (EA behaviour classes)."""

import pytest

from repro.edm.assertions import AssertionSpec, AssertionState, EAKind
from repro.errors import AssertionSpecError


def spec_range_rate(**kwargs):
    defaults = dict(
        name="EA", signal="s", kind=EAKind.RANGE_RATE,
        minimum=0, maximum=100, max_delta=10,
    )
    defaults.update(kwargs)
    return AssertionSpec(**defaults)


class TestSpecValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(AssertionSpecError):
            spec_range_rate(name="")

    def test_empty_signal_rejected(self):
        with pytest.raises(AssertionSpecError):
            spec_range_rate(signal="")

    def test_range_rate_needs_max_delta(self):
        with pytest.raises(AssertionSpecError):
            spec_range_rate(max_delta=None)

    def test_negative_max_delta_rejected(self):
        with pytest.raises(AssertionSpecError):
            spec_range_rate(max_delta=-1)

    def test_sequence_needs_exact_delta(self):
        with pytest.raises(AssertionSpecError):
            AssertionSpec("EA", "s", EAKind.SEQUENCE)

    def test_sequence_bad_modulus_rejected(self):
        with pytest.raises(AssertionSpecError):
            AssertionSpec(
                "EA", "s", EAKind.SEQUENCE, exact_delta=1, modulus=0
            )

    def test_min_above_max_rejected(self):
        with pytest.raises(AssertionSpecError):
            spec_range_rate(minimum=10, maximum=5)

    def test_negative_memory_cost_rejected(self):
        with pytest.raises(AssertionSpecError):
            spec_range_rate(rom_bytes=-1)


class TestRangeRate:
    def test_in_range_no_fire(self):
        state = AssertionState(spec_range_rate())
        assert not state.evaluate(50, tick=0)
        assert not state.fired

    def test_range_violation_fires(self):
        state = AssertionState(spec_range_rate())
        assert state.evaluate(101, tick=0)
        assert state.first_fire_tick == 0

    def test_below_minimum_fires(self):
        state = AssertionState(spec_range_rate(minimum=10))
        assert state.evaluate(5, tick=3)

    def test_rate_violation_fires(self):
        state = AssertionState(spec_range_rate())
        state.evaluate(50, tick=0)
        assert state.evaluate(61, tick=1)  # delta 11 > 10

    def test_rate_exactly_at_limit_ok(self):
        state = AssertionState(spec_range_rate())
        state.evaluate(50, tick=0)
        assert not state.evaluate(60, tick=1)  # delta == 10

    def test_first_evaluation_has_no_rate_check(self):
        state = AssertionState(spec_range_rate())
        assert not state.evaluate(99, tick=0)

    def test_state_tracks_actual_values(self):
        """One spike must not cascade into repeated rate violations."""
        state = AssertionState(spec_range_rate())
        state.evaluate(50, tick=0)
        state.evaluate(90, tick=1)  # fires
        assert not state.evaluate(85, tick=2)  # delta 5 from the spike
        assert state.fire_count == 1


class TestMonotonic:
    def make(self):
        return AssertionState(AssertionSpec(
            "EA", "s", EAKind.MONOTONIC, minimum=0, maximum=1000,
            max_delta=5,
        ))

    def test_increasing_within_step_ok(self):
        state = self.make()
        for tick, value in enumerate([0, 3, 8, 8, 13]):
            assert not state.evaluate(value, tick)

    def test_decrease_fires(self):
        state = self.make()
        state.evaluate(10, 0)
        assert state.evaluate(9, 1)

    def test_large_increment_fires(self):
        state = self.make()
        state.evaluate(10, 0)
        assert state.evaluate(16, 1)


class TestSequence:
    def make(self, exact=1, modulus=None):
        return AssertionState(AssertionSpec(
            "EA", "s", EAKind.SEQUENCE, exact_delta=exact, modulus=modulus,
        ))

    def test_exact_increment_ok(self):
        state = self.make()
        for tick, value in enumerate([5, 6, 7, 8]):
            assert not state.evaluate(value, tick)

    def test_wrong_increment_fires(self):
        state = self.make()
        state.evaluate(5, 0)
        assert state.evaluate(7, 1)

    def test_modulus_allows_wraparound(self):
        state = self.make(exact=20, modulus=1 << 16)
        state.evaluate(65530, 0)
        assert not state.evaluate(14, 1)  # 65530 + 20 mod 65536

    def test_zero_delta_sequence(self):
        state = self.make(exact=0, modulus=1 << 16)
        state.evaluate(3, 0)
        assert not state.evaluate(3, 1)
        assert state.evaluate(4, 2)


class TestBoolean:
    def test_valid_booleans_never_fire(self):
        state = AssertionState(AssertionSpec("EA", "s", EAKind.BOOLEAN))
        assert not state.evaluate(0, 0)
        assert not state.evaluate(1, 1)

    def test_non_boolean_value_fires(self):
        state = AssertionState(AssertionSpec("EA", "s", EAKind.BOOLEAN))
        assert state.evaluate(2, 0)


class TestStateBookkeeping:
    def test_fire_count_and_first_tick(self):
        state = AssertionState(spec_range_rate())
        state.evaluate(200, 5)
        state.evaluate(300, 6)
        assert state.fire_count == 2
        assert state.first_fire_tick == 5

    def test_reset(self):
        state = AssertionState(spec_range_rate())
        state.evaluate(200, 5)
        state.reset()
        assert not state.fired
        assert state.first_fire_tick is None
        # prev cleared: no rate check on next evaluation
        assert not state.evaluate(99, 6)
