"""Property tests: a batch of N rows equals N scalar runs.

Hypothesis drives random modules/ports/signals, injection ticks, bits
and batch widths through :class:`~repro.fi.vector.BatchRunner` on both
targets and requires bit-identical outcomes against the campaigns'
scalar ``_one_run``.  Explicit examples pin the two structural edge
cases: tick-0 dispatch divergence (the whole batch retires) and rows
whose flip lands on the very last tick.
"""

import pytest
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.fi.campaign import (
    DetectionCampaign,
    MemoryCampaign,
    PermeabilityCampaign,
)
from repro.fi.memory import MemoryMap
from repro.fi.vector import BatchRunner
from repro.edm.catalogue import EA_BY_NAME
from repro.target.simulation import ArrestmentSimulator
from repro.target.testcases import standard_test_cases
from repro.watertank.catalogue import tank_assertions
from repro.watertank.simulation import WaterTankSimulator
from repro.watertank.testcases import standard_tank_cases

TANK_TICKS = 200
ARREST_TIMEOUT_S = 6.0
ARREST_TICKS = 6000


def tank_prop_factory(tc):
    return WaterTankSimulator(tc, mission_ticks=TANK_TICKS)


def arrest_prop_factory(tc):
    return ArrestmentSimulator(tc, timeout_s=ARREST_TIMEOUT_S)


TANK_PORTS = {
    "TIMER": ["tick_nbr"],
    "LEVEL_S": ["LVL_ADC"],
    "FLOW_S": ["FLOW_CNT"],
    "CTRL": ["level_f", "inflow_rate", "ticks"],
    "ALARM": ["level_f"],
    "VALVE_A": ["valve_cmd"],
}
ARREST_PORTS = {
    "CLOCK": ["ms_slot_nbr"],
    "DIST_S": ["PACNT", "TIC1", "TCNT"],
    "CALC": ["i", "mscnt", "pulscnt", "slow_speed", "stopped"],
    "PRES_S": ["ADC"],
    "V_REG": ["SetValue", "IsValue"],
    "PRES_A": ["OutValue"],
}


@pytest.fixture(scope="module")
def tank_perm():
    return PermeabilityCampaign(
        tank_prop_factory, standard_tank_cases()[:2],
        runs_per_input=1, seed=5,
    )


@pytest.fixture(scope="module")
def tank_det():
    return DetectionCampaign(
        tank_prop_factory, standard_tank_cases()[:2], tank_assertions(),
        runs_per_signal=1, seed=5,
    )


@pytest.fixture(scope="module")
def tank_mem():
    return MemoryCampaign(
        tank_prop_factory, standard_tank_cases()[:2], tank_assertions(),
        seed=5,
    )


@pytest.fixture(scope="module")
def arrest_perm():
    cases = standard_test_cases()
    return PermeabilityCampaign(
        arrest_prop_factory, [cases[4], cases[20]],
        runs_per_input=1, seed=5,
    )


@pytest.fixture(scope="module")
def arrest_det():
    cases = standard_test_cases()
    return DetectionCampaign(
        arrest_prop_factory, [cases[4], cases[20]],
        list(EA_BY_NAME.values()), runs_per_signal=1, seed=5,
    )


def check_batch(kind, campaign, tasks, width, **kwargs):
    def scalar(index):
        return campaign._one_run(*tasks[index])

    runner = BatchRunner(
        kind, tasks, scalar, width, campaign.factory, **kwargs
    )
    try:
        batched = [runner(i) for i in range(len(tasks))]
    finally:
        runner.close()
    assert batched == [scalar(i) for i in range(len(tasks))]


def perm_rows(ports, max_tick):
    """(module, rows of (port_i, case_i, tick, bit_i), width)."""
    modules = sorted(ports)
    return st.tuples(
        st.sampled_from(modules),
        st.lists(
            st.tuples(
                st.integers(0, 7),  # port index (mod len(ports))
                st.integers(0, 1),  # test-case index
                st.integers(0, max_tick - 1),
                st.integers(0, 63),  # bit (mod signal width)
            ),
            min_size=2,
            max_size=5,
        ),
        st.integers(2, 6),  # batch width
    )


def build_perm_tasks(campaign, ports, module, rows):
    system = campaign.factory(campaign.test_cases[0]).system
    tasks = []
    for port_i, case_i, tick, bit in rows:
        port = ports[module][port_i % len(ports[module])]
        signal = system.signal_of_input(module, port)
        width = system.signal(signal).width
        tasks.append(
            (module, port, campaign.test_cases[case_i], tick, bit % width)
        )
    return tasks


def det_rows(max_tick):
    return st.tuples(
        st.lists(
            st.tuples(
                st.integers(0, 7),  # signal index (mod len(signals))
                st.integers(0, 1),
                st.integers(0, max_tick - 1),
                st.integers(0, 63),
            ),
            min_size=2,
            max_size=5,
        ),
        st.integers(2, 6),
    )


def mem_rows():
    """(rows of (location_i, case_i, bit_i, phase_i), width)."""
    return st.tuples(
        st.lists(
            st.tuples(
                st.integers(0, 511),  # location (mod len(locations))
                st.integers(0, 1),  # test-case index
                st.integers(0, 7),  # bit (mod valid_bits)
                st.integers(0, 511),  # phase (mod period)
            ),
            min_size=2,
            max_size=5,
        ),
        st.integers(2, 6),
    )


def build_mem_tasks(campaign, rows):
    """Memory tasks mixing test cases freely: the batch planner must
    resolve each row against its own case's golden run (per-row golden
    indirection), exactly like per-case scalar execution does."""
    probe = campaign.factory(campaign.test_cases[0])
    locations = MemoryMap(probe.system).locations()
    tasks = []
    for loc_i, case_i, bit_i, phase_i in rows:
        location = locations[loc_i % len(locations)]
        tasks.append((
            location,
            campaign.test_cases[case_i],
            bit_i % location.valid_bits,
            phase_i % campaign.period_ticks,
        ))
    return tasks


def build_det_tasks(campaign, rows):
    system = campaign.factory(campaign.test_cases[0]).system
    signals = list(system.system_inputs())
    tasks = []
    for sig_i, case_i, tick, bit in rows:
        signal = signals[sig_i % len(signals)]
        width = system.signal(signal).width
        tasks.append(
            (signal, campaign.test_cases[case_i], tick, bit % width)
        )
    return tasks


class TestWatertankProperties:
    @settings(
        max_examples=12, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(drawn=perm_rows(TANK_PORTS, TANK_TICKS))
    @example(drawn=("TIMER", [(0, 0, 0, 0), (0, 1, 0, 1)], 4))
    @example(
        drawn=(
            "CTRL",
            [(0, 0, TANK_TICKS - 1, 2), (1, 1, 0, 0), (2, 0, 77, 5)],
            2,
        )
    )
    def test_permeability_batch_equals_scalar(self, tank_perm, drawn):
        module, rows, width = drawn
        tasks = build_perm_tasks(tank_perm, TANK_PORTS, module, rows)
        check_batch(
            "permeability", tank_perm, tasks, width,
            goldens=tank_perm.goldens,
        )

    @settings(
        max_examples=10, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(drawn=det_rows(TANK_TICKS))
    @example(drawn=([(0, 0, 0, 9), (1, 1, TANK_TICKS - 1, 0)], 3))
    def test_detection_batch_equals_scalar(self, tank_det, drawn):
        rows, width = drawn
        tasks = build_det_tasks(tank_det, rows)
        check_batch(
            "detection", tank_det, tasks, width, specs=tank_det.specs
        )

    @settings(
        max_examples=10, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(drawn=mem_rows())
    @example(drawn=([(0, 0, 0, 0), (0, 1, 0, 0)], 4))  # cross-case pair
    @example(drawn=([(79, 0, 3, 19), (79, 1, 3, 19), (200, 0, 1, 0)], 2))
    def test_memory_batch_equals_scalar(self, tank_mem, drawn):
        rows, width = drawn
        tasks = build_mem_tasks(tank_mem, rows)
        check_batch(
            "memory", tank_mem, tasks, width, specs=tank_mem.specs,
            period_ticks=tank_mem.period_ticks,
        )


@pytest.mark.slow
class TestArrestmentProperties:
    @settings(
        max_examples=6, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(drawn=perm_rows(ARREST_PORTS, ARREST_TICKS))
    @example(drawn=("CLOCK", [(0, 0, 0, 0), (0, 1, 0, 3)], 4))
    @example(
        drawn=(
            "DIST_S",
            [(0, 0, ARREST_TICKS - 1, 1), (1, 1, 10, 0)],
            2,
        )
    )
    def test_permeability_batch_equals_scalar(self, arrest_perm, drawn):
        module, rows, width = drawn
        tasks = build_perm_tasks(arrest_perm, ARREST_PORTS, module, rows)
        check_batch(
            "permeability", arrest_perm, tasks, width,
            goldens=arrest_perm.goldens,
        )

    @settings(
        max_examples=6, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(drawn=det_rows(ARREST_TICKS))
    @example(drawn=([(3, 0, 0, 2), (0, 1, ARREST_TICKS - 1, 0)], 3))
    def test_detection_batch_equals_scalar(self, arrest_det, drawn):
        rows, width = drawn
        tasks = build_det_tasks(arrest_det, rows)
        check_batch(
            "detection", arrest_det, tasks, width, specs=arrest_det.specs
        )
