"""Unit tests for repro.core.trees (trace/backtrack/impact trees)."""

import pytest

from repro.core.trees import (
    build_backtrack_tree,
    build_impact_tree,
    build_trace_tree,
)
from repro.errors import AnalysisError


class TestImpactTree:
    def test_fig4_structure(self, graph):
        """The paper's Fig. 4: impact tree for pulscnt."""
        tree = build_impact_tree(graph, "pulscnt")
        assert tree.root.signal == "pulscnt"
        # two children: via CALC to i and to SetValue
        child_signals = sorted(c.signal for c in tree.root.children)
        assert child_signals == ["SetValue", "i"]
        paths = tree.paths_to("TOC2")
        assert len(paths) == 2

    def test_fig4_path_weights(self, graph, matrix):
        tree = build_impact_tree(graph, "pulscnt")
        weights = sorted(
            path.weight(matrix.__getitem__) for path in tree.paths_to("TOC2")
        )
        assert weights[0] == pytest.approx(0.0)  # via P^CALC_{3,2} = 0
        assert weights[1] == pytest.approx(0.021, abs=5e-4)

    def test_rooted_at_system_input(self, graph):
        tree = build_impact_tree(graph, "PACNT")
        assert tree.root.signal == "PACNT"
        assert tree.paths_to("TOC2")

    def test_rooted_at_output_rejected(self, graph):
        with pytest.raises(AnalysisError):
            build_impact_tree(graph, "TOC2")

    def test_no_signal_repeats_on_any_root_to_leaf_path(self, graph):
        tree = build_impact_tree(graph, "i")
        for path in tree.all_root_to_leaf_paths():
            signals = path.signals
            assert len(set(signals)) == len(signals)

    def test_expansion_stops_at_outputs(self, graph):
        tree = build_impact_tree(graph, "OutValue")
        for node in tree.root.walk():
            if node.signal == "TOC2":
                assert node.is_leaf


class TestTraceTree:
    def test_trace_tree_from_pacnt(self, graph):
        tree = build_trace_tree(graph, "PACNT")
        leaves = {leaf.signal for leaf in tree.leaves()}
        assert "TOC2" in leaves

    def test_trace_tree_requires_system_input(self, graph):
        with pytest.raises(AnalysisError):
            build_trace_tree(graph, "pulscnt")

    def test_direction_forward(self, graph):
        tree = build_trace_tree(graph, "ADC")
        assert tree.direction == "forward"
        path = tree.paths_to("TOC2")[0]
        assert path.source == "ADC" and path.destination == "TOC2"


class TestBacktrackTree:
    def test_backtrack_tree_from_toc2(self, graph):
        tree = build_backtrack_tree(graph, "TOC2")
        assert tree.root.signal == "TOC2"
        leaf_signals = {leaf.signal for leaf in tree.leaves()}
        # all four system inputs are reachable backwards
        assert {"PACNT", "TIC1", "TCNT", "ADC"} <= leaf_signals

    def test_backtrack_requires_system_output(self, graph):
        with pytest.raises(AnalysisError):
            build_backtrack_tree(graph, "SetValue")

    def test_backtrack_paths_are_propagation_oriented(self, graph):
        tree = build_backtrack_tree(graph, "TOC2")
        for path in tree.paths_to("PACNT"):
            assert path.source == "PACNT"
            assert path.destination == "TOC2"


class TestTreeQueries:
    def test_depth(self, graph):
        tree = build_impact_tree(graph, "OutValue")
        assert tree.depth() == 1  # OutValue -> TOC2

    def test_nodes_and_leaves(self, graph):
        tree = build_impact_tree(graph, "pulscnt")
        assert len(tree.nodes()) == 8  # per Fig. 4: root + 7 descendants
        assert all(leaf.is_leaf for leaf in tree.leaves())

    def test_render_contains_edge_labels(self, graph):
        tree = build_impact_tree(graph, "pulscnt")
        text = tree.render()
        assert "P^CALC_{3,1}" in text
        assert text.splitlines()[0] == "pulscnt"

    def test_render_custom_label(self, graph, matrix):
        tree = build_impact_tree(graph, "OutValue")
        text = tree.render(label=lambda pair: f"{matrix[pair]:.3f}")
        assert "0.875" in text

    def test_invalid_direction_rejected(self, graph):
        from repro.core.trees import PropagationTree, TreeNode

        with pytest.raises(AnalysisError):
            PropagationTree(TreeNode("x"), "sideways")
