"""Tests for the water-tank target — the framework's second system."""

import pytest

from repro.core.criticality import OutputCriticalities, all_criticalities
from repro.core.exposure import all_signal_exposures
from repro.core.impact import all_impacts
from repro.core.placement import pa_placement
from repro.analysis import matrix_from_estimate
from repro.edm import MonitorBank
from repro.errors import AssertionSpecError, ModelError
from repro.fi import (
    FaultInjector,
    InputSignalFlip,
    MemoryMap,
    PermeabilityCampaign,
    Region,
)
from repro.model.graph import SignalGraph
from repro.watertank import (
    InflowProfile,
    TankPlant,
    TankSensorSuite,
    TankTestCase,
    WaterTankSimulator,
    build_watertank_system,
    standard_tank_cases,
    tank_assertions,
)
from repro.watertank import constants as TC


@pytest.fixture(scope="module")
def tank_system():
    return build_watertank_system()


@pytest.fixture(scope="module")
def tank_golden():
    return WaterTankSimulator(standard_tank_cases()[4]).run()


@pytest.fixture(scope="module")
def tank_estimate():
    """Small shared permeability campaign on the tank."""
    cases = standard_tank_cases()[::4]
    return PermeabilityCampaign(
        WaterTankSimulator, cases, runs_per_input=6, seed=5
    ).run()


class TestPlant:
    def test_profile_square_wave(self):
        profile = InflowProfile(0.02, 0.01, period_s=10.0)
        assert profile.inflow_at(2.0) == 0.02
        assert profile.inflow_at(7.0) == pytest.approx(0.03)

    def test_invalid_profile_rejected(self):
        with pytest.raises(ModelError):
            InflowProfile(-1, 0)

    def test_closed_valve_fills(self):
        plant = TankPlant(InflowProfile(0.03, 0.0))
        for _ in range(1000):
            plant.step(0.0)
        assert plant.state.level_m > TC.LEVEL_SETPOINT_M

    def test_open_valve_drains(self):
        plant = TankPlant(InflowProfile(0.0, 0.0))
        for _ in range(5000):
            plant.step(1.0)
        assert plant.state.level_m < TC.LEVEL_SETPOINT_M

    def test_sensor_scaling(self):
        sensors = TankSensorSuite()
        sensors.advance(TC.TANK_HEIGHT_M / 2, 0.0)
        assert sensors.lvl_adc == pytest.approx(511, abs=2)

    def test_flow_counter_wraps(self):
        sensors = TankSensorSuite()
        sensors.advance(0.0, 0.300)  # 300 pulses on an 8-bit counter
        assert sensors.flow_cnt == 300 % 256

    def test_commanded_valve_mapping(self):
        assert TankSensorSuite.commanded_valve(0) == 0.0
        assert TankSensorSuite.commanded_valve(4095) == 1.0


class TestStructure:
    def test_two_outputs_one_boolean(self, tank_system):
        outputs = set(tank_system.system_outputs())
        assert outputs == {"VALVE_POS", "ALARM_OUT"}

    def test_nine_pairs(self, tank_system):
        assert len(tank_system.io_pairs()) == 9

    def test_memory_map_nonempty_regions(self, tank_system):
        memory_map = MemoryMap(tank_system)
        assert memory_map.ram_size() > 20
        assert memory_map.stack_size() > 15

    def test_invalid_case_rejected(self):
        with pytest.raises(ModelError):
            TankTestCase(0, -0.01, 0.0)


class TestMission:
    def test_all_missions_regulate_within_spec(self):
        for tc in standard_tank_cases():
            result = WaterTankSimulator(tc).run()
            assert not result.failed, tc.label
            assert abs(
                result.verdict.peak_level_m - TC.LEVEL_SETPOINT_M
            ) < 0.25

    def test_no_ea_false_positives(self):
        for tc in standard_tank_cases()[::4]:
            sim = WaterTankSimulator(tc)
            bank = MonitorBank(
                tank_assertions(), period=TC.N_SLOTS
            ).attach(sim)
            sim.run()
            assert not bank.any_fired(), tc.label

    def test_determinism(self, tank_golden):
        again = WaterTankSimulator(standard_tank_cases()[4]).run()
        for signal in ("level_f", "valve_cmd", "VALVE_POS"):
            assert again.traces.first_difference(
                tank_golden.traces, signal
            ) is None

    def test_mission_completes_by_definition(self, tank_golden):
        assert tank_golden.completion_tick == TC.MISSION_TICKS - 1


class TestFailureModes:
    @staticmethod
    def _stuck_valve(sim, value):
        """Force VALVE_A's command input (a stuck actuator driver)."""
        sim.add_marshal(
            lambda module, args: (
                {"valve_cmd": value} if module == "VALVE_A" else args
            )
        )

    def test_stuck_closed_valve_overflows(self):
        tc = standard_tank_cases()[8]  # highest inflow
        sim = WaterTankSimulator(tc, mission_ticks=15000)
        self._stuck_valve(sim, 0)
        result = sim.run()
        assert result.failed
        assert "overflow" in result.verdict.kinds

    def test_stuck_open_valve_runs_dry(self):
        tc = standard_tank_cases()[0]  # lowest inflow
        sim = WaterTankSimulator(tc, mission_ticks=9000)
        self._stuck_valve(sim, 65535)
        result = sim.run()
        assert result.failed
        assert "dry_run" in result.verdict.kinds

    def test_alarm_asserts_on_high_level(self):
        """With the valve held shut, the alarm must latch before the
        missed-alarm grace expires — no missed_alarm failure."""
        tc = standard_tank_cases()[8]
        sim = WaterTankSimulator(tc, mission_ticks=15000)
        self._stuck_valve(sim, 0)
        result = sim.run()
        assert "missed_alarm" not in result.verdict.kinds
        assert result.traces.stream("ALARM_OUT")[-1][1] == 1

    def test_suppressed_alarm_is_a_failure(self):
        """Forcing ALARM's level input low while the tank overflows
        must produce the missed-alarm verdict."""
        tc = standard_tank_cases()[8]
        sim = WaterTankSimulator(tc, mission_ticks=15000)

        def sabotage(module, args):
            if module == "ALARM":
                return {"level_f": 0}
            if module == "VALVE_A":
                return {"valve_cmd": 0}
            return args

        sim.add_marshal(sabotage)
        result = sim.run()
        assert "missed_alarm" in result.verdict.kinds


class TestCampaignsOnTank:
    def test_permeability_shape(self, tank_estimate):
        values = tank_estimate.values
        # the pulse chain and the regulator pass errors through
        assert values[("FLOW_S", "FLOW_CNT", "inflow_rate")] >= 0.8
        assert values[("CTRL", "level_f", "valve_cmd")] >= 0.8
        # the filtered level chain masks transients
        assert values[("LEVEL_S", "LVL_ADC", "level_f")] <= 0.3
        # the time base is independent of the slot number
        assert values[("TIMER", "tick_nbr", "ticks")] == 0.0

    def test_pa_placement_on_tank(self, tank_system, tank_estimate):
        matrix = matrix_from_estimate(tank_system, tank_estimate)
        graph = SignalGraph(tank_system)
        placement = pa_placement(matrix, graph)
        # the regulator command chain carries the exposure
        assert "valve_cmd" in placement.selected
        # the boolean alarm output is never selected
        assert "ALARM_OUT" not in placement.selected

    def test_multi_output_criticality_on_tank(
        self, tank_system, tank_estimate
    ):
        matrix = matrix_from_estimate(tank_system, tank_estimate)
        graph = SignalGraph(tank_system)
        impacts_valve = all_impacts(matrix, graph, "VALVE_POS")
        impacts_alarm = all_impacts(matrix, graph, "ALARM_OUT")
        # inflow_rate only matters for the valve; level_f for both
        assert impacts_valve["inflow_rate"] > impacts_alarm["inflow_rate"]
        crits = all_criticalities(
            matrix, graph,
            OutputCriticalities(
                graph, {"VALVE_POS": 1.0, "ALARM_OUT": 0.6}
            ),
        )
        for value in crits.values():
            if value is not None:
                assert 0.0 <= value <= 1.0

    def test_input_injection_via_register(self, tank_golden):
        sim = WaterTankSimulator(standard_tank_cases()[4])
        injector = FaultInjector(
            InputSignalFlip("FLOW_CNT", 2000, 7)
        ).attach(sim)
        result = sim.run()
        assert injector.injected
        diff = result.traces.first_difference(
            tank_golden.traces, "inflow_rate"
        )
        assert diff is not None and diff >= 2000


class TestTankCatalogue:
    def test_all_guardable_signals_covered(self):
        specs = tank_assertions()
        assert len(specs) == 6
        signals = {spec.signal for spec in specs}
        assert "ALARM_OUT" not in signals  # boolean: unguardable

    def test_subset_selection_by_signal(self):
        specs = tank_assertions(["level_f", "valve_cmd"])
        assert {s.name for s in specs} == {"TEA1", "TEA3"}

    def test_unknown_signal_rejected(self):
        with pytest.raises(AssertionSpecError):
            tank_assertions(["ALARM_OUT"])
