"""Tests for the snapshot/fast-forward engine (``repro.fi.snapshot``).

The core contract: capture → restore → continue is bit-identical to an
uninterrupted run at every checkpoint, for both targets; and every
campaign driver produces bit-identical results with the fast-forward
engine on or off, on both execution backends, including the
interaction with resume-from-checkpoint files.
"""

import json

import pytest

from repro.edm.catalogue import EA_BY_NAME
from repro.errors import CampaignError
from repro.fi import (
    CampaignConfig,
    CheckpointStore,
    DetectionCampaign,
    FaultInjector,
    InputSignalFlip,
    InvocationLog,
    MemoryCampaign,
    MemoryMap,
    PeriodicMemoryFlip,
    PermeabilityCampaign,
    RecoveryCampaign,
)
from repro.fi.memory import Region
from repro.fi.snapshot import record_track
from repro.target.simulation import ArrestmentSimulator, SignalTraces
from repro.targets import get_target


def factory(tc):
    return ArrestmentSimulator(tc)


@pytest.fixture(scope="module")
def arrestment():
    return get_target("arrestment")


@pytest.fixture(scope="module")
def watertank():
    return get_target("watertank")


@pytest.fixture(scope="module")
def two_cases(test_cases):
    return [test_cases[4], test_cases[20]]


def assert_same_traces(golden, other):
    assert sorted(golden.signals()) == sorted(other.signals())
    for signal in golden.signals():
        assert list(golden.ticks_of(signal)) == list(other.ticks_of(signal))
        assert list(golden.values_of(signal)) == list(
            other.values_of(signal)
        )


# ======================================================================
# The trace container.
# ======================================================================
class TestSignalTraces:
    def build(self):
        traces = SignalTraces()
        for tick, value in [(0, 1), (3, 2), (3, 5), (9, 7)]:
            traces.record("a", tick, value)
        traces.record("b", 1, 10)
        return traces

    def test_stream_copies_accessors_do_not(self):
        traces = self.build()
        stream = traces.stream("a")
        assert stream == [(0, 1), (3, 2), (3, 5), (9, 7)]
        stream.append((99, 99))
        assert traces.stream("a") == [(0, 1), (3, 2), (3, 5), (9, 7)]
        # the no-copy accessors hand out the internal arrays
        assert traces.ticks_of("a") is traces.ticks_of("a")
        assert traces.values_of("a") is traces.values_of("a")
        assert traces.ticks_of("missing") == ()
        assert traces.lengths() == {"a": 4, "b": 1}

    def test_first_difference_identical(self):
        assert self.build().first_difference(self.build(), "a") is None
        assert self.build().first_difference(self.build(), "nope") is None

    def test_first_difference_changed_value(self):
        theirs = self.build()
        theirs._values["a"][2] = 6
        assert self.build().first_difference(theirs, "a") == 3

    def test_first_difference_shifted_tick(self):
        theirs = self.build()
        theirs._ticks["a"][3] = 8
        assert self.build().first_difference(theirs, "a") == 8

    def test_first_difference_extra_write(self):
        theirs = self.build()
        theirs.record("a", 12, 0)
        assert self.build().first_difference(theirs, "a") == 12
        assert theirs.first_difference(self.build(), "a") == 12

    def test_splice_prefix(self):
        golden = self.build()
        mine = SignalTraces()
        mine.record("a", 9, 7)
        mine.splice_prefix(golden, {"a": 2, "b": 0})
        assert mine.stream("a") == [(0, 1), (3, 2)]
        assert mine.stream("b") == []
        # slices copy: the golden arrays stay untouched
        mine.record("a", 4, 4)
        assert golden.stream("a") == [(0, 1), (3, 2), (3, 5), (9, 7)]

    def test_extend_suffix(self):
        golden = self.build()
        mine = SignalTraces()
        mine.record("a", 0, 1)
        mine.extend_suffix(golden, 3)
        assert mine.stream("a") == [(0, 1), (3, 2), (3, 5), (9, 7)]
        assert mine.stream("b") == []
        mine.extend_suffix(golden, 0)  # creates the missing stream
        assert mine.stream("b") == [(1, 10)]


# ======================================================================
# Simulator capture/restore.
# ======================================================================
class TestCaptureRestore:
    def checkpoints(self, make, ticks):
        simulator = make()
        states = {}

        def probe(tick):
            if tick in ticks:
                states[tick] = simulator.capture_state()
            return False

        simulator.set_tick_probe(probe)
        return simulator.run(), states

    def roundtrip(self, make, checkpoint_ticks):
        golden, states = self.checkpoints(make, checkpoint_ticks)
        for tick, state in states.items():
            resumed_sim = make()
            resumed_sim.restore_state(state)
            resumed = resumed_sim.run()
            assert resumed.ticks_run == golden.ticks_run, tick
            assert resumed.completion_tick == golden.completion_tick
            assert resumed.verdict == golden.verdict
            assert_same_traces(golden.traces, resumed.traces)

    def test_arrestment_bit_identical(self, mid_case):
        self.roundtrip(
            lambda: ArrestmentSimulator(mid_case), {0, 1, 7, 500, 2000, 4000}
        )

    def test_watertank_bit_identical(self, watertank):
        case = watertank.standard_test_cases()[0]
        self.roundtrip(
            lambda: watertank.simulator_factory(case), {0, 1, 7, 500, 3000}
        )

    def test_restore_skips_simulated_prefix(self, mid_case):
        _, states = self.checkpoints(
            lambda: ArrestmentSimulator(mid_case), {2000}
        )
        resumed_sim = ArrestmentSimulator(mid_case)
        seen = []
        resumed_sim.restore_state(states[2000])
        resumed_sim.set_tick_probe(lambda tick: seen.append(tick) or False)
        resumed_sim.run()
        assert seen[0] == 2000


# ======================================================================
# Lazy hook dispatch (satellite S2).
# ======================================================================
class TestHookElision:
    def probe_hooks(self, simulator):
        return simulator._hooks

    @pytest.mark.parametrize("target_name", ["arrestment", "watertank"])
    def test_unused_hooks_stay_none(self, target_name):
        target = get_target(target_name)
        simulator = target.simulator_factory(target.standard_test_cases()[0])
        hooks = self.probe_hooks(simulator)
        assert hooks.pre_tick is None
        assert hooks.marshal is None
        assert hooks.local_write is None
        assert hooks.post_tick is None
        # trace recording is on by default and rides the post_invoke hook
        assert hooks.post_invoke is not None
        simulator.record_traces = False
        assert hooks.post_invoke is None
        simulator.record_traces = True
        assert hooks.post_invoke is not None

    def test_handlers_rewire_dispatch(self, mid_case):
        simulator = ArrestmentSimulator(mid_case, record_traces=False)
        hooks = self.probe_hooks(simulator)
        assert hooks.post_invoke is None
        simulator.add_pre_tick(lambda tick: None)
        assert hooks.pre_tick is not None
        simulator.add_post_invoke(lambda record: None)
        assert hooks.post_invoke is not None

    def test_injected_run_still_works_without_traces(self, mid_case):
        simulator = ArrestmentSimulator(mid_case, record_traces=False)
        injector = FaultInjector(
            InputSignalFlip("ADC", 100, 3)
        ).attach(simulator)
        result = simulator.run()
        assert injector.injected
        assert result.traces.signals() == []


# ======================================================================
# Injector quiescence.
# ======================================================================
class TestFFQuiescent:
    def test_one_shot_quiesces_after_the_flip(self, mid_case):
        simulator = ArrestmentSimulator(mid_case, record_traces=False)
        injector = FaultInjector(
            InputSignalFlip("ADC", 50, 2)
        ).attach(simulator)
        assert not injector.ff_quiescent
        simulator.run()
        assert injector.injected
        assert injector.ff_quiescent

    def test_periodic_never_quiesces(self, mid_case):
        simulator = ArrestmentSimulator(mid_case, record_traces=False)
        location = MemoryMap(simulator.system).locations(Region.RAM)[0]
        injector = FaultInjector(
            PeriodicMemoryFlip(location, 1, period_ticks=20, start_tick=3)
        ).attach(simulator)
        simulator.run()
        assert injector.injected
        assert not injector.ff_quiescent


# ======================================================================
# Golden-log priming.
# ======================================================================
class TestInvocationLogPrime:
    def test_prime_copies_the_prefix(self, mid_case):
        golden_sim = ArrestmentSimulator(mid_case, record_traces=False)
        golden_log = InvocationLog(["PRES_S"]).attach(golden_sim)
        golden_sim.run()
        source = golden_log.stream("PRES_S")
        cut_tick = source[len(source) // 2][0]

        primed = InvocationLog(["PRES_S"])
        primed._port_order = dict(golden_log._port_order)
        primed.prime(golden_log, cut_tick)
        prefix = primed.stream("PRES_S")
        assert prefix == [e for e in source if e[0] < cut_tick]
        # the primed stream is a copy: growing it leaves golden alone
        prefix.append((10**9, (), ()))
        assert (10**9, (), ()) not in golden_log.stream("PRES_S")

    def test_prime_at_tick_zero_is_a_no_op(self, mid_case):
        golden_sim = ArrestmentSimulator(mid_case, record_traces=False)
        golden_log = InvocationLog(["PRES_S"]).attach(golden_sim)
        golden_sim.run()
        primed = InvocationLog(["PRES_S"])
        primed._port_order = dict(golden_log._port_order)
        primed.prime(golden_log, 0)
        assert primed.stream("PRES_S") == []


# ======================================================================
# The checkpoint-track cache.
# ======================================================================
class TestCheckpointStore:
    def test_stride_validation(self, mid_case):
        with pytest.raises(CampaignError):
            record_track(factory, mid_case, 0)
        with pytest.raises(CampaignError):
            CheckpointStore(max_tracks=0)

    def test_track_shape(self, mid_case):
        track = record_track(factory, mid_case, 1024)
        assert 0 in track.states
        assert all(tick % 1024 == 0 for tick in track.states)
        assert track.end_ticks > 0
        assert track.bank_states is None
        # nearest() floors to the stride grid
        assert track.nearest(1030).tick == 1024
        assert track.nearest(1023).tick == 0

    def test_bank_rides_along(self, mid_case):
        specs = list(EA_BY_NAME.values())
        track = record_track(factory, mid_case, 2048, bank_specs=specs)
        assert set(track.bank_states) == set(track.states)
        assert set(track.bank_final) == {spec.name for spec in specs}

    def test_cache_hits_and_lru(self, two_cases):
        store = CheckpointStore(max_tracks=1)
        store.get("arrestment", factory, two_cases[0], 2048)
        store.get("arrestment", factory, two_cases[0], 2048)
        assert (store.hits, store.misses) == (1, 1)
        store.get("arrestment", factory, two_cases[1], 2048)
        assert len(store) == 1  # the first track was evicted
        store.get("arrestment", factory, two_cases[0], 2048)
        assert store.misses == 3

    def test_bank_signature_distinguishes_tracks(self, mid_case):
        store = CheckpointStore()
        specs = list(EA_BY_NAME.values())
        store.get("arrestment", factory, mid_case, 2048, None)
        store.get("arrestment", factory, mid_case, 2048, specs)
        assert store.misses == 2


# ======================================================================
# Campaign-level A/B: fast-forward on vs off (the tentpole contract).
# ======================================================================
class TestCampaignFastForwardAB:
    def config(self, ff, **kwargs):
        return CampaignConfig(seed=7, fast_forward=ff, **kwargs)

    def test_detection_bit_identical(self, two_cases):
        specs = list(EA_BY_NAME.values())

        def run(ff, **kwargs):
            campaign = DetectionCampaign(
                factory, two_cases, specs,
                runs_per_signal=3, targets=["ADC", "TCNT"],
                config=self.config(ff, **kwargs),
            )
            return campaign.run(), campaign.telemetry

        off, t_off = run(False)
        on, t_on = run(True)
        assert off.n_injected == on.n_injected
        assert off.n_err == on.n_err
        assert off.detections == on.detections
        assert off.run_records == on.run_records
        assert off.run_latencies == on.run_latencies
        assert t_on.ff_ticks_saved > 0
        assert t_on.ff_restores > 0
        assert t_off.ff_ticks_saved == 0
        assert "fast-forward" in t_on.render()
        assert "fast-forward" not in t_off.render()

        parallel, t_par = run(True, jobs=2)
        assert parallel.detections == off.detections
        assert parallel.run_records == off.run_records
        assert parallel.run_latencies == off.run_latencies
        assert t_par.ff_ticks_saved > 0

    @pytest.mark.slow
    def test_permeability_bit_identical(self, two_cases):
        def run(ff, **kwargs):
            return PermeabilityCampaign(
                factory, two_cases, runs_per_input=2,
                config=self.config(ff, **kwargs),
            ).run()

        off = run(False)
        on = run(True)
        assert off.direct_counts == on.direct_counts
        assert off.active_runs == on.active_runs
        assert off.values == on.values
        parallel = run(True, jobs=2)
        assert parallel.values == off.values
        assert parallel.direct_counts == off.direct_counts

    @pytest.mark.slow
    def test_memory_and_recovery_bit_identical(self, two_cases):
        specs = list(EA_BY_NAME.values())
        locations = MemoryMap(factory(two_cases[0]).system).locations()[::25]

        def run_memory(ff, **kwargs):
            campaign = MemoryCampaign(
                factory, two_cases[:1], specs, locations=locations,
                config=self.config(ff, **kwargs),
            )
            return campaign.run(), campaign.telemetry

        off, _ = run_memory(False)
        on, t_on = run_memory(True)
        assert off.records == on.records
        # default phases land before the first checkpoint: the engine
        # must stay entirely out of the way
        assert t_on.ff_restores == 0
        assert t_on.ff_tracks == 0
        parallel, _ = run_memory(True, jobs=2)
        assert parallel.records == off.records

        def run_recovery(ff):
            return RecoveryCampaign(
                factory, two_cases[:1], specs, locations=locations,
                config=self.config(ff),
            ).run()

        assert run_recovery(False).outcomes == run_recovery(True).outcomes

    def test_watertank_detection_bit_identical(self, watertank):
        cases = watertank.standard_test_cases()[::12]
        specs = watertank.assertion_specs()

        def run(ff):
            campaign = DetectionCampaign(
                watertank, cases, specs, runs_per_signal=3,
                config=self.config(ff),
            )
            return campaign.run(), campaign.telemetry

        off, _ = run(False)
        on, t_on = run(True)
        assert off.n_err == on.n_err
        assert off.detections == on.detections
        assert off.run_records == on.run_records
        assert off.run_latencies == on.run_latencies
        assert t_on.ff_ticks_saved > 0

    def test_stride_choice_does_not_change_results(self, two_cases):
        specs = list(EA_BY_NAME.values())

        def run(**kwargs):
            return DetectionCampaign(
                factory, two_cases[:1], specs,
                runs_per_signal=2, targets=["ADC"],
                config=self.config(True, **kwargs),
            ).run()

        baseline = run()
        for stride in (64, 500, 4096):
            got = run(checkpoint_stride=stride)
            assert got.detections == baseline.detections
            assert got.run_records == baseline.run_records
            assert got.run_latencies == baseline.run_latencies

    def test_resume_across_fast_forward_modes(self, two_cases, tmp_path):
        """A checkpoint file written with the engine off resumes with
        the engine on (and vice versa) to the same final result."""
        specs = list(EA_BY_NAME.values())
        path = str(tmp_path / "detection.json")

        def campaign(ff, **kwargs):
            return DetectionCampaign(
                factory, two_cases, specs,
                runs_per_signal=3, targets=["ADC", "TCNT"],
                config=self.config(ff, **kwargs),
            )

        fresh = campaign(True).run()
        campaign(
            False, checkpoint_path=path, checkpoint_every=1
        ).run()

        # kill: keep only the first four completed tasks
        with open(path) as handle:
            payload = json.load(handle)
        payload["results"] = {
            k: v for k, v in payload["results"].items() if int(k) < 4
        }
        with open(path, "w") as handle:
            json.dump(payload, handle)

        resumed_campaign = campaign(
            True, checkpoint_path=path, jobs=2
        )
        resumed = resumed_campaign.run()
        assert resumed.detections == fresh.detections
        assert resumed.run_records == fresh.run_records
        assert resumed.run_latencies == fresh.run_latencies
        assert resumed_campaign.telemetry.resumed_runs == 4


class TestTrackPool:
    """The shared-memory checkpoint pool: flattened tracks rebuild
    bit-identical states, and campaigns are invisible to pooling."""

    def _track_and_pool(self, test_cases):
        from repro.fi.snapshot import TrackPool

        specs = list(EA_BY_NAME.values())
        track = record_track(factory, test_cases[4], 64, specs)
        pool = TrackPool()
        assert pool.publish(test_cases[4].case_id, track)
        return track, pool.get(test_cases[4].case_id)

    def test_pooled_states_roundtrip_exactly(self, test_cases):
        from repro.fi.snapshot import _state_leaves

        track, pooled = self._track_and_pool(test_cases)
        for tick, golden in sorted(track.states.items()):
            rebuilt = pooled.states[tick]
            assert rebuilt.matches(golden)
            # matches() compares values; the leaves comparison also
            # pins the exact python types (int vs float vs bool)
            assert _state_leaves(rebuilt) == _state_leaves(golden)
        assert pooled.final_state.matches(track.final_state)
        assert pooled.bank_states == track.bank_states
        assert pooled.bank_final == track.bank_final
        assert pooled.end_ticks == track.end_ticks

    def test_pooled_nearest_agrees_with_dict_track(self, test_cases):
        track, pooled = self._track_and_pool(test_cases)
        last = max(track.states)
        for tick in (0, 1, 63, 64, 65, 127, last, last + 5):
            assert pooled.nearest(tick).matches(track.nearest(tick))
        assert pooled.states.get(7) is None
        with pytest.raises(KeyError):
            pooled.states[7]

    def test_rebuilt_states_are_independent(self, test_cases):
        """Opaque leaves are copied per rebuild: mutating one restored
        state never leaks into the next restore."""
        track, pooled = self._track_and_pool(test_cases)
        tick = max(track.states)
        first = pooled.states[tick]
        first.signals["ADC"] = -999
        first.loop["ticks_run"] = -1
        assert pooled.states[tick].matches(track.states[tick])

    def test_unpoolable_track_is_refused(self, test_cases):
        """States with differing leaf shapes fall back to dicts."""
        from repro.fi.snapshot import TrackPool

        track = record_track(factory, test_cases[4], 256)
        mangled = track.states[0]
        mangled.loop["extra"] = 1  # shape now differs from the rest
        pool = TrackPool()
        assert not pool.publish(test_cases[4].case_id, track)
        assert pool.get(test_cases[4].case_id) is None

    def test_campaign_bit_identical_pool_on_off(self, two_cases):
        specs = list(EA_BY_NAME.values())

        def run(**kwargs):
            campaign = DetectionCampaign(
                factory, two_cases, specs,
                runs_per_signal=3, targets=["ADC", "TCNT"],
                config=CampaignConfig(seed=7, **kwargs),
            )
            result = campaign.run()
            return (
                result.n_injected, result.n_err, result.detections,
                result.run_records, result.run_latencies,
            ), campaign.telemetry

        on, t_on = run(track_pool=True)
        off, t_off = run(track_pool=False)
        assert on == off
        # both runs really fast-forwarded (the pool changes where the
        # checkpoint bytes live, not whether restores happen)
        assert t_on.ff_restores > 0
        assert t_off.ff_restores > 0

    def test_env_kill_switch_disables_pool(self, test_cases, monkeypatch):
        from repro.fi.snapshot import FastForward

        monkeypatch.setenv("REPRO_NO_TRACK_POOL", "1")
        engine = FastForward(factory, "arrestment")
        assert not engine.track_pool_enabled
        assert engine.pooled_tracks == 0
        monkeypatch.delenv("REPRO_NO_TRACK_POOL")
        assert FastForward(factory, "arrestment").track_pool_enabled

    def test_policy_flag_disables_pool(self, test_cases):
        from repro.fi.snapshot import FastForward

        config = CampaignConfig(track_pool=False)
        engine = FastForward(factory, "arrestment", config=config)
        assert not engine.track_pool_enabled

    def test_preload_fills_the_pool(self, two_cases):
        from repro.fi.snapshot import CheckpointStore, FastForward

        engine = FastForward(
            factory, "arrestment", store=CheckpointStore(max_tracks=4)
        )
        if not engine.track_pool_enabled:
            pytest.skip("shared memory unavailable")
        engine.preload(two_cases)
        assert engine.pooled_tracks == len(two_cases)
        for case in two_cases:
            assert engine._pool.get(case.case_id) is not None


class TestConfigKnobs:
    def test_stride_validation(self):
        with pytest.raises(CampaignError):
            CampaignConfig(checkpoint_stride=0)

    def test_context_threads_the_knobs(self):
        from repro.experiments.context import ExperimentContext

        ctx = ExperimentContext(
            scale="test", fast_forward=False, checkpoint_stride=512,
            track_pool=False,
        )
        config = ctx.campaign_config("detection")
        assert config.fast_forward is False
        assert config.checkpoint_stride == 512
        assert config.fastforward.track_pool is False

    def test_cli_flags_reach_the_context(self):
        from repro.experiments.__main__ import (
            add_execution_options,
            context_from_args,
        )
        import argparse

        parser = argparse.ArgumentParser()
        add_execution_options(parser)
        args = parser.parse_args(
            ["--no-fast-forward", "--checkpoint-stride", "128",
             "--no-track-pool"]
        )
        ctx = context_from_args(args)
        assert ctx.fast_forward is False
        assert ctx.checkpoint_stride == 128
        assert ctx.track_pool is False
