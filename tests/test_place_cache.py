"""The compositional placement cache: reuse, invalidation, backends.

The ``repro place`` claims under test: a cold solve (empty cache,
every module injected) and a cache-hit re-solve print byte-identical
placement tables on both cache backends; editing one module's
fingerprint re-injects only that module; and the merged cached
estimate is exactly what one full uncached campaign with the same
seed produces.
"""

import pytest

from repro.edm.catalogue import EA_BY_NAME, EH_SET, PA_SET
from repro.errors import PlacementError
from repro.fi.campaign import PermeabilityCampaign
from repro.place import (
    Budget,
    PlacementCache,
    build_report,
    cached_estimate,
    ilp_solve,
    instance_from_estimate,
    items_for_signals,
    module_fingerprint,
    system_fingerprints,
)
from repro.target import ArrestmentSimulator, standard_test_cases
from repro.target.wiring import build_arrestment_system

RUNS = 2
SEED = 2002


def factory(test_case):
    return ArrestmentSimulator(test_case, timeout_s=6.0)


@pytest.fixture(scope="module")
def cases():
    return [standard_test_cases()[4], standard_test_cases()[20]]


@pytest.fixture(scope="module")
def full_estimate(cases):
    return PermeabilityCampaign(
        factory, cases, runs_per_input=RUNS, seed=SEED
    ).run()


def _render(estimate):
    system = build_arrestment_system()
    specs = list(EA_BY_NAME.values())
    instance = instance_from_estimate(
        system, estimate, specs, Budget(rom_bytes=150, ram_bytes=54)
    )
    result = ilp_solve(instance)
    report = build_report(
        "arrestment", instance, result,
        [
            ("EH", items_for_signals(instance, EH_SET)),
            ("PA", items_for_signals(instance, PA_SET)),
        ],
    )
    return report.render()


class TestColdVsWarm:
    @pytest.mark.parametrize("suffix", [".json", ".db"])
    def test_cache_hit_resolve_is_byte_identical(
        self, tmp_path, cases, full_estimate, suffix
    ):
        path = str(tmp_path / f"cache{suffix}")
        with PlacementCache(path) as cache:
            cold, cold_tel = cached_estimate(
                factory, cases, cache, runs_per_input=RUNS, seed=SEED
            )
            warm, warm_tel = cached_estimate(
                factory, cases, cache, runs_per_input=RUNS, seed=SEED
            )
        assert cold_tel.misses and not cold_tel.hits
        assert warm_tel.hits and not warm_tel.misses
        assert cold.values == full_estimate.values
        assert cold.direct_counts == full_estimate.direct_counts
        assert cold.active_runs == full_estimate.active_runs
        assert _render(cold) == _render(warm)

    def test_backends_agree(self, tmp_path, cases):
        estimates = []
        for suffix in (".json", ".db"):
            with PlacementCache(str(tmp_path / f"c{suffix}")) as cache:
                estimate, _ = cached_estimate(
                    factory, cases, cache, runs_per_input=RUNS, seed=SEED
                )
            estimates.append(estimate)
        assert estimates[0].values == estimates[1].values
        assert _render(estimates[0]) == _render(estimates[1])


class TestInvalidation:
    def test_salted_fingerprint_reinjects_only_that_module(
        self, tmp_path, cases, full_estimate
    ):
        with PlacementCache(str(tmp_path / "cache.json")) as cache:
            cached_estimate(
                factory, cases, cache, runs_per_input=RUNS, seed=SEED
            )
            salted, telemetry = cached_estimate(
                factory, cases, cache,
                runs_per_input=RUNS, seed=SEED,
                salts={"CLOCK": "rev2"},
            )
        assert telemetry.misses == ("CLOCK",)
        assert "CLOCK" not in telemetry.hits
        assert len(telemetry.hits) == 5
        # the restricted campaign redraws CLOCK with the same seed, so
        # the merged estimate still matches the full campaign
        assert salted.values == full_estimate.values

    def test_forced_invalidation_stores_under_plain_fingerprint(
        self, tmp_path, cases
    ):
        with PlacementCache(str(tmp_path / "cache.json")) as cache:
            cached_estimate(
                factory, cases, cache, runs_per_input=RUNS, seed=SEED
            )
            _, forced = cached_estimate(
                factory, cases, cache,
                runs_per_input=RUNS, seed=SEED,
                invalidate=("CALC",),
            )
            _, after = cached_estimate(
                factory, cases, cache, runs_per_input=RUNS, seed=SEED
            )
        assert forced.misses == ("CALC",)
        assert not after.misses  # stored back under the plain print

    def test_unknown_modules_are_rejected(self, tmp_path, cases):
        with PlacementCache(str(tmp_path / "cache.json")) as cache:
            with pytest.raises(PlacementError):
                cached_estimate(
                    factory, cases, cache,
                    runs_per_input=RUNS, seed=SEED,
                    salts={"NO_SUCH": "x"},
                )
            with pytest.raises(PlacementError):
                cached_estimate(
                    factory, cases, cache,
                    runs_per_input=RUNS, seed=SEED,
                    invalidate=("NO_SUCH",),
                )


class TestFingerprints:
    def test_parameters_move_the_fingerprint(self, cases):
        system = build_arrestment_system()
        labels = [case.label for case in cases]
        base = module_fingerprint(
            system, "CLOCK",
            seed=SEED, runs_per_input=RUNS, direct_only=True,
            case_labels=labels,
        )
        for kwargs in (
            {"seed": SEED + 1},
            {"runs_per_input": RUNS + 1},
            {"direct_only": False},
            {"case_labels": labels[:1]},
            {"salt": "rev2"},
            {"extra": "adaptive:max_runs=9"},
        ):
            merged = {
                "seed": SEED,
                "runs_per_input": RUNS,
                "direct_only": True,
                "case_labels": labels,
                **kwargs,
            }
            assert module_fingerprint(system, "CLOCK", **merged) != base

    def test_system_fingerprints_cover_every_module(self, cases):
        system = build_arrestment_system()
        prints = system_fingerprints(
            system,
            seed=SEED, runs_per_input=RUNS, direct_only=True,
            case_labels=[case.label for case in cases],
        )
        assert sorted(prints) == sorted(
            module.name for module in system.modules()
        )
        assert len(set(prints.values())) == len(prints)


class TestCacheStore:
    def test_stale_fingerprint_misses(self, tmp_path):
        with PlacementCache(str(tmp_path / "c.json")) as cache:
            cache.store("CLOCK", "aaa", {"active": [], "counts": []})
            assert cache.lookup("CLOCK", "aaa") is not None
            assert cache.lookup("CLOCK", "bbb") is None
            assert cache.lookup("CALC", "aaa") is None
            assert cache.modules() == ["CLOCK"]

    def test_unknown_backend_is_rejected(self, tmp_path):
        with pytest.raises(PlacementError):
            PlacementCache(str(tmp_path / "c.json"), backend="csv")
