"""Unit tests for repro.analysis (estimator bridging, table rendering)."""

import pytest

from repro.analysis.estimators import (
    estimate_confidence,
    matrix_from_estimate,
)
from repro.analysis.tables import fmt, render_table
from repro.errors import AnalysisError
from repro.fi.campaign import PermeabilityEstimate


def make_estimate(system, value=0.5, n=10):
    pairs = system.io_pairs()
    direct = {
        (p.module, p.in_port, p.out_port): int(value * n) for p in pairs
    }
    active = {(p.module, p.in_port): n for p in pairs}
    values = {
        key: count / n for key, count in direct.items()
    }
    return PermeabilityEstimate(
        direct_counts=direct, active_runs=active, values=values
    )


class TestMatrixFromEstimate:
    def test_builds_complete_matrix(self, system):
        estimate = make_estimate(system)
        matrix = matrix_from_estimate(system, estimate)
        assert matrix.is_complete()
        assert matrix[("CLOCK", 1, 1)] == 0.5

    def test_missing_pair_rejected(self, system):
        estimate = make_estimate(system)
        del estimate.values[("CLOCK", "ms_slot_nbr", "mscnt")]
        with pytest.raises(AnalysisError, match="no estimate"):
            matrix_from_estimate(system, estimate)


class TestConfidence:
    def test_interval_shrinks_with_n(self, system):
        wide = estimate_confidence(make_estimate(system, n=10))
        narrow = estimate_confidence(make_estimate(system, n=1000))
        key = ("CLOCK", "ms_slot_nbr", "ms_slot_nbr")
        assert narrow[key].half_width_95 < wide[key].half_width_95

    def test_bounds_clipped_to_unit_interval(self, system):
        conf = estimate_confidence(make_estimate(system, value=0.0, n=4))
        for item in conf.values():
            assert 0.0 <= item.low <= item.high <= 1.0

    def test_zero_runs_degenerate(self, system):
        estimate = make_estimate(system)
        for key in estimate.active_runs:
            estimate.active_runs[key] = 0
        conf = estimate_confidence(estimate)
        assert all(item.half_width_95 == 1.0 for item in conf.values())


class TestTableRendering:
    def test_fmt_variants(self):
        assert fmt(None) == "-"
        assert fmt(True) == "yes" and fmt(False) == "no"
        assert fmt(0.12345) == "0.123"
        assert fmt(0.12345, digits=1) == "0.1"
        assert fmt(42) == "42"
        assert fmt("text") == "text"

    def test_render_alignment(self):
        text = render_table(
            ["A", "Blong"], [[1, 2.0], ["xx", None]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "A" in lines[1] and "Blong" in lines[1]
        assert set(lines[2]) == {"-"}
        # all rows same width
        assert len({len(line) for line in lines[1:]}) <= 2

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["A"], [[1, 2]])

    def test_render_without_title(self):
        text = render_table(["A"], [[1]])
        assert text.splitlines()[0] == "A"
