"""Unit tests for repro.core.criticality (Eqs. 3 and 4)."""

import pytest

from repro.core.criticality import (
    OutputCriticalities,
    all_criticalities,
    criticality_ranking,
    signal_criticality,
    signal_criticality_for_output,
)
from repro.core.impact import impact, impact_ranking
from repro.errors import AnalysisError


def crits(graph, value=1.0):
    return OutputCriticalities(graph, {"TOC2": value})


class TestOutputCriticalities:
    def test_valid_assignment(self, graph):
        oc = crits(graph, 0.7)
        assert oc["TOC2"] == 0.7
        assert oc.outputs() == ["TOC2"]

    def test_missing_output_rejected(self, graph):
        with pytest.raises(AnalysisError, match="missing"):
            OutputCriticalities(graph, {})

    def test_non_output_rejected(self, graph):
        with pytest.raises(AnalysisError, match="non-output"):
            OutputCriticalities(graph, {"TOC2": 1.0, "SetValue": 0.5})

    def test_out_of_range_rejected(self, graph):
        with pytest.raises(AnalysisError):
            OutputCriticalities(graph, {"TOC2": 1.5})
        with pytest.raises(AnalysisError):
            OutputCriticalities(graph, {"TOC2": -0.1})

    def test_unknown_lookup_rejected(self, graph):
        oc = crits(graph)
        with pytest.raises(AnalysisError):
            oc["SetValue"]


class TestEquations:
    def test_eq3_is_scaled_impact(self, matrix, graph):
        oc = crits(graph, 0.5)
        expected = 0.5 * impact(matrix, graph, "SetValue", "TOC2")
        assert signal_criticality_for_output(
            matrix, graph, oc, "SetValue", "TOC2"
        ) == pytest.approx(expected)

    def test_eq4_single_output_equals_eq3(self, matrix, graph):
        oc = crits(graph, 0.5)
        for signal in ("SetValue", "pulscnt", "mscnt"):
            assert signal_criticality(
                matrix, graph, oc, signal
            ) == pytest.approx(
                signal_criticality_for_output(
                    matrix, graph, oc, signal, "TOC2"
                )
            )

    def test_zero_criticality_output_zeroes_everything(self, matrix, graph):
        oc = crits(graph, 0.0)
        assert signal_criticality(matrix, graph, oc, "OutValue") == 0.0

    def test_criticality_bounded(self, matrix, graph, system):
        oc = crits(graph, 1.0)
        for signal in system.signal_names():
            if system.signal(signal).is_system_output:
                continue
            value = signal_criticality(matrix, graph, oc, signal)
            assert 0.0 <= value <= 1.0


class TestSingleOutputScaling:
    def test_relative_order_unchanged(self, matrix, graph):
        """Section 8: with one output, criticality is a constant scaling
        — the relative order among signals cannot change."""
        oc = crits(graph, 0.37)
        crit_order = [
            name for name, _ in criticality_ranking(matrix, graph, oc)
        ]
        impact_order = [name for name, _ in impact_ranking(matrix, graph)]
        assert crit_order == impact_order

    def test_values_scale_linearly(self, matrix, graph):
        oc = crits(graph, 0.37)
        for name, value in all_criticalities(matrix, graph, oc).items():
            if value is None:
                continue
            assert value == pytest.approx(
                0.37 * impact(matrix, graph, name, "TOC2")
            )

    def test_outputs_have_no_criticality(self, matrix, graph):
        oc = crits(graph)
        assert all_criticalities(matrix, graph, oc)["TOC2"] is None
