"""Unit tests for the plant, sensors and failure classification."""

import pytest

from repro.errors import ModelError
from repro.target import constants as C
from repro.target.failure import FailureClassifier, FailureKind
from repro.target.hardware import SensorSuite
from repro.target.physics import ArrestmentPlant, PlantState
from repro.target.testcases import TestCase, standard_test_cases


class TestPlant:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ModelError):
            ArrestmentPlant(0, 50)
        with pytest.raises(ModelError):
            ArrestmentPlant(10000, 0)

    def test_initial_state(self):
        plant = ArrestmentPlant(10000, 50)
        assert plant.state.velocity_ms == 50
        assert plant.state.distance_m == 0
        assert not plant.is_stopped

    def test_no_pressure_coasts_with_drag(self):
        plant = ArrestmentPlant(10000, 50)
        for _ in range(1000):
            plant.step(0.0)
        assert 45 < plant.state.velocity_ms < 50
        assert plant.state.distance_m > 40

    def test_full_pressure_stops_aircraft(self):
        plant = ArrestmentPlant(10000, 50)
        steps = 0
        while not plant.is_stopped and steps < 20000:
            plant.step(C.P_MAX_PA)
            steps += 1
        assert plant.is_stopped
        assert plant.state.distance_m < C.MAX_STOPPING_DISTANCE_M

    def test_actuator_lag(self):
        plant = ArrestmentPlant(10000, 50)
        plant.step(C.P_MAX_PA)
        # after one 1 ms step the pressure is only a fraction of command
        assert 0 < plant.state.pressure_pa < 0.05 * C.P_MAX_PA

    def test_heavier_aircraft_decelerates_slower(self):
        light = ArrestmentPlant(8000, 50)
        heavy = ArrestmentPlant(20000, 50)
        for _ in range(2000):
            light.step(5e6)
            heavy.step(5e6)
        assert light.state.velocity_ms < heavy.state.velocity_ms

    def test_peaks_recorded(self):
        plant = ArrestmentPlant(8000, 50)
        for _ in range(3000):
            plant.step(5e6)
        assert plant.peak_force_n > 0
        assert plant.peak_retardation_ms2 == pytest.approx(
            plant.peak_force_n / 8000, rel=0.2
        )

    def test_reset(self):
        plant = ArrestmentPlant(8000, 50)
        plant.step(5e6)
        plant.reset()
        assert plant.state.distance_m == 0
        assert plant.peak_force_n == 0

    def test_stopped_state_applies_no_force(self):
        plant = ArrestmentPlant(8000, 10)
        while not plant.is_stopped:
            plant.step(C.P_MAX_PA)
        state = plant.step(C.P_MAX_PA)
        assert state.force_n == 0
        assert state.retardation_ms2 == 0


class TestSensors:
    def test_tcnt_free_runs_and_wraps(self):
        sensors = SensorSuite()
        for _ in range(300):
            sensors.advance(0.0, 0.0)
        assert sensors.tcnt == (300 * C.TCNT_PER_TICK) % (1 << 16)

    def test_pacnt_counts_pulses(self):
        sensors = SensorSuite()
        sensors.advance(2.5, 0.0)  # 2.5 m -> 10 pulses
        assert sensors.pacnt == 10
        assert sensors.total_pulses == 10

    def test_pacnt_wraps_at_8_bits(self):
        sensors = SensorSuite()
        sensors.advance(100.0, 0.0)  # 400 pulses
        assert sensors.pacnt == 400 % 256

    def test_tic1_latches_tcnt_on_pulse(self):
        sensors = SensorSuite()
        sensors.advance(0.0, 0.0)
        assert sensors.tic1 == 0
        sensors.advance(1.0, 0.0)  # pulses arrive
        assert sensors.tic1 == sensors.tcnt

    def test_adc_scales_pressure(self):
        sensors = SensorSuite()
        sensors.advance(0.0, C.ADC_FULL_SCALE_PA / 2)
        assert sensors.adc == pytest.approx(511, abs=2)
        sensors.advance(0.0, 2 * C.ADC_FULL_SCALE_PA)  # clamped
        assert sensors.adc == 1023

    def test_commanded_pressure_mapping(self):
        assert SensorSuite.commanded_pressure(0) == 0.0
        full = SensorSuite.commanded_pressure((1 << C.TOC2_BITS) - 1)
        assert full == pytest.approx(C.P_MAX_PA)

    def test_reset(self):
        sensors = SensorSuite()
        sensors.advance(10.0, 1e6)
        sensors.reset()
        assert sensors.pacnt == 0 and sensors.adc == 0


class TestTestCases:
    def test_twenty_five_standard_cases(self):
        cases = standard_test_cases()
        assert len(cases) == 25
        assert len({tc.case_id for tc in cases}) == 25

    def test_envelope_bounds(self):
        cases = standard_test_cases()
        assert min(tc.mass_kg for tc in cases) == 8000
        assert max(tc.engaging_velocity_ms for tc in cases) == 70

    def test_invalid_case_rejected(self):
        with pytest.raises(ModelError):
            TestCase(0, -1, 50)
        with pytest.raises(ModelError):
            TestCase(0, 10000, 0)

    def test_label(self):
        tc = TestCase(3, 10000, 55)
        assert "tc03" in tc.label and "10000" in tc.label


class TestFailureClassifier:
    def _case(self):
        return TestCase(0, 10000, 50)

    def test_healthy_trajectory_passes(self):
        classifier = FailureClassifier(self._case())
        classifier.observe(PlantState(
            retardation_ms2=10, force_n=1e5, distance_m=100,
        ))
        verdict = classifier.verdict(arrested=True)
        assert not verdict.failed
        assert "OK" in verdict.describe()

    def test_retardation_limit(self):
        classifier = FailureClassifier(self._case())
        classifier.observe(PlantState(
            retardation_ms2=3.6 * C.G, force_n=0, distance_m=0,
        ))
        verdict = classifier.verdict(arrested=True)
        assert FailureKind.RETARDATION in verdict.kinds

    def test_force_limit_depends_on_case(self):
        classifier = FailureClassifier(self._case())
        limit = C.max_retardation_force_n(10000, 50)
        classifier.observe(PlantState(force_n=limit + 1))
        assert FailureKind.FORCE in classifier.verdict(True).kinds

    def test_distance_limit(self):
        classifier = FailureClassifier(self._case())
        classifier.observe(PlantState(distance_m=340))
        assert FailureKind.DISTANCE in classifier.verdict(True).kinds

    def test_not_arrested_is_distance_failure(self):
        classifier = FailureClassifier(self._case())
        classifier.observe(PlantState(distance_m=100))
        verdict = classifier.verdict(arrested=False)
        assert verdict.failed
        assert FailureKind.DISTANCE in verdict.kinds

    def test_fmax_monotonic_in_mass_and_velocity(self):
        assert C.max_retardation_force_n(20000, 50) > \
            C.max_retardation_force_n(8000, 50)
        assert C.max_retardation_force_n(10000, 70) > \
            C.max_retardation_force_n(10000, 40)

    def test_describe_failure(self):
        classifier = FailureClassifier(self._case())
        classifier.observe(PlantState(distance_m=340))
        assert "FAILURE" in classifier.verdict(True).describe()
