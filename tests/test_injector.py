"""Unit tests for repro.fi.models and repro.fi.injector."""

import pytest

from repro.errors import InjectionError
from repro.fi.injector import FaultInjector
from repro.fi.memory import CellKind, MemoryMap, Region
from repro.fi.models import (
    DEFAULT_PERIOD_TICKS,
    InputSignalFlip,
    ModuleInputFlip,
    PeriodicMemoryFlip,
)
from repro.target.simulation import ArrestmentSimulator


class TestSpecValidation:
    def test_negative_tick_rejected(self):
        with pytest.raises(InjectionError):
            InputSignalFlip("PACNT", -1, 0)

    def test_negative_bit_rejected(self):
        with pytest.raises(InjectionError):
            InputSignalFlip("PACNT", 0, -1)
        with pytest.raises(InjectionError):
            ModuleInputFlip("CALC", "i", 0, -1)

    def test_periodic_needs_positive_period(self, system):
        loc = MemoryMap(system).locations()[0]
        with pytest.raises(InjectionError):
            PeriodicMemoryFlip(loc, 0, period_ticks=0)

    def test_periodic_bit_within_location(self, system):
        loc = MemoryMap(system).locations()[0]
        with pytest.raises(InjectionError):
            PeriodicMemoryFlip(loc, loc.valid_bits)

    def test_default_period_is_20ms(self):
        assert DEFAULT_PERIOD_TICKS == 20

    def test_labels(self, system):
        assert InputSignalFlip("PACNT", 5, 3).label == "input:PACNT@t5b3"
        assert "CALC.i" in ModuleInputFlip("CALC", "i", 5, 3).label
        loc = MemoryMap(system).locations()[0]
        assert loc.label in PeriodicMemoryFlip(loc, 0).label


class TestAttachmentChecks:
    def test_input_flip_requires_system_input(self, mid_case):
        sim = ArrestmentSimulator(mid_case)
        with pytest.raises(InjectionError, match="not a system input"):
            FaultInjector(InputSignalFlip("pulscnt", 0, 0)).attach(sim)

    def test_input_flip_bit_range_checked(self, mid_case):
        sim = ArrestmentSimulator(mid_case)
        with pytest.raises(InjectionError, match="width"):
            FaultInjector(InputSignalFlip("PACNT", 0, 8)).attach(sim)

    def test_module_flip_port_checked(self, mid_case):
        sim = ArrestmentSimulator(mid_case)
        with pytest.raises(InjectionError, match="no input port"):
            FaultInjector(ModuleInputFlip("CALC", "nope", 0, 0)).attach(sim)

    def test_double_attach_rejected(self, mid_case):
        injector = FaultInjector(InputSignalFlip("PACNT", 0, 0))
        injector.attach(ArrestmentSimulator(mid_case))
        with pytest.raises(InjectionError, match="already attached"):
            injector.attach(ArrestmentSimulator(mid_case))


class TestInputSignalInjection:
    def test_flip_is_applied_once_and_persists_in_register(self, mid_case):
        sim = ArrestmentSimulator(mid_case)
        injector = FaultInjector(InputSignalFlip("PACNT", 50, 7)).attach(sim)
        sim.run()
        assert injector.injected
        assert len(injector.events) == 1
        event = injector.events[0]
        assert event.tick == 50
        assert event.after == event.before ^ 0x80

    def test_flip_after_timeout_never_applies(self, mid_case):
        sim = ArrestmentSimulator(mid_case, timeout_s=0.05)
        injector = FaultInjector(
            InputSignalFlip("PACNT", 10**6, 0)
        ).attach(sim)
        sim.run()
        assert not injector.injected
        assert injector.first_injection_tick is None

    def test_register_corruption_reaches_consumer(self, mid_case):
        """A PACNT register flip must disturb pulscnt (the counter
        keeps counting from the corrupted value)."""
        golden = ArrestmentSimulator(mid_case).run()
        sim = ArrestmentSimulator(mid_case)
        FaultInjector(InputSignalFlip("PACNT", 1000, 7)).attach(sim)
        result = sim.run()
        diff = result.traces.first_difference(golden.traces, "pulscnt")
        assert diff is not None and diff >= 1000


class TestModuleInputInjection:
    def test_applies_at_next_invocation(self, mid_case):
        sim = ArrestmentSimulator(mid_case)
        injector = FaultInjector(
            ModuleInputFlip("CALC", "pulscnt", 100, 9)
        ).attach(sim)
        sim.run()
        assert injector.injected
        event = injector.events[0]
        assert event.tick >= 100
        assert event.target == "CALC.pulscnt"

    def test_store_not_corrupted(self, mid_case):
        """Module-input flips corrupt the read value, not the store."""
        golden = ArrestmentSimulator(mid_case).run()
        sim = ArrestmentSimulator(mid_case)
        FaultInjector(ModuleInputFlip("DIST_S", "TIC1", 200, 15)).attach(sim)
        result = sim.run()
        # TIC1's own trace is untouched (the register was never poked)
        assert result.traces.first_difference(golden.traces, "TIC1") is None


class TestPeriodicMemoryInjection:
    def _location(self, system, **query):
        mm = MemoryMap(system)
        for loc in mm.locations():
            if all(getattr(loc, k) == v for k, v in query.items()):
                return loc
        raise AssertionError(f"no location matching {query}")

    def test_ram_state_flip_repeats_each_period(self, mid_case, system):
        loc = self._location(
            system, module="CLOCK", cell="mscnt", byte_offset=0,
            kind=CellKind.STATE,
        )
        sim = ArrestmentSimulator(mid_case, timeout_s=0.2)
        injector = FaultInjector(
            PeriodicMemoryFlip(loc, 3, period_ticks=20)
        ).attach(sim)
        sim.run()
        ticks = [e.tick for e in injector.events]
        assert ticks[:3] == [0, 20, 40]

    def test_signal_store_flip(self, mid_case, system):
        loc = self._location(
            system, cell="SetValue", kind=CellKind.SIGNAL, byte_offset=1,
        )
        sim = ArrestmentSimulator(mid_case, timeout_s=0.1)
        injector = FaultInjector(
            PeriodicMemoryFlip(loc, 5, period_ticks=20, start_tick=7)
        ).attach(sim)
        sim.run()
        assert injector.events[0].tick == 7
        assert injector.events[0].after == injector.events[0].before ^ (
            1 << 13
        )

    def test_stack_arg_flip_strikes_at_marshal(self, mid_case, system):
        loc = self._location(
            system, module="CALC", cell="pulscnt", kind=CellKind.ARG,
            byte_offset=0,
        )
        sim = ArrestmentSimulator(mid_case, timeout_s=0.2)
        injector = FaultInjector(
            PeriodicMemoryFlip(loc, 2, period_ticks=20)
        ).attach(sim)
        sim.run()
        assert injector.injected
        # CALC runs in slot 5, i.e. at ticks == 4 (mod 20)
        assert all(e.tick % 20 == 4 for e in injector.events)

    def test_stack_local_flip_strikes_at_write(self, mid_case, system):
        loc = self._location(
            system, module="CALC", cell="target", kind=CellKind.LOCAL,
            byte_offset=1,
        )
        sim = ArrestmentSimulator(mid_case, timeout_s=0.2)
        injector = FaultInjector(
            PeriodicMemoryFlip(loc, 6, period_ticks=20)
        ).attach(sim)
        sim.run()
        assert injector.injected
        assert all(e.target == loc.label for e in injector.events)

    def test_armed_corruption_strikes_once_per_period(self, mid_case, system):
        loc = self._location(
            system, module="V_REG", cell="SetValue", kind=CellKind.ARG,
            byte_offset=0,
        )
        sim = ArrestmentSimulator(mid_case, timeout_s=0.2)
        injector = FaultInjector(
            PeriodicMemoryFlip(loc, 1, period_ticks=40)
        ).attach(sim)
        sim.run()
        ticks = [e.tick for e in injector.events]
        assert len(ticks) == len(set(ticks))
        for t1, t2 in zip(ticks, ticks[1:]):
            assert t2 - t1 >= 40
