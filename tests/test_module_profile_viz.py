"""Tests for module-level profiling and DOT export."""

import pytest

from repro.core.module_profile import ModuleProfile
from repro.core.profile import SystemProfile
from repro.core.trees import build_backtrack_tree, build_impact_tree
from repro.errors import AnalysisError
from repro.viz import profile_to_dot, system_to_dot, tree_to_dot


class TestModuleProfile:
    @pytest.fixture
    def profile(self, matrix):
        return ModuleProfile(matrix)

    def test_entries_for_all_modules(self, system, profile):
        assert {e.module for e in profile.entries()} == set(
            system.module_names()
        )

    def test_unknown_module_rejected(self, profile):
        with pytest.raises(AnalysisError):
            profile.entry("GHOST")

    def test_vreg_values(self, profile):
        entry = profile.entry("V_REG")
        # (0.885 + 0.896) / 2 pairs
        assert entry.relative_permeability == pytest.approx(0.8905)
        # input signals: SetValue (1.478) + IsValue (0.000), over 2
        assert entry.exposure == pytest.approx(0.739, abs=5e-4)

    def test_dist_s_exposure_zero(self, profile):
        # DIST_S reads only system inputs
        assert profile.entry("DIST_S").exposure == 0.0

    def test_rankings_descending(self, profile):
        exposures = [e.exposure for e in profile.by_exposure()]
        assert exposures == sorted(exposures, reverse=True)
        perms = [
            e.relative_permeability for e in profile.by_permeability()
        ]
        assert perms == sorted(perms, reverse=True)

    def test_erm_candidates_are_the_pass_throughs(self, profile):
        candidates = profile.erm_candidates(threshold=0.5)
        assert "V_REG" in candidates and "PRES_A" in candidates
        assert "PRES_S" not in candidates

    def test_trade_off_modules(self, profile):
        # DIST_S: permeability moderate, exposure zero; PRES_A: high
        # permeability, OutValue exposure is high -> not a trade-off
        trade_offs = profile.trade_off_modules(
            permeability_threshold=0.1, exposure_threshold=0.25,
        )
        assert "DIST_S" in trade_offs
        assert "PRES_A" not in trade_offs

    def test_render(self, profile):
        text = profile.render()
        assert "Module profile" in text
        assert "R1 (EDM) priority" in text and "R2 (ERM) priority" in text


class TestDotExport:
    def test_system_dot_structure(self, system):
        dot = system_to_dot(system, title="Fig. 1")
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        for module in system.module_names():
            assert f'"{module}"' in dot
        assert '"PACNT" -> "DIST_S"' in dot
        assert '"PRES_A" -> "TOC2"' in dot
        assert "Fig. 1" in dot

    def test_impact_tree_dot(self, graph, matrix):
        tree = build_impact_tree(graph, "pulscnt")
        dot = tree_to_dot(tree, matrix, title="Fig. 4")
        assert "P^CALC_{3,1} = 0.494" in dot
        assert "style=dashed" in dot  # the zero-permeability edge
        assert dot.count("->") == 7  # 8 nodes, 7 edges

    def test_backtrack_tree_dot_orientation(self, graph):
        tree = build_backtrack_tree(graph, "TOC2")
        dot = tree_to_dot(tree)
        # backward tree edges are re-oriented into propagation direction:
        # some node must point *at* the root (n0)
        assert "-> n0" in dot

    def test_profile_dot_bands(self, matrix, graph):
        profile = SystemProfile(matrix, graph, output="TOC2")
        dot = profile_to_dot(profile, "exposure")
        assert "penwidth=4" in dot  # the highest band
        assert "style=dotted" in dot  # unassigned (system inputs)
        dot_impact = profile_to_dot(profile, "impact")
        assert "ms_slot_nbr" in dot_impact

    def test_profile_dot_selector_checked(self, matrix, graph):
        profile = SystemProfile(matrix, graph, output="TOC2")
        with pytest.raises(AnalysisError):
            profile_to_dot(profile, "sideways")

    def test_dot_quoting(self, system):
        dot = system_to_dot(system)
        # every node reference is quoted; no stray unquoted P^ labels
        assert '"ms_slot_nbr"' in dot
