"""Unit tests for repro.analysis.coverage (statistical estimators)."""

import pytest

from repro.analysis.coverage import (
    Stratum,
    binomial_estimate,
    detection_estimates,
    memory_estimates,
    stratified_coverage,
    wilson_interval,
)
from repro.errors import AnalysisError
from repro.fi.memory import Region


class TestWilson:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(30, 100)
        assert low < 0.30 < high

    def test_degenerate_zero(self):
        low, high = wilson_interval(0, 50)
        assert low == 0.0
        assert 0.0 < high < 0.2

    def test_degenerate_full(self):
        low, high = wilson_interval(50, 50)
        assert 0.8 < low < 1.0
        assert high == 1.0

    def test_no_data_full_interval(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_shrinks_with_n(self):
        small = wilson_interval(5, 10)
        large = wilson_interval(500, 1000)
        assert (large[1] - large[0]) < (small[1] - small[0])

    def test_invalid_counts_rejected(self):
        with pytest.raises(AnalysisError):
            wilson_interval(5, 4)
        with pytest.raises(AnalysisError):
            wilson_interval(-1, 4)


class TestBinomialEstimate:
    def test_fields(self):
        est = binomial_estimate(7, 10)
        assert est.point == 0.7
        assert est.low < 0.7 < est.high
        assert "7/10" in est.describe()

    def test_overlap(self):
        a = binomial_estimate(50, 100)
        b = binomial_estimate(55, 100)
        c = binomial_estimate(99, 100)
        assert a.overlaps(b)
        assert not a.overlaps(c)


class TestStratified:
    def test_equal_strata_match_pooled(self):
        strata = [
            Stratum("a", 5, 10, weight=1),
            Stratum("b", 5, 10, weight=1),
        ]
        est = stratified_coverage(strata)
        assert est.point == pytest.approx(0.5)
        assert est.detected == 10 and est.n == 20

    def test_weights_matter(self):
        strata = [
            Stratum("common", 9, 10, weight=9),
            Stratum("rare", 0, 10, weight=1),
        ]
        est = stratified_coverage(strata)
        assert est.point == pytest.approx(0.81)

    def test_empty_strata_rejected(self):
        with pytest.raises(AnalysisError):
            stratified_coverage([])

    def test_zero_weight_sum_rejected(self):
        with pytest.raises(AnalysisError):
            stratified_coverage([Stratum("a", 0, 10, weight=0)])

    def test_invalid_stratum_rejected(self):
        with pytest.raises(AnalysisError):
            Stratum("a", 5, 4, weight=1)
        with pytest.raises(AnalysisError):
            Stratum("a", 1, 4, weight=-1)

    def test_interval_within_unit(self):
        est = stratified_coverage(
            [Stratum("a", 1, 2, weight=1), Stratum("b", 0, 0, weight=1)]
        )
        assert 0.0 <= est.low <= est.high <= 1.0


class TestCampaignBridges:
    def test_detection_estimates(self, ctx):
        result = ctx.detection_result()
        estimates = detection_estimates(result)
        assert set(estimates) == set(result.targets)
        for target, est in estimates.items():
            assert est.point == pytest.approx(
                result.total_coverage(target)
            )
            assert 0.0 <= est.low <= est.point <= est.high <= 1.0

    def test_detection_estimates_subset(self, ctx):
        result = ctx.detection_result()
        sub = detection_estimates(result, ["EA4"])
        full = detection_estimates(result)
        for target in result.targets:
            assert sub[target].point <= full[target].point

    def test_memory_estimates(self, ctx):
        result = ctx.memory_result()
        estimates = memory_estimates(result, result.ea_names)
        assert {"ram", "stack", "total"} <= set(estimates)
        assert estimates["total"].n == (
            estimates["ram"].n + estimates["stack"].n
        )
