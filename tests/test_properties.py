"""Property-based tests (hypothesis) for the core data structures.

Invariants exercised:

* quantization and bit-flip algebra on the signal value model;
* permeability/exposure/impact bounds on randomly weighted systems;
* Eq. 2's monotonicity: raising any permeability can never lower an
  impact;
* criticality's single-output scaling law;
* path enumeration acyclicity on randomly generated layered systems;
* executable assertions never fire on compliant value series.
"""

import random as stdlib_random

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.criticality import OutputCriticalities, signal_criticality
from repro.core.exposure import all_signal_exposures
from repro.core.impact import all_impacts, impact
from repro.core.permeability import PermeabilityMatrix
from repro.edm.assertions import AssertionSpec, AssertionState, EAKind
from repro.experiments.paper_data import PAPER_TABLE1
from repro.model.graph import SignalGraph
from repro.model.module import FunctionModule
from repro.model.signal import SignalRole, SignalSpec, SignalType, flip_bit, quantize
from repro.model.system import SystemModel

# ----------------------------------------------------------------------
# Signal value model.
# ----------------------------------------------------------------------
widths = st.integers(min_value=1, max_value=64)
int_types = st.sampled_from([SignalType.UINT, SignalType.INT])


@given(
    value=st.integers(min_value=-(2**70), max_value=2**70),
    width=widths,
    sig_type=int_types,
)
def test_quantize_idempotent(value, width, sig_type):
    once = quantize(value, sig_type, width)
    assert quantize(once, sig_type, width) == once


@given(
    value=st.integers(min_value=0, max_value=2**64 - 1),
    width=widths,
    sig_type=int_types,
    data=st.data(),
)
def test_flip_bit_involution(value, width, sig_type, data):
    bit = data.draw(st.integers(min_value=0, max_value=width - 1))
    start = quantize(value, sig_type, width)
    flipped = flip_bit(start, bit, sig_type, width)
    assert flipped != start
    assert flip_bit(flipped, bit, sig_type, width) == start


@given(
    value=st.integers(min_value=-(2**40), max_value=2**40),
    width=widths,
)
def test_quantize_uint_range(value, width):
    result = quantize(value, SignalType.UINT, width)
    assert 0 <= result < (1 << width)


@given(
    value=st.integers(min_value=-(2**40), max_value=2**40),
    width=st.integers(min_value=2, max_value=64),
)
def test_quantize_int_range(value, width):
    result = quantize(value, SignalType.INT, width)
    assert -(1 << (width - 1)) <= result < (1 << (width - 1))


@given(
    value=st.integers(min_value=-(2**40), max_value=2**40),
    width=st.integers(min_value=2, max_value=64),
    sig_type=st.sampled_from(
        [SignalType.UINT, SignalType.INT, SignalType.BOOL]
    ),
)
def test_precompiled_quantizer_equals_quantize(value, width, sig_type):
    """The hot-path quantizer closures must agree with the reference."""
    from repro.model.signal import make_quantizer

    if sig_type is SignalType.BOOL:
        width = 8
    quantizer = make_quantizer(sig_type, width)
    assert quantizer(value) == quantize(value, sig_type, width)


# ----------------------------------------------------------------------
# Random permeability assignments on the target topology.
# ----------------------------------------------------------------------
def _random_matrix(system, rng):
    return PermeabilityMatrix.from_values(
        system,
        {pair: rng.random() for pair in system.io_pairs()},
    )


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_exposure_nonnegative_and_bounded(seed):
    from repro.target.wiring import build_arrestment_system

    system = build_arrestment_system()
    matrix = _random_matrix(system, stdlib_random.Random(seed))
    for name, value in all_signal_exposures(matrix).items():
        if value is None:
            continue
        fan_in = len(system.pairs_into_signal(name))
        assert 0.0 <= value <= fan_in


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_impact_in_unit_interval(seed):
    from repro.target.wiring import build_arrestment_system

    system = build_arrestment_system()
    graph = SignalGraph(system)
    matrix = _random_matrix(system, stdlib_random.Random(seed))
    for name, value in all_impacts(matrix, graph, "TOC2").items():
        if value is None:
            continue
        assert 0.0 <= value <= 1.0


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    data=st.data(),
)
def test_impact_monotone_in_permeability(seed, data):
    """Raising one permeability can never lower any impact (Eq. 2)."""
    from repro.target.wiring import build_arrestment_system

    system = build_arrestment_system()
    graph = SignalGraph(system)
    rng = stdlib_random.Random(seed)
    values = {pair: rng.random() for pair in system.io_pairs()}
    matrix = PermeabilityMatrix.from_values(system, values)
    base = all_impacts(matrix, graph, "TOC2")

    pairs = list(values)
    target = data.draw(st.sampled_from(pairs))
    bumped = dict(values)
    bumped[target] = min(1.0, values[target] + 0.3)
    bumped_matrix = PermeabilityMatrix.from_values(system, bumped)
    raised = all_impacts(bumped_matrix, graph, "TOC2")

    for name in base:
        if base[name] is None:
            continue
        assert raised[name] >= base[name] - 1e-12


@settings(max_examples=25, deadline=None)
@given(
    scale=st.floats(min_value=0.0, max_value=1.0),
    signal=st.sampled_from(["SetValue", "pulscnt", "mscnt", "OutValue"]),
)
def test_criticality_single_output_scaling(scale, signal):
    """With one output, C_s = scale * impact(s) exactly (Section 8)."""
    from repro.target.wiring import build_arrestment_system

    system = build_arrestment_system()
    graph = SignalGraph(system)
    matrix = PermeabilityMatrix.from_values(
        system,
        {
            pair: PAPER_TABLE1[(pair.module, pair.in_port, pair.out_port)]
            for pair in system.io_pairs()
        },
    )
    oc = OutputCriticalities(graph, {"TOC2": scale})
    expected = scale * impact(matrix, graph, signal, "TOC2")
    assert signal_criticality(
        matrix, graph, oc, signal
    ) == pytest.approx(expected)


# ----------------------------------------------------------------------
# Path enumeration on random layered systems.
# ----------------------------------------------------------------------
def _build_layered_system(rng, n_layers, width):
    """Random layered system: every module reads signals from earlier
    layers (guaranteeing validity), one final output module."""
    system = SystemModel("random")
    system.add_signal(SignalSpec("IN", role=SignalRole.SYSTEM_INPUT))
    available = ["IN"]
    counter = 0
    for layer in range(n_layers):
        new_signals = []
        for w in range(width):
            counter += 1
            name = f"s{counter}"
            n_inputs = rng.randint(1, min(3, len(available)))
            sources = rng.sample(available, n_inputs)
            module = FunctionModule(
                f"M{counter}",
                inputs=[f"in{j}" for j in range(n_inputs)],
                outputs=["out"],
                fn=lambda args, state: {"out": 0},
            )
            system.add_module(module)
            system.add_signal(SignalSpec(name))
            for j, src in enumerate(sources):
                system.connect_input(src, f"M{counter}", f"in{j}")
            system.bind_output(name, f"M{counter}", "out")
            new_signals.append(name)
        available.extend(new_signals)
    # final output module consumes every dangling signal
    dangling = [
        s for s in system.signal_names()
        if not system.consumers_of(s) and s != "IN"
    ] or available[-1:]
    out_mod = FunctionModule(
        "OUT_M",
        inputs=[f"in{j}" for j in range(len(dangling))],
        outputs=["out"],
        fn=lambda args, state: {"out": 0},
    )
    system.add_module(out_mod)
    system.add_signal(SignalSpec("OUT", role=SignalRole.SYSTEM_OUTPUT))
    for j, src in enumerate(dangling):
        system.connect_input(src, "OUT_M", f"in{j}")
    system.bind_output("OUT", "OUT_M", "out")
    # IN must feed something
    if not system.consumers_of("IN"):
        return None
    system.validate()
    return system


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    n_layers=st.integers(min_value=1, max_value=3),
    width=st.integers(min_value=1, max_value=3),
)
def test_random_system_paths_acyclic_and_bounded_impact(
    seed, n_layers, width
):
    rng = stdlib_random.Random(seed)
    system = _build_layered_system(rng, n_layers, width)
    assume(system is not None)
    graph = SignalGraph(system)
    matrix = PermeabilityMatrix.from_values(
        system, {pair: rng.random() for pair in system.io_pairs()}
    )
    assert not graph.has_cycle()
    for path in graph.paths("IN", "OUT"):
        assert len(set(path.signals)) == len(path.signals)
    value = impact(matrix, graph, "IN", "OUT")
    assert 0.0 <= value <= 1.0


# ----------------------------------------------------------------------
# Executable assertions on compliant series.
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(
    start=st.integers(min_value=0, max_value=500),
    deltas=st.lists(
        st.integers(min_value=-10, max_value=10), min_size=1, max_size=40
    ),
)
def test_range_rate_never_fires_on_compliant_series(start, deltas):
    spec = AssertionSpec(
        "EA", "s", EAKind.RANGE_RATE, minimum=-10**6, maximum=10**6,
        max_delta=10,
    )
    state = AssertionState(spec)
    value = start
    for tick, delta in enumerate(deltas):
        value += delta
        assert not state.evaluate(value, tick)


@settings(max_examples=50, deadline=None)
@given(
    start=st.integers(min_value=0, max_value=100),
    steps=st.lists(
        st.integers(min_value=0, max_value=5), min_size=1, max_size=40
    ),
)
def test_monotonic_never_fires_on_compliant_series(start, steps):
    spec = AssertionSpec(
        "EA", "s", EAKind.MONOTONIC, minimum=0, maximum=10**6, max_delta=5,
    )
    state = AssertionState(spec)
    value = start
    for tick, step in enumerate(steps):
        value += step
        assert not state.evaluate(value, tick)


@settings(max_examples=50, deadline=None)
@given(
    start=st.integers(min_value=0, max_value=(1 << 16) - 1),
    length=st.integers(min_value=1, max_value=60),
    exact=st.integers(min_value=0, max_value=100),
)
def test_sequence_never_fires_on_exact_series(start, length, exact):
    spec = AssertionSpec(
        "EA", "s", EAKind.SEQUENCE, exact_delta=exact, modulus=1 << 16,
    )
    state = AssertionState(spec)
    value = start
    for tick in range(length):
        assert not state.evaluate(value, tick)
        value = (value + exact) % (1 << 16)


@settings(max_examples=50, deadline=None)
@given(
    series=st.lists(
        st.integers(min_value=0, max_value=200), min_size=2, max_size=30
    ),
    data=st.data(),
)
def test_range_rate_fires_on_any_range_violation(series, data):
    maximum = max(series)
    spec = AssertionSpec(
        "EA", "s", EAKind.RANGE_RATE, minimum=0, maximum=maximum,
        max_delta=10**9,
    )
    state = AssertionState(spec)
    for tick, value in enumerate(series):
        state.evaluate(value, tick)
    assert not state.fired
    assert state.evaluate(maximum + 1, len(series))
