"""Unit tests for the six software modules of the target system."""

import pytest

from repro.model.module import ExecutionContext
from repro.target import constants as C
from repro.target.modules import Calc, Clock, DistS, PresA, PresS, VReg


def invoke(module, **args):
    return module.invoke(ExecutionContext(module, args))


class TestClock:
    def test_slot_advances_through_table(self):
        clock = Clock("CLOCK")
        out = invoke(clock, ms_slot_nbr=0)
        assert out["ms_slot_nbr"] == 1
        out = invoke(clock, ms_slot_nbr=19)
        assert out["ms_slot_nbr"] == 0

    def test_mscnt_counts_invocations(self):
        clock = Clock("CLOCK")
        for n in range(1, 5):
            out = invoke(clock, ms_slot_nbr=0)
        assert out["mscnt"] == 4

    def test_out_of_range_slot_restarts_cycle(self):
        clock = Clock("CLOCK")
        out = invoke(clock, ms_slot_nbr=5000)
        assert out["ms_slot_nbr"] == 0

    def test_corrupted_successor_table_rewires_sequence(self):
        clock = Clock("CLOCK")
        clock.state["slot_succ7"] = 3
        out = invoke(clock, ms_slot_nbr=7)
        assert out["ms_slot_nbr"] == 3

    def test_full_cycle_returns_to_start(self):
        clock = Clock("CLOCK")
        slot = 0
        for _ in range(C.N_SLOTS):
            slot = invoke(clock, ms_slot_nbr=slot)["ms_slot_nbr"]
        assert slot == 0


class TestDistS:
    def test_pulse_accumulation(self):
        dist = DistS("DIST_S")
        invoke(dist, PACNT=5, TIC1=0, TCNT=100)
        out = invoke(dist, PACNT=9, TIC1=200, TCNT=300)
        assert out["pulscnt"] == 9

    def test_pacnt_wraparound_delta(self):
        dist = DistS("DIST_S")
        invoke(dist, PACNT=250, TIC1=0, TCNT=0)
        out = invoke(dist, PACNT=4, TIC1=0, TCNT=0)  # wrapped: +10
        assert out["pulscnt"] == 250 + 10

    def test_slow_speed_needs_filled_window(self):
        dist = DistS("DIST_S")
        out = invoke(dist, PACNT=0, TIC1=0, TCNT=0)
        assert out["slow_speed"] == 0  # window not yet valid

    def test_slow_speed_from_low_pulse_rate(self):
        dist = DistS("DIST_S")
        pacnt = 0
        for _ in range(C.SPEED_WINDOW + 2):
            out = invoke(dist, PACNT=pacnt, TIC1=0, TCNT=0)
        assert out["slow_speed"] == 1

    def test_fast_pulse_rate_not_slow(self):
        dist = DistS("DIST_S")
        pacnt = 0
        for _ in range(C.SPEED_WINDOW + 2):
            pacnt = (pacnt + 5) % 256
            out = invoke(dist, PACNT=pacnt, TIC1=0, TCNT=0)
        assert out["slow_speed"] == 0

    def test_interval_path_needs_two_confirmations(self):
        """A single long capture interval must not assert slow_speed —
        the debounce is what gives TIC1/TCNT their zero permeability."""
        dist = DistS("DIST_S")
        pacnt = 0
        for _ in range(C.SPEED_WINDOW + 2):
            pacnt = (pacnt + 5) % 256
            invoke(dist, PACNT=pacnt, TIC1=0, TCNT=0)
        # one corrupted (huge) interval
        pacnt = (pacnt + 5) % 256
        out = invoke(
            dist, PACNT=pacnt, TIC1=0, TCNT=C.SLOW_INTERVAL_TCNT + 100
        )
        assert out["slow_speed"] == 0
        # second consecutive long interval confirms
        pacnt = (pacnt + 5) % 256
        out = invoke(
            dist, PACNT=pacnt, TIC1=0, TCNT=C.SLOW_INTERVAL_TCNT + 100
        )
        assert out["slow_speed"] == 1

    def test_stopped_latches_after_quiet_period(self):
        dist = DistS("DIST_S")
        for _ in range(C.SPEED_WINDOW):
            out = invoke(dist, PACNT=10, TIC1=0, TCNT=0)
        for _ in range(C.STOPPED_QUIET_INVOCATIONS):
            out = invoke(dist, PACNT=10, TIC1=0, TCNT=0)
        assert out["stopped"] == 1
        # latched: a stray pulse does not clear it
        out = invoke(dist, PACNT=11, TIC1=0, TCNT=0)
        assert out["stopped"] == 1

    def test_corrupted_ring_position_is_bounded(self):
        dist = DistS("DIST_S")
        dist.state["win_pos"] = 137
        invoke(dist, PACNT=1, TIC1=0, TCNT=0)  # must not raise


class TestCalc:
    def make(self):
        return Calc("CALC", pressure_scale=40000)

    def test_index_advances_with_distance_segment(self):
        calc = self.make()
        out = invoke(
            calc, i=0, mscnt=20, pulscnt=(1 << C.SEG_SHIFT) + 1,
            slow_speed=0, stopped=0,
        )
        assert out["i"] == 1

    def test_index_advance_is_incremental(self):
        calc = self.make()
        out = invoke(
            calc, i=0, mscnt=20, pulscnt=(5 << C.SEG_SHIFT),
            slow_speed=0, stopped=0,
        )
        assert out["i"] == 1  # one step per invocation, not a jump

    def test_stopped_freezes_index(self):
        calc = self.make()
        out = invoke(
            calc, i=0, mscnt=20, pulscnt=(5 << C.SEG_SHIFT),
            slow_speed=0, stopped=1,
        )
        assert out["i"] == 0

    def test_corrupted_index_persists(self):
        calc = self.make()
        out = invoke(
            calc, i=9999, mscnt=20, pulscnt=0, slow_speed=0, stopped=0,
        )
        assert out["i"] == 9999

    def test_setvalue_rate_limited(self):
        calc = self.make()
        out1 = invoke(
            calc, i=0, mscnt=100, pulscnt=0, slow_speed=0, stopped=0,
        )
        out2 = invoke(
            calc, i=0, mscnt=120, pulscnt=0, slow_speed=0, stopped=0,
        )
        assert out2["SetValue"] - out1["SetValue"] <= \
            C.SETVALUE_RATE_PER_MS * 20

    def test_onset_ramp_limits_early_target(self):
        calc = self.make()
        out = invoke(
            calc, i=0, mscnt=10, pulscnt=0, slow_speed=0, stopped=0,
        )
        assert out["SetValue"] <= 10 * C.TIME_RAMP_PER_MS

    def test_slow_speed_retargets_low(self):
        calc = self.make()
        # drive SetValue up first
        for ms in range(100, 4000, 20):
            out = invoke(
                calc, i=2, mscnt=ms, pulscnt=0, slow_speed=0, stopped=0,
            )
        high = out["SetValue"]
        for ms in range(4000, 8000, 20):
            out = invoke(
                calc, i=2, mscnt=ms, pulscnt=0, slow_speed=1, stopped=0,
            )
        assert out["SetValue"] < high
        assert out["SetValue"] == int(C.SLOW_SPEED_TARGET * 40000)

    def test_table_lookup_masks_high_index_bits(self):
        """A high-bit index error cannot disturb the table lookup."""
        calc_a = self.make()
        calc_b = self.make()
        common = dict(mscnt=5000, pulscnt=0, slow_speed=0, stopped=0)
        out_a = invoke(calc_a, i=2, **common)
        out_b = invoke(calc_b, i=2 + (1 << 10), **common)
        assert out_a["SetValue"] == out_b["SetValue"]

    def test_default_pressure_scale_mid_envelope(self):
        calc = Calc("CALC")
        assert calc.pressure_scale == C.pressure_scale_counts(
            C.TEST_MASSES_KG[2]
        )


class TestPresS:
    @staticmethod
    def settle(pres, adc, n=8):
        """Feed a steady plausible reading (respecting the slew gate)."""
        out = None
        for _ in range(n):
            out = invoke(pres, ADC=adc)
        return out

    def test_steady_reading_passes_through(self):
        pres = PresS("PRES_S")
        out = self.settle(pres, 40)
        expected = (40 << 6) & ~(PresS.QUANTUM - 1)
        assert out["IsValue"] == expected

    def test_single_spike_masked(self):
        pres = PresS("PRES_S")
        clean = self.settle(pres, 40)["IsValue"]
        spiked = invoke(pres, ADC=1023)["IsValue"]
        assert spiked == clean

    def test_startup_jump_gated_then_resynced(self):
        """An implausible startup reading is first rejected, then the
        gate re-synchronizes after a persistent streak."""
        pres = PresS("PRES_S")
        first = invoke(pres, ADC=512)["IsValue"]
        assert first == 0  # 512<<6 is implausible from 0: rejected
        out = self.settle(
            pres, 512, n=PresS.MAX_REJECT_STREAK + PresS.DEPTH + 2
        )
        expected = (512 << 6) & ~(PresS.QUANTUM - 1)
        assert out["IsValue"] == expected

    def test_persistent_jump_resyncs(self):
        pres = PresS("PRES_S")
        self.settle(pres, 30)
        out = self.settle(
            pres, 900, n=PresS.MAX_REJECT_STREAK + PresS.DEPTH + 2
        )
        expected = (900 << 6) & ~(PresS.QUANTUM - 1)
        assert out["IsValue"] == expected

    def test_output_quantized(self):
        pres = PresS("PRES_S")
        out = self.settle(pres, 41)
        assert out["IsValue"] % PresS.QUANTUM == 0


class TestVReg:
    def test_zero_error_zero_output(self):
        vreg = VReg("V_REG")
        out = invoke(vreg, SetValue=0, IsValue=0)
        assert out["OutValue"] == 0

    def test_positive_error_drives_up(self):
        vreg = VReg("V_REG")
        out = invoke(vreg, SetValue=20000, IsValue=0)
        assert out["OutValue"] > 10000

    def test_output_clamped(self):
        vreg = VReg("V_REG")
        for _ in range(50):
            out = invoke(vreg, SetValue=65535, IsValue=0)
        assert out["OutValue"] == C.VALUE_FULL_SCALE
        out = invoke(VReg("V2"), SetValue=0, IsValue=65535)
        assert out["OutValue"] == 0

    def test_integrator_accumulates(self):
        vreg = VReg("V_REG")
        first = invoke(vreg, SetValue=10000, IsValue=0)["OutValue"]
        second = invoke(vreg, SetValue=10000, IsValue=0)["OutValue"]
        assert second > first

    def test_integrator_clamped(self):
        vreg = VReg("V_REG")
        for _ in range(10000):
            invoke(vreg, SetValue=65535, IsValue=0)
        assert vreg.state["integ"] == C.VREG_INTEG_CLAMP * 16


class TestPresA:
    def test_drops_two_lsbs(self):
        pres_a = PresA("PRES_A")
        assert invoke(pres_a, OutValue=0)["TOC2"] == 0
        assert invoke(pres_a, OutValue=3)["TOC2"] == 0
        assert invoke(pres_a, OutValue=4)["TOC2"] == 1
        assert invoke(pres_a, OutValue=65535)["TOC2"] == 16383

    def test_lsb_errors_masked(self):
        pres_a = PresA("PRES_A")
        assert invoke(pres_a, OutValue=1000)["TOC2"] == \
            invoke(pres_a, OutValue=1002)["TOC2"]
