"""Checkpoint durability under interrupts, on both store backends.

Three escalating failure shapes:

* ``KeyboardInterrupt`` mid-campaign — the executor's flush-on-every-
  exit-path guarantee must persist the completed prefix;
* SIGTERM mid-campaign (converted to ``KeyboardInterrupt`` the way the
  service's job children convert it) — same guarantee, across a real
  process boundary;
* a hard kill **inside** a flush (``REPRO_CHAOS_KILL_FLUSH``), after
  the new bytes are staged but before they are durable — the previous
  durable state must survive untouched: the JSON backend via the
  temp-file + ``os.replace`` protocol, the sqlite backend via
  transaction rollback.
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.fi.executor import (
    CampaignConfig,
    CampaignExecutor,
    CheckpointPolicy,
)
from repro.fi.store import JsonCheckpointStore, SqliteResultStore

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")

BACKENDS = [
    pytest.param("cp.json", JsonCheckpointStore, id="json"),
    pytest.param("results.db", SqliteResultStore, id="sqlite"),
]


def _completed(store_cls, path, n_tasks=6):
    with store_cls(path) as store:
        store.open_campaign("unit", "fp", n_tasks)
        return store.completed_indices()


def _run_child(code, cwd, **env):
    return subprocess.run(
        [sys.executable, "-c", textwrap.dedent(code)],
        cwd=cwd,
        env={**os.environ, "PYTHONPATH": SRC, **env},
        capture_output=True,
        text=True,
        timeout=120,
    )


class TestInterruptFlushesCheckpoint:
    @pytest.mark.parametrize("filename,store_cls", BACKENDS)
    def test_keyboard_interrupt_persists_prefix(
        self, tmp_path, filename, store_cls
    ):
        path = str(tmp_path / filename)
        config = CampaignConfig(
            checkpoint=CheckpointPolicy(path=path, every=100)
        )

        def runner(index):
            if index == 3:
                raise KeyboardInterrupt
            return index

        executor = CampaignExecutor(config, campaign="unit")
        with pytest.raises(KeyboardInterrupt):
            executor.run_tasks(runner, 6, "fp")
        # every=100 means only the exit-path flush can have persisted
        # these
        assert _completed(store_cls, path) == {0, 1, 2}

    @pytest.mark.parametrize("filename,store_cls", BACKENDS)
    def test_resume_after_interrupt_completes(
        self, tmp_path, filename, store_cls
    ):
        path = str(tmp_path / filename)
        config = CampaignConfig(checkpoint=CheckpointPolicy(path=path))

        def runner(index):
            if index == 3:
                raise KeyboardInterrupt
            return index

        executor = CampaignExecutor(config, campaign="unit")
        with pytest.raises(KeyboardInterrupt):
            executor.run_tasks(runner, 6, "fp")
        resumed = CampaignExecutor(config, campaign="unit")
        assert resumed.run_tasks(lambda i: i, 6, "fp") == list(range(6))
        assert resumed.telemetry.resumed_runs == 3

    @pytest.mark.parametrize("filename,store_cls", BACKENDS)
    def test_sigterm_persists_prefix(
        self, tmp_path, filename, store_cls
    ):
        """SIGTERM → KeyboardInterrupt → exit 75, the way the service
        runs campaigns; the completed prefix must be on disk."""
        path = str(tmp_path / filename)
        child = _run_child(
            f"""
            import os, signal
            from repro.fi.executor import (
                CampaignConfig, CampaignExecutor, CheckpointPolicy,
            )

            def to_interrupt(signum, frame):
                raise KeyboardInterrupt

            signal.signal(signal.SIGTERM, to_interrupt)

            def runner(index):
                if index == 3:
                    os.kill(os.getpid(), signal.SIGTERM)
                return index

            config = CampaignConfig(
                checkpoint=CheckpointPolicy(path={path!r}, every=100)
            )
            try:
                CampaignExecutor(config, campaign="unit").run_tasks(
                    runner, 6, "fp"
                )
            except KeyboardInterrupt:
                raise SystemExit(75)
            raise SystemExit(0)
            """,
            str(tmp_path),
        )
        assert child.returncode == 75, child.stderr
        assert _completed(store_cls, path) == {0, 1, 2}


_FLUSH_KILL_CHILD = """
from repro.fi.store import {store_cls}

with {store_cls}({path!r}) as store:
    store.open_campaign("unit", "fp", 6)
    store.put_record(0, {{"value": 0}})
    store.put_record(1, {{"value": 1}})
    store.flush()          # flush 1: durable
    store.put_record(2, {{"value": 2}})
    store.put_record(3, {{"value": 3}})
    store.flush()          # flush 2: killed mid-transaction
raise SystemExit(1)        # unreachable when the chaos hook fires
"""


class TestKillMidFlush:
    """``REPRO_CHAOS_KILL_FLUSH=2`` hard-exits inside the second
    flush — after staging, before durability."""

    def _kill_second_flush(self, tmp_path, store_cls, path):
        child = _run_child(
            _FLUSH_KILL_CHILD.format(
                store_cls=store_cls.__name__, path=path
            ),
            str(tmp_path),
            REPRO_CHAOS_KILL_FLUSH="2",
        )
        assert child.returncode == 137, child.stderr

    def test_json_previous_file_intact(self, tmp_path):
        path = str(tmp_path / "cp.json")
        self._kill_second_flush(tmp_path, JsonCheckpointStore, path)
        # the kill landed after the temp write, before os.replace: the
        # durable document is still exactly flush 1
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert sorted(payload["results"]) == ["0", "1"]
        assert os.path.exists(path + ".tmp")  # the staged, lost bytes
        assert _completed(JsonCheckpointStore, path) == {0, 1}

    def test_sqlite_rolls_back_to_previous_commit(self, tmp_path):
        path = str(tmp_path / "results.db")
        self._kill_second_flush(tmp_path, SqliteResultStore, path)
        # the kill landed after the inserts, before the commit: sqlite
        # rolls the open transaction back on the next connection
        assert _completed(SqliteResultStore, path) == {0, 1}

    def test_sqlite_restages_on_interrupted_flush(
        self, tmp_path, monkeypatch
    ):
        """An in-process interrupt mid-flush must not lose the staged
        records: they re-enter the next flush."""
        path = str(tmp_path / "results.db")
        with SqliteResultStore(path) as store:
            store.open_campaign("unit", "fp", 4)
            store.put_record(0, {"value": 0})

            def boom(*args, **kwargs):
                raise KeyboardInterrupt

            monkeypatch.setattr(store, "_flush_with_busy_retry", boom)
            with pytest.raises(KeyboardInterrupt):
                store.flush()
            monkeypatch.undo()
            assert store.flush()  # the restaged record goes through
        assert _completed(SqliteResultStore, path, 4) == {0}
