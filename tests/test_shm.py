"""Tests for shared-memory array publication (``repro.fi.shm``).

The pack's lifecycle contract: segments are released on ``close()``,
on garbage collection, and — the hard case — when the owning process
dies without any cleanup running (a chaos-killed campaign).  Orphaned
``/dev/shm`` entries would accumulate across campaigns until the
machine runs out of shared memory, so the finalizer coverage here is
load-bearing.
"""

import gc
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.fi.shm import ShmArrayPack, shm_available

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="shared memory unavailable"
)


def _segment_names(pack):
    return [name for name, _, _ in pack._segments.values()]


def _alive(names):
    """Which of *names* still exist as shared-memory segments."""
    from multiprocessing import shared_memory

    found = []
    for name in names:
        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        segment.close()
        found.append(name)
    return found


class TestShmArrayPack:
    def test_publish_get_roundtrip(self):
        pack = ShmArrayPack()
        try:
            array = np.arange(64, dtype=np.int64)
            pack.publish("a", array)
            view = pack.get("a")
            assert view is not None
            assert not view.flags.writeable
            assert view.tolist() == array.tolist()
            assert pack.get("missing") is None
        finally:
            pack.close()

    def test_close_unlinks_segments(self):
        pack = ShmArrayPack()
        pack.publish("a", np.arange(16, dtype=np.int64))
        names = _segment_names(pack)
        pack.close()
        assert _alive(names) == []
        pack.close()  # idempotent

    def test_garbage_collection_unlinks_segments(self):
        pack = ShmArrayPack()
        pack.publish("a", np.ones(32, dtype=np.float64))
        names = _segment_names(pack)
        if not names:
            pytest.skip("segment creation degraded to in-process")
        del pack
        gc.collect()
        assert _alive(names) == []

    def test_chaos_killed_owner_leaves_no_orphans(self, tmp_path):
        """A process that publishes segments and dies abruptly (no
        close(), no graceful interpreter exit) must not leave entries
        behind: the finalizer runs atexit, and os._exit is the one
        hole the chaos script must NOT use — so the script exercises
        the realistic crash (unhandled exception) and a hard kill of
        a *forked child* (which must never unlink the parent's data).
        """
        script = tmp_path / "chaos.py"
        script.write_text(
            "import os, sys\n"
            "import numpy as np\n"
            "from repro.fi.shm import ShmArrayPack\n"
            "pack = ShmArrayPack()\n"
            "pack.publish('x', np.arange(1024, dtype=np.int64))\n"
            "pack.publish('y', np.zeros(512, dtype=np.float64))\n"
            "names = [n for n, _, _ in pack._segments.values()]\n"
            "print(' '.join(names), flush=True)\n"
            "pid = os.fork()\n"
            "if pid == 0:\n"
            "    # child attaches, then dies hard: it must not unlink\n"
            "    pack.get('x')\n"
            "    os._exit(0)\n"
            "os.waitpid(pid, 0)\n"
            "assert pack.get('x') is not None\n"
            "raise RuntimeError('campaign died mid-run')\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH")) if p
        )
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True, text=True, env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        names = proc.stdout.split()
        assert proc.returncode != 0  # it really did crash
        assert "campaign died mid-run" in proc.stderr
        if not names:
            pytest.skip("segment creation degraded to in-process")
        assert _alive(names) == []

    def test_forked_worker_close_keeps_parent_segments(self):
        """Workers detach on close but never unlink: the parent's
        data survives a worker's full lifecycle."""
        pack = ShmArrayPack()
        try:
            pack.publish("a", np.arange(8, dtype=np.int64))
            names = _segment_names(pack)
            if not names:
                pytest.skip("segment creation degraded to in-process")
            pid = os.fork()
            if pid == 0:
                try:
                    ok = pack.get("a") is not None
                    pack.close()
                finally:
                    os._exit(0 if ok else 1)
            _, status = os.waitpid(pid, 0)
            assert os.waitstatus_to_exitcode(status) == 0
            assert sorted(_alive(names)) == sorted(names)
            assert pack.get("a") is not None
        finally:
            pack.close()

    def test_duplicate_key_rejected(self):
        pack = ShmArrayPack()
        try:
            pack.publish("a", np.zeros(4))
            with pytest.raises(KeyError):
                pack.publish("a", np.ones(4))
        finally:
            pack.close()
