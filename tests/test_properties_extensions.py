"""Property-based tests for the extension subsystems.

Invariants of the statistical estimators, the greedy EA subset
selection, and the placement engines over randomized inputs.
"""

import random as stdlib_random

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.coverage import (
    Stratum,
    binomial_estimate,
    stratified_coverage,
    wilson_interval,
)
from repro.core.placement import extended_placement, pa_placement
from repro.core.permeability import PermeabilityMatrix
from repro.edm.subset import (
    marginal_coverages,
    overlap_matrix,
    select_subset,
)
from repro.model.graph import SignalGraph

EA_NAMES = ["EA1", "EA2", "EA3", "EA4", "EA5", "EA6", "EA7"]

fired_sets = st.lists(
    st.frozensets(st.sampled_from(EA_NAMES), max_size=4),
    min_size=1,
    max_size=40,
)


# ----------------------------------------------------------------------
# Coverage statistics.
# ----------------------------------------------------------------------
@given(
    n=st.integers(min_value=1, max_value=10**5),
    data=st.data(),
)
def test_wilson_contains_point(n, data):
    successes = data.draw(st.integers(min_value=0, max_value=n))
    low, high = wilson_interval(successes, n)
    assert 0.0 <= low <= successes / n <= high <= 1.0


@given(
    strata=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=50),  # n
            st.floats(min_value=0.01, max_value=10.0),  # weight
        ),
        min_size=1,
        max_size=6,
    ),
    data=st.data(),
)
def test_stratified_point_within_unit(strata, data):
    built = []
    for index, (n, weight) in enumerate(strata):
        detected = data.draw(st.integers(min_value=0, max_value=n))
        built.append(Stratum(f"s{index}", detected, n, weight))
    estimate = stratified_coverage(built)
    assert 0.0 <= estimate.low <= estimate.point <= estimate.high <= 1.0


@given(
    detected=st.integers(min_value=0, max_value=100),
    extra=st.integers(min_value=0, max_value=100),
)
def test_binomial_monotone_in_successes(detected, extra):
    n = detected + extra + 10
    lower = binomial_estimate(detected, n)
    higher = binomial_estimate(min(n, detected + extra), n)
    assert higher.point >= lower.point


# ----------------------------------------------------------------------
# Subset selection.
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(fired=fired_sets)
def test_greedy_reaches_full_coverage(fired):
    selection = select_subset(fired, EA_NAMES)
    assert selection.coverage == pytest.approx(selection.full_coverage)
    assert selection.cost_bytes <= selection.full_cost_bytes


@settings(max_examples=60, deadline=None)
@given(fired=fired_sets)
def test_greedy_beats_any_single_ea(fired):
    selection = select_subset(fired, EA_NAMES)
    total = len(fired)
    for name in EA_NAMES:
        single = sum(1 for f in fired if name in f) / total
        assert selection.coverage >= single - 1e-12


@settings(max_examples=60, deadline=None)
@given(fired=fired_sets)
def test_selected_eas_all_contribute(fired):
    """Greedy never picks an EA that added nothing at selection time,
    so coverage strictly increases along the steps."""
    selection = select_subset(fired, EA_NAMES)
    coverages = [coverage for _, coverage, _ in selection.steps]
    assert all(b > a for a, b in zip(coverages, coverages[1:]))


@settings(max_examples=60, deadline=None)
@given(fired=fired_sets, target=st.floats(min_value=0.0, max_value=1.0))
def test_coverage_target_respected(fired, target):
    selection = select_subset(fired, EA_NAMES, coverage_target=target)
    full = select_subset(fired, EA_NAMES)
    if full.full_coverage >= target:
        assert selection.coverage >= min(target, full.full_coverage) - 1e-12
    assert len(selection.selected) <= len(full.selected)


@settings(max_examples=40, deadline=None)
@given(fired=fired_sets)
def test_overlap_diagonal_and_bounds(fired):
    matrix = overlap_matrix(fired, EA_NAMES)
    counts = {
        name: sum(1 for f in fired if name in f) for name in EA_NAMES
    }
    for a in EA_NAMES:
        for b in EA_NAMES:
            assert 0.0 <= matrix[(a, b)] <= 1.0
        expected = 1.0 if counts[a] else 0.0
        assert matrix[(a, a)] == expected


@settings(max_examples=40, deadline=None)
@given(fired=fired_sets)
def test_marginals_bounded_by_individual_coverage(fired):
    marginals = marginal_coverages(fired, EA_NAMES)
    total = len(fired)
    for name in EA_NAMES:
        individual = sum(1 for f in fired if name in f) / total
        assert 0.0 <= marginals[name] <= individual + 1e-12


# ----------------------------------------------------------------------
# Placement engines on random permeabilities.
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_extended_always_superset_of_pa(seed):
    from repro.target.wiring import build_arrestment_system

    system = build_arrestment_system()
    graph = SignalGraph(system)
    rng = stdlib_random.Random(seed)
    matrix = PermeabilityMatrix.from_values(
        system, {pair: rng.random() for pair in system.io_pairs()}
    )
    pa = pa_placement(matrix, graph)
    extended = extended_placement(
        matrix, graph, output="TOC2", memory_error_model=True,
    )
    assert set(pa.selected) <= set(extended.selected)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    low=st.floats(min_value=0.05, max_value=0.5),
    high=st.floats(min_value=0.5, max_value=1.5),
)
def test_pa_selection_antitone_in_threshold(seed, low, high):
    """Raising the exposure threshold can only shrink the selection."""
    from repro.target.wiring import build_arrestment_system

    assume(low < high)
    system = build_arrestment_system()
    graph = SignalGraph(system)
    rng = stdlib_random.Random(seed)
    matrix = PermeabilityMatrix.from_values(
        system, {pair: rng.random() for pair in system.io_pairs()}
    )
    loose = pa_placement(matrix, graph, exposure_threshold=low)
    strict_sel = pa_placement(matrix, graph, exposure_threshold=high)
    assert set(strict_sel.selected) <= set(loose.selected)