"""Property-based tests (hypothesis) for the integrity layer.

Invariants exercised:

* canonical digests are deterministic and key-order independent;
* a value and its JSON round trip digest identically;
* digest equality coincides with :func:`field_diff` finding nothing;
* the special floats digest deterministically: every NaN payload
  collapses to one digest, ``-0.0`` stays distinct from ``0.0``,
  the infinities are distinct from everything finite;
* campaign-result serialization round-trips bit-identically through
  dicts and through :func:`save_json` / :func:`load_json` (digest
  verification included) for all three result types.
"""

import copy
import json
import os
import struct
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fi import canonical_digest, field_diff, load_json, save_json
from repro.fi.campaign import (
    DetectionResult,
    MemoryCampaignResult,
    MemoryRunRecord,
    PermeabilityEstimate,
)
from repro.fi.memory import Region
from repro.fi.serialization import (
    detection_from_dict,
    detection_to_dict,
    memory_from_dict,
    memory_to_dict,
    permeability_from_dict,
    permeability_to_dict,
)

# ----------------------------------------------------------------------
# Canonical digests.
# ----------------------------------------------------------------------
json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False),  # NaN breaks == for the diff test below
    st.text(max_size=20),
)

json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=10), children, max_size=5),
    ),
    max_leaves=20,
)


@given(value=json_values)
def test_digest_deterministic(value):
    assert canonical_digest(value) == canonical_digest(copy.deepcopy(value))


@given(value=json_values)
def test_digest_survives_json_round_trip(value):
    rebuilt = json.loads(json.dumps(value))
    assert canonical_digest(rebuilt) == canonical_digest(value)


@given(a=json_values, b=json_values)
def test_digest_equality_matches_field_diff(a, b):
    same_digest = canonical_digest(a) == canonical_digest(b)
    assert same_digest == (field_diff(a, b) is None)


@given(payload=st.integers(min_value=1, max_value=(1 << 51) - 1))
def test_all_nan_payloads_digest_identically(payload):
    # craft a NaN with an arbitrary mantissa payload
    bits = (0x7FF << 52) | payload
    crafted = struct.unpack("<d", struct.pack("<Q", bits))[0]
    assert canonical_digest(crafted) == canonical_digest(float("nan"))


def test_special_floats_distinct():
    digests = [
        canonical_digest(v)
        for v in (0.0, -0.0, float("inf"), float("-inf"), float("nan"))
    ]
    assert len(set(digests)) == len(digests)


# ----------------------------------------------------------------------
# Campaign-result round trips.
# ----------------------------------------------------------------------
names = st.text(
    alphabet="ABCDEFGHIJKLMNOPQRSTUVWXYZ_", min_size=1, max_size=8
)
counts = st.integers(min_value=0, max_value=50)


@st.composite
def permeability_estimates(draw):
    pairs = draw(
        st.dictionaries(
            st.tuples(names, names, names), counts, min_size=1, max_size=6
        )
    )
    direct = dict(pairs)
    active = {}
    for module, in_port, _ in direct:
        active[(module, in_port)] = draw(
            st.integers(min_value=1, max_value=60)
        )
    values = {
        (m, i, k): direct[(m, i, k)] / active[(m, i)]
        for (m, i, k) in direct
    }
    return PermeabilityEstimate(
        direct_counts=direct, active_runs=active, values=values
    )


@st.composite
def detection_results(draw):
    targets = draw(st.lists(names, min_size=1, max_size=3, unique=True))
    ea_names = draw(st.lists(names, min_size=1, max_size=4, unique=True))
    fired_sets = st.frozensets(st.sampled_from(ea_names), max_size=3)
    run_records = {
        target: draw(st.lists(fired_sets, max_size=3)) for target in targets
    }
    run_latencies = {
        target: [
            {ea: draw(counts) for ea in sorted(fired)}
            for fired in run_records[target]
        ]
        for target in targets
    }
    return DetectionResult(
        targets=targets,
        ea_names=ea_names,
        n_injected={t: draw(counts) for t in targets},
        n_err={t: draw(counts) for t in targets},
        detections={
            (t, ea): draw(counts) for t in targets for ea in ea_names
        },
        any_detections={t: draw(counts) for t in targets},
        run_records=run_records,
        run_latencies=run_latencies,
    )


@st.composite
def memory_results(draw):
    ea_names = draw(st.lists(names, min_size=1, max_size=4, unique=True))
    records = draw(
        st.lists(
            st.builds(
                MemoryRunRecord,
                region=st.sampled_from(list(Region)),
                location_label=names,
                fired=st.frozensets(st.sampled_from(ea_names), max_size=3),
                failed=st.booleans(),
            ),
            max_size=5,
        )
    )
    return MemoryCampaignResult(records=records, ea_names=ea_names)


@given(estimate=permeability_estimates())
def test_permeability_dict_round_trip(estimate):
    rebuilt = permeability_from_dict(
        json.loads(json.dumps(permeability_to_dict(estimate)))
    )
    assert rebuilt == estimate


@given(result=detection_results())
def test_detection_dict_round_trip(result):
    rebuilt = detection_from_dict(
        json.loads(json.dumps(detection_to_dict(result)))
    )
    assert rebuilt == result


@given(result=memory_results())
def test_memory_dict_round_trip(result):
    rebuilt = memory_from_dict(
        json.loads(json.dumps(memory_to_dict(result)))
    )
    assert rebuilt == result


@settings(max_examples=25)  # touches the filesystem
@given(
    result=st.one_of(
        permeability_estimates(), detection_results(), memory_results()
    )
)
def test_file_round_trip_with_digest(result):
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "result.json")
        save_json(result, path)
        assert load_json(path) == result
