"""Scheduler supervision tests over stubbed job children.

The real ``_job_main`` runs a whole experiment; these tests replace
it (module attribute, so the forked child inherits the stub) with
tiny processes exercising one supervision path each: success, the
retry/degradation ladder, attempt exhaustion, interrupt-requeue,
drain, and cancellation.
"""

import json
import os
import signal
import time

import pytest

from repro.fi.executor import decorrelated_backoff
from repro.service.jobs import JobQueue
from repro.service.scheduler import (
    EXIT_INTERRUPTED,
    Scheduler,
    SchedulerConfig,
)
from repro.errors import ServiceError

SPEC = {"experiment": "table1", "scale": "test"}


@pytest.fixture
def spool(tmp_path):
    return str(tmp_path)


@pytest.fixture
def queue(spool):
    with JobQueue(os.path.join(spool, "queue.db")) as q:
        yield q


def make_scheduler(spool, queue, **overrides):
    defaults = dict(
        budget=4,
        max_jobs=4,
        job_retries=2,
        backoff_base_s=0.01,
        backoff_seed=7,
        prewarm=False,
        stop_grace_s=5.0,
    )
    defaults.update(overrides)
    return Scheduler(spool, queue, SchedulerConfig(**defaults))


def run_until_terminal(scheduler, queue, job_id, timeout_s=20.0):
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        scheduler.tick()
        job = queue.get(job_id)
        if job.terminal:
            return job
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} not terminal: {queue.get(job_id)}")


class TestSupervision:
    def test_success_marks_done(self, spool, queue, monkeypatch):
        def stub(job_id, spec, job_dir, width, results_db, attempt):
            with open(os.path.join(job_dir, "output.txt"), "w") as f:
                f.write("ok\n")
            os._exit(0)

        monkeypatch.setattr(
            "repro.service.scheduler._job_main", stub
        )
        scheduler = make_scheduler(spool, queue)
        job_id = queue.submit(SPEC)
        job = run_until_terminal(scheduler, queue, job_id)
        assert job.state == "done"
        assert job.attempts == 1
        assert queue.counters().get("jobs_done") == 1

    def test_retry_ladder_degrades_width(self, spool, queue, monkeypatch):
        """Attempt 1 fails at the granted width; attempt 2 runs at
        half; attempt 3 runs serial and succeeds — every step recorded
        honestly in the job row."""
        log = os.path.join(spool, "attempts.jsonl")

        def stub(job_id, spec, job_dir, width, results_db, attempt):
            with open(log, "a") as f:
                f.write(json.dumps({"attempt": attempt, "width": width}))
                f.write("\n")
            if attempt < 3:
                with open(os.path.join(job_dir, "error.txt"), "w") as f:
                    f.write(f"synthetic failure on attempt {attempt}\n")
                os._exit(1)
            os._exit(0)

        monkeypatch.setattr("repro.service.scheduler._job_main", stub)
        scheduler = make_scheduler(spool, queue, budget=4, max_jobs=1)
        job_id = queue.submit(dict(SPEC, jobs=4))
        job = run_until_terminal(scheduler, queue, job_id)
        assert job.state == "done"
        assert job.attempts == 3
        rows = [
            json.loads(line) for line in open(log).read().splitlines()
        ]
        assert [r["width"] for r in rows] == [4, 2, 1]
        assert job.workers == 1
        assert "serial" in job.degraded
        assert queue.counters().get("jobs_retried") == 2

    def test_exhausted_retries_fail_with_error(
        self, spool, queue, monkeypatch
    ):
        def stub(job_id, spec, job_dir, width, results_db, attempt):
            with open(os.path.join(job_dir, "error.txt"), "w") as f:
                f.write("Traceback ...\nValueError: it broke\n")
            os._exit(1)

        monkeypatch.setattr("repro.service.scheduler._job_main", stub)
        scheduler = make_scheduler(spool, queue, job_retries=1)
        job_id = queue.submit(SPEC)
        job = run_until_terminal(scheduler, queue, job_id)
        assert job.state == "failed"
        assert job.attempts == 2
        assert "ValueError: it broke" in job.error
        assert queue.counters().get("jobs_failed") == 1

    def test_interrupt_requeues_with_refund(
        self, spool, queue, monkeypatch
    ):
        flag = os.path.join(spool, "interrupted-once")

        def stub(job_id, spec, job_dir, width, results_db, attempt):
            if not os.path.exists(flag):
                open(flag, "w").close()
                os._exit(EXIT_INTERRUPTED)
            os._exit(0)

        monkeypatch.setattr("repro.service.scheduler._job_main", stub)
        scheduler = make_scheduler(spool, queue)
        job_id = queue.submit(SPEC)
        job = run_until_terminal(scheduler, queue, job_id)
        assert job.state == "done"
        # the interrupted attempt was refunded: only one on the books
        assert job.attempts == 1
        assert queue.counters().get("jobs_requeued") == 1

    def test_drain_requeues_running_jobs(self, spool, queue, monkeypatch):
        def stub(job_id, spec, job_dir, width, results_db, attempt):
            signal.signal(
                signal.SIGTERM, lambda *_: os._exit(EXIT_INTERRUPTED)
            )
            time.sleep(30)
            os._exit(0)

        monkeypatch.setattr("repro.service.scheduler._job_main", stub)
        scheduler = make_scheduler(spool, queue)
        job_id = queue.submit(SPEC)
        deadline = time.time() + 10
        while job_id not in scheduler._running and time.time() < deadline:
            scheduler.tick()
            time.sleep(0.02)
        assert scheduler.drain() == 1
        job = queue.get(job_id)
        assert job.state == "queued"
        assert job.attempts == 0  # drain refunds the attempt
        assert queue.counters().get("jobs_requeued") == 1

    def test_cancel_running_job(self, spool, queue, monkeypatch):
        def stub(job_id, spec, job_dir, width, results_db, attempt):
            signal.signal(signal.SIGTERM, lambda *_: os._exit(0))
            time.sleep(30)
            os._exit(0)

        monkeypatch.setattr("repro.service.scheduler._job_main", stub)
        scheduler = make_scheduler(spool, queue)
        job_id = queue.submit(SPEC)
        deadline = time.time() + 10
        while job_id not in scheduler._running and time.time() < deadline:
            scheduler.tick()
            time.sleep(0.02)
        queue.request_cancel(job_id)
        job = run_until_terminal(scheduler, queue, job_id)
        assert job.state == "cancelled"
        assert queue.counters().get("jobs_cancelled") == 1

    def test_retry_backoff_defers_the_claim(
        self, spool, queue, monkeypatch
    ):
        def stub(job_id, spec, job_dir, width, results_db, attempt):
            os._exit(1)

        monkeypatch.setattr("repro.service.scheduler._job_main", stub)
        scheduler = make_scheduler(
            spool, queue, job_retries=1, backoff_base_s=30.0
        )
        job_id = queue.submit(SPEC)
        deadline = time.time() + 10
        while not scheduler._not_before and time.time() < deadline:
            scheduler.tick()
            time.sleep(0.02)
        # first attempt failed; the retry is deferred into the future
        assert scheduler._not_before[job_id] > time.time()
        job = queue.get(job_id)
        assert job.state == "queued" and job.attempts == 1
        scheduler.tick()  # must not claim the deferred job
        assert job_id not in scheduler._running


class TestFairShare:
    def test_single_job_gets_whole_budget(self, spool, queue):
        scheduler = make_scheduler(spool, queue, budget=8)
        assert scheduler._grant(100) == 8

    def test_queued_jobs_shrink_the_share(self, spool, queue):
        scheduler = make_scheduler(spool, queue, budget=8, max_jobs=4)
        for _ in range(3):
            queue.submit(SPEC)
        # 0 running + me + 3 queued = 4 ways over budget 8
        assert scheduler._grant(100) == 2

    def test_grant_respects_request(self, spool, queue):
        scheduler = make_scheduler(spool, queue, budget=8)
        assert scheduler._grant(3) == 3

    def test_grant_is_at_least_one(self, spool, queue):
        scheduler = make_scheduler(spool, queue, budget=2, max_jobs=4)
        for _ in range(8):
            queue.submit(SPEC)
        assert scheduler._grant(1) == 1


class TestConfigValidation:
    def test_bad_bounds_rejected(self):
        with pytest.raises(ServiceError):
            SchedulerConfig(budget=0)
        with pytest.raises(ServiceError):
            SchedulerConfig(max_jobs=0)
        with pytest.raises(ServiceError):
            SchedulerConfig(job_retries=-1)


class TestDecorrelatedBackoff:
    def test_bounds(self):
        import random

        rng = random.Random(1)
        prev = 0.5
        for _ in range(200):
            value = decorrelated_backoff(0.5, prev, rng, cap=30.0)
            assert 0.5 <= value <= 30.0
            prev = value

    def test_seeded_stream_is_reproducible(self):
        import random

        def stream(seed):
            rng = random.Random(seed)
            values, prev = [], 0.5
            for _ in range(10):
                prev = decorrelated_backoff(0.5, prev, rng, cap=30.0)
                values.append(prev)
            return values

        assert stream(42) == stream(42)
        assert stream(42) != stream(43)

    def test_zero_base_disables_backoff(self):
        import random

        assert decorrelated_backoff(0.0, 1.0, random.Random(1)) == 0.0
