"""Integration tests for the fault-injection campaign drivers.

Campaigns here run at deliberately tiny scale; the statistically
meaningful runs live in the benchmark harness.  What these tests pin
down is the *mechanics*: determinism, accounting, and the qualitative
signatures that must hold at any scale (e.g. TIC1/TCNT errors never
propagate).
"""

import pytest

from repro.errors import CampaignError
from repro.fi.campaign import (
    DetectionCampaign,
    MemoryCampaign,
    PermeabilityCampaign,
)
from repro.fi.memory import MemoryMap, Region
from repro.edm.catalogue import EA_BY_NAME
from repro.target.simulation import ArrestmentSimulator


def factory(tc):
    return ArrestmentSimulator(tc)


@pytest.fixture(scope="module")
def two_cases(test_cases):
    return [test_cases[4], test_cases[20]]


class TestPermeabilityCampaign:
    def test_config_validation(self, two_cases):
        with pytest.raises(CampaignError):
            PermeabilityCampaign(factory, two_cases, runs_per_input=0)
        with pytest.raises(CampaignError):
            PermeabilityCampaign(factory, [])

    def test_estimates_cover_all_pairs(self, ctx):
        estimate = ctx.permeability_estimate()
        assert len(estimate.values) == 25
        for value in estimate.values.values():
            assert 0.0 <= value <= 1.0

    def test_deterministic_given_seed(self, two_cases):
        runs = [
            PermeabilityCampaign(
                factory, two_cases, runs_per_input=3, seed=11
            ).run().values
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_capture_inputs_never_propagate(self, ctx):
        """The debounced TIC1/TCNT path: all six pairs exactly zero."""
        estimate = ctx.permeability_estimate()
        for port in ("TIC1", "TCNT"):
            for out in ("pulscnt", "slow_speed", "stopped"):
                assert estimate.values[("DIST_S", port, out)] == 0.0

    def test_pacnt_to_pulscnt_is_high(self, ctx):
        assert ctx.permeability_estimate().values[
            ("DIST_S", "PACNT", "pulscnt")
        ] >= 0.8

    def test_clock_self_permeability_total(self, ctx):
        estimate = ctx.permeability_estimate()
        assert estimate.values[
            ("CLOCK", "ms_slot_nbr", "ms_slot_nbr")
        ] >= 0.8
        assert estimate.values[("CLOCK", "ms_slot_nbr", "mscnt")] == 0.0

    def test_unknown_pair_value_rejected(self, ctx):
        with pytest.raises(CampaignError):
            ctx.permeability_estimate().value("CALC", "nope", "i")


class TestDetectionCampaign:
    def test_config_validation(self, two_cases):
        with pytest.raises(CampaignError):
            DetectionCampaign(
                factory, two_cases, list(EA_BY_NAME.values()),
                runs_per_signal=0,
            )

    def test_targets_default_to_system_inputs(self, ctx):
        result = ctx.detection_result()
        assert set(result.targets) == {"PACNT", "TIC1", "TCNT", "ADC"}

    def test_n_err_at_most_injected(self, ctx):
        result = ctx.detection_result()
        for target in result.targets:
            assert 0 <= result.n_err[target] <= result.n_injected[target]

    def test_coverage_bounded(self, ctx):
        result = ctx.detection_result()
        for target in result.targets:
            for ea in result.ea_names:
                assert 0.0 <= result.coverage(target, ea) <= 1.0
            assert result.total_coverage(target) <= 1.0

    def test_subset_coverage_monotone(self, ctx):
        """A larger EA set can only detect more."""
        result = ctx.detection_result()
        for target in result.targets:
            small = result.total_coverage(target, ["EA4"])
            large = result.total_coverage(target, ["EA4", "EA1", "EA7"])
            full = result.total_coverage(target)
            assert small <= large <= full

    def test_capture_inputs_never_detected(self, ctx):
        """No propagation -> nothing to detect (paper Table 4)."""
        result = ctx.detection_result()
        assert result.total_coverage("TIC1") == 0.0
        assert result.total_coverage("TCNT") == 0.0

    def test_combined_row_consistent(self, ctx):
        result = ctx.detection_result()
        total_err = sum(result.n_err.values())
        combined = result.combined()
        if total_err:
            per_target_hits = sum(result.any_detections.values())
            assert combined["total"] == pytest.approx(
                per_target_hits / total_err
            )


class TestMemoryCampaign:
    def test_records_have_regions(self, ctx):
        result = ctx.memory_result()
        regions = {record.region for record in result.records}
        assert regions <= {Region.RAM, Region.STACK}

    def test_coverage_triple_bounds(self, ctx):
        result = ctx.memory_result()
        triple = result.coverage(["EA1", "EA4"], None)
        for value in (triple.c_tot, triple.c_fail, triple.c_nofail):
            assert 0.0 <= value <= 1.0
        assert triple.n_fail <= triple.n_runs

    def test_empty_selection_zero(self, ctx):
        result = ctx.memory_result()
        triple = result.coverage([], None)
        assert triple.c_tot == 0.0

    def test_superset_dominates(self, ctx):
        result = ctx.memory_result()
        small = result.coverage(["EA4"], None).c_tot
        full = result.coverage(list(EA_BY_NAME), None).c_tot
        assert small <= full

    def test_explicit_locations(self, two_cases, system):
        locations = MemoryMap(system).locations(Region.RAM)[:2]
        result = MemoryCampaign(
            factory, two_cases[:1], list(EA_BY_NAME.values()),
            locations=locations, seed=5,
        ).run()
        assert len(result.records) == 2
        assert all(r.region is Region.RAM for r in result.records)

    def test_requires_test_cases(self):
        with pytest.raises(CampaignError):
            MemoryCampaign(factory, [], list(EA_BY_NAME.values()))
