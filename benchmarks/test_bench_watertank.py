"""Extension bench: the framework on the water-tank target.

The paper's future work: "applying the analysis framework on alternate
target systems in order to validate the generalized applicability of
the obtained results."  This bench runs the full pipeline — FI-based
permeability estimation, exposure, PA placement, multi-output impact —
against the structurally different water-tank controller and asserts
the framework's conclusions transfer:

* sensor-validation chains mask transients (low permeability), pulse
  chains and regulators pass errors through (high permeability) —
  the same containment taxonomy as the arrestment target;
* PA placement concentrates EAs on the high-exposure regulator chain
  and never proposes the boolean alarm output;
* the two outputs genuinely separate impact: the inflow chain matters
  only to the valve, the level chain to both.
"""

from conftest import run_once, strict

from repro.analysis import matrix_from_estimate
from repro.core.exposure import all_signal_exposures
from repro.core.impact import all_impacts
from repro.core.placement import pa_placement
from repro.fi.campaign import PermeabilityCampaign
from repro.model.graph import SignalGraph
from repro.watertank import WaterTankSimulator, standard_tank_cases


def test_bench_watertank(benchmark, ctx):
    cases = standard_tank_cases()[:: max(1, ctx.scale.test_case_stride // 3)]
    runs = max(4, ctx.scale.runs_per_input // 2)

    def campaign():
        return PermeabilityCampaign(
            WaterTankSimulator, cases, runs_per_input=runs, seed=ctx.seed
        ).run()

    estimate = run_once(benchmark, campaign)
    probe = WaterTankSimulator(cases[0])
    matrix = matrix_from_estimate(probe.system, estimate)
    graph = SignalGraph(probe.system)
    placement = pa_placement(matrix, graph)
    print()
    print(placement.render())

    values = estimate.values
    # containment taxonomy transfers
    assert values[("FLOW_S", "FLOW_CNT", "inflow_rate")] >= 0.7
    assert values[("CTRL", "level_f", "valve_cmd")] >= 0.7
    assert values[("LEVEL_S", "LVL_ADC", "level_f")] <= 0.4
    assert values[("TIMER", "tick_nbr", "ticks")] == 0.0

    # placement conclusions transfer
    assert "valve_cmd" in placement.selected
    assert "ALARM_OUT" not in placement.selected
    exposures = all_signal_exposures(matrix)
    assert exposures["valve_cmd"] >= 0.7

    # two outputs, genuinely different impact profiles
    valve_impacts = all_impacts(matrix, graph, "VALVE_POS")
    alarm_impacts = all_impacts(matrix, graph, "ALARM_OUT")
    assert valve_impacts["inflow_rate"] > alarm_impacts["inflow_rate"]
    if strict(ctx):
        assert valve_impacts["inflow_rate"] >= 0.5
        assert alarm_impacts["inflow_rate"] == 0.0
