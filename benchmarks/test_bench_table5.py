"""Bench: regenerate Table 5 and Fig. 4 — impacts on TOC2.

Workload: impact-tree construction and Eq.-2 evaluation for every
signal over the measured permeability matrix.

Shape assertions against the paper's Table 5 / Section 10:

* the effect-analysis contrast that motivates the extension: IsValue,
  mscnt and slow_speed have (near-)zero exposure but high impact,
  while ms_slot_nbr has maximal exposure and zero impact;
* the actuator chain (OutValue, SetValue, IsValue) carries the top
  impacts;
* the worked Fig. 4 example has exactly two pulscnt->TOC2 paths, the
  longer one through the i loop carrying essentially all the weight.
"""

from conftest import run_once

from repro.experiments.table5 import run_table5


def test_bench_table5(benchmark, warm_ctx):
    result = run_once(benchmark, run_table5, warm_ctx)
    print()
    print(result.render())

    # the paper's central contrast (zero exposure, high impact)
    assert result.impact_of("IsValue") >= 0.5
    assert result.impact_of("mscnt") >= 0.10
    assert result.impact_of("slow_speed") >= 0.4
    # ...and the opposite corner
    assert result.impact_of("ms_slot_nbr") == 0.0

    # top of the impact table: the actuator chain
    impacts = {
        row.signal: row.measured_impact
        for row in result.rows
        if row.measured_impact is not None
    }
    top3 = sorted(impacts, key=impacts.get, reverse=True)[:3]
    assert set(top3) <= {"OutValue", "IsValue", "SetValue"}

    # the capture inputs cannot touch the output at all
    assert impacts["TIC1"] == 0.0
    assert impacts["TCNT"] == 0.0

    # Fig. 4: two paths; the i-loop path carries the weight
    assert len(result.pulscnt_paths) == 2
    weights = sorted(w for _, w in result.pulscnt_paths)
    assert weights[0] == 0.0
    assert 0.0 < weights[1] < 0.3
