"""Parallel campaign execution: speedup and bit-identity.

Runs the Table-1 permeability campaign serially and on a 4-worker
process pool, asserts the results are bit-identical, and records the
speedup.  The >=2x speedup bound is only asserted where the hardware
can deliver it (>= 4 CPU cores); on smaller machines the bench still
verifies identity and reports the measured ratio.
"""

from __future__ import annotations

import os
import time

from conftest import run_once

from repro.fi.campaign import PermeabilityCampaign
from repro.fi.executor import CampaignConfig


def _campaign(ctx, config=None):
    return PermeabilityCampaign(
        ctx.simulator_factory,
        ctx.test_cases,
        runs_per_input=ctx.scale.runs_per_input,
        seed=ctx.seed,
        config=config,
    )


def test_bench_parallel_table1(benchmark, ctx):
    """Table-1 campaign, 1 vs 4 workers: identical bits, less wall."""
    jobs = 4

    started = time.perf_counter()
    serial = _campaign(ctx).run()
    serial_s = time.perf_counter() - started

    def run_parallel():
        campaign = _campaign(ctx, CampaignConfig(jobs=jobs))
        estimate = campaign.run()
        return campaign, estimate

    campaign, parallel = run_once(benchmark, run_parallel)
    telemetry = campaign.telemetry
    speedup = serial_s / telemetry.wall_s if telemetry.wall_s > 0 else 0.0
    cores = os.cpu_count() or 1

    print()
    print(f"parallel campaign bench ({cores} cores)")
    print(f"  serial   : {serial_s:.2f} s")
    print(f"  {jobs} workers: {telemetry.wall_s:.2f} s "
          f"(backend={telemetry.backend}, "
          f"util={telemetry.worker_utilization:.0%})")
    print(f"  speedup  : {speedup:.2f}x")

    # the core contract holds on any machine: bit-identical results
    assert parallel.values == serial.values
    assert parallel.direct_counts == serial.direct_counts
    assert parallel.active_runs == serial.active_runs

    # the throughput bound needs the cores to be there AND a serial
    # baseline long enough that the ratio measures throughput rather
    # than scheduler jitter and pool startup
    if cores >= jobs and serial_s >= 1.0:
        assert speedup >= 2.0, (
            f"expected >=2x speedup at {jobs} workers on {cores} cores, "
            f"measured {speedup:.2f}x"
        )
    else:
        print(f"  (speedup bound not asserted: {cores} core(s), "
              f"serial baseline {serial_s:.2f} s)")
