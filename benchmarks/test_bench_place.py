"""Placement search: cold solve vs compositional cache-hit re-solve.

Runs the full ``repro place`` pipeline on the arrestment target — a
permeability campaign through the compositional cache, instance
construction, and both solvers — cold (empty cache, every module
injected), then again after invalidating a single module.  Asserts
the tentpole claims: the ILP proves optimality, the solved set
dominates both hand-derived sets on coverage per byte, the re-solve
answers five modules from the cache and re-injects exactly one, its
placement table is byte-identical to the cold one, and (at the bench
and full scales) the cached re-solve is at least 5x faster than the
cold solve.  Records everything to ``BENCH_place.json``.
"""

from __future__ import annotations

import json
import os
import time

from conftest import run_once, strict

from repro.edm.catalogue import EH_SET, PA_SET
from repro.place import (
    Budget,
    PlacementCache,
    build_report,
    cached_estimate,
    greedy_solve,
    ilp_solve,
    instance_from_estimate,
    items_for_signals,
)
from repro.targets import get_target

#: the module invalidated for the re-solve (one input port, so the
#: incremental campaign is a small slice of the cold one)
CHANGED_MODULE = "CLOCK"


def _record_bench(entry, payload):
    """Merge one entry into ``BENCH_place.json`` (order-independent,
    same shape as the other BENCH files)."""
    data = {}
    if os.path.exists("BENCH_place.json"):
        try:
            with open("BENCH_place.json") as handle:
                loaded = json.load(handle)
        except (OSError, ValueError):
            loaded = None
        if isinstance(loaded, dict) and all(
            isinstance(value, dict) for value in loaded.values()
        ):
            data = loaded
    data[entry] = payload
    with open("BENCH_place.json", "w") as handle:
        json.dump(data, handle, indent=2)


def _solve(target, estimate, budget):
    system = target.build_system()
    specs = target.assertion_specs()
    instance = instance_from_estimate(system, estimate, specs, budget)
    result = ilp_solve(instance)
    report = build_report(
        target.name, instance, result,
        [
            ("EH", items_for_signals(instance, EH_SET)),
            ("PA", items_for_signals(instance, PA_SET)),
        ],
    )
    return instance, result, report


def test_bench_place_cold_vs_cached(benchmark, ctx, tmp_path):
    target = get_target("arrestment")
    cases = ctx.test_cases
    runs = ctx.scale.runs_per_input
    specs = target.assertion_specs()
    by_signal = {spec.signal: spec for spec in specs}
    budget = Budget(
        rom_bytes=sum(by_signal[s].rom_bytes for s in PA_SET),
        ram_bytes=sum(by_signal[s].ram_bytes for s in PA_SET),
    )
    cache = PlacementCache(str(tmp_path / "place-cache.json"))

    def cold_solve():
        estimate, telemetry = cached_estimate(
            target, cases, cache, runs_per_input=runs, seed=ctx.seed
        )
        return _solve(target, estimate, budget), telemetry

    t0 = time.perf_counter()
    (instance, result, report), cold_tel = run_once(benchmark, cold_solve)
    cold_s = time.perf_counter() - t0
    assert not cold_tel.hits
    assert len(cold_tel.misses) == 6

    # the tentpole claims: provable optimality, and dominance over
    # both hand sets on coverage per byte
    assert result.optimal
    assert report.dominates_all
    greedy = greedy_solve(instance)
    assert greedy.selected == result.selected

    # re-solve after one module changes: five cache hits, one miss
    t0 = time.perf_counter()
    estimate2, warm_tel = cached_estimate(
        target, cases, cache,
        runs_per_input=runs, seed=ctx.seed,
        invalidate=(CHANGED_MODULE,),
    )
    _, result2, report2 = _solve(target, estimate2, budget)
    resolve_s = time.perf_counter() - t0
    assert warm_tel.misses == (CHANGED_MODULE,)
    assert len(warm_tel.hits) == 5
    # same seed per module => same counts => byte-identical table
    assert report2.render() == report.render()

    speedup = cold_s / resolve_s if resolve_s > 0 else 0.0
    print()
    print(f"place bench (scale {ctx.scale.name}, {len(cases)} cases, "
          f"{runs} runs/input)")
    print(f"  cold solve        : {cold_s:.2f} s "
          f"(reinjected {','.join(cold_tel.misses)})")
    print(f"  cached re-solve   : {resolve_s:.2f} s "
          f"(reinjected {','.join(warm_tel.misses)})")
    print(f"  speedup           : {speedup:.2f}x")
    print(f"  solved set        : {','.join(result.selected)} "
          f"coverage {result.coverage:.4f} "
          f"({result.nodes} ILP nodes)")

    _record_bench(
        "place",
        {
            "target": target.name,
            "scale": ctx.scale.name,
            "cases": len(cases),
            "runs_per_input": runs,
            "budget_rom": budget.rom_bytes,
            "budget_ram": budget.ram_bytes,
            "cold_solve_s": round(cold_s, 3),
            "cached_resolve_s": round(resolve_s, 3),
            "speedup": round(speedup, 2),
            "changed_module": CHANGED_MODULE,
            "resolve_hits": len(warm_tel.hits),
            "resolve_misses": len(warm_tel.misses),
            "resolve_byte_identical": True,
            "selected": list(result.selected),
            "coverage": round(result.coverage, 6),
            "ilp_optimal": result.optimal,
            "ilp_nodes": result.nodes,
            "greedy_agrees": greedy.selected == result.selected,
            "dominates_eh": report.hand_sets[0].dominated,
            "dominates_pa": report.hand_sets[1].dominated,
            "coverage_per_byte": round(
                instance.coverage_per_byte(result.selected), 8
            ),
        },
    )

    # the speedup bound needs a baseline long enough that the ratio
    # is not dominated by timing jitter on a loaded CI box
    if strict(ctx) and cold_s >= 1.0:
        assert speedup >= 5.0, (
            f"expected >=5x cached re-solve speedup after changing "
            f"one module, measured {speedup:.2f}x"
        )
    else:
        print(f"  (speedup bound not asserted: scale {ctx.scale.name}, "
              f"baseline {cold_s:.2f} s)")
