"""Bench: regenerate Figure 3 — coverage under the harsher error model.

Workload: periodic (20 ms) single-bit flips into RAM and stack
locations of the memory map, one location+test-case per run, random
phase and bit, EA bank monitoring, failure classification per the
Section 4.2 criteria.

Shape assertions against the paper's Fig. 3:

* the PA-set's coverage collapses relative to the EH-set — for RAM
  errors to roughly half ("just over half that obtained using the full
  set"), and it is strictly lower in total;
* the extended-framework set restores the EH-set's coverage exactly
  (it selects the same EAs — the paper's contribution C3);
* both sets detect some errors in all areas (the campaign is not
  degenerate).
"""

from conftest import run_once, strict

from repro.experiments.figure3 import run_figure3


def test_bench_figure3(benchmark, ctx):
    result = run_once(benchmark, run_figure3, ctx)
    print()
    print(result.render())

    eh_ram = result.coverage("EH", "RAM")
    pa_ram = result.coverage("PA", "RAM")
    eh_total = result.coverage("EH", "Total")
    pa_total = result.coverage("PA", "Total")
    eh_stack = result.coverage("EH", "Stack")
    pa_stack = result.coverage("PA", "Stack")

    # sanity: enough runs, some detections
    assert eh_total.n_runs >= 10
    assert eh_total.c_tot > 0.1

    # C2: the PA placement loses coverage under this error model
    assert pa_total.c_tot <= eh_total.c_tot
    assert pa_stack.c_tot <= eh_stack.c_tot
    if strict(ctx):
        assert eh_total.n_runs >= 100
        assert result.pa_collapses()
        assert pa_ram.c_tot < eh_ram.c_tot
        # "for errors injected into RAM the coverage is just over half"
        assert pa_ram.c_tot <= 0.8 * eh_ram.c_tot
        assert pa_total.c_tot < eh_total.c_tot

    # C3: the extended framework recovers the EH-level coverage
    assert result.extended_matches_eh()

    # coverage triples are consistent: c_tot between c_fail and
    # c_nofail (it is their weighted mean)
    for group in ("RAM", "Stack", "Total"):
        triple = result.coverage("EH", group)
        low = min(triple.c_fail, triple.c_nofail)
        high = max(triple.c_fail, triple.c_nofail)
        if triple.n_fail and triple.n_fail < triple.n_runs:
            assert low - 1e-9 <= triple.c_tot <= high + 1e-9
