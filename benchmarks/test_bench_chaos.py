"""Fault-tolerant execution: overhead and identity under injected chaos.

Runs the Table-1 permeability campaign on a 2-worker pool while the
chaos hooks make one task raise on its first attempt and another
hard-kill its worker, then asserts the recovered result is
bit-identical to a clean serial run (both faults are transient, so
nothing is quarantined) and records the recovery cost — retry backoff
plus one pool respawn — that a production campaign would pay.
"""

from __future__ import annotations

import os
import time

from conftest import run_once

from repro.fi.campaign import PermeabilityCampaign
from repro.fi.executor import CampaignConfig


def _campaign(ctx, config=None):
    return PermeabilityCampaign(
        ctx.simulator_factory,
        ctx.test_cases,
        runs_per_input=ctx.scale.runs_per_input,
        seed=ctx.seed,
        config=config,
    )


def test_bench_chaos_recovery(benchmark, ctx):
    """Table-1 campaign with a raising task and a killed worker."""
    started = time.perf_counter()
    serial = _campaign(ctx).run()
    serial_s = time.perf_counter() - started

    chaos = {"REPRO_CHAOS_FAIL_INDEX": "3", "REPRO_CHAOS_KILL_INDEX": "5"}

    def run_chaos():
        campaign = _campaign(ctx, CampaignConfig(
            jobs=2, retries=2, task_timeout=30.0,
            retry_backoff_s=0.05, pool_watchdog_s=2.0,
        ))
        saved = {k: os.environ.get(k) for k in chaos}
        os.environ.update(chaos)
        try:
            estimate = campaign.run()
        finally:
            for key, value in saved.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
        return campaign, estimate

    campaign, recovered = run_once(benchmark, run_chaos)
    telemetry = campaign.telemetry

    print()
    print("chaos recovery bench (2 workers, 1 raise + 1 worker kill)")
    print(f"  serial    : {serial_s:.2f} s")
    print(f"  recovered : {telemetry.wall_s:.2f} s "
          f"(backend={telemetry.backend}, retries={telemetry.retries}, "
          f"respawns={telemetry.pool_respawns})")

    # both faults are first-attempt-only, so recovery is total:
    # no quarantined task, and the recovered bits match a clean run
    assert recovered.task_failures == []
    assert recovered.values == serial.values
    assert recovered.direct_counts == serial.direct_counts
    assert recovered.active_runs == serial.active_runs

    # the faults were actually exercised, and telemetry says so
    assert telemetry.faulted
    assert telemetry.retries >= 1
    assert telemetry.pool_respawns >= 1
    assert telemetry.failures == 0
    assert not telemetry.degraded
