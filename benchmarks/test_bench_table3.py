"""Bench: regenerate Table 3 — EA setup and memory requirements.

Workload: the analytic resource model over the EA catalogue.

Assertions: byte-exact reproduction of the paper's Table 3 —
EH 262/94 bytes, PA 150/54 bytes, PA a subset of EH, and the ~40 %
memory / execution-time saving of Section 6.1.
"""

from conftest import run_once

from repro.experiments.table3 import run_table3


def test_bench_table3(benchmark):
    result = run_once(benchmark, run_table3)
    print()
    print(result.render())

    assert result.pa_is_subset
    assert (result.eh_cost.rom_bytes, result.eh_cost.ram_bytes) == (262, 94)
    assert (result.pa_cost.rom_bytes, result.pa_cost.ram_bytes) == (150, 54)
    # "the requirements on memory for EA's in the EH-set is almost
    # double that of those in the PA-set"
    assert result.eh_cost.total_bytes / result.pa_cost.total_bytes > 1.7
    assert 0.35 <= result.savings["memory_saving"] <= 0.50
    # "the reduction in execution time overhead is likely to be in the
    # order of the reduction in number of EA's, i.e., about 40 percent"
    assert abs(result.savings["execution_saving"] - 3 / 7) < 1e-9
