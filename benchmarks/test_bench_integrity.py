"""Result-integrity layer: audit overhead and bit-identity.

Runs the Table-4 detection campaign three ways — full replay,
fast-forward, and fast-forward with a 10% strict audit sample — and
asserts all three produce bit-identical results.  Records the cost of
auditing to ``BENCH_integrity.json``: the audit overhead must stay
under 25% of the fast-forward win (the paper-harness contract: cheap
enough to leave on), asserted at the bench and full scales.
"""

from __future__ import annotations

import json
import time

from conftest import run_once, strict

from repro.fi.campaign import DetectionCampaign
from repro.fi.executor import CampaignConfig
from repro.fi.snapshot import checkpoint_cache

AUDIT_FRACTION = 0.1


def _campaign(ctx, fast_forward, audit_fraction=0.0):
    return DetectionCampaign(
        ctx.simulator_factory,
        ctx.test_cases,
        ctx.assertion_specs(),
        runs_per_signal=ctx.scale.runs_per_signal,
        seed=ctx.seed,
        config=CampaignConfig(
            seed=ctx.seed,
            fast_forward=fast_forward,
            audit_fraction=audit_fraction,
            integrity_policy="strict",
        ),
    )


def test_bench_integrity_audit_overhead(benchmark, ctx):
    """Sampled strict auditing: bit-identical, cheap relative to the
    fast-forward win it safeguards."""
    # warm the golden cache so all timings start from the same place
    goldens = _campaign(ctx, False).goldens
    for test_case in ctx.test_cases:
        goldens.get(test_case)

    repeats = 3 if strict(ctx) else 1

    full = None
    full_s = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        result = _campaign(ctx, False).run()
        full_s = min(full_s, time.perf_counter() - started)
        full = result

    def timed(audit_fraction):
        best = None
        best_s = float("inf")
        for _ in range(repeats):
            # cold track cache every repeat, as a fresh campaign would be
            checkpoint_cache.clear()
            campaign = _campaign(ctx, True, audit_fraction)
            result = campaign.run()
            if campaign.telemetry.wall_s < best_s:
                best_s = campaign.telemetry.wall_s
                best = (campaign, result)
        return best[0], best[1], best_s

    _, fast, ff_s = timed(0.0)

    def run_audited():
        return timed(AUDIT_FRACTION)

    audited_campaign, audited, audited_s = run_once(benchmark, run_audited)
    telemetry = audited_campaign.telemetry

    win = full_s - ff_s
    overhead = audited_s - ff_s
    ratio = overhead / win if win > 0 else float("inf")

    print()
    print(f"integrity bench (audit fraction {AUDIT_FRACTION}, "
          f"policy strict, scale {ctx.scale.name})")
    print(f"  full replay   : {full_s:.2f} s")
    print(f"  fast-forward  : {ff_s:.2f} s (win {win:.2f} s)")
    print(f"  ff + audit    : {audited_s:.2f} s "
          f"({telemetry.audits} audits, "
          f"{telemetry.audit_mismatches} mismatches)")
    print(f"  overhead      : {overhead:.2f} s "
          f"({ratio:.0%} of the ff win)")

    # the core contract holds at any scale: a strict audited campaign
    # neither perturbs the results nor trips on honest fast-forwarding
    for other in (fast, audited):
        assert other.n_injected == full.n_injected
        assert other.n_err == full.n_err
        assert other.detections == full.detections
        assert other.run_records == full.run_records
        assert other.run_latencies == full.run_latencies
    assert telemetry.audit_mismatches == 0
    assert telemetry.audits > 0

    with open("BENCH_integrity.json", "w") as handle:
        json.dump(
            {
                "campaign": "detection",
                "scale": ctx.scale.name,
                "audit_fraction": AUDIT_FRACTION,
                "integrity_policy": "strict",
                "full_replay_s": round(full_s, 3),
                "fast_forward_s": round(ff_s, 3),
                "audited_s": round(audited_s, 3),
                "ff_win_s": round(win, 3),
                "audit_overhead_s": round(overhead, 3),
                "overhead_over_win": round(ratio, 3),
                "audits": telemetry.audits,
                "audit_mismatches": telemetry.audit_mismatches,
                "bit_identical": True,
            },
            handle,
            indent=2,
        )

    # overhead bound: sampling 10% of the runs must cost well under
    # the win fast-forwarding brings (needs enough runs to average
    # out).  Guard against scheduler jitter: with a sub-second win the
    # ratio is dominated by timing noise, so the bound only applies
    # once the win is comfortably measurable, and the overhead gets an
    # absolute floor so a noisy-but-tiny overhead cannot fail it.
    if strict(ctx) and win >= 1.0:
        assert overhead <= max(0.25 * win, 0.25), (
            f"audit overhead {overhead:.2f} s exceeds 25% of the "
            f"fast-forward win {win:.2f} s"
        )
    else:
        print(f"  (overhead bound not asserted: scale {ctx.scale.name}, "
              f"win {win:.2f} s)")
