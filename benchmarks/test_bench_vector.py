"""Vectorized batch core: speedup and bit-identity.

Runs a water-tank detection campaign (full 6000-tick missions, no
fast-forward, so the baseline is an honest serial full replay) with
``batch_width`` off and on, asserts the results are bit-identical on
the serial *and* process backends, and records the wall-clock speedup
to ``BENCH_vector.json``.  The >=10x speedup bound is asserted at the
bench and full scales; the smoke scale still verifies identity and
reports the measured ratio.
"""

from __future__ import annotations

import json
import time

from conftest import run_once, strict

from repro.fi.campaign import DetectionCampaign
from repro.fi.executor import (
    CampaignConfig,
    FastForwardPolicy,
    VectorPolicy,
)
from repro.watertank.catalogue import tank_assertions
from repro.watertank.simulation import WaterTankSimulator
from repro.watertank.testcases import standard_tank_cases

BATCH_WIDTH = 256


def _factory(test_case):
    return WaterTankSimulator(test_case)


def _campaign(ctx, batch_width, backend="serial", jobs=1):
    runs = ctx.scale.runs_per_signal
    return DetectionCampaign(
        _factory,
        standard_tank_cases()[:3],
        tank_assertions(),
        runs_per_signal=max(runs, 8),
        seed=ctx.seed,
        config=CampaignConfig(
            seed=ctx.seed,
            backend=backend,
            jobs=jobs,
            # an honest full-replay baseline: fast-forward off on
            # both sides, so the ratio isolates the vectorized core
            fastforward=FastForwardPolicy(enabled=False),
            vector=VectorPolicy(batch_width=batch_width),
        ),
    )


def _digest(result):
    return (
        result.n_injected,
        result.n_err,
        result.detections,
        result.run_records,
        result.run_latencies,
    )


def test_bench_vector_batch(benchmark, ctx):
    """Detection campaign, scalar vs vectorized: identical bits on
    both backends, an order of magnitude less wall."""
    # warm the golden cache so both timings start from the same place
    goldens = _campaign(ctx, 0).goldens
    for test_case in standard_tank_cases()[:3]:
        goldens.get(test_case)

    started = time.perf_counter()
    scalar = _campaign(ctx, 0).run()
    scalar_s = time.perf_counter() - started

    def run_batched():
        campaign = _campaign(ctx, BATCH_WIDTH)
        return campaign, campaign.run()

    campaign, batched = run_once(benchmark, run_batched)
    telemetry = campaign.telemetry
    batched_s = telemetry.wall_s
    speedup = scalar_s / batched_s if batched_s > 0 else 0.0

    # bit-identity, serial backend
    assert _digest(batched) == _digest(scalar)
    assert telemetry.vec_rows > 0
    assert telemetry.vec_batched_ticks > 0

    # bit-identity, process backend (groups computed whole in workers)
    pool_campaign = _campaign(ctx, BATCH_WIDTH, backend="process", jobs=2)
    pooled = pool_campaign.run()
    assert _digest(pooled) == _digest(scalar)
    assert pool_campaign.telemetry.vec_rows > 0

    print()
    print(f"vector bench (batch width {BATCH_WIDTH}, "
          f"scale {ctx.scale.name})")
    print(f"  scalar full replay: {scalar_s:.2f} s")
    print(f"  vectorized        : {batched_s:.2f} s "
          f"({telemetry.vec_rows} rows in {telemetry.vec_groups} groups, "
          f"{telemetry.vec_batched_ticks} batched ticks, "
          f"{telemetry.vec_retired_rows} retired)")
    print(f"  speedup           : {speedup:.2f}x")

    with open("BENCH_vector.json", "w") as handle:
        json.dump(
            {
                "campaign": "detection",
                "target": "watertank",
                "scale": ctx.scale.name,
                "batch_width": BATCH_WIDTH,
                "scalar_full_replay_s": round(scalar_s, 3),
                "vectorized_s": round(batched_s, 3),
                "speedup": round(speedup, 2),
                "bit_identical_serial": True,
                "bit_identical_process": True,
                "vec_rows": telemetry.vec_rows,
                "vec_groups": telemetry.vec_groups,
                "vec_batched_ticks": telemetry.vec_batched_ticks,
                "vec_retired_rows": telemetry.vec_retired_rows,
            },
            handle,
            indent=2,
        )

    # the throughput bound needs a baseline long enough that the
    # ratio is not dominated by timing jitter on a loaded CI box
    if strict(ctx) and scalar_s >= 1.0:
        assert speedup >= 10.0, (
            f"expected >=10x vectorized speedup at batch width "
            f"{BATCH_WIDTH}, measured {speedup:.2f}x"
        )
    else:
        print(f"  (speedup bound not asserted: scale {ctx.scale.name}, "
              f"baseline {scalar_s:.2f} s)")
