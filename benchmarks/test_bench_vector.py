"""Vectorized batch core: speedup and bit-identity.

Runs water-tank detection and memory campaigns (full 6000-tick
missions, no fast-forward, so the baseline is an honest serial full
replay) with ``batch_width`` off and on, asserts the results are
bit-identical on the serial *and* process backends, and records the
wall-clock speedups to ``BENCH_vector.json`` (one entry per
campaign).  The >=10x (detection) and >=5x (memory) speedup bounds
are asserted at the bench and full scales; the smoke scale still
verifies identity and reports the measured ratios.
"""

from __future__ import annotations

import json
import os
import time

from conftest import run_once, strict

from repro.fi.campaign import DetectionCampaign, MemoryCampaign
from repro.fi.executor import (
    CampaignConfig,
    FastForwardPolicy,
    VectorPolicy,
)
from repro.fi.memory import MemoryMap
from repro.watertank.catalogue import tank_assertions
from repro.watertank.simulation import WaterTankSimulator
from repro.watertank.testcases import standard_tank_cases

BATCH_WIDTH = 256
# the memory sweep batches every (location, case) row of the
# enumerative fault space into one cross-case group; a width above the
# row count keeps the whole sweep in a single fat group
MEM_BATCH_WIDTH = 512


def _factory(test_case):
    return WaterTankSimulator(test_case)


def _config(ctx, batch_width, backend="serial", jobs=1):
    return CampaignConfig(
        seed=ctx.seed,
        backend=backend,
        jobs=jobs,
        # an honest full-replay baseline: fast-forward off on
        # both sides, so the ratio isolates the vectorized core
        fastforward=FastForwardPolicy(enabled=False),
        vector=VectorPolicy(batch_width=batch_width),
    )


def _campaign(ctx, batch_width, backend="serial", jobs=1):
    runs = ctx.scale.runs_per_signal
    return DetectionCampaign(
        _factory,
        standard_tank_cases()[:3],
        tank_assertions(),
        runs_per_signal=max(runs, 8),
        seed=ctx.seed,
        config=_config(ctx, batch_width, backend, jobs),
    )


def _mem_campaign(ctx, batch_width, locations, backend="serial", jobs=1):
    return MemoryCampaign(
        _factory,
        standard_tank_cases()[:3],
        tank_assertions(),
        locations=locations,
        seed=ctx.seed,
        config=_config(ctx, batch_width, backend, jobs),
    )


def _digest(result):
    return (
        result.n_injected,
        result.n_err,
        result.detections,
        result.run_records,
        result.run_latencies,
    )


def _mem_digest(result):
    return [
        (rec.region, rec.location_label, tuple(sorted(rec.fired)),
         rec.failed)
        for rec in result.records
    ]


def _record_bench(entry, payload):
    """Merge one campaign's entry into ``BENCH_vector.json`` so the
    detection and memory benches survive in any test order."""
    data = {}
    if os.path.exists("BENCH_vector.json"):
        try:
            with open("BENCH_vector.json") as handle:
                loaded = json.load(handle)
        except (OSError, ValueError):
            loaded = None
        if isinstance(loaded, dict) and all(
            isinstance(value, dict) for value in loaded.values()
        ):
            data = loaded
    data[entry] = payload
    with open("BENCH_vector.json", "w") as handle:
        json.dump(data, handle, indent=2)


def test_bench_vector_batch(benchmark, ctx):
    """Detection campaign, scalar vs vectorized: identical bits on
    both backends, an order of magnitude less wall."""
    # warm the golden cache so both timings start from the same place
    goldens = _campaign(ctx, 0).goldens
    for test_case in standard_tank_cases()[:3]:
        goldens.get(test_case)

    started = time.perf_counter()
    scalar = _campaign(ctx, 0).run()
    scalar_s = time.perf_counter() - started

    def run_batched():
        campaign = _campaign(ctx, BATCH_WIDTH)
        return campaign, campaign.run()

    campaign, batched = run_once(benchmark, run_batched)
    telemetry = campaign.telemetry
    batched_s = telemetry.wall_s
    speedup = scalar_s / batched_s if batched_s > 0 else 0.0

    # bit-identity, serial backend
    assert _digest(batched) == _digest(scalar)
    assert telemetry.vec_rows > 0
    assert telemetry.vec_batched_ticks > 0

    # bit-identity, process backend (groups computed whole in workers)
    pool_campaign = _campaign(ctx, BATCH_WIDTH, backend="process", jobs=2)
    pooled = pool_campaign.run()
    assert _digest(pooled) == _digest(scalar)
    assert pool_campaign.telemetry.vec_rows > 0

    print()
    print(f"vector bench (batch width {BATCH_WIDTH}, "
          f"scale {ctx.scale.name})")
    print(f"  scalar full replay: {scalar_s:.2f} s")
    print(f"  vectorized        : {batched_s:.2f} s "
          f"({telemetry.vec_rows} rows in {telemetry.vec_groups} groups, "
          f"{telemetry.vec_batched_ticks} batched ticks, "
          f"{telemetry.vec_retired_rows} retired)")
    print(f"  speedup           : {speedup:.2f}x")

    _record_bench(
        "detection",
        {
            "campaign": "detection",
            "target": "watertank",
            "scale": ctx.scale.name,
            "batch_width": BATCH_WIDTH,
            "scalar_full_replay_s": round(scalar_s, 3),
            "vectorized_s": round(batched_s, 3),
            "speedup": round(speedup, 2),
            "bit_identical_serial": True,
            "bit_identical_process": True,
            "vec_rows": telemetry.vec_rows,
            "vec_groups": telemetry.vec_groups,
            "vec_batched_ticks": telemetry.vec_batched_ticks,
            "vec_retired_rows": telemetry.vec_retired_rows,
            "vec_occupancy": round(telemetry.vec_occupancy, 3),
            "vec_cross_case_groups": telemetry.vec_cross_case_groups,
        },
    )

    # the throughput bound needs a baseline long enough that the
    # ratio is not dominated by timing jitter on a loaded CI box
    if strict(ctx) and scalar_s >= 1.0:
        assert speedup >= 10.0, (
            f"expected >=10x vectorized speedup at batch width "
            f"{BATCH_WIDTH}, measured {speedup:.2f}x"
        )
    else:
        print(f"  (speedup bound not asserted: scale {ctx.scale.name}, "
              f"baseline {scalar_s:.2f} s)")


def test_bench_vector_memory(benchmark, ctx):
    """Memory campaign full sweep, scalar vs vectorized: the
    enumerative (location x case) fault space batches into one
    cross-case group; per-row dispatch keeps flips that corrupt the
    schedule chain inside the batch, so results stay bit-identical at
    a >=5x full-replay speedup."""
    probe = _factory(standard_tank_cases()[0])
    locations = MemoryMap(probe.system).locations()
    if not strict(ctx):
        # the smoke scale verifies identity on a slice of the memory
        # map; the full enumerative sweep runs at bench/full scales
        locations = locations[:24]

    started = time.perf_counter()
    scalar = _mem_campaign(ctx, 0, locations).run()
    scalar_s = time.perf_counter() - started

    def run_batched():
        campaign = _mem_campaign(ctx, MEM_BATCH_WIDTH, locations)
        return campaign, campaign.run()

    campaign, batched = run_once(benchmark, run_batched)
    telemetry = campaign.telemetry
    batched_s = telemetry.wall_s
    speedup = scalar_s / batched_s if batched_s > 0 else 0.0

    # bit-identity, serial backend
    assert _mem_digest(batched) == _mem_digest(scalar)
    assert telemetry.vec_rows > 0
    assert telemetry.vec_batched_ticks > 0
    # the whole sweep rides in cross-case groups
    assert telemetry.vec_cross_case_groups >= 1

    # bit-identity, process backend (groups computed whole in workers)
    pool_campaign = _mem_campaign(
        ctx, MEM_BATCH_WIDTH, locations, backend="process", jobs=2
    )
    pooled = pool_campaign.run()
    assert _mem_digest(pooled) == _mem_digest(scalar)
    assert pool_campaign.telemetry.vec_rows > 0

    occupancy = telemetry.vec_occupancy
    print()
    print(f"vector memory bench (batch width {MEM_BATCH_WIDTH}, "
          f"scale {ctx.scale.name}, {len(locations)} locations)")
    print(f"  scalar full replay: {scalar_s:.2f} s")
    print(f"  vectorized        : {batched_s:.2f} s "
          f"({telemetry.vec_rows} rows in {telemetry.vec_groups} groups, "
          f"{100 * occupancy:.1f}% occupancy, "
          f"{telemetry.vec_cross_case_groups} cross-case, "
          f"{telemetry.vec_retired_rows} retired)")
    print(f"  speedup           : {speedup:.2f}x")

    _record_bench(
        "memory",
        {
            "campaign": "memory",
            "target": "watertank",
            "scale": ctx.scale.name,
            "batch_width": MEM_BATCH_WIDTH,
            "locations": len(locations),
            "scalar_full_replay_s": round(scalar_s, 3),
            "vectorized_s": round(batched_s, 3),
            "speedup": round(speedup, 2),
            "bit_identical_serial": True,
            "bit_identical_process": True,
            "vec_rows": telemetry.vec_rows,
            "vec_groups": telemetry.vec_groups,
            "vec_batched_ticks": telemetry.vec_batched_ticks,
            "vec_retired_rows": telemetry.vec_retired_rows,
            "vec_occupancy": round(occupancy, 3),
            "vec_cross_case_groups": telemetry.vec_cross_case_groups,
        },
    )

    if strict(ctx) and scalar_s >= 1.0:
        assert speedup >= 5.0, (
            f"expected >=5x vectorized speedup on the enumerative "
            f"memory sweep at batch width {MEM_BATCH_WIDTH}, "
            f"measured {speedup:.2f}x"
        )
    else:
        print(f"  (speedup bound not asserted: scale {ctx.scale.name}, "
              f"baseline {scalar_s:.2f} s)")
