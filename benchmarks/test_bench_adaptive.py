"""Bench: adaptive sequential sampling vs. fixed-n campaigns.

Runs the Table-1 permeability campaign at a paper-precision budget
(3x the scale's per-input runs) three ways — fixed-n, adaptive with
Wilson-bound early stopping, and adaptive with stopping disabled —
and asserts the adaptive contract:

* stopping disabled is **bit-identical** to fixed-n (same canonical
  digest): the batched scheduler changes dispatch order, never
  results;
* early stopping spends at least 2x fewer injections (bench/full
  scales) while reaching the same shape verdicts: every Table-1
  architectural zero still measures exactly zero, every pass-through
  pair stays in the high class, and the Table-2 PA placement selects
  the same signals.

Records the spend accounting to ``BENCH_adaptive.json``.
"""

from __future__ import annotations

import dataclasses
import json

from conftest import run_once, strict

from repro.experiments.context import ExperimentContext
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.fi.integrity import canonical_digest
from repro.fi.serialization import (
    permeability_to_dict,
    stratum_reports_to_dict,
)

#: Table-1 architectural zeros (must hold in every arm, at any scale)
ZERO_PAIRS = (
    ("CLOCK", "ms_slot_nbr", "mscnt"),
    ("DIST_S", "TIC1", "pulscnt"),
    ("DIST_S", "TIC1", "slow_speed"),
    ("DIST_S", "TIC1", "stopped"),
    ("DIST_S", "TCNT", "pulscnt"),
    ("DIST_S", "TCNT", "slow_speed"),
    ("DIST_S", "TCNT", "stopped"),
    ("CALC", "mscnt", "i"),
    ("CALC", "pulscnt", "SetValue"),
    ("CALC", "slow_speed", "i"),
    ("CALC", "stopped", "SetValue"),
)

#: Table-1 near-unity pass-throughs
HIGH_PAIRS = (
    ("CLOCK", "ms_slot_nbr", "ms_slot_nbr"),
    ("DIST_S", "PACNT", "pulscnt"),
    ("CALC", "i", "i"),
    ("CALC", "slow_speed", "SetValue"),
    ("V_REG", "SetValue", "OutValue"),
    ("V_REG", "IsValue", "OutValue"),
    ("PRES_A", "OutValue", "TOC2"),
)


def _context(ctx, budget, **kwargs):
    arm = ExperimentContext(scale=ctx.scale.name, seed=ctx.seed, **kwargs)
    # paper-precision budget on every arm: the contrast under test is
    # scheduling, so fixed-n and adaptive must share the same budget
    arm.scale = dataclasses.replace(arm.scale, runs_per_input=budget)
    return arm


def test_bench_adaptive_savings(benchmark, ctx):
    budget = 3 * ctx.scale.runs_per_input
    fixed_ctx = _context(ctx, budget)
    adaptive_ctx = _context(ctx, budget, adaptive=True, max_runs=budget)
    disabled_ctx = _context(
        ctx, budget, adaptive=True, max_runs=budget, ci_halfwidth=0.0
    )

    fixed = fixed_ctx.permeability_estimate()

    def run_adaptive():
        return adaptive_ctx.permeability_estimate()

    adaptive = run_once(benchmark, run_adaptive)
    disabled = disabled_ctx.permeability_estimate()

    telemetry = adaptive_ctx.telemetries["permeability"]
    reports = adaptive_ctx.stratum_reports["permeability"]
    fixed_runs = fixed_ctx.telemetries["permeability"].executed_runs
    adaptive_runs = telemetry.executed_runs
    ratio = fixed_runs / adaptive_runs if adaptive_runs else float("inf")

    identical = canonical_digest(
        permeability_to_dict(disabled)
    ) == canonical_digest(permeability_to_dict(fixed))

    fixed_table2 = run_table2(fixed_ctx)
    adaptive_table2 = run_table2(adaptive_ctx)
    selection_parity = (
        fixed_table2.placement.selected == adaptive_table2.placement.selected
    )

    print()
    print(f"adaptive bench (scale {ctx.scale.name}, budget {budget})")
    print(f"  fixed-n     : {fixed_runs} injections")
    print(f"  adaptive    : {adaptive_runs} injections "
          f"({telemetry.runs_saved} saved, "
          f"{telemetry.strata_early}/{telemetry.strata} strata early)")
    print(f"  reduction   : {ratio:.2f}x")
    print(f"  stop reasons: {dict(sorted(telemetry.stop_reasons.items()))}")
    print(f"  disabled == fixed-n: {identical}")
    print(f"  table2 selection parity: {selection_parity}")
    print(run_table1(adaptive_ctx).render())

    # the determinism contract holds at any scale
    assert identical, (
        "adaptive scheduling with stopping disabled must be "
        "bit-identical to fixed-n"
    )
    # verdict parity: architectural zeros are certified, not sampled
    # away, and the pass-throughs stay in the high class in both arms
    for key in ZERO_PAIRS:
        assert fixed.values[key] == 0.0, key
        assert adaptive.values[key] == 0.0, key
    for key in HIGH_PAIRS:
        assert fixed.values[key] >= 0.7, key
        assert adaptive.values[key] >= 0.7, key
    assert selection_parity
    assert telemetry.runs_saved > 0

    with open("BENCH_adaptive.json", "w") as handle:
        json.dump(
            {
                "campaign": "permeability",
                "scale": ctx.scale.name,
                "budget_per_input": budget,
                "fixed_injections": fixed_runs,
                "adaptive_injections": adaptive_runs,
                "reduction_factor": round(ratio, 3),
                "runs_saved": telemetry.runs_saved,
                "strata_early": telemetry.strata_early,
                "strata": telemetry.strata,
                "stop_reasons": dict(sorted(telemetry.stop_reasons.items())),
                "disabled_stopping_bit_identical": identical,
                "table1_zero_parity": True,
                "table2_selection_parity": selection_parity,
                "spend": stratum_reports_to_dict(reports),
            },
            handle,
            indent=2,
        )

    if strict(ctx):
        # the headline claim: same conclusions, >= 2x fewer injections
        assert ratio >= 2.0, (
            f"adaptive sampling reduced injections only {ratio:.2f}x "
            f"({fixed_runs} -> {adaptive_runs}); expected >= 2x"
        )
    else:
        print(f"  (reduction bound not asserted at scale {ctx.scale.name})")
