"""Bench: regenerate Figures 5 and 6 — the exposure and impact profiles.

Workload: the joint SystemProfile (band classification plus both
renderings) over the measured permeability matrix.

Shape assertions against the paper's figures:

* Fig. 5: OutValue carries the thickest exposure line; the system
  inputs have no exposure value assigned; mscnt is dashed (zero);
* Fig. 6: the actuator chain carries the thickest impact lines;
  ms_slot_nbr is dashed (zero impact); the system output has no
  impact value assigned;
* the figure-to-figure contrast that drives Section 10's selection is
  visible in the bands themselves.
"""

from conftest import run_once

from repro.core.profile import ValueBand
from repro.experiments.profiles import run_profiles


def test_bench_profiles(benchmark, warm_ctx):
    result = run_once(benchmark, run_profiles, warm_ctx)
    print()
    print(result.render())

    # Fig. 5 (exposure)
    assert result.exposure_band("OutValue") is ValueBand.HIGHEST
    for signal in ("PACNT", "TIC1", "TCNT", "ADC"):
        assert result.exposure_band(signal) is ValueBand.UNASSIGNED
    assert result.exposure_band("mscnt") is ValueBand.ZERO

    # Fig. 6 (impact)
    assert result.impact_band("TOC2") is ValueBand.UNASSIGNED
    assert result.impact_band("ms_slot_nbr") is ValueBand.ZERO
    assert result.impact_band("OutValue") in (
        ValueBand.HIGHEST, ValueBand.HIGH,
    )

    # the Section-10 contrast, in band form
    assert result.exposure_band("IsValue") in (
        ValueBand.ZERO, ValueBand.LOWEST, ValueBand.LOW,
    )
    assert result.impact_band("IsValue") in (
        ValueBand.HIGH, ValueBand.HIGHEST,
    )

    # renders mention every signal
    text = result.render()
    for signal in warm_ctx.system.signal_names():
        assert signal in text
