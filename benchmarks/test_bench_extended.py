"""Bench: the Section-10 extended analysis and selection.

Workload: extended placement (propagation + effect analysis with the
memory-error-model rule) over the measured permeability matrix, plus
the cross-check of its coverage under the harsher error model.

Shape assertions against the paper's Section 10:

* effect analysis adds IsValue and mscnt to the PA selection;
* slow_speed is considered (high impact) but rejected as boolean;
* ms_slot_nbr is added under the memory error model;
* the final selection equals the EH-set, so its coverage under the
  harsher error model equals the EH-set's by construction.
"""

from conftest import run_once

from repro.edm.catalogue import EH_SET, PA_SET
from repro.experiments.extended import run_extended


def test_bench_extended(benchmark, warm_ctx):
    result = run_once(benchmark, run_extended, warm_ctx)
    print()
    print(result.render())

    assert result.matches_eh_set()
    assert set(PA_SET) <= set(result.selected)
    assert {"IsValue", "mscnt", "ms_slot_nbr"} <= set(result.selected)

    slow = result.placement.decision_for("slow_speed")
    assert not slow.selected
    assert "boolean" in slow.motivation

    slot = result.placement.decision_for("ms_slot_nbr")
    assert slot.selected
    assert "memory error model" in slot.motivation

    for added in ("IsValue", "mscnt"):
        decision = result.placement.decision_for(added)
        assert decision.selected
        assert "impact" in decision.motivation

    assert set(result.selected) == set(EH_SET)
