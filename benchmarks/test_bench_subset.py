"""Extension bench: cost-optimal EA subset selection (paper ref [18]).

The Related Work's Steininger & Scherrer idea applied to our own
campaign data: from the per-run detection records of the two error
models, find the EA combination with the best cost/coverage ratio.

Assertions:

* under the input error model, EA4 alone is the optimal subset (the
  paper's "all errors detected by EA1, EA2 or EA7 were also detected
  by EA4");
* under the memory error model the optimal subset is strictly larger
  (the EH-only EAs contribute exclusive detections) yet still cheaper
  than carrying all seven EAs;
* the greedy subset always reaches the full bank's coverage when not
  target-bounded.
"""

from conftest import run_once, strict

from repro.edm.subset import (
    fired_sets_of,
    marginal_coverages,
    overlap_matrix,
    select_subset,
)


def test_bench_subset(benchmark, warm_ctx):
    detection = warm_ctx.detection_result()
    memory = warm_ctx.memory_result()

    def analyse():
        input_sel = select_subset(
            fired_sets_of(detection), detection.ea_names
        )
        memory_sel = select_subset(
            fired_sets_of(memory), memory.ea_names
        )
        overlaps = overlap_matrix(
            fired_sets_of(memory), memory.ea_names
        )
        marginals = marginal_coverages(
            fired_sets_of(memory), memory.ea_names
        )
        return input_sel, memory_sel, overlaps, marginals

    input_sel, memory_sel, overlaps, marginals = run_once(
        benchmark, analyse
    )
    print()
    print("input model:")
    print(input_sel.render())
    print("memory model:")
    print(memory_sel.render())
    exclusive = {k: v for k, v in marginals.items() if v > 0}
    print(f"exclusive contributions (memory model): {exclusive}")

    # input model: EA4 is the whole story
    assert input_sel.selected == ["EA4"]
    assert input_sel.coverage == input_sel.full_coverage

    # memory model: more EAs needed, but still cheaper than all seven
    assert memory_sel.coverage == memory_sel.full_coverage
    assert "EA4" in memory_sel.selected
    assert memory_sel.cost_bytes <= memory_sel.full_cost_bytes
    if strict(warm_ctx):
        assert len(memory_sel.selected) >= 4
        # the sequence EAs (mscnt / ms_slot_nbr) earn their keep with
        # exclusive detections under memory errors
        assert marginals.get("EA6", 0) > 0 or marginals.get("EA5", 0) > 0
