"""Snapshot/fast-forward engine: speedup and bit-identity.

Runs the Table-4 detection campaign with the fast-forward engine off
(full replay from tick 0) and on (golden checkpoints + prefix skip +
resynchronization) at the default stride, asserts the results are
bit-identical, and records the wall-clock speedup to
``BENCH_snapshot.json``.  The >=3x speedup bound is asserted at the
bench and full scales; the smoke scale still verifies identity and
reports the measured ratio.
"""

from __future__ import annotations

import json
import time

from conftest import run_once, strict

from repro.fi.campaign import DetectionCampaign
from repro.fi.executor import CampaignConfig
from repro.fi.snapshot import DEFAULT_CHECKPOINT_STRIDE, checkpoint_cache


def _campaign(ctx, fast_forward):
    return DetectionCampaign(
        ctx.simulator_factory,
        ctx.test_cases,
        ctx.assertion_specs(),
        runs_per_signal=ctx.scale.runs_per_signal,
        seed=ctx.seed,
        config=CampaignConfig(
            seed=ctx.seed, fast_forward=fast_forward,
        ),
    )


def test_bench_snapshot_fast_forward(benchmark, ctx):
    """Detection campaign, full replay vs fast-forward: identical
    bits, less wall."""
    # warm the golden cache so both timings start from the same place
    goldens = _campaign(ctx, False).goldens
    for test_case in ctx.test_cases:
        goldens.get(test_case)

    # best-of-N on both sides: the speedup bound is about the engine,
    # not about scheduler noise on a shared box
    repeats = 3 if strict(ctx) else 1

    full = None
    full_s = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        result = _campaign(ctx, False).run()
        full_s = min(full_s, time.perf_counter() - started)
        assert full is None or result.run_records == full.run_records
        full = result

    def run_fast_forward():
        # cold track cache every repeat: each measurement pays the full
        # track-recording cost a fresh campaign would
        checkpoint_cache.clear()
        campaign = _campaign(ctx, True)
        result = campaign.run()
        return campaign, result

    campaign, fast = run_once(benchmark, run_fast_forward)
    telemetry = campaign.telemetry
    ff_s = telemetry.wall_s
    for _ in range(repeats - 1):
        extra_campaign, extra = run_fast_forward()
        assert extra.run_records == fast.run_records
        ff_s = min(ff_s, extra_campaign.telemetry.wall_s)
    speedup = full_s / ff_s if ff_s > 0 else 0.0

    print()
    print(f"snapshot bench (stride {DEFAULT_CHECKPOINT_STRIDE}, "
          f"scale {ctx.scale.name})")
    print(f"  full replay : {full_s:.2f} s")
    print(f"  fast-forward: {ff_s:.2f} s "
          f"({telemetry.ff_ticks_saved} ticks saved, "
          f"{telemetry.ff_restores} restores, "
          f"{telemetry.ff_resyncs} resyncs, "
          f"{telemetry.ff_tracks} tracks)")
    print(f"  speedup     : {speedup:.2f}x")

    # the core contract holds at any scale: bit-identical results
    assert fast.n_injected == full.n_injected
    assert fast.n_err == full.n_err
    assert fast.detections == full.detections
    assert fast.run_records == full.run_records
    assert fast.run_latencies == full.run_latencies
    assert telemetry.ff_ticks_saved > 0

    with open("BENCH_snapshot.json", "w") as handle:
        json.dump(
            {
                "campaign": "detection",
                "scale": ctx.scale.name,
                "checkpoint_stride": DEFAULT_CHECKPOINT_STRIDE,
                "full_replay_s": round(full_s, 3),
                "fast_forward_s": round(ff_s, 3),
                "speedup": round(speedup, 2),
                "bit_identical": True,
                "ff_ticks_saved": telemetry.ff_ticks_saved,
                "ff_restores": telemetry.ff_restores,
                "ff_resyncs": telemetry.ff_resyncs,
                "ff_tracks": telemetry.ff_tracks,
            },
            handle,
            indent=2,
        )

    # the throughput bound needs enough runs to amortize track
    # recording, and a full-replay baseline long enough that the ratio
    # is not dominated by timing jitter on a loaded CI box
    if strict(ctx) and full_s >= 1.0:
        assert speedup >= 3.0, (
            f"expected >=3x fast-forward speedup at stride "
            f"{DEFAULT_CHECKPOINT_STRIDE}, measured {speedup:.2f}x"
        )
    else:
        print(f"  (speedup bound not asserted: scale {ctx.scale.name}, "
              f"baseline {full_s:.2f} s)")
