"""Checkpoint store backends: write amplification and overhead.

Runs the Table-1 permeability campaign checkpointing after every task
(the worst case for the store) against both backends and records the
contrast to ``BENCH_store.json``.  The JSON document store rewrites
the whole checkpoint on every flush, so its cumulative flush bytes
grow quadratically with the campaign; the sqlite store streams each
record exactly once.  Asserted: identical campaign bits, >=5x fewer
flush bytes for sqlite, and (at the strict scales) sqlite wall-clock
within 10% of the JSON backend.
"""

from __future__ import annotations

import json
import os
import time

from conftest import run_once, strict

from repro.fi.campaign import PermeabilityCampaign
from repro.fi.executor import CampaignConfig, CheckpointPolicy


def _run(ctx, path):
    campaign = PermeabilityCampaign(
        ctx.simulator_factory,
        ctx.test_cases,
        runs_per_input=ctx.scale.runs_per_input,
        seed=ctx.seed,
        config=CampaignConfig(
            seed=ctx.seed,
            checkpoint=CheckpointPolicy(path=path, every=1),
        ),
    )
    result = campaign.run()
    return campaign.telemetry, result


def test_bench_store_backends(benchmark, ctx, tmp_path):
    """JSON vs sqlite checkpointing: identical bits, bounded cost."""
    repeats = 3 if strict(ctx) else 1

    def fresh(name):
        path = str(tmp_path / name)
        for suffix in ("", "-wal", "-shm"):
            try:
                os.remove(path + suffix)
            except OSError:
                pass
        return path

    json_result = None
    json_telemetry = None
    json_s = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        json_telemetry, result = _run(ctx, fresh("cp.json"))
        json_s = min(json_s, time.perf_counter() - started)
        assert json_result is None or result.values == json_result.values
        json_result = result

    def run_sqlite():
        return _run(ctx, fresh("cp.db"))

    sqlite_telemetry, sqlite_result = run_once(benchmark, run_sqlite)
    sqlite_s = sqlite_telemetry.wall_s
    for _ in range(repeats - 1):
        extra_telemetry, extra = run_sqlite()
        assert extra.values == sqlite_result.values
        sqlite_s = min(sqlite_s, extra_telemetry.wall_s)

    byte_ratio = (
        json_telemetry.store_bytes_written
        / sqlite_telemetry.store_bytes_written
        if sqlite_telemetry.store_bytes_written
        else float("inf")
    )
    overhead = sqlite_s / json_s - 1.0 if json_s > 0 else 0.0

    print()
    print(f"store bench (checkpoint every task, scale {ctx.scale.name})")
    for label, telemetry, wall in (
        ("json", json_telemetry, json_s),
        ("sqlite", sqlite_telemetry, sqlite_s),
    ):
        print(
            f"  {label:<7}: {wall:.2f} s, "
            f"{telemetry.store_flushes} flushes, "
            f"{telemetry.store_records_written} records, "
            f"{telemetry.store_bytes_written} B written"
        )
    print(f"  flush-byte ratio json/sqlite: {byte_ratio:.1f}x")
    print(f"  sqlite overhead: {overhead:+.1%}")

    # the core contract holds at any scale: bit-identical estimates
    assert sqlite_result.values == json_result.values
    assert sqlite_result.direct_counts == json_result.direct_counts
    assert sqlite_result.active_runs == json_result.active_runs
    assert json_telemetry.store_backend == "json"
    assert sqlite_telemetry.store_backend == "sqlite"
    assert (
        sqlite_telemetry.store_records_written
        == json_telemetry.store_records_written
    )

    # the JSON store rewrites the document per flush (quadratic);
    # sqlite streams each record's bytes exactly once
    assert byte_ratio >= 5.0, (
        f"expected sqlite to cut flush bytes >=5x vs the JSON "
        f"document store, measured {byte_ratio:.1f}x"
    )

    with open("BENCH_store.json", "w") as handle:
        json.dump(
            {
                "campaign": "permeability",
                "scale": ctx.scale.name,
                "checkpoint_every": 1,
                "json_s": round(json_s, 3),
                "sqlite_s": round(sqlite_s, 3),
                "sqlite_overhead": round(overhead, 4),
                "json_flush_bytes": json_telemetry.store_bytes_written,
                "sqlite_flush_bytes":
                    sqlite_telemetry.store_bytes_written,
                "flush_byte_ratio": round(byte_ratio, 1),
                "records": sqlite_telemetry.store_records_written,
                "bit_identical": True,
            },
            handle,
            indent=2,
        )

    # wall-clock bound only where the baseline is long enough that
    # the ratio is not dominated by jitter on a loaded CI box
    if strict(ctx) and json_s >= 1.0:
        assert overhead <= 0.10, (
            f"expected <10% sqlite overhead vs the JSON backend, "
            f"measured {overhead:+.1%}"
        )
    else:
        print(f"  (overhead bound not asserted: scale {ctx.scale.name}, "
              f"baseline {json_s:.2f} s)")
