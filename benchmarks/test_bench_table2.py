"""Bench: regenerate Table 2 — signal exposures and the PA selection.

Workload: signal-error-exposure computation plus the PA placement
engine over the measured permeability matrix (the underlying
fault-injection campaign is shared with the Table-1 bench).

Shape assertions against the paper's Table 2:

* the PA-approach selects exactly {SetValue, i, pulscnt, OutValue};
* every rejection motivation matches the paper's reasoning
  (ms_slot_nbr: zero permeability onward; TOC2: errors come from
  OutValue; booleans: EA catalogue limitation);
* the exposure ordering puts the regulator chain on top.
"""

from conftest import run_once

from repro.experiments.paper_data import PAPER_PA_SET
from repro.experiments.table2 import run_table2


def test_bench_table2(benchmark, warm_ctx):
    result = run_once(benchmark, run_table2, warm_ctx)
    print()
    print(result.render())

    assert set(result.selected) == set(PAPER_PA_SET)
    assert result.selection_matches_paper()

    motivations = {
        row.signal: row.motivation for row in result.rows
    }
    assert "Zero error permeability to mscnt" in motivations["ms_slot_nbr"]
    assert "OutValue" in motivations["TOC2"]
    assert "boolean" in motivations["slow_speed"]

    # exposure ordering: OutValue leads, the selected four are all
    # above every rejected signal except ms_slot_nbr/TOC2
    ordered = [row.signal for row in result.rows]
    assert ordered[0] == "OutValue"
    assert set(ordered[:3]) == {"OutValue", "SetValue", "i"}
