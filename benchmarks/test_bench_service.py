"""Campaign service scheduling overhead.

Pushes four concurrent small campaigns through an in-process service
daemon and compares the wall-clock against the best hand-scheduled
baseline (the same four campaigns run back-to-back, each given the
whole worker budget).  The daemon's admission control, fair-share
splitting, forking, heartbeats and checkpoint plumbing must cost at
most 30% over that baseline; queue and fault counters are recorded to
``BENCH_service.json``.
"""

from __future__ import annotations

import json
import os
import threading
import time

from conftest import run_once

from repro.experiments.context import SCALES
from repro.fi.campaign import PermeabilityCampaign, _target_label
from repro.fi.executor import CampaignConfig, golden_cache
from repro.service import ServiceClient, ServiceDaemon
from repro.service.scheduler import SchedulerConfig
from repro.targets import get_target

N_JOBS = 4


def _warm_golden_cache(scale_name):
    """Same warm-up the daemon's prewarm performs, done up front so
    neither contender pays golden-run cost inside the timed window."""
    target = get_target("arrestment")
    stride = (
        SCALES[scale_name].test_case_stride
        if scale_name in SCALES
        else 1
    )
    factory = target.simulator_factory
    label = _target_label(factory)
    for case in list(target.standard_test_cases())[::stride]:
        golden_cache.get(label, factory, case)


def test_bench_service_scheduling(benchmark, ctx, tmp_path):
    budget = min(N_JOBS, os.cpu_count() or 1)
    _warm_golden_cache(ctx.scale.name)

    # -- hand-scheduled baseline: back-to-back, full width each ------
    started = time.perf_counter()
    for i in range(N_JOBS):
        PermeabilityCampaign(
            ctx.simulator_factory,
            ctx.test_cases,
            runs_per_input=ctx.scale.runs_per_input,
            seed=2002 + i,
            config=CampaignConfig(jobs=budget),
        ).run()
    baseline_s = time.perf_counter() - started

    # -- the same four campaigns, concurrently, through the daemon ---
    spool = str(tmp_path / "spool")
    daemon = ServiceDaemon(
        spool,
        SchedulerConfig(budget=budget, max_jobs=N_JOBS),
        status_interval_s=0.1,
        echo=lambda *_: None,
    )
    thread = threading.Thread(target=daemon.serve, daemon=True)
    thread.start()
    client = ServiceClient(spool)
    deadline = time.time() + 30
    while not client.alive() and time.time() < deadline:
        time.sleep(0.05)
    assert client.alive(), "daemon did not come up"

    def through_service():
        for i in range(N_JOBS):
            client.submit({
                "experiment": "table1",
                "scale": ctx.scale.name,
                "seed": 2002 + i,
                "jobs": budget,
                "run_name": f"svc{i}",
            })
        while True:
            payload = client.status()
            depth = payload["queue"]
            if depth["queued"] == 0 and depth["running"] == 0:
                return payload
            time.sleep(0.1)

    started = time.perf_counter()
    payload = run_once(benchmark, through_service)
    service_s = time.perf_counter() - started
    client.drain()
    thread.join(timeout=60)
    assert not thread.is_alive()

    states = sorted(job["state"] for job in payload["jobs"])
    counters = payload["counters"]
    ratio = service_s / baseline_s if baseline_s > 0 else 0.0
    cores = os.cpu_count() or 1

    print()
    print(
        f"service bench ({N_JOBS} campaigns, budget {budget}, "
        f"scale {ctx.scale.name})"
    )
    print(f"  hand-scheduled: {baseline_s:.2f} s")
    print(f"  via daemon    : {service_s:.2f} s ({ratio:.2f}x)")
    print(f"  queue         : {payload['queue']}")
    print(f"  counters      : {counters}")

    # the core contract holds on any machine: everything completes,
    # nothing was silently retried or degraded
    assert states == ["done"] * N_JOBS
    assert payload["queue"]["done"] == N_JOBS
    assert counters.get("jobs_failed", 0) == 0
    for job in payload["jobs"]:
        output = os.path.join(
            spool, "jobs", str(job["id"]), "output.txt"
        )
        assert os.path.getsize(output) > 0

    with open("BENCH_service.json", "w") as handle:
        json.dump(
            {
                "jobs": N_JOBS,
                "budget": budget,
                "scale": ctx.scale.name,
                "baseline_s": round(baseline_s, 3),
                "service_s": round(service_s, 3),
                "overhead_ratio": round(ratio, 3),
                "queue": payload["queue"],
                "counters": counters,
            },
            handle,
            indent=2,
        )

    # the overhead bound needs a baseline long enough that the ratio
    # measures scheduling cost rather than fork startup and jitter
    if baseline_s >= 5.0 and cores >= 2:
        assert ratio <= 1.3, (
            f"service run took {ratio:.2f}x the hand-scheduled "
            f"baseline (budget {budget}, {cores} cores)"
        )
    else:
        print(
            f"  (overhead bound not asserted: {cores} core(s), "
            f"baseline {baseline_s:.2f} s)"
        )
