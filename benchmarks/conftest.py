"""Shared fixtures for the benchmark harness.

The benchmarks double as the reproduction harness: each one
regenerates a table or figure of the paper and *asserts the paper's
qualitative claims* (who wins, by roughly what factor, where the
contrasts lie) while pytest-benchmark records the cost of the
regeneration.

Scale is selected by ``REPRO_SCALE`` (test / bench / full; default
bench — a few minutes total).  The expensive fault-injection campaigns
are cached on the session context, so each campaign runs exactly once
per session regardless of how many benches consume it.
"""

from __future__ import annotations

import pytest

from repro.experiments.context import ExperimentContext, default_scale


@pytest.fixture(scope="session")
def ctx():
    return ExperimentContext(scale=default_scale(), seed=2002)


@pytest.fixture(scope="session")
def warm_ctx(ctx):
    """Context with every campaign already run (so that analytic
    benches measure analysis cost, not campaign cost)."""
    ctx.permeability_estimate()
    ctx.detection_result()
    ctx.memory_result()
    return ctx


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark *fn* with a single round (campaigns are expensive)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


def strict(ctx) -> bool:
    """Whether quantitative shape bounds apply.

    At the smoke-test scale (REPRO_SCALE=test) campaigns use a handful
    of runs per target, so proportions quantize coarsely; only the
    architectural zero/high contrasts are asserted there.  The bench
    and full scales assert the paper's quantitative shape.
    """
    return ctx.scale.name != "test"
