"""Bench: regenerate Table 1 — per-pair error permeability estimates.

Workload: fault injection at every module input (``runs_per_input``
single-bit-flip runs each, spread over the test-case envelope), golden
run comparison, direct-error accounting.

Shape assertions against the paper's Table 1:

* the architecturally-zero pairs (debounced capture path, masked
  lookups, CLOCK's independent ms counter) measure exactly zero;
* the near-unity pairs (CLOCK self-loop, PACNT->pulscnt, CALC's i
  self-loop, the regulator pass-throughs) measure high;
* the moderate pairs sit strictly between.
"""

from conftest import run_once, strict

from repro.experiments.table1 import run_table1


def test_bench_table1(benchmark, ctx):
    result = run_once(benchmark, run_table1, ctx)
    print()
    print(result.render())
    measured = result.measured()

    # exact zeros (architectural masking, not sampling luck)
    for key in (
        ("CLOCK", "ms_slot_nbr", "mscnt"),
        ("DIST_S", "TIC1", "pulscnt"),
        ("DIST_S", "TIC1", "slow_speed"),
        ("DIST_S", "TIC1", "stopped"),
        ("DIST_S", "TCNT", "pulscnt"),
        ("DIST_S", "TCNT", "slow_speed"),
        ("DIST_S", "TCNT", "stopped"),
        ("CALC", "mscnt", "i"),
        ("CALC", "pulscnt", "SetValue"),
        ("CALC", "slow_speed", "i"),
        ("CALC", "stopped", "SetValue"),
    ):
        assert measured[key] == 0.0, key

    # near-unity pairs
    for key in (
        ("CLOCK", "ms_slot_nbr", "ms_slot_nbr"),
        ("DIST_S", "PACNT", "pulscnt"),
        ("CALC", "i", "i"),
        ("CALC", "slow_speed", "SetValue"),
        ("V_REG", "SetValue", "OutValue"),
        ("V_REG", "IsValue", "OutValue"),
        ("PRES_A", "OutValue", "TOC2"),
    ):
        assert measured[key] >= 0.7, key

    # moderate pairs: nonzero but clearly below the pass-throughs
    assert 0.0 < measured[("CALC", "pulscnt", "i")] < 0.9
    assert 0.0 < measured[("CALC", "mscnt", "SetValue")] < 0.9

    if strict(ctx):
        # weakly-permeable pairs (the paper: 0.056, 0.000, 0.010);
        # these proportions need the bench-scale sample sizes
        assert measured[("CALC", "i", "SetValue")] <= 0.45
        assert measured[("PRES_S", "ADC", "IsValue")] <= 0.30
        assert measured[("DIST_S", "PACNT", "slow_speed")] <= 0.60
