"""Extension bench: containment wrappers (ERMs) at the EA locations.

Not a paper table — the paper measures detection only — but the
framework's placement rules are stated for "EDM's and ERM's", and this
bench closes the loop: the extended-framework EA locations are
upgraded to recovery wrappers and the failure rate under the harsher
error model is compared against detection-only runs.

The result is two-sided, and deliberately reported as such: hold-last-
good containment *prevents* failures caused by corrupted signal stores,
but it also *introduces* failures of its own — when a periodic
corruption sits in producer state (not the store), the produced values
can legitimately violate the rate assertion, and substituting a stale
"last good" value then fights the producer every cycle.  Containment
without diagnosis is not uniformly safe; that is exactly the kind of
trade-off the paper's rules R2/R3 ask the designer to weigh.

Assertions:

* containment never acts where detection does not reach;
* failures are actually prevented at a meaningful scale;
* every introduced failure coincides with containment activity (the
  wrapper is the cause, not an accounting artifact).
"""

from conftest import run_once, strict

from repro.edm.catalogue import EA_BY_NAME
from repro.edm.recovery import RecoveryPolicy
from repro.fi.campaign import RecoveryCampaign
from repro.fi.memory import MemoryMap


def test_bench_recovery(benchmark, ctx):
    probe = ctx.simulator_factory(ctx.test_cases[0])
    locations = MemoryMap(probe.system).locations()[
        :: max(1, ctx.scale.location_stride)
    ]
    cases = ctx.test_cases[:: ctx.scale.memory_case_stride]

    def run_campaign():
        return RecoveryCampaign(
            ctx.simulator_factory,
            cases,
            list(EA_BY_NAME.values()),
            locations=locations,
            seed=ctx.seed,
            policies={
                "EA1": RecoveryPolicy.CLAMP_TO_SPEC,
                "EA2": RecoveryPolicy.CLAMP_TO_SPEC,
                "EA7": RecoveryPolicy.CLAMP_TO_SPEC,
            },
        ).run()

    result = run_once(benchmark, run_campaign)

    base = result.failure_rate(False)
    contained = result.failure_rate(True)
    prevented = result.failures_prevented()
    introduced = result.failures_introduced()
    print()
    print(
        f"recovery bench: {len(result.outcomes)} runs, "
        f"failure rate {base:.3f} -> {contained:.3f} "
        f"({prevented} prevented, {introduced} introduced)"
    )

    # containment only where detection reaches
    for outcome in result.outcomes:
        if not outcome.detected:
            assert outcome.recovery_actions == 0

    # every introduced failure coincides with containment activity
    for outcome in result.outcomes:
        if outcome.recovered_failed and not outcome.baseline_failed:
            assert outcome.recovery_actions > 0

    if strict(ctx):
        assert len(result.outcomes) >= 50
        # The honest headline: on this target, undiagnosed
        # hold-last-good containment at the EA locations yields little
        # or no net benefit (most baseline failures originate in
        # unguarded locations — booleans, the output register, the
        # regulator's stack), while fighting corrupted producers
        # introduces a small number of new failures.  Assert that this
        # induced harm stays a small fraction of the runs in which the
        # wrappers intervened — and record the rest in the printout.
        intervened = sum(
            1 for o in result.outcomes if o.recovery_actions > 0
        )
        assert intervened >= 10
        assert introduced <= max(1, intervened // 4)
