"""Ablation benches for DESIGN.md's design decisions.

* **D2 — direct-errors-only accounting** (Section 5.3: "We did not
  count errors originating from errors that propagated via one of the
  other outputs and then came back"): re-estimate the permeabilities
  with *every* first difference counted and show the feedback pairs
  inflate, while pairs of feedback-free modules are unchanged.

* **D4 — error-model choice** is the Figure-3 bench itself (the
  paper's own contribution C2); here we add the complementary check
  that under the *input* error model the two EA sets are equivalent
  while under the *memory* model they are not — the pivot of the
  whole paper.
"""

from conftest import run_once

from repro.edm.catalogue import EH_SET, PA_SET, assertion_names_for_signals
from repro.fi.campaign import PermeabilityCampaign
from repro.target.simulation import ArrestmentSimulator


def test_bench_ablation_direct_only(benchmark, ctx):
    """D2: all-differences accounting vs. the paper's direct-only."""
    direct = ctx.permeability_estimate()

    def run_all_differences():
        campaign = PermeabilityCampaign(
            ctx.simulator_factory,
            ctx.test_cases,
            runs_per_input=ctx.scale.runs_per_input,
            seed=ctx.seed,
            direct_only=False,
        )
        return campaign.run()

    loose = run_once(benchmark, run_all_differences)

    print()
    print("D2 ablation: direct-only vs all-differences accounting")
    inflated = []
    for key in sorted(direct.values):
        d, a = direct.values[key], loose.values[key]
        marker = "  <-- inflated" if a > d else ""
        if a != d or d > 0:
            print(f"  {key}: direct={d:.3f} all={a:.3f}{marker}")
        if a > d:
            inflated.append(key)

    # counting everything can only add detections
    for key in direct.values:
        assert loose.values[key] >= direct.values[key]

    # Inflation needs an indirect return path to another input of the
    # same module — through the CALC/CLOCK software loops or all the
    # way around through the environment (the paper's Section 6.2
    # observes exactly this: PACNT errors propagating "out beyond the
    # system barrier" and back in via ADC).  Single-input modules have
    # no other input for the error to come back through, so their
    # pairs can never be inflated.
    single_input = {"CLOCK", "PRES_S", "PRES_A"}
    for key in inflated:
        assert key[0] not in single_input, key


def test_bench_ablation_error_model_pivot(benchmark, ctx):
    """D4: the same EA sets, two error models, opposite verdicts."""

    def collect():
        detection = ctx.detection_result()
        memory = ctx.memory_result()
        return detection, memory

    detection, memory = run_once(benchmark, collect)
    eh = assertion_names_for_signals(EH_SET)
    pa = assertion_names_for_signals(PA_SET)

    input_eh = detection.combined(eh)["total"]
    input_pa = detection.combined(pa)["total"]
    memory_eh = memory.coverage(eh, None).c_tot
    memory_pa = memory.coverage(pa, None).c_tot

    print()
    print("D4 ablation: EA-set equivalence is an error-model artefact")
    print(f"  input model : EH={input_eh:.3f}  PA={input_pa:.3f}")
    print(f"  memory model: EH={memory_eh:.3f}  PA={memory_pa:.3f}")

    # input model: sets equivalent (the paper's C1)
    assert input_eh == input_pa
    # memory model: PA strictly worse (the paper's C2)
    assert memory_pa < memory_eh
