"""Bench: regenerate Table 4 — coverage for system-input errors.

Workload: the "nice" error model — one transient bit flip in one
sensor register per run, uniformly over signal, bit and time, with the
full EA bank monitoring passively.

Shape assertions against the paper's Table 4:

* only PACNT errors are detected (TIC1/TCNT errors never propagate,
  ADC errors are masked by PRES_S) — and PACNT coverage is high;
* EA4 (pulscnt) is the dominant detector: every error any EH-set EA
  detects, EA4 also detects ("All errors detected by EA1, EA2 or EA7
  were also detected by EA4");
* consequently the EH-set total equals the PA-set total — the paper's
  headline claim C1.
"""

from conftest import run_once

from repro.experiments.table4 import run_table4


def test_bench_table4(benchmark, ctx):
    result = run_once(benchmark, run_table4, ctx)
    print()
    print(result.render())

    # the headline: identical coverage for both sets, on every target
    assert result.eh_equals_pa()

    pacnt = result.row("PACNT")
    assert pacnt.total >= 0.45  # the paper: 0.975
    assert pacnt.per_ea["EA4"] == max(pacnt.per_ea.values())
    # EA4 alone achieves the total: it dominates the set
    assert pacnt.per_ea["EA4"] == pacnt.total

    for quiet in ("TIC1", "TCNT"):
        row = result.row(quiet)
        assert row.total == 0.0
        assert all(v == 0.0 for v in row.per_ea.values())

    # ADC errors are masked by the sensor-validation filter
    assert result.row("ADC").total <= 0.10

    all_row = result.row("All")
    assert all_row.n_err == sum(
        result.row(t).n_err for t in ("PACNT", "TIC1", "TCNT", "ADC")
    )
    assert 0.0 < all_row.total < pacnt.total
