"""Module-level profiling and placement guidance (rules R1 and R2).

The signal-level measures drive the paper's EA placement, but the
framework's module-level measures carry their own guidance:

* **R1**: "The higher the error exposure values of a module, the
  higher the probability that it will be subjected to errors
  propagating through the system ... it may be more cost effective to
  place EDM's in those modules."
* **R2**: "The higher the error permeability values of a module the
  lower its ability to contain errors ... it may be more cost
  effective to place ERM's in those modules."

:class:`ModuleProfile` computes both measures (weighted and
non-weighted) for every module, ranks them, and derives the R1/R2
recommendations — including the trade-off case the paper points out
(high permeability with low exposure, or vice versa).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.tables import render_table
from repro.core.exposure import (
    module_exposure,
    non_weighted_module_exposure,
)
from repro.core.permeability import PermeabilityMatrix
from repro.errors import AnalysisError

__all__ = ["ModuleProfileEntry", "ModuleProfile"]


@dataclass(frozen=True)
class ModuleProfileEntry:
    """One module's propagation measures."""

    module: str
    relative_permeability: float
    non_weighted_permeability: float
    exposure: float
    non_weighted_exposure: float
    n_inputs: int
    n_outputs: int


class ModuleProfile:
    """Module-level view of a system's propagation characteristics."""

    def __init__(self, matrix: PermeabilityMatrix):
        self.matrix = matrix
        self.system = matrix.system
        self._entries: Dict[str, ModuleProfileEntry] = {}
        for module in self.system.modules():
            self._entries[module.name] = ModuleProfileEntry(
                module=module.name,
                relative_permeability=matrix.relative_permeability(
                    module.name
                ),
                non_weighted_permeability=(
                    matrix.non_weighted_relative_permeability(module.name)
                ),
                exposure=module_exposure(matrix, module.name),
                non_weighted_exposure=non_weighted_module_exposure(
                    matrix, module.name
                ),
                n_inputs=len(module.inputs),
                n_outputs=len(module.outputs),
            )

    def entry(self, module: str) -> ModuleProfileEntry:
        entry = self._entries.get(module)
        if entry is None:
            raise AnalysisError(f"no profile entry for module {module!r}")
        return entry

    def entries(self) -> List[ModuleProfileEntry]:
        return list(self._entries.values())

    # ------------------------------------------------------------------
    # Rankings (R1 / R2).
    # ------------------------------------------------------------------
    def by_exposure(self) -> List[ModuleProfileEntry]:
        """Modules ordered for EDM placement priority (rule R1)."""
        return sorted(
            self._entries.values(),
            key=lambda e: (-e.exposure, e.module),
        )

    def by_permeability(self) -> List[ModuleProfileEntry]:
        """Modules ordered for ERM placement priority (rule R2)."""
        return sorted(
            self._entries.values(),
            key=lambda e: (-e.relative_permeability, e.module),
        )

    def edm_candidates(self, threshold: float = 0.0) -> List[str]:
        """Modules whose exposure strictly exceeds *threshold* (R1)."""
        return [
            e.module for e in self.by_exposure() if e.exposure > threshold
        ]

    def erm_candidates(self, threshold: float = 0.5) -> List[str]:
        """Modules whose relative permeability exceeds *threshold* (R2)."""
        return [
            e.module
            for e in self.by_permeability()
            if e.relative_permeability > threshold
        ]

    def trade_off_modules(
        self,
        permeability_threshold: float = 0.5,
        exposure_threshold: float = 0.25,
    ) -> List[str]:
        """Modules with high permeability but low exposure.

        The paper's trade-off example: "one might decide to equip a
        module with high permeability with EDM's and ERM's even though
        its exposure is relatively low."
        """
        return [
            e.module
            for e in self.entries()
            if e.relative_permeability > permeability_threshold
            and e.exposure < exposure_threshold
        ]

    def render(self) -> str:
        table = render_table(
            headers=[
                "Module", "P^M", "P^M (raw)", "X^M", "X^M (raw)",
                "in", "out",
            ],
            rows=[
                (
                    e.module,
                    e.relative_permeability,
                    e.non_weighted_permeability,
                    e.exposure,
                    e.non_weighted_exposure,
                    e.n_inputs,
                    e.n_outputs,
                )
                for e in self.by_exposure()
            ],
            title="Module profile (P^M: permeability, X^M: exposure)",
        )
        lines = [
            table,
            "",
            f"R1 (EDM) priority: "
            f"{[e.module for e in self.by_exposure()]}",
            f"R2 (ERM) priority: "
            f"{[e.module for e in self.by_permeability()]}",
        ]
        trade_offs = self.trade_off_modules()
        if trade_offs:
            lines.append(
                f"high-permeability / low-exposure trade-offs: {trade_offs}"
            )
        return "\n".join(lines)
