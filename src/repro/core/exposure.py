"""Error exposure measures (paper Section 5.2).

* **Signal error exposure** ``X_s^S`` — for a signal *S* driven by
  output *k* of module *M*, the sum of the error permeabilities of all
  input/output pairs of *M* that land on output *k*:

  .. math::  X_s^S = \\sum_{i=1}^{m} P^M_{i,k}

  This is the quantity tabulated in the paper's Table 2 (e.g.
  ``X_s(i) = P^{CALC}_{1,1} + P^{CALC}_{2,1} + ... = 1.507``).  It is
  an abstract, *relative* measure — not a probability — used to rank
  signals by how likely they are to be subjected to propagating
  errors.  System input signals are driven by the environment, not by
  a module, so no exposure value is assigned to them (the dash-dotted
  lines of Fig. 5); :func:`signal_exposure` returns ``None`` for them.

* **Module error exposure** ``X^M`` and its non-weighted variant
  ``X̂^M`` — the exposure of a module aggregates the exposures of the
  signals wired to its inputs.  The DSN 2002 paper uses only the
  signal-level measure numerically; the module-level definition
  follows the companion framework paper (Hiller et al., DSN 2001):
  the non-weighted module exposure is the sum of the exposures of the
  module's input signals (system inputs contributing zero), and the
  weighted variant normalizes by the number of inputs so that modules
  with many inputs are not trivially "more exposed".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import AnalysisError
from repro.core.permeability import PermeabilityMatrix
from repro.model.system import SystemModel

__all__ = [
    "signal_exposure",
    "all_signal_exposures",
    "module_exposure",
    "non_weighted_module_exposure",
    "exposure_ranking",
]


def signal_exposure(
    matrix: PermeabilityMatrix, signal: str
) -> Optional[float]:
    """Signal error exposure ``X_s^S`` of *signal*, or ``None``.

    ``None`` is returned for system input signals, which have no
    producing module and therefore no exposure value assigned (paper
    Fig. 5 legend: "No exposure value assigned").
    """
    system = matrix.system
    spec = system.signal(signal)
    if spec.is_system_input:
        return None
    pairs = system.pairs_into_signal(signal)
    if not pairs:
        raise AnalysisError(
            f"signal {signal!r} is not a system input but has no "
            f"producing input/output pairs"
        )
    return sum(matrix[pair] for pair in pairs)


def all_signal_exposures(
    matrix: PermeabilityMatrix,
) -> Dict[str, Optional[float]]:
    """Exposure of every signal in the system (``None`` for system inputs)."""
    return {
        name: signal_exposure(matrix, name)
        for name in matrix.system.signal_names()
    }


def non_weighted_module_exposure(
    matrix: PermeabilityMatrix, module: str
) -> float:
    """``X̂^M``: sum of the exposures of the module's input signals.

    Input signals that are system inputs contribute zero (errors
    arriving there are environment errors, not *propagating* errors).
    """
    system = matrix.system
    mod = system.module(module)
    total = 0.0
    for port in mod.inputs:
        signal = system.signal_of_input(module, port)
        exposure = signal_exposure(matrix, signal)
        if exposure is not None:
            total += exposure
    return total


def module_exposure(matrix: PermeabilityMatrix, module: str) -> float:
    """``X^M``: non-weighted exposure normalized by the input count."""
    mod = matrix.system.module(module)
    if not mod.inputs:
        return 0.0
    return non_weighted_module_exposure(matrix, module) / len(mod.inputs)


def exposure_ranking(
    matrix: PermeabilityMatrix,
) -> List[Tuple[str, float]]:
    """Signals ordered by decreasing exposure (rule R1).

    System inputs (no exposure value) are omitted; ties are broken
    alphabetically for reproducibility.
    """
    ranking = [
        (name, exposure)
        for name, exposure in all_signal_exposures(matrix).items()
        if exposure is not None
    ]
    ranking.sort(key=lambda item: (-item[1], item[0]))
    return ranking
