"""Error impact (paper Section 8, Eq. 2).

Errors in a source signal can propagate along many different paths to
a destination system output.  With ``w_i`` the product of the
permeabilities along path *i* (Fig. 4), the impact of errors in
``S_s`` on output ``S_o`` is

.. math::

    \\Omega(S_s \\rightarrow S_o) = 1 - \\prod_i (1 - w_i)

If full independence could be assumed this would be the conditional
probability of an error in ``S_s`` propagating all the way to ``S_o``;
since independence can rarely be assumed, the paper treats it as a
*relative* measure for ranking signals.  The higher the impact, the
higher the risk of an error in the source signal generating an error
in the output of the system — the basis for placement rule R3.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import AnalysisError
from repro.core.permeability import PermeabilityMatrix
from repro.core.trees import build_impact_tree
from repro.model.graph import PropagationPath, SignalGraph

__all__ = [
    "path_weights",
    "impact",
    "impact_on_all_outputs",
    "all_impacts",
    "impact_ranking",
]


def path_weights(
    matrix: PermeabilityMatrix,
    graph: SignalGraph,
    source: str,
    output: str,
) -> List[Tuple[PropagationPath, float]]:
    """All propagation paths from *source* to *output* with their weights.

    The paths are exactly the root-to-leaf paths of the impact tree of
    *source* whose leaf carries *output* (Fig. 4); the weight of a path
    is the product of the permeabilities along it.
    """
    spec = graph.system.signal(output)
    if not spec.is_system_output:
        raise AnalysisError(
            f"impact destination must be a system output signal, "
            f"{output!r} is {spec.role.value}"
        )
    tree = build_impact_tree(graph, source)
    return [
        (path, path.weight(matrix.__getitem__))
        for path in tree.paths_to(output)
    ]


def impact(
    matrix: PermeabilityMatrix,
    graph: SignalGraph,
    source: str,
    output: str,
) -> float:
    """Impact of errors in *source* on system output *output* (Eq. 2)."""
    product = 1.0
    for _, weight in path_weights(matrix, graph, source, output):
        product *= 1.0 - weight
    return 1.0 - product


def impact_on_all_outputs(
    matrix: PermeabilityMatrix, graph: SignalGraph, source: str
) -> Dict[str, float]:
    """Impact of *source* on each system output signal."""
    return {
        output: impact(matrix, graph, source, output)
        for output in graph.system.system_outputs()
    }


def all_impacts(
    matrix: PermeabilityMatrix,
    graph: SignalGraph,
    output: Optional[str] = None,
) -> Dict[str, Optional[float]]:
    """Impact of every signal on *output* (paper Table 5).

    With *output* omitted the system must have exactly one output
    signal.  System output signals themselves map to ``None`` — no
    impact value is assigned to them ("one could say that the impact
    is 1.0 in this case").
    """
    system = graph.system
    if output is None:
        outputs = system.system_outputs()
        if len(outputs) != 1:
            raise AnalysisError(
                f"system has {len(outputs)} output signals; specify which "
                f"one to compute impact on"
            )
        output = outputs[0]
    result: Dict[str, Optional[float]] = {}
    for name in system.signal_names():
        if system.signal(name).is_system_output:
            result[name] = None
        else:
            result[name] = impact(matrix, graph, name, output)
    return result


def impact_ranking(
    matrix: PermeabilityMatrix,
    graph: SignalGraph,
    output: Optional[str] = None,
) -> List[Tuple[str, float]]:
    """Signals ordered by decreasing impact on *output* (rule R3)."""
    ranking = [
        (name, value)
        for name, value in all_impacts(matrix, graph, output).items()
        if value is not None
    ]
    ranking.sort(key=lambda item: (-item[1], item[0]))
    return ranking
