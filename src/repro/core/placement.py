"""EDM/ERM placement engines (paper Sections 5.1, 5.3, 9 and 10).

Three selection strategies over a system's signals are implemented:

* :func:`eh_placement` — the experience/heuristic baseline
  (EH-approach, Section 5.1): a programmatic rendering of the paper's
  four-step process (identify I/O paths, identify internally generated
  signals with direct influence, FMECA-style criticality screening,
  decide).  On the paper's target it selects every guardable
  internally-generated signal: {SetValue, IsValue, i, pulscnt,
  ms_slot_nbr, mscnt, OutValue}.

* :func:`pa_placement` — the propagation-analysis approach
  (PA-approach, Section 5.3): selection driven by signal error
  exposure and the individual permeability values, reproducing the
  decision logic of Table 2 including its documented exceptions
  (``ms_slot_nbr`` rejected despite maximal exposure because its
  errors cannot permeate to any other signal; the system output
  register rejected because errors there most likely come from the
  already-guarded upstream signal; booleans rejected because the EA
  catalogue is not geared at boolean values).

* :func:`extended_placement` — the extended framework (Sections 9-10):
  the PA selection augmented by effect analysis.  Signals with high
  impact (or criticality, when output criticalities are provided) are
  added even when their exposure is low; under a memory error model,
  signals with near-total self-permeability are added because errors
  injected directly into their backing store persist (the
  ``ms_slot_nbr`` case of Section 10).

The module also provides :func:`check_policy` for the threshold-based
process sketched in Section 9 (maximum permeability / exposure /
impact limits that a project may impose).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import PlacementError
from repro.core.criticality import OutputCriticalities, all_criticalities
from repro.core.exposure import all_signal_exposures
from repro.core.impact import all_impacts
from repro.core.permeability import PermeabilityMatrix
from repro.model.graph import SignalGraph
from repro.model.signal import SignalSpec, SignalType
from repro.model.system import SystemModel

__all__ = [
    "PlacementDecision",
    "PlacementResult",
    "PolicyLimits",
    "PolicyViolation",
    "default_guardable",
    "eh_placement",
    "pa_placement",
    "extended_placement",
    "check_policy",
]


def default_guardable(spec: SignalSpec) -> bool:
    """Whether the paper's EA catalogue can usefully guard a signal.

    The generic parameterized executable assertions used in the paper
    check ranges and rates of change; "it is difficult to detect
    errors in a boolean value" (Section 10), so boolean signals are
    not considered guardable.
    """
    return spec.sig_type is not SignalType.BOOL


@dataclass(frozen=True)
class PlacementDecision:
    """The outcome for one signal: selected or not, and why."""

    signal: str
    selected: bool
    motivation: str
    exposure: Optional[float] = None
    impact: Optional[float] = None
    criticality: Optional[float] = None


@dataclass
class PlacementResult:
    """A complete placement: one decision per eligible signal."""

    approach: str
    decisions: List[PlacementDecision] = field(default_factory=list)

    @property
    def selected(self) -> List[str]:
        return [d.signal for d in self.decisions if d.selected]

    @property
    def rejected(self) -> List[str]:
        return [d.signal for d in self.decisions if not d.selected]

    def decision_for(self, signal: str) -> PlacementDecision:
        for decision in self.decisions:
            if decision.signal == signal:
                return decision
        raise PlacementError(
            f"no placement decision recorded for signal {signal!r}"
        )

    def is_subset_of(self, other: "PlacementResult") -> bool:
        return set(self.selected) <= set(other.selected)

    def render(self) -> str:
        lines = [f"Placement ({self.approach}):"]
        width = max((len(d.signal) for d in self.decisions), default=8)
        for decision in self.decisions:
            mark = "yes" if decision.selected else "no "
            extras = []
            if decision.exposure is not None:
                extras.append(f"X_s={decision.exposure:.3f}")
            if decision.impact is not None:
                extras.append(f"impact={decision.impact:.3f}")
            if decision.criticality is not None:
                extras.append(f"C_s={decision.criticality:.3f}")
            extra = f" [{', '.join(extras)}]" if extras else ""
            lines.append(
                f"  {decision.signal:<{width}}  {mark}  "
                f"{decision.motivation}{extra}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# EH-approach (Section 5.1).
# ----------------------------------------------------------------------
def eh_placement(
    system: SystemModel,
    guardable: Callable[[SignalSpec], bool] = default_guardable,
) -> PlacementResult:
    """Experience/heuristic-based placement (the paper's baseline).

    Programmatic rendering of the four-step EH process:

    1. identify system input and output signals and the paths between
       them (here: graph reachability);
    2. identify internally generated signals with a direct influence
       on intermediate and output signals (internal signals with at
       least one consumer);
    3. determine the most critical signals, e.g. by FMECA — the
       heuristic proxy used here is "every internally generated signal
       the EA catalogue can guard is considered critical enough",
       which is exactly the generous selection the paper's historical
       EH experiments made;
    4. decide locations: select all of step 3's signals.
    """
    graph = SignalGraph(system)
    outputs = set(system.system_outputs())
    reaches_output = {
        name
        for name in system.signal_names()
        if name in outputs or graph.reachable_from(name) & outputs
    }
    result = PlacementResult(approach="EH")
    for spec in system.signals():
        if spec.is_system_input:
            result.decisions.append(
                PlacementDecision(
                    spec.name,
                    False,
                    "System input signal (errors enter here; guarded "
                    "downstream)",
                )
            )
            continue
        if spec.is_system_output:
            result.decisions.append(
                PlacementDecision(
                    spec.name,
                    False,
                    "Hardware register beyond the software barrier",
                )
            )
            continue
        if not system.consumers_of(spec.name):
            result.decisions.append(
                PlacementDecision(
                    spec.name, False, "No direct influence on other signals"
                )
            )
            continue
        if not guardable(spec):
            result.decisions.append(
                PlacementDecision(
                    spec.name,
                    False,
                    "Selected EA's not geared at boolean values",
                )
            )
            continue
        if spec.name not in reaches_output:
            result.decisions.append(
                PlacementDecision(
                    spec.name, False, "No path to any system output"
                )
            )
            continue
        result.decisions.append(
            PlacementDecision(
                spec.name,
                True,
                "Internally generated signal with direct influence "
                "(EH steps 2-4)",
            )
        )
    return result


# ----------------------------------------------------------------------
# PA-approach (Section 5.3, Table 2).
# ----------------------------------------------------------------------
def _can_permeate_onward(
    matrix: PermeabilityMatrix, graph: SignalGraph, signal: str
) -> Tuple[bool, List[str]]:
    """Whether errors in *signal* can reach any other signal.

    Returns ``(can, blocked)`` where *blocked* lists the non-self
    destination signals whose permeability from *signal* is zero (used
    for the "Zero error permeability to mscnt" style motivations).
    """
    blocked: List[str] = []
    can = False
    for edge in graph.out_edges(signal):
        if edge.out_signal == signal:
            continue
        if matrix[edge] > 0.0:
            can = True
        else:
            blocked.append(edge.out_signal)
    return can, blocked


def pa_placement(
    matrix: PermeabilityMatrix,
    graph: SignalGraph,
    exposure_threshold: float = 0.5,
    guardable: Callable[[SignalSpec], bool] = default_guardable,
) -> PlacementResult:
    """Propagation-analysis placement (PA-approach, Table 2).

    Signals are considered in order of decreasing exposure; a signal is
    selected when its exposure reaches *exposure_threshold* unless one
    of the documented exceptions applies:

    * its errors cannot permeate onward to any other signal (the
      ``ms_slot_nbr`` case);
    * it is a system output whose producing module reads only signals
      that are already selected (the ``TOC2`` case: "Errors here most
      likely come from OutValue");
    * the EA catalogue cannot guard it (booleans).
    """
    if not 0.0 < exposure_threshold <= 2.0 * len(matrix):
        raise PlacementError(
            f"exposure_threshold must be positive, got {exposure_threshold}"
        )
    system = graph.system
    exposures = all_signal_exposures(matrix)
    ordered = sorted(
        (name for name in system.signal_names() if exposures[name] is not None),
        key=lambda name: (-exposures[name], name),
    )
    result = PlacementResult(approach="PA")
    selected: List[str] = []
    for name in ordered:
        spec = system.signal(name)
        exposure = exposures[name]
        if exposure == 0.0:
            result.decisions.append(
                PlacementDecision(
                    name, False, "Zero error exposure", exposure=exposure
                )
            )
            continue
        if exposure < exposure_threshold:
            motivation = "Low error exposure"
            if not guardable(spec):
                motivation += ", selected EA's not geared at boolean values"
            result.decisions.append(
                PlacementDecision(name, False, motivation, exposure=exposure)
            )
            continue
        can_onward, blocked = _can_permeate_onward(matrix, graph, name)
        if not can_onward and not spec.is_system_output:
            target = ", ".join(blocked) if blocked else "any other signal"
            result.decisions.append(
                PlacementDecision(
                    name,
                    False,
                    f"Zero error permeability to {target}",
                    exposure=exposure,
                )
            )
            continue
        if spec.is_system_output:
            producer = system.producer_of(name)
            upstream = [
                system.signal_of_input(producer.module, port)
                for port in system.module(producer.module).inputs
            ]
            if upstream and all(sig in selected for sig in upstream):
                result.decisions.append(
                    PlacementDecision(
                        name,
                        False,
                        "Errors here most likely come from "
                        + ", ".join(upstream),
                        exposure=exposure,
                    )
                )
                continue
        if not guardable(spec):
            result.decisions.append(
                PlacementDecision(
                    name,
                    False,
                    "Selected EA's not geared at boolean values",
                    exposure=exposure,
                )
            )
            continue
        selected.append(name)
        result.decisions.append(
            PlacementDecision(
                name, True, "High error exposure", exposure=exposure
            )
        )
    return result


# ----------------------------------------------------------------------
# Extended framework: PA + effect analysis (Sections 9-10).
# ----------------------------------------------------------------------
def _self_permeability(
    matrix: PermeabilityMatrix, graph: SignalGraph, signal: str
) -> float:
    """Largest self-loop permeability of *signal* (0 when no self edge)."""
    best = 0.0
    for edge in graph.out_edges(signal):
        if edge.out_signal == signal:
            best = max(best, matrix[edge])
    return best


def extended_placement(
    matrix: PermeabilityMatrix,
    graph: SignalGraph,
    exposure_threshold: float = 0.5,
    impact_threshold: float = 0.3,
    output: Optional[str] = None,
    criticalities: Optional[OutputCriticalities] = None,
    criticality_threshold: Optional[float] = None,
    memory_error_model: bool = False,
    self_permeability_threshold: float = 0.9,
    guardable: Callable[[SignalSpec], bool] = default_guardable,
) -> PlacementResult:
    """Extended placement: propagation analysis plus effect analysis.

    Starts from :func:`pa_placement` (rules R1/R2) and then applies
    rule R3: signals whose impact on the system output — or, for
    multi-output systems with *criticalities* given, whose total
    criticality — reaches the threshold are selected even when their
    exposure is low ("errors in this signal are relatively rare but
    costly, should they occur").

    With ``memory_error_model=True`` the selection additionally
    accounts for errors introduced directly into signal backing stores
    (Section 7's harsher model): a signal whose self-permeability
    reaches *self_permeability_threshold* keeps an injected error
    alive indefinitely, so it is selected as well (the paper's
    ``ms_slot_nbr`` rationale in Section 10).
    """
    system = graph.system
    base = pa_placement(
        matrix,
        graph,
        exposure_threshold=exposure_threshold,
        guardable=guardable,
    )
    if criticalities is not None:
        effect_values = all_criticalities(matrix, graph, criticalities)
        effect_name = "criticality"
        threshold = (
            criticality_threshold
            if criticality_threshold is not None
            else impact_threshold
        )
    else:
        effect_values = all_impacts(matrix, graph, output)
        effect_name = "impact"
        threshold = impact_threshold
    if threshold <= 0.0:
        raise PlacementError(
            f"{effect_name} threshold must be positive, got {threshold}"
        )

    result = PlacementResult(approach="PA+effect")
    for decision in base.decisions:
        name = decision.signal
        spec = system.signal(name)
        effect = effect_values.get(name)
        if decision.selected:
            result.decisions.append(
                PlacementDecision(
                    name,
                    True,
                    decision.motivation,
                    exposure=decision.exposure,
                    impact=effect if effect_name == "impact" else None,
                    criticality=effect if effect_name == "criticality" else None,
                )
            )
            continue
        if effect is not None and effect >= threshold:
            if guardable(spec):
                result.decisions.append(
                    PlacementDecision(
                        name,
                        True,
                        f"High {effect_name} on system output (rule R3)",
                        exposure=decision.exposure,
                        impact=effect if effect_name == "impact" else None,
                        criticality=(
                            effect if effect_name == "criticality" else None
                        ),
                    )
                )
            else:
                result.decisions.append(
                    PlacementDecision(
                        name,
                        False,
                        f"High {effect_name} but selected EA's not geared "
                        f"at boolean values",
                        exposure=decision.exposure,
                        impact=effect if effect_name == "impact" else None,
                        criticality=(
                            effect if effect_name == "criticality" else None
                        ),
                    )
                )
            continue
        if (
            memory_error_model
            and guardable(spec)
            and _self_permeability(matrix, graph, name)
            >= self_permeability_threshold
        ):
            result.decisions.append(
                PlacementDecision(
                    name,
                    True,
                    "Self-permeability ~1 and memory error model "
                    "introduces errors in the entire memory space",
                    exposure=decision.exposure,
                    impact=effect if effect_name == "impact" else None,
                    criticality=(
                        effect if effect_name == "criticality" else None
                    ),
                )
            )
            continue
        result.decisions.append(
            PlacementDecision(
                name,
                False,
                decision.motivation,
                exposure=decision.exposure,
                impact=effect if effect_name == "impact" else None,
                criticality=effect if effect_name == "criticality" else None,
            )
        )
    return result


# ----------------------------------------------------------------------
# Policy limits (Section 9).
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PolicyLimits:
    """Project-imposed maxima on the analysis measures (Section 9).

    ``None`` disables a limit.  ``max_permeability`` caps every
    individual pair (a minimum level of error containment for all
    modules); ``max_exposure`` caps signal error exposure;
    ``max_impact`` caps signal impact on any system output.
    """

    max_permeability: Optional[float] = None
    max_exposure: Optional[float] = None
    max_impact: Optional[float] = None


@dataclass(frozen=True)
class PolicyViolation:
    """One exceeded limit: where, which measure, value vs. limit."""

    kind: str
    location: str
    value: float
    limit: float

    def describe(self) -> str:
        return (
            f"{self.kind} at {self.location}: {self.value:.3f} exceeds "
            f"limit {self.limit:.3f}"
        )


def check_policy(
    matrix: PermeabilityMatrix,
    graph: SignalGraph,
    limits: PolicyLimits,
    output: Optional[str] = None,
) -> List[PolicyViolation]:
    """Check the system against :class:`PolicyLimits`.

    A module exceeding the permeability limit "indicates that more
    resources have to be allocated to that module to increase its
    error containment capabilities"; exposure and impact violations
    point at signals needing protection (Section 9).
    """
    violations: List[PolicyViolation] = []
    if limits.max_permeability is not None:
        for pair, value in matrix.items():
            if value > limits.max_permeability:
                violations.append(
                    PolicyViolation(
                        "permeability", pair.label, value,
                        limits.max_permeability,
                    )
                )
    if limits.max_exposure is not None:
        for name, exposure in all_signal_exposures(matrix).items():
            if exposure is not None and exposure > limits.max_exposure:
                violations.append(
                    PolicyViolation(
                        "exposure", name, exposure, limits.max_exposure
                    )
                )
    if limits.max_impact is not None:
        for name, value in all_impacts(matrix, graph, output).items():
            if value is not None and value > limits.max_impact:
                violations.append(
                    PolicyViolation("impact", name, value, limits.max_impact)
                )
    return violations
