"""Sensitivity of placement decisions to permeability estimation noise.

The paper is explicit that the analysis measures "do not necessarily
reflect probabilities" and are estimated from finite fault-injection
campaigns — so any placement derived from them inherits estimation
noise.  This module quantifies how robust a placement is: it perturbs
every permeability value independently and re-runs the placement
engine, reporting the per-signal selection frequency.

Signals selected (or rejected) in every perturbed replica are *stable*
decisions; signals that flip are *marginal* and deserve either more
injection runs (tighter estimates) or a conservative manual decision.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.permeability import PermeabilityMatrix
from repro.core.placement import PlacementResult
from repro.errors import AnalysisError
from repro.model.graph import SignalGraph

__all__ = ["SensitivityReport", "placement_sensitivity"]

#: a placement engine closure: matrix, graph -> PlacementResult
PlacementFn = Callable[[PermeabilityMatrix, SignalGraph], PlacementResult]


@dataclass
class SensitivityReport:
    """Selection frequencies over perturbed permeability replicas."""

    epsilon: float
    n_samples: int
    #: signal -> fraction of replicas in which it was selected
    selection_frequency: Dict[str, float]
    #: the unperturbed selection, for reference
    baseline_selected: List[str]

    def stable_selected(self, threshold: float = 1.0) -> List[str]:
        """Signals selected in at least *threshold* of the replicas."""
        return sorted(
            name
            for name, freq in self.selection_frequency.items()
            if freq >= threshold
        )

    def stable_rejected(self, threshold: float = 0.0) -> List[str]:
        """Signals selected in at most *threshold* of the replicas."""
        return sorted(
            name
            for name, freq in self.selection_frequency.items()
            if freq <= threshold
        )

    def marginal(
        self, low: float = 0.05, high: float = 0.95
    ) -> List[str]:
        """Signals whose selection flips across replicas."""
        return sorted(
            name
            for name, freq in self.selection_frequency.items()
            if low < freq < high
        )

    def is_stable(self) -> bool:
        """True when no decision is marginal at the default bounds."""
        return not self.marginal()

    def render(self) -> str:
        lines = [
            f"placement sensitivity (epsilon={self.epsilon}, "
            f"{self.n_samples} replicas):"
        ]
        width = max(
            (len(n) for n in self.selection_frequency), default=8
        )
        for name, freq in sorted(
            self.selection_frequency.items(), key=lambda kv: -kv[1]
        ):
            base = "selected" if name in self.baseline_selected else "rejected"
            marker = ""
            if 0.05 < freq < 0.95:
                marker = "  <-- marginal"
            lines.append(
                f"  {name:<{width}}  {freq:5.1%}  (baseline: {base})"
                f"{marker}"
            )
        return "\n".join(lines)


def placement_sensitivity(
    matrix: PermeabilityMatrix,
    graph: SignalGraph,
    placement_fn: PlacementFn,
    epsilon: float = 0.05,
    n_samples: int = 50,
    seed: int = 2002,
) -> SensitivityReport:
    """Perturb every permeability by U(-epsilon, +epsilon) (clipped to
    [0, 1]) *n_samples* times and tally selection frequencies.

    Values that are exactly 0 or 1 are left unperturbed: in this
    framework they are architectural facts (a debounced path, a
    masked lookup, a direct self-loop), not noisy estimates.
    """
    if epsilon < 0:
        raise AnalysisError(f"epsilon must be >= 0, got {epsilon}")
    if n_samples <= 0:
        raise AnalysisError(f"n_samples must be positive, got {n_samples}")
    rng = random.Random(seed)
    system = graph.system
    baseline = placement_fn(matrix, graph)
    counts: Dict[str, int] = {
        decision.signal: 0 for decision in baseline.decisions
    }
    base_values = matrix.as_dict()
    for _ in range(n_samples):
        perturbed = {}
        for key, value in base_values.items():
            if value in (0.0, 1.0):
                perturbed[key] = value
            else:
                perturbed[key] = min(
                    1.0, max(0.0, value + rng.uniform(-epsilon, epsilon))
                )
        replica = PermeabilityMatrix(system)
        replica.update(perturbed)
        result = placement_fn(replica, graph)
        for name in result.selected:
            if name in counts:
                counts[name] += 1
    return SensitivityReport(
        epsilon=epsilon,
        n_samples=n_samples,
        selection_frequency={
            name: count / n_samples for name, count in counts.items()
        },
        baseline_selected=list(baseline.selected),
    )
