"""Error permeability (paper Eq. 1) and module-level permeability measures.

For input *i* and output *k* of a module *M* the *error permeability*

.. math::

    0 \\le P^M_{i,k} = \\Pr\\{\\text{error in output } k \\mid
    \\text{error in input } i\\} \\le 1

indicates how permeable the input/output pair is to errors occurring at
the input.  The paper estimates these probabilities by fault injection
(Section 5.3); this module only represents and aggregates them — the
estimation lives in :mod:`repro.analysis.estimators`.

Aggregate measures defined in the paper (Section 5.2):

* **Relative permeability** ``P^M`` — the ability of module *M* to let
  propagating errors pass through it, normalized by the number of
  input/output pairs, hence in [0, 1].
* **Non-weighted relative permeability** ``P̂^M`` — the same without
  normalization (the raw sum over all pairs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, Union

from repro.errors import AnalysisError
from repro.model.system import IOPair, SystemModel

__all__ = ["PairKey", "PermeabilityMatrix"]

#: Key identifying one permeability: (module name, input index, output index),
#: with 1-based indices as in the paper's ``P^M_{i,k}`` notation.
PairKey = Tuple[str, int, int]


def _as_key(key: Union[PairKey, IOPair]) -> PairKey:
    if isinstance(key, IOPair):
        return (key.module, key.in_index, key.out_index)
    if (
        isinstance(key, tuple)
        and len(key) == 3
        and isinstance(key[0], str)
    ):
        return (key[0], int(key[1]), int(key[2]))
    raise AnalysisError(f"invalid permeability key {key!r}")


class PermeabilityMatrix:
    """All per-pair error permeabilities of one system.

    The matrix is constructed against a :class:`SystemModel` so that it
    knows the complete set of input/output pairs; unset pairs default
    to ``None`` and must be filled in before aggregate measures are
    computed (use :meth:`set`, :meth:`update`, or
    :meth:`from_values`).
    """

    def __init__(self, system: SystemModel):
        self.system = system
        self._pairs: Dict[PairKey, IOPair] = {
            (p.module, p.in_index, p.out_index): p for p in system.io_pairs()
        }
        self._values: Dict[PairKey, Optional[float]] = {
            key: None for key in self._pairs
        }

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------
    @classmethod
    def from_values(
        cls,
        system: SystemModel,
        values: Mapping[Union[PairKey, IOPair], float],
    ) -> "PermeabilityMatrix":
        """Build a fully populated matrix from a mapping of pair -> value.

        Every pair of the system must be covered.
        """
        matrix = cls(system)
        matrix.update(values)
        missing = [key for key, value in matrix._values.items() if value is None]
        if missing:
            raise AnalysisError(
                f"permeability values missing for pairs {sorted(missing)}"
            )
        return matrix

    def set(self, key: Union[PairKey, IOPair], value: float) -> None:
        pair_key = _as_key(key)
        if pair_key not in self._pairs:
            raise AnalysisError(
                f"system has no input/output pair {pair_key!r}"
            )
        value = float(value)
        if not 0.0 <= value <= 1.0:
            raise AnalysisError(
                f"permeability for {pair_key!r} must be in [0, 1], got {value}"
            )
        self._values[pair_key] = value

    def update(
        self, values: Mapping[Union[PairKey, IOPair], float]
    ) -> None:
        for key, value in values.items():
            self.set(key, value)

    # ------------------------------------------------------------------
    # Access.
    # ------------------------------------------------------------------
    def __getitem__(self, key: Union[PairKey, IOPair]) -> float:
        pair_key = _as_key(key)
        if pair_key not in self._pairs:
            raise AnalysisError(
                f"system has no input/output pair {pair_key!r}"
            )
        value = self._values[pair_key]
        if value is None:
            raise AnalysisError(
                f"permeability for pair {pair_key!r} has not been set"
            )
        return value

    def get(
        self, key: Union[PairKey, IOPair], default: Optional[float] = None
    ) -> Optional[float]:
        pair_key = _as_key(key)
        value = self._values.get(pair_key)
        return default if value is None else value

    def is_complete(self) -> bool:
        return all(value is not None for value in self._values.values())

    def pair(self, key: Union[PairKey, IOPair]) -> IOPair:
        return self._pairs[_as_key(key)]

    def items(self) -> Iterator[Tuple[IOPair, float]]:
        """Iterate (pair, value) in the paper's Table-1 order."""
        for key, pair in self._pairs.items():
            value = self._values[key]
            if value is None:
                raise AnalysisError(
                    f"permeability for pair {key!r} has not been set"
                )
            yield pair, value

    def as_dict(self) -> Dict[PairKey, float]:
        return {
            key: value
            for key, value in self._values.items()
            if value is not None
        }

    # ------------------------------------------------------------------
    # Aggregate measures (Section 5.2).
    # ------------------------------------------------------------------
    def non_weighted_relative_permeability(self, module: str) -> float:
        """``P̂^M``: raw sum of permeabilities over all pairs of *module*."""
        pairs = self.system.io_pairs(module)
        if not pairs:
            raise AnalysisError(f"module {module!r} has no input/output pairs")
        return sum(self[pair] for pair in pairs)

    def relative_permeability(self, module: str) -> float:
        """``P^M``: sum normalized by the number of pairs, in [0, 1]."""
        pairs = self.system.io_pairs(module)
        if not pairs:
            raise AnalysisError(f"module {module!r} has no input/output pairs")
        return self.non_weighted_relative_permeability(module) / len(pairs)

    def module_ranking(self) -> List[Tuple[str, float]]:
        """Modules ordered by decreasing relative permeability (rule R2)."""
        ranking = [
            (name, self.relative_permeability(name))
            for name in self.system.module_names()
        ]
        ranking.sort(key=lambda item: (-item[1], item[0]))
        return ranking

    def __len__(self) -> int:
        return len(self._pairs)
