"""Propagation-path visualization trees (paper Sections 5.2 and 8).

Three tree structures over the signal graph:

* **Backtrack tree (BT)** — root is a system *output* signal; branches
  follow propagation edges backwards; leaves are system input signals
  (or signals with no further incoming edges).  "Illustrates the
  propagation paths that errors can take to get to a certain output
  signal."
* **Trace tree (TT)** — root is a system *input* signal; branches
  follow propagation edges forwards; leaves are system output signals
  (or dead ends).
* **Impact tree** — the generalization of the trace tree used by the
  effect analysis (Section 8): the root may be *any* signal (system
  input or intermediate), and the paths from the root to leaves
  containing a given system output are the paths whose weights enter
  the impact measure (Eq. 2).  The paper's Fig. 4 is the impact tree
  for ``pulscnt``.

All trees unroll feedback loops at most once per branch: a signal never
appears twice on the path from the root to any node, mirroring how
Fig. 4 expands the ``i`` self-loop a single time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import AnalysisError
from repro.model.graph import PropagationPath, SignalGraph
from repro.model.system import IOPair

__all__ = [
    "TreeNode",
    "PropagationTree",
    "build_trace_tree",
    "build_backtrack_tree",
    "build_impact_tree",
]


@dataclass
class TreeNode:
    """One node of a propagation tree.

    ``edge`` is the I/O pair traversed from the parent to this node
    (``None`` at the root).  For backtrack trees the edge is traversed
    *against* its direction: the node's signal is the edge's
    ``in_signal``.
    """

    signal: str
    edge: Optional[IOPair] = None
    children: List["TreeNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def walk(self) -> Iterator["TreeNode"]:
        yield self
        for child in self.children:
            yield from child.walk()


class PropagationTree:
    """A rooted propagation tree (trace, backtrack, or impact tree)."""

    #: direction of edge traversal: "forward" (trace/impact) or "backward".
    def __init__(self, root: TreeNode, direction: str):
        if direction not in ("forward", "backward"):
            raise AnalysisError(f"invalid tree direction {direction!r}")
        self.root = root
        self.direction = direction

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def nodes(self) -> List[TreeNode]:
        return list(self.root.walk())

    def leaves(self) -> List[TreeNode]:
        return [node for node in self.root.walk() if node.is_leaf]

    def depth(self) -> int:
        """Longest root-to-leaf edge count."""

        def node_depth(node: TreeNode) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(node_depth(child) for child in node.children)

        return node_depth(self.root)

    def paths_to(self, signal: str) -> List[PropagationPath]:
        """All root-to-leaf paths whose leaf carries *signal*.

        For forward trees the returned paths run root -> leaf; for
        backward (backtrack) trees they are re-oriented to run in
        propagation direction, i.e. leaf signal -> root signal.
        """
        found: List[PropagationPath] = []

        def visit(node: TreeNode, trail: List[IOPair]) -> None:
            if node.edge is not None:
                trail.append(node.edge)
            if node.is_leaf and node.signal == signal and trail:
                if self.direction == "forward":
                    found.append(PropagationPath(tuple(trail)))
                else:
                    found.append(PropagationPath(tuple(reversed(trail))))
            for child in node.children:
                visit(child, trail)
            if node.edge is not None:
                trail.pop()

        visit(self.root, [])
        return found

    def all_root_to_leaf_paths(self) -> List[PropagationPath]:
        """Every root-to-leaf path (propagation-oriented), non-trivial only."""
        found: List[PropagationPath] = []

        def visit(node: TreeNode, trail: List[IOPair]) -> None:
            if node.edge is not None:
                trail.append(node.edge)
            if node.is_leaf and trail:
                if self.direction == "forward":
                    found.append(PropagationPath(tuple(trail)))
                else:
                    found.append(PropagationPath(tuple(reversed(trail))))
            for child in node.children:
                visit(child, trail)
            if node.edge is not None:
                trail.pop()

        visit(self.root, [])
        return found

    # ------------------------------------------------------------------
    # Rendering.
    # ------------------------------------------------------------------
    def render(
        self, label: Optional[Callable[[IOPair], str]] = None
    ) -> str:
        """ASCII rendering of the tree, one node per line.

        *label* formats the edge annotation; it defaults to the paper's
        ``P^M_{i,k}`` notation.
        """
        fmt = label or (lambda pair: pair.label)
        lines: List[str] = []

        def visit(node: TreeNode, prefix: str, is_last: bool) -> None:
            if node.edge is None:
                lines.append(node.signal)
                child_prefix = ""
            else:
                connector = "`-- " if is_last else "|-- "
                lines.append(
                    f"{prefix}{connector}[{fmt(node.edge)}] {node.signal}"
                )
                child_prefix = prefix + ("    " if is_last else "|   ")
            for index, child in enumerate(node.children):
                visit(child, child_prefix, index == len(node.children) - 1)

        visit(self.root, "", True)
        return "\n".join(lines)


def _expand_forward(
    graph: SignalGraph, node: TreeNode, seen: Tuple[str, ...], stop: Callable[[str], bool]
) -> None:
    if stop(node.signal):
        return
    for edge in graph.out_edges(node.signal):
        if edge.out_signal in seen:
            continue
        child = TreeNode(signal=edge.out_signal, edge=edge)
        node.children.append(child)
        _expand_forward(graph, child, seen + (edge.out_signal,), stop)


def _expand_backward(
    graph: SignalGraph, node: TreeNode, seen: Tuple[str, ...], stop: Callable[[str], bool]
) -> None:
    if stop(node.signal):
        return
    for edge in graph.in_edges(node.signal):
        if edge.in_signal in seen:
            continue
        child = TreeNode(signal=edge.in_signal, edge=edge)
        node.children.append(child)
        _expand_backward(graph, child, seen + (edge.in_signal,), stop)


def build_trace_tree(graph: SignalGraph, input_signal: str) -> PropagationTree:
    """Trace tree (TT): propagation paths from a system input signal.

    The root must be a system input signal; expansion stops at system
    output signals or when no onward edge exists.
    """
    spec = graph.system.signal(input_signal)
    if not spec.is_system_input:
        raise AnalysisError(
            f"trace tree root must be a system input signal, "
            f"{input_signal!r} is {spec.role.value}"
        )
    root = TreeNode(signal=input_signal)
    outputs = set(graph.system.system_outputs())
    _expand_forward(
        graph, root, (input_signal,), stop=lambda s: s in outputs
    )
    return PropagationTree(root, "forward")


def build_backtrack_tree(
    graph: SignalGraph, output_signal: str
) -> PropagationTree:
    """Backtrack tree (BT): propagation paths leading to a system output.

    The root must be a system output signal; expansion stops at system
    input signals or when no incoming edge exists.
    """
    spec = graph.system.signal(output_signal)
    if not spec.is_system_output:
        raise AnalysisError(
            f"backtrack tree root must be a system output signal, "
            f"{output_signal!r} is {spec.role.value}"
        )
    root = TreeNode(signal=output_signal)
    inputs = set(graph.system.system_inputs())
    _expand_backward(
        graph, root, (output_signal,), stop=lambda s: s in inputs
    )
    return PropagationTree(root, "backward")


def build_impact_tree(graph: SignalGraph, source_signal: str) -> PropagationTree:
    """Impact tree: generalized trace tree rooted at *any* signal.

    Used by the effect analysis (Section 8): the weights of the paths
    from the root to leaves carrying a system output signal enter the
    impact measure (Eq. 2).  The root may be a system input signal or
    an intermediate signal; rooting an impact tree at a system output
    is rejected, as impact onto itself is by convention not assigned
    (paper Table 5: "one could say that the impact is 1.0").
    """
    spec = graph.system.signal(source_signal)
    if spec.is_system_output:
        raise AnalysisError(
            f"impact tree root must not be a system output signal "
            f"({source_signal!r})"
        )
    root = TreeNode(signal=source_signal)
    outputs = set(graph.system.system_outputs())
    _expand_forward(
        graph, root, (source_signal,), stop=lambda s: s in outputs
    )
    return PropagationTree(root, "forward")
