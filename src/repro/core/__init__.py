"""Error propagation and effect analysis — the paper's core contribution.

This package implements the analysis framework of Sections 5, 8 and 9:
error permeability (Eq. 1), relative permeability, module and signal
error exposure, backtrack/trace/impact trees, impact (Eq. 2),
criticality (Eqs. 3-4), the EH / PA / extended placement engines and
the profiling front-end.
"""

from repro.core.criticality import (
    OutputCriticalities,
    all_criticalities,
    criticality_ranking,
    signal_criticality,
    signal_criticality_for_output,
)
from repro.core.exposure import (
    all_signal_exposures,
    exposure_ranking,
    module_exposure,
    non_weighted_module_exposure,
    signal_exposure,
)
from repro.core.impact import (
    all_impacts,
    impact,
    impact_on_all_outputs,
    impact_ranking,
    path_weights,
)
from repro.core.permeability import PairKey, PermeabilityMatrix
from repro.core.placement import (
    PlacementDecision,
    PlacementResult,
    PolicyLimits,
    PolicyViolation,
    check_policy,
    default_guardable,
    eh_placement,
    extended_placement,
    pa_placement,
)
from repro.core.module_profile import ModuleProfile, ModuleProfileEntry
from repro.core.profile import SignalProfileEntry, SystemProfile, ValueBand
from repro.core.sensitivity import SensitivityReport, placement_sensitivity
from repro.core.trees import (
    PropagationTree,
    TreeNode,
    build_backtrack_tree,
    build_impact_tree,
    build_trace_tree,
)

__all__ = [
    "ModuleProfile",
    "ModuleProfileEntry",
    "OutputCriticalities",
    "PairKey",
    "PermeabilityMatrix",
    "PlacementDecision",
    "PlacementResult",
    "PolicyLimits",
    "PolicyViolation",
    "PropagationTree",
    "SensitivityReport",
    "SignalProfileEntry",
    "SystemProfile",
    "TreeNode",
    "ValueBand",
    "all_criticalities",
    "all_impacts",
    "all_signal_exposures",
    "build_backtrack_tree",
    "build_impact_tree",
    "build_trace_tree",
    "check_policy",
    "criticality_ranking",
    "default_guardable",
    "eh_placement",
    "exposure_ranking",
    "extended_placement",
    "impact",
    "impact_on_all_outputs",
    "impact_ranking",
    "module_exposure",
    "non_weighted_module_exposure",
    "pa_placement",
    "path_weights",
    "placement_sensitivity",
    "signal_criticality",
    "signal_criticality_for_output",
    "signal_exposure",
]
