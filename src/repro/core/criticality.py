"""Signal criticality (paper Section 8, Eqs. 3 and 4).

When a system has multiple output signals, not all outputs are equally
important: a diagnostic output may matter less than an actuator
command.  The system designer assigns each output signal ``S_{o,i}`` a
criticality ``C_{o,i}`` in [0, 1] (from specifications or experimental
vulnerability analyses).  The criticality of any other signal ``S_s``
*as experienced by* output ``S_{o,i}`` is its impact scaled by the
output's criticality (Eq. 3):

.. math::  C_{s,i} = C_{o,i} \\cdot \\Omega(S_s \\rightarrow S_{o,i})

and its total criticality combines the per-output values (Eq. 4):

.. math::  C_s = 1 - \\prod_i (1 - C_{s,i})

The higher the criticality, the more "expensive" errors in the signal
are with regard to total system operation.  Impact is independent of
project policy; criticality changes when the project's dependability
policy (the assigned output criticalities) changes.  For a
single-output system criticality is the impact scaled by a constant,
so the relative order of signals cannot change (paper Section 8).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import AnalysisError
from repro.core.impact import impact
from repro.core.permeability import PermeabilityMatrix
from repro.model.graph import SignalGraph

__all__ = [
    "OutputCriticalities",
    "signal_criticality_for_output",
    "signal_criticality",
    "all_criticalities",
    "criticality_ranking",
]


class OutputCriticalities:
    """Designer-assigned criticality value per system output signal."""

    def __init__(self, graph: SignalGraph, values: Mapping[str, float]):
        outputs = set(graph.system.system_outputs())
        unknown = set(values) - outputs
        if unknown:
            raise AnalysisError(
                f"criticality assigned to non-output signals {sorted(unknown)}"
            )
        missing = outputs - set(values)
        if missing:
            raise AnalysisError(
                f"criticality missing for output signals {sorted(missing)}"
            )
        for name, value in values.items():
            if not 0.0 <= float(value) <= 1.0:
                raise AnalysisError(
                    f"criticality of output {name!r} must be in [0, 1], "
                    f"got {value}"
                )
        self._values: Dict[str, float] = {
            name: float(value) for name, value in values.items()
        }
        self.graph = graph

    def __getitem__(self, output: str) -> float:
        try:
            return self._values[output]
        except KeyError:
            raise AnalysisError(
                f"no criticality assigned to output {output!r}"
            ) from None

    def outputs(self) -> List[str]:
        return list(self._values)

    def as_dict(self) -> Dict[str, float]:
        return dict(self._values)


def signal_criticality_for_output(
    matrix: PermeabilityMatrix,
    graph: SignalGraph,
    criticalities: OutputCriticalities,
    signal: str,
    output: str,
) -> float:
    """``C_{s,i}`` (Eq. 3): criticality of *signal* as seen by *output*."""
    return criticalities[output] * impact(matrix, graph, signal, output)


def signal_criticality(
    matrix: PermeabilityMatrix,
    graph: SignalGraph,
    criticalities: OutputCriticalities,
    signal: str,
) -> float:
    """``C_s`` (Eq. 4): total criticality of *signal* over all outputs."""
    product = 1.0
    for output in criticalities.outputs():
        product *= 1.0 - signal_criticality_for_output(
            matrix, graph, criticalities, signal, output
        )
    return 1.0 - product


def all_criticalities(
    matrix: PermeabilityMatrix,
    graph: SignalGraph,
    criticalities: OutputCriticalities,
) -> Dict[str, Optional[float]]:
    """Total criticality of every non-output signal (``None`` for outputs)."""
    system = graph.system
    result: Dict[str, Optional[float]] = {}
    for name in system.signal_names():
        if system.signal(name).is_system_output:
            result[name] = None
        else:
            result[name] = signal_criticality(
                matrix, graph, criticalities, name
            )
    return result


def criticality_ranking(
    matrix: PermeabilityMatrix,
    graph: SignalGraph,
    criticalities: OutputCriticalities,
) -> List[Tuple[str, float]]:
    """Signals ordered by decreasing total criticality (rule R3)."""
    ranking = [
        (name, value)
        for name, value in all_criticalities(
            matrix, graph, criticalities
        ).items()
        if value is not None
    ]
    ranking.sort(key=lambda item: (-item[1], item[0]))
    return ranking
