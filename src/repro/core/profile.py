"""Software profiling from varied dependability perspectives.

The paper's stated intent is "to provide a method for software
profiling with regard to error propagation and error effect
characteristics" (Section 1).  :class:`SystemProfile` bundles the two
profiles the paper draws for the target system:

* the **exposure profile** (Fig. 5) — each signal classified by its
  error exposure, and
* the **impact profile** (Fig. 6) — each signal classified by its
  impact on the system output,

using the same five rendering classes as the figures: highest, lowest
(non-zero), zero, and "no value assigned" (system inputs for exposure,
system outputs for impact).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import AnalysisError
from repro.core.criticality import OutputCriticalities, all_criticalities
from repro.core.exposure import all_signal_exposures
from repro.core.impact import all_impacts
from repro.core.permeability import PermeabilityMatrix
from repro.model.graph import SignalGraph

__all__ = ["ValueBand", "SignalProfileEntry", "SystemProfile"]


class ValueBand(enum.Enum):
    """Rendering class of one signal in a profile figure."""

    HIGHEST = "highest"
    HIGH = "high"
    LOW = "low"
    LOWEST = "lowest"
    ZERO = "zero"
    UNASSIGNED = "unassigned"


def classify(
    value: Optional[float], assigned: Mapping[str, float], name: str
) -> ValueBand:
    """Band for *value* among all *assigned* (non-None) values."""
    if value is None:
        return ValueBand.UNASSIGNED
    if value == 0.0:
        return ValueBand.ZERO
    nonzero = sorted(v for v in assigned.values() if v and v > 0.0)
    if not nonzero:
        return ValueBand.ZERO
    if value >= nonzero[-1]:
        return ValueBand.HIGHEST
    if value <= nonzero[0]:
        return ValueBand.LOWEST
    midpoint = (nonzero[0] + nonzero[-1]) / 2.0
    return ValueBand.HIGH if value >= midpoint else ValueBand.LOW


@dataclass(frozen=True)
class SignalProfileEntry:
    """One signal's row in a :class:`SystemProfile`."""

    signal: str
    exposure: Optional[float]
    exposure_band: ValueBand
    impact: Optional[float]
    impact_band: ValueBand
    criticality: Optional[float] = None


class SystemProfile:
    """Joint exposure/impact (and optionally criticality) profile.

    Parameters
    ----------
    matrix:
        Complete permeability matrix of the system.
    graph:
        The system's signal graph.
    output:
        System output to compute impact on; may be omitted for
        single-output systems.
    criticalities:
        Optional designer-assigned output criticalities; when given,
        total criticalities are computed as well.
    """

    def __init__(
        self,
        matrix: PermeabilityMatrix,
        graph: SignalGraph,
        output: Optional[str] = None,
        criticalities: Optional[OutputCriticalities] = None,
    ):
        self.matrix = matrix
        self.graph = graph
        self.system = graph.system
        self.exposures = all_signal_exposures(matrix)
        self.impacts = all_impacts(matrix, graph, output)
        self.criticalities: Optional[Dict[str, Optional[float]]] = None
        if criticalities is not None:
            self.criticalities = all_criticalities(
                matrix, graph, criticalities
            )
        assigned_exposure = {
            k: v for k, v in self.exposures.items() if v is not None
        }
        assigned_impact = {
            k: v for k, v in self.impacts.items() if v is not None
        }
        self._entries: Dict[str, SignalProfileEntry] = {}
        for name in self.system.signal_names():
            exposure = self.exposures[name]
            impact = self.impacts[name]
            self._entries[name] = SignalProfileEntry(
                signal=name,
                exposure=exposure,
                exposure_band=classify(exposure, assigned_exposure, name),
                impact=impact,
                impact_band=classify(impact, assigned_impact, name),
                criticality=(
                    self.criticalities[name]
                    if self.criticalities is not None
                    else None
                ),
            )

    def entry(self, signal: str) -> SignalProfileEntry:
        entry = self._entries.get(signal)
        if entry is None:
            raise AnalysisError(f"no profile entry for signal {signal!r}")
        return entry

    def entries(self) -> List[SignalProfileEntry]:
        return list(self._entries.values())

    # ------------------------------------------------------------------
    # The two figures as orderings + text renderings.
    # ------------------------------------------------------------------
    def exposure_profile(self) -> List[Tuple[str, Optional[float], ValueBand]]:
        """Signals with exposure value and band, highest first (Fig. 5)."""
        rows = [
            (e.signal, e.exposure, e.exposure_band)
            for e in self._entries.values()
        ]
        rows.sort(
            key=lambda row: (
                row[1] is None,
                -(row[1] or 0.0),
                row[0],
            )
        )
        return rows

    def impact_profile(self) -> List[Tuple[str, Optional[float], ValueBand]]:
        """Signals with impact value and band, highest first (Fig. 6)."""
        rows = [
            (e.signal, e.impact, e.impact_band)
            for e in self._entries.values()
        ]
        rows.sort(
            key=lambda row: (
                row[1] is None,
                -(row[1] or 0.0),
                row[0],
            )
        )
        return rows

    @staticmethod
    def _line_style(band: ValueBand) -> str:
        """Line style used by Figs. 5-6: thickness / dashed / dash-dotted."""
        return {
            ValueBand.HIGHEST: "=====",
            ValueBand.HIGH: "====.",
            ValueBand.LOW: "---- ",
            ValueBand.LOWEST: "--   ",
            ValueBand.ZERO: "- - -",
            ValueBand.UNASSIGNED: "-.-.-",
        }[band]

    def render(self, which: str = "both") -> str:
        """Text rendering of the exposure and/or impact profile."""
        if which not in ("exposure", "impact", "both"):
            raise AnalysisError(f"invalid profile selector {which!r}")
        sections: List[str] = []
        if which in ("exposure", "both"):
            lines = ["Exposure profile (Fig. 5):"]
            for signal, value, band in self.exposure_profile():
                shown = "  n/a" if value is None else f"{value:5.3f}"
                lines.append(
                    f"  {self._line_style(band)}  {signal:<14} "
                    f"X_s={shown}  ({band.value})"
                )
            sections.append("\n".join(lines))
        if which in ("impact", "both"):
            lines = ["Impact profile (Fig. 6):"]
            for signal, value, band in self.impact_profile():
                shown = "  n/a" if value is None else f"{value:5.3f}"
                lines.append(
                    f"  {self._line_style(band)}  {signal:<14} "
                    f"impact={shown}  ({band.value})"
                )
            sections.append("\n".join(lines))
        return "\n\n".join(sections)
