"""repro — error propagation & effect analysis for EDM placement.

A production-quality reproduction of:

    Martin Hiller, Arshad Jhumka, Neeraj Suri,
    "On the Placement of Software Mechanisms for Detection of Data
    Errors", Proc. DSN 2002.

The library provides:

* a black-box modular software system model
  (:mod:`repro.model`);
* the error propagation analysis framework — permeability, exposure,
  backtrack/trace trees — and its effect-analysis extension — impact
  trees, impact, criticality — plus the EH / PA / extended placement
  engines (:mod:`repro.core`);
* a complete simulation of the paper's aircraft arrestment target
  system (:mod:`repro.target`);
* a bit-flip fault-injection substrate with golden-run comparison and
  campaign drivers (:mod:`repro.fi`);
* executable assertions and their cost model (:mod:`repro.edm`);
* the experiment harness regenerating every table and figure of the
  paper's evaluation (:mod:`repro.experiments`).

Quickstart::

    from repro import (
        SignalGraph, pa_placement, PermeabilityMatrix,
        build_arrestment_system,
    )
    from repro.experiments.paper_data import paper_matrix

    system = build_arrestment_system()
    matrix = paper_matrix(system)
    placement = pa_placement(matrix, SignalGraph(system))
    print(placement.render())
"""

from repro.core import (
    OutputCriticalities,
    PermeabilityMatrix,
    PlacementResult,
    PolicyLimits,
    SystemProfile,
    all_criticalities,
    all_impacts,
    all_signal_exposures,
    build_backtrack_tree,
    build_impact_tree,
    build_trace_tree,
    check_policy,
    eh_placement,
    extended_placement,
    impact,
    pa_placement,
    signal_criticality,
    signal_exposure,
)
from repro.errors import ReproError
from repro.model import (
    CellSpec,
    FunctionModule,
    Module,
    SignalGraph,
    SignalRole,
    SignalSpec,
    SignalType,
    SlotSchedule,
    SystemExecutor,
    SystemModel,
)
from repro.target import (
    ArrestmentSimulator,
    TestCase,
    build_arrestment_system,
    standard_test_cases,
)

__version__ = "1.0.0"

__all__ = [
    "ArrestmentSimulator",
    "CellSpec",
    "FunctionModule",
    "Module",
    "OutputCriticalities",
    "PermeabilityMatrix",
    "PlacementResult",
    "PolicyLimits",
    "ReproError",
    "SignalGraph",
    "SignalRole",
    "SignalSpec",
    "SignalType",
    "SlotSchedule",
    "SystemExecutor",
    "SystemModel",
    "SystemProfile",
    "TestCase",
    "all_criticalities",
    "all_impacts",
    "all_signal_exposures",
    "build_arrestment_system",
    "build_backtrack_tree",
    "build_impact_tree",
    "build_trace_tree",
    "check_policy",
    "eh_placement",
    "extended_placement",
    "impact",
    "pa_placement",
    "signal_criticality",
    "signal_exposure",
    "standard_test_cases",
    "__version__",
]
