"""Experiment: Table 2 — signal error exposures and PA-based selection.

Computes every signal's error exposure from the measured permeability
matrix, runs the PA placement engine, and compares both the exposure
ordering and the selected EA locations against the paper's Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.tables import render_table
from repro.core.exposure import all_signal_exposures
from repro.core.placement import PlacementResult, pa_placement
from repro.experiments.context import ExperimentContext
from repro.experiments.paper_data import (
    PAPER_TABLE2_EXPOSURE,
    PAPER_TABLE2_SELECTED,
)

__all__ = ["Table2Row", "Table2Result", "run_table2"]


@dataclass(frozen=True)
class Table2Row:
    signal: str
    paper_exposure: Optional[float]
    measured_exposure: Optional[float]
    paper_selected: Optional[bool]
    measured_selected: bool
    motivation: str


@dataclass
class Table2Result:
    rows: List[Table2Row]
    placement: PlacementResult

    @property
    def selected(self) -> List[str]:
        return self.placement.selected

    def selection_matches_paper(self) -> bool:
        return all(
            row.paper_selected is None
            or row.paper_selected == row.measured_selected
            for row in self.rows
        )

    def render(self) -> str:
        table = render_table(
            headers=[
                "Signal", "X_s paper", "X_s measured",
                "Select paper", "Select measured", "Motivation",
            ],
            rows=[
                (
                    row.signal, row.paper_exposure, row.measured_exposure,
                    row.paper_selected, row.measured_selected,
                    row.motivation,
                )
                for row in self.rows
            ],
            title=(
                "Table 2: estimated signal error exposures and PA-based "
                "selection of EA locations"
            ),
        )
        return table


def run_table2(ctx: ExperimentContext) -> Table2Result:
    matrix = ctx.measured_matrix()
    exposures = all_signal_exposures(matrix)
    placement = pa_placement(matrix, ctx.graph)
    decisions = {d.signal: d for d in placement.decisions}
    # table ordering: decreasing measured exposure, like the paper's
    ordered = sorted(
        (name for name in exposures if exposures[name] is not None),
        key=lambda name: (-exposures[name], name),
    )
    rows: List[Table2Row] = []
    for name in ordered:
        decision = decisions[name]
        rows.append(
            Table2Row(
                signal=name,
                paper_exposure=PAPER_TABLE2_EXPOSURE.get(name),
                measured_exposure=exposures[name],
                paper_selected=PAPER_TABLE2_SELECTED.get(name),
                measured_selected=decision.selected,
                motivation=decision.motivation,
            )
        )
    return Table2Result(rows=rows, placement=placement)
