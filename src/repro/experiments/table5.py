"""Experiment: Table 5 (and Fig. 4) — exposures and impacts on TOC2.

Computes every signal's impact on the system output from the measured
permeability matrix via impact trees (Eq. 2) and prints it next to
the paper's Table 5.  Also reproduces the paper's worked Fig. 4
example: the impact tree of ``pulscnt`` with its two propagation
paths and their weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.tables import render_table
from repro.core.exposure import all_signal_exposures
from repro.core.impact import all_impacts, path_weights
from repro.core.trees import build_impact_tree
from repro.experiments.context import ExperimentContext
from repro.experiments.paper_data import (
    PAPER_TABLE2_EXPOSURE,
    PAPER_TABLE5_IMPACT,
)
from repro.model.graph import PropagationPath

__all__ = ["Table5Row", "Table5Result", "run_table5"]


@dataclass(frozen=True)
class Table5Row:
    signal: str
    paper_exposure: Optional[float]
    measured_exposure: Optional[float]
    paper_impact: Optional[float]
    measured_impact: Optional[float]


@dataclass
class Table5Result:
    rows: List[Table5Row]
    #: Fig. 4: (path, weight) of every pulscnt -> TOC2 propagation path
    pulscnt_paths: List[Tuple[PropagationPath, float]]
    pulscnt_tree_text: str

    def impact_of(self, signal: str) -> Optional[float]:
        for row in self.rows:
            if row.signal == signal:
                return row.measured_impact
        raise KeyError(signal)

    def render(self) -> str:
        table = render_table(
            headers=[
                "Signal", "X_s paper", "X_s measured",
                "impact paper", "impact measured",
            ],
            rows=[
                (
                    row.signal, row.paper_exposure, row.measured_exposure,
                    row.paper_impact, row.measured_impact,
                )
                for row in self.rows
            ],
            title=(
                "Table 5: estimated signal error exposures and impacts "
                "on TOC2"
            ),
        )
        lines = [table, "", "Figure 4: impact tree for signal pulscnt"]
        lines.append(self.pulscnt_tree_text)
        for idx, (path, weight) in enumerate(self.pulscnt_paths, start=1):
            lines.append(f"  w{idx} = {weight:.3f}  {path.describe()}")
        return "\n".join(lines)


def run_table5(ctx: ExperimentContext) -> Table5Result:
    matrix = ctx.measured_matrix()
    graph = ctx.graph
    exposures = all_signal_exposures(matrix)
    impacts = all_impacts(matrix, graph, "TOC2")
    # paper ordering: system inputs first, then decreasing impact
    system = ctx.system
    names = system.signal_names()

    def sort_key(name: str):
        is_input = system.signal(name).is_system_input
        impact = impacts.get(name)
        return (
            0 if is_input else 1,
            -(impact if impact is not None else -1.0),
            name,
        )

    rows = [
        Table5Row(
            signal=name,
            paper_exposure=PAPER_TABLE2_EXPOSURE.get(name),
            measured_exposure=exposures[name],
            paper_impact=PAPER_TABLE5_IMPACT.get(name),
            measured_impact=impacts[name],
        )
        for name in sorted(names, key=sort_key)
    ]
    pulscnt_paths = path_weights(matrix, graph, "pulscnt", "TOC2")
    tree = build_impact_tree(graph, "pulscnt")
    return Table5Result(
        rows=rows,
        pulscnt_paths=pulscnt_paths,
        pulscnt_tree_text=tree.render(),
    )
