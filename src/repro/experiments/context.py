"""Shared context for the paper experiments.

An :class:`ExperimentContext` fixes the target system, the workload
scale (how many test cases, injection runs and memory locations), the
random seed, and the execution options (worker count, checkpointing),
and caches the expensive fault-injection campaigns so that the
analytic experiments (Tables 2, 5, the profiles, the extended
selection) reuse the Table-1 campaign instead of re-running it.

Scales
------
``test``
    Minimal workload for the unit/integration test suite.
``bench``
    Default for the benchmark harness: large enough that the paper's
    qualitative shape is reproduced, small enough to run in minutes.
``full``
    Full-envelope campaigns over all 25 test cases (slowest).

The environment variable ``REPRO_SCALE`` overrides the default scale
used by the benchmarks.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.core.permeability import PermeabilityMatrix
from repro.analysis.estimators import matrix_from_estimate
from repro.errors import ExperimentError
from repro.fi.adaptive import StratumReport
from repro.fi.campaign import (
    DetectionCampaign,
    DetectionResult,
    MemoryCampaign,
    MemoryCampaignResult,
    PermeabilityCampaign,
    PermeabilityEstimate,
)
from repro.fi.executor import (
    BACKENDS,
    AdaptivePolicy,
    CampaignConfig,
    CampaignTelemetry,
    CheckpointPolicy,
    FastForwardPolicy,
    FaultTolerancePolicy,
    IntegrityPolicy,
    VectorPolicy,
)
from repro.fi.store import STORE_BACKENDS, SqliteResultStore
from repro.fi.memory import MemoryMap
from repro.model.graph import SignalGraph
from repro.target.simulation import ArrestmentSimulator
from repro.target.testcases import TestCase
from repro.targets import TargetSystem, get_target

__all__ = ["ScaleConfig", "SCALES", "ExperimentContext", "default_scale"]


@dataclass(frozen=True)
class ScaleConfig:
    """Workload sizing of one scale."""

    name: str
    #: stride over the 25 standard test cases (1 = all)
    test_case_stride: int
    #: permeability campaign: injection runs per module input
    runs_per_input: int
    #: detection campaign: injection runs per system input signal
    runs_per_signal: int
    #: memory campaign: stride over memory locations (1 = all)
    location_stride: int
    #: memory campaign: stride over the context's test cases
    memory_case_stride: int


SCALES: Dict[str, ScaleConfig] = {
    "test": ScaleConfig("test", 12, 6, 10, 9, 3),
    "bench": ScaleConfig("bench", 6, 16, 36, 3, 2),
    "full": ScaleConfig("full", 1, 80, 400, 1, 1),
}


def default_scale() -> str:
    """Scale selected by ``REPRO_SCALE`` (default: ``bench``)."""
    scale = os.environ.get("REPRO_SCALE", "bench")
    if scale not in SCALES:
        raise ExperimentError(
            f"REPRO_SCALE must be one of {sorted(SCALES)}, got {scale!r}"
        )
    return scale


class ExperimentContext:
    """Caches campaigns and derived artefacts for one target + scale
    + seed.

    *target* is a registered target name or a
    :class:`~repro.targets.TargetSystem` (default: the paper's
    arrestment system).  *jobs* > 1 runs the campaigns on a process
    pool; *backend* pins the execution backend (``serial`` or
    ``process``; ``None`` derives it from *jobs*); *checkpoint_dir*
    enables checkpointing of partially completed campaigns, and
    *resume* picks existing checkpoints up instead of starting
    fresh.

    Fault-tolerance knobs: *task_timeout* bounds each injection run's
    wall clock, *retries* bounds the attempts a failing task gets
    before quarantine (``None`` keeps the executor default), and
    *event_log* appends a JSONL record of run events (shared by all
    campaigns of the context; each record carries its campaign name).

    Fast-forward knobs: *fast_forward* toggles the snapshot engine
    (golden checkpoints + prefix skipping + resynchronization; results
    are bit-identical either way), *checkpoint_stride* sets the
    distance between golden checkpoints in ticks (``None`` keeps the
    engine default), and *track_pool* flattens golden tracks into
    shared-memory columns pre-fork so checkpoint restores read out of
    shared segments (bit-identical either way).

    Integrity knobs: *audit_fraction* re-executes that fraction of
    fast-forwarded runs full-length and field-diffs the results,
    *audit_seed* fixes the audit sample (``None`` uses the campaign
    seed), and *integrity_policy* selects how violations — audit
    mismatches, checkpoint digest failures, worker drift — are
    handled (``strict`` aborts, ``repair`` self-heals, ``off``
    disables verification; ``None`` keeps the executor default).

    Adaptive-sampling knobs: *adaptive* switches the sampled
    campaigns (permeability, detection) to sequential Wilson-bound
    scheduling; *ci_level* and *ci_halfwidth* set the confidence
    level and two-sided precision target (half-width 0 disables early
    stopping while keeping the batched scheduler — bit-identical to
    fixed-n); *min_batch* is the per-stratum batch size per round and
    *max_runs* overrides the scale's per-stratum budget.
    """

    def __init__(
        self,
        scale: str = "bench",
        seed: int = 2002,
        target: Union[str, TargetSystem] = "arrestment",
        jobs: int = 1,
        backend: Optional[str] = None,
        resume: bool = False,
        checkpoint_dir: Optional[str] = None,
        task_timeout: Optional[float] = None,
        retries: Optional[int] = None,
        event_log: Optional[str] = None,
        fast_forward: bool = True,
        checkpoint_stride: Optional[int] = None,
        track_pool: bool = True,
        batch_width: int = 0,
        audit_fraction: float = 0.0,
        audit_seed: Optional[int] = None,
        integrity_policy: Optional[str] = None,
        adaptive: bool = False,
        ci_level: Optional[float] = None,
        ci_halfwidth: Optional[float] = None,
        min_batch: Optional[int] = None,
        max_runs: Optional[int] = None,
        store_backend: Optional[str] = None,
        results_db: Optional[str] = None,
        run_name: Optional[str] = None,
    ):
        if scale not in SCALES:
            raise ExperimentError(
                f"unknown scale {scale!r}; choose from {sorted(SCALES)}"
            )
        if store_backend is not None and store_backend not in STORE_BACKENDS:
            raise ExperimentError(
                f"unknown store backend {store_backend!r}; "
                f"choose from {STORE_BACKENDS}"
            )
        if backend is not None and backend not in BACKENDS:
            raise ExperimentError(
                f"unknown execution backend {backend!r}; "
                f"choose from {BACKENDS}"
            )
        self.scale = SCALES[scale]
        self.seed = seed
        self.target: TargetSystem = (
            get_target(target) if isinstance(target, str) else target
        )
        self.jobs = jobs
        self.backend = backend
        self.resume = resume
        self.task_timeout = task_timeout
        self.retries = retries
        self.event_log = event_log
        self.fast_forward = fast_forward
        self.checkpoint_stride = checkpoint_stride
        self.track_pool = track_pool
        self.batch_width = batch_width
        self.audit_fraction = audit_fraction
        self.audit_seed = audit_seed
        self.integrity_policy = integrity_policy
        self.adaptive = adaptive
        self.ci_level = ci_level
        self.ci_halfwidth = ci_halfwidth
        self.min_batch = min_batch
        self.max_runs = max_runs
        if resume and checkpoint_dir is None:
            checkpoint_dir = os.path.join(
                ".repro-checkpoints",
                f"{self.target.name}-{self.scale.name}-{seed}",
            )
        self.checkpoint_dir = checkpoint_dir
        self.store_backend = store_backend
        self.results_db = results_db
        self.run_name = run_name or (
            f"{self.target.name}-{self.scale.name}-seed{seed}"
        )
        # shadows the class-level staticmethod: campaigns and
        # benchmarks read ``ctx.simulator_factory`` as a plain callable
        self.simulator_factory = self.target.simulator_factory
        self.test_cases: List[TestCase] = list(
            self.target.standard_test_cases()
        )[:: self.scale.test_case_stride]
        #: per-campaign execution telemetry of the campaigns run so far
        self.telemetries: Dict[str, CampaignTelemetry] = {}
        #: per-campaign stratum spend reports (adaptive campaigns only)
        self.stratum_reports: Dict[str, List[StratumReport]] = {}
        self._estimate: Optional[PermeabilityEstimate] = None
        self._matrix: Optional[PermeabilityMatrix] = None
        self._detection: Optional[DetectionResult] = None
        self._memory: Optional[MemoryCampaignResult] = None
        self._system = None
        self._graph: Optional[SignalGraph] = None

    # ------------------------------------------------------------------
    # Building blocks.
    # ------------------------------------------------------------------
    simulator_factory = staticmethod(ArrestmentSimulator)

    def campaign_config(self, campaign: str) -> CampaignConfig:
        """The shared execution config, with a per-campaign checkpoint.

        The JSON backend keeps one ``<campaign>.json`` file per
        campaign (the legacy layout); the sqlite backend keeps every
        campaign of the context in one shared ``results.db`` database.
        """
        checkpoint = None
        if self.checkpoint_dir is not None:
            if self.store_backend == "sqlite":
                path = os.path.join(self.checkpoint_dir, "results.db")
                if not self.resume and os.path.exists(path):
                    # fresh start requested: drop this campaign's
                    # records, keep the rest of the database
                    with SqliteResultStore(path) as store:
                        store.discard_campaign(campaign)
            else:
                path = os.path.join(self.checkpoint_dir, f"{campaign}.json")
                if not self.resume and os.path.exists(path):
                    os.remove(path)  # fresh start requested
            checkpoint = CheckpointPolicy(
                path=path, backend=self.store_backend
            )
        ft_kwargs = {"task_timeout": self.task_timeout}
        if self.retries is not None:
            ft_kwargs["retries"] = self.retries
        ff_kwargs = {
            "enabled": self.fast_forward,
            "track_pool": self.track_pool,
        }
        if self.checkpoint_stride is not None:
            ff_kwargs["checkpoint_stride"] = self.checkpoint_stride
        integrity_kwargs = {
            "audit_fraction": self.audit_fraction,
            "audit_seed": self.audit_seed,
        }
        if self.integrity_policy is not None:
            integrity_kwargs["policy"] = self.integrity_policy
        sampling_kwargs = {"enabled": self.adaptive}
        if self.ci_level is not None:
            sampling_kwargs["ci_level"] = self.ci_level
        if self.ci_halfwidth is not None:
            sampling_kwargs["ci_halfwidth"] = self.ci_halfwidth
        if self.min_batch is not None:
            sampling_kwargs["min_batch"] = self.min_batch
        if self.max_runs is not None:
            sampling_kwargs["max_runs"] = self.max_runs
        return CampaignConfig(
            seed=self.seed,
            jobs=self.jobs,
            backend=self.backend,
            event_log_path=self.event_log,
            checkpoint=checkpoint,
            fault_tolerance=FaultTolerancePolicy(**ft_kwargs),
            fastforward=FastForwardPolicy(**ff_kwargs),
            integrity=IntegrityPolicy(**integrity_kwargs),
            sampling=AdaptivePolicy(**sampling_kwargs),
            vector=VectorPolicy(batch_width=self.batch_width),
        )

    def _save_result(self, campaign: str, result) -> None:
        """Mirror a finished campaign's result into the results
        database (``results_db``) under ``<run_name>/<campaign>``."""
        if self.results_db is None:
            return
        with SqliteResultStore(self.results_db) as store:
            store.save_result(
                result,
                run=f"{self.run_name}/{campaign}",
                meta={
                    "target": self.target.name,
                    "scale": self.scale.name,
                    "seed": self.seed,
                    "adaptive": self.adaptive,
                    "campaign": campaign,
                },
            )

    @property
    def system(self):
        if self._system is None:
            self._system = self.simulator_factory(self.test_cases[0]).system
        return self._system

    @property
    def graph(self) -> SignalGraph:
        if self._graph is None:
            self._graph = SignalGraph(self.system)
        return self._graph

    def assertion_specs(self):
        return list(self.target.assertion_specs())

    # ------------------------------------------------------------------
    # Campaign caches.
    # ------------------------------------------------------------------
    def permeability_estimate(self) -> PermeabilityEstimate:
        if self._estimate is None:
            campaign = PermeabilityCampaign(
                self.simulator_factory,
                self.test_cases,
                runs_per_input=self.scale.runs_per_input,
                config=self.campaign_config("permeability"),
            )
            self._estimate = campaign.run()
            self._save_result("permeability", self._estimate)
            self.telemetries["permeability"] = campaign.telemetry
            if campaign.stratum_reports:
                self.stratum_reports["permeability"] = (
                    campaign.stratum_reports
                )
        return self._estimate

    def measured_matrix(self) -> PermeabilityMatrix:
        if self._matrix is None:
            self._matrix = matrix_from_estimate(
                self.system, self.permeability_estimate()
            )
        return self._matrix

    def detection_result(self) -> DetectionResult:
        if self._detection is None:
            campaign = DetectionCampaign(
                self.simulator_factory,
                self.test_cases,
                self.assertion_specs(),
                runs_per_signal=self.scale.runs_per_signal,
                config=self.campaign_config("detection"),
            )
            self._detection = campaign.run()
            self._save_result("detection", self._detection)
            self.telemetries["detection"] = campaign.telemetry
            if campaign.stratum_reports:
                self.stratum_reports["detection"] = (
                    campaign.stratum_reports
                )
        return self._detection

    def memory_result(self) -> MemoryCampaignResult:
        if self._memory is None:
            locations = MemoryMap(self.system).locations()[
                :: self.scale.location_stride
            ]
            campaign = MemoryCampaign(
                self.simulator_factory,
                self.test_cases[:: self.scale.memory_case_stride],
                self.assertion_specs(),
                locations=locations,
                config=self.campaign_config("memory"),
            )
            self._memory = campaign.run()
            self._save_result("memory", self._memory)
            self.telemetries["memory"] = campaign.telemetry
        return self._memory
