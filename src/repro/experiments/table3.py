"""Experiment: Table 3 — EA setup and memory requirements.

Computes the ROM/RAM requirements of the EH-set and the PA-set of
executable assertions from the EA catalogue and verifies the paper's
headline resource claim: the PA-set is a subset of the EH-set with
roughly 40 % lower memory use and proportionally lower execution-time
overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.tables import render_table
from repro.edm.catalogue import EA_BY_NAME, EH_SET, PA_SET
from repro.edm.cost import SetCost, compare_costs, cost_of_signals
from repro.experiments.context import ExperimentContext
from repro.experiments.paper_data import (
    PAPER_TABLE3_EA_COSTS,
    PAPER_TABLE3_TOTALS,
)

__all__ = ["Table3Result", "run_table3"]


@dataclass
class Table3Result:
    eh_cost: SetCost
    pa_cost: SetCost
    savings: Dict[str, float]

    @property
    def pa_is_subset(self) -> bool:
        return set(self.pa_cost.ea_names) <= set(self.eh_cost.ea_names)

    def render(self) -> str:
        eh_names = set(self.eh_cost.ea_names)
        pa_names = set(self.pa_cost.ea_names)
        rows: List[Tuple] = []
        for name, spec in EA_BY_NAME.items():
            paper_rom, paper_ram = PAPER_TABLE3_EA_COSTS[name]
            rows.append(
                (
                    spec.signal, name,
                    "x" if name in eh_names else "-",
                    "x" if name in pa_names else "-",
                    spec.rom_bytes, spec.ram_bytes,
                    paper_rom, paper_ram,
                )
            )
        table = render_table(
            headers=[
                "Signal", "EA", "EH-set", "PA-set",
                "ROM", "RAM", "ROM(paper)", "RAM(paper)",
            ],
            rows=rows,
            title="Table 3: EA setup and sum of RAM/ROM requirements",
        )
        eh_paper = PAPER_TABLE3_TOTALS["EH"]
        pa_paper = PAPER_TABLE3_TOTALS["PA"]
        lines = [
            table,
            "",
            f"EH-set total ROM/RAM: {self.eh_cost.rom_bytes}/"
            f"{self.eh_cost.ram_bytes} bytes "
            f"(paper: {eh_paper[0]}/{eh_paper[1]})",
            f"PA-set total ROM/RAM: {self.pa_cost.rom_bytes}/"
            f"{self.pa_cost.ram_bytes} bytes "
            f"(paper: {pa_paper[0]}/{pa_paper[1]})",
            f"memory saving of PA over EH: "
            f"{self.savings['memory_saving'] * 100:.0f} % "
            f"(paper: ~40 %)",
            f"execution-time saving (EA-count proxy, Section 6.1): "
            f"{self.savings['execution_saving'] * 100:.0f} %",
        ]
        return "\n".join(lines)


def run_table3(ctx: ExperimentContext = None) -> Table3Result:
    """*ctx* is accepted for interface uniformity; the cost model is
    analytic and needs no campaign."""
    eh_cost = cost_of_signals(EH_SET)
    pa_cost = cost_of_signals(PA_SET)
    return Table3Result(
        eh_cost=eh_cost,
        pa_cost=pa_cost,
        savings=compare_costs(eh_cost, pa_cost),
    )
