"""Experiment: Figure 3 — coverage under the harsher error model.

Runs the periodic RAM/stack bit-flip campaign (Section 7) and derives
``c_tot`` / ``c_fail`` / ``c_nofail`` per memory region for the
EH-set, the PA-set, and the extended-framework set of EAs.

The paper's qualitative claims, all checked by the benchmark:

* the PA-set's coverage collapses relative to the EH-set (about half
  for RAM errors, worse for stack errors) — propagation analysis
  alone is not robust to a change of error model;
* the extended-framework set (which equals the EH-set on this target)
  restores the EH-level coverage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.tables import render_table
from repro.edm.catalogue import (
    EH_SET,
    EXTENDED_SET,
    PA_SET,
    assertion_names_for_signals,
)
from repro.experiments.context import ExperimentContext
from repro.fi.campaign import CoverageTriple, MemoryCampaignResult
from repro.fi.memory import Region

__all__ = ["Figure3Result", "run_figure3"]

_GROUPS: Tuple[Tuple[str, Optional[Region]], ...] = (
    ("RAM", Region.RAM),
    ("Stack", Region.STACK),
    ("Total", None),
)


@dataclass
class Figure3Result:
    #: (set name, group name) -> coverage triple
    bars: Dict[Tuple[str, str], CoverageTriple]
    memory: MemoryCampaignResult

    def coverage(self, ea_set: str, group: str) -> CoverageTriple:
        return self.bars[(ea_set, group)]

    def pa_collapses(self) -> bool:
        """PA-set total coverage is substantially below the EH-set's."""
        eh = self.coverage("EH", "Total").c_tot
        pa = self.coverage("PA", "Total").c_tot
        return pa < eh

    def extended_matches_eh(self, tolerance: float = 1e-9) -> bool:
        return all(
            abs(
                self.coverage("extended", group).c_tot
                - self.coverage("EH", group).c_tot
            )
            <= tolerance
            for group, _ in _GROUPS
        )

    def render(self) -> str:
        rows = []
        for set_name in ("EH", "PA", "extended"):
            for group, _ in _GROUPS:
                triple = self.bars[(set_name, group)]
                rows.append(
                    (
                        set_name, group, triple.c_tot, triple.c_fail,
                        triple.c_nofail, triple.n_runs, triple.n_fail,
                    )
                )
        return render_table(
            headers=[
                "EA set", "Area", "c_tot", "c_fail", "c_nofail",
                "n_runs", "n_fail",
            ],
            rows=rows,
            title=(
                "Figure 3: coverage under periodic RAM/stack bit flips "
                "(paper: PA ~ half of EH on RAM, worse on stack; "
                "extended == EH)"
            ),
        )


def run_figure3(ctx: ExperimentContext) -> Figure3Result:
    memory = ctx.memory_result()
    sets = {
        "EH": assertion_names_for_signals(EH_SET),
        "PA": assertion_names_for_signals(PA_SET),
        "extended": assertion_names_for_signals(EXTENDED_SET),
    }
    bars: Dict[Tuple[str, str], CoverageTriple] = {}
    for set_name, eas in sets.items():
        for group, region in _GROUPS:
            bars[(set_name, group)] = memory.coverage(eas, region)
    return Figure3Result(bars=bars, memory=memory)
