"""Reproduction harness: one module per paper table/figure.

See DESIGN.md's per-experiment index.  Every experiment takes an
:class:`~repro.experiments.context.ExperimentContext` (which caches
the fault-injection campaigns) and returns a result object with a
``render()`` method and typed fields for programmatic checks.
"""

from repro.experiments.context import (
    ExperimentContext,
    SCALES,
    ScaleConfig,
    default_scale,
)
from repro.experiments.extended import ExtendedResult, run_extended
from repro.experiments.figure3 import Figure3Result, run_figure3
from repro.experiments.profiles import ProfilesResult, run_profiles
from repro.experiments.runner import EXPERIMENTS, run_all
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.table2 import Table2Result, run_table2
from repro.experiments.table3 import Table3Result, run_table3
from repro.experiments.table4 import Table4Result, run_table4
from repro.experiments.table5 import Table5Result, run_table5
from repro.experiments import paper_data

__all__ = [
    "EXPERIMENTS",
    "ExperimentContext",
    "ExtendedResult",
    "Figure3Result",
    "ProfilesResult",
    "SCALES",
    "ScaleConfig",
    "Table1Result",
    "Table2Result",
    "Table3Result",
    "Table4Result",
    "Table5Result",
    "default_scale",
    "paper_data",
    "run_all",
    "run_extended",
    "run_figure3",
    "run_profiles",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
]
