"""Experiment: Table 1 — estimated error permeability values.

Reproduces the paper's permeability estimation (Section 5.3): fault
injection at every module input, golden-run comparison, direct-output
accounting — and prints the measured values next to the published
ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.tables import render_table
from repro.experiments.context import ExperimentContext
from repro.experiments.paper_data import PAPER_TABLE1

__all__ = ["Table1Row", "Table1Result", "run_table1"]


@dataclass(frozen=True)
class Table1Row:
    module: str
    in_port: str
    out_port: str
    label: str
    paper: Optional[float]  # None for targets outside the paper's Table 1
    measured: float
    direct_count: int
    active_runs: int


@dataclass
class Table1Result:
    rows: List[Table1Row]

    def measured(self) -> Dict[Tuple[str, str, str], float]:
        return {
            (row.module, row.in_port, row.out_port): row.measured
            for row in self.rows
        }

    def max_absolute_deviation(self) -> float:
        deviations = [
            abs(row.measured - row.paper)
            for row in self.rows
            if row.paper is not None
        ]
        return max(deviations) if deviations else 0.0

    def render(self) -> str:
        return render_table(
            headers=[
                "Input", "Output", "Name", "Paper", "Measured",
                "n_direct", "n_active",
            ],
            rows=[
                (
                    row.in_port, row.out_port, row.label,
                    row.paper, row.measured,
                    row.direct_count, row.active_runs,
                )
                for row in self.rows
            ],
            title="Table 1: estimated error permeability values",
        )


def run_table1(ctx: ExperimentContext) -> Table1Result:
    estimate = ctx.permeability_estimate()
    rows: List[Table1Row] = []
    for pair in ctx.system.io_pairs():
        key = (pair.module, pair.in_port, pair.out_port)
        rows.append(
            Table1Row(
                module=pair.module,
                in_port=pair.in_port,
                out_port=pair.out_port,
                label=pair.label,
                paper=PAPER_TABLE1.get(key),
                measured=estimate.values[key],
                direct_count=estimate.direct_counts[key],
                active_runs=estimate.active_runs[
                    (pair.module, pair.in_port)
                ],
            )
        )
    return Table1Result(rows=rows)
