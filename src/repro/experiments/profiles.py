"""Experiment: Figures 5 and 6 — exposure and impact profiles.

Builds the joint :class:`~repro.core.profile.SystemProfile` of the
target from the measured permeability matrix and renders the two
profile figures (line-thickness classes per signal).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.profile import SystemProfile, ValueBand
from repro.experiments.context import ExperimentContext

__all__ = ["ProfilesResult", "run_profiles"]


@dataclass
class ProfilesResult:
    profile: SystemProfile
    exposure_rows: List[Tuple[str, Optional[float], ValueBand]]
    impact_rows: List[Tuple[str, Optional[float], ValueBand]]

    def exposure_band(self, signal: str) -> ValueBand:
        return self.profile.entry(signal).exposure_band

    def impact_band(self, signal: str) -> ValueBand:
        return self.profile.entry(signal).impact_band

    def render(self) -> str:
        return self.profile.render("both")


def run_profiles(ctx: ExperimentContext) -> ProfilesResult:
    profile = SystemProfile(ctx.measured_matrix(), ctx.graph, output="TOC2")
    return ProfilesResult(
        profile=profile,
        exposure_rows=profile.exposure_profile(),
        impact_rows=profile.impact_profile(),
    )
