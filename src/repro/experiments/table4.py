"""Experiment: Table 4 — detection coverage for system-input errors.

Runs the "nice" error model (one transient bit flip in one system
input signal per run) with the full EA bank monitoring, and reports
per-EA and per-set coverages per targeted signal.  The paper's
qualitative claims, all checked by the benchmark:

* only errors injected into ``PACNT`` are detected to any substantial
  degree (errors in ``TIC1``/``TCNT`` barely propagate, errors in
  ``ADC`` are masked by PRES_S);
* the EA on ``pulscnt`` (EA4) dominates: it detects (almost) every
  error that any EA detects;
* consequently the EH-set total coverage equals the PA-set total
  coverage — the PA placement loses nothing under this error model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.tables import render_table
from repro.edm.catalogue import EH_SET, PA_SET, assertion_names_for_signals
from repro.experiments.context import ExperimentContext
from repro.experiments.paper_data import PAPER_TABLE4
from repro.fi.campaign import DetectionResult

__all__ = ["Table4Row", "Table4Result", "run_table4"]

_EA_ORDER = ("EA1", "EA2", "EA3", "EA4", "EA5", "EA6", "EA7")


@dataclass(frozen=True)
class Table4Row:
    target: str
    n_err: int
    per_ea: Dict[str, float]
    total: float
    eh_total: float
    pa_total: float
    paper_total: Optional[float]


@dataclass
class Table4Result:
    rows: List[Table4Row]
    detection: DetectionResult

    def row(self, target: str) -> Table4Row:
        for row in self.rows:
            if row.target == target:
                return row
        raise KeyError(target)

    def eh_equals_pa(self, tolerance: float = 1e-9) -> bool:
        """The paper's headline: EH and PA set coverages coincide."""
        return all(
            abs(row.eh_total - row.pa_total) <= tolerance
            for row in self.rows
        )

    def render(self) -> str:
        headers = ["Signal", "n_err"] + list(_EA_ORDER) + [
            "EH total", "PA total", "paper total",
        ]
        rows = []
        for row in self.rows:
            rows.append(
                [row.target, row.n_err]
                + [
                    (row.per_ea[ea] if row.per_ea[ea] > 0 else None)
                    for ea in _EA_ORDER
                ]
                + [row.eh_total, row.pa_total, row.paper_total]
            )
        return render_table(
            headers=headers,
            rows=rows,
            title=(
                "Table 4: obtained detection coverage for errors injected "
                "in system inputs (EH- vs PA-based placement)"
            ),
        )


def run_table4(ctx: ExperimentContext) -> Table4Result:
    detection = ctx.detection_result()
    eh_eas = assertion_names_for_signals(EH_SET)
    pa_eas = assertion_names_for_signals(PA_SET)
    rows: List[Table4Row] = []
    for target in detection.targets:
        per_ea = {
            ea: detection.coverage(target, ea) for ea in _EA_ORDER
        }
        paper_row = PAPER_TABLE4.get(target)
        rows.append(
            Table4Row(
                target=target,
                n_err=detection.n_err[target],
                per_ea=per_ea,
                total=detection.total_coverage(target),
                eh_total=detection.total_coverage(target, eh_eas),
                pa_total=detection.total_coverage(target, pa_eas),
                paper_total=(
                    paper_row["total"] if paper_row is not None else None
                ),
            )
        )
    # the "All" row
    total_err = sum(detection.n_err.values())
    if total_err:
        per_ea_all = {
            ea: sum(
                detection.detections.get((t, ea), 0)
                for t in detection.targets
            ) / total_err
            for ea in _EA_ORDER
        }
        rows.append(
            Table4Row(
                target="All",
                n_err=total_err,
                per_ea=per_ea_all,
                total=detection.combined()["total"],
                eh_total=detection.combined(eh_eas)["total"],
                pa_total=detection.combined(pa_eas)["total"],
                paper_total=PAPER_TABLE4["All"]["total"],
            )
        )
    return Table4Result(rows=rows, detection=detection)
