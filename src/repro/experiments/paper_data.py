"""Reference values reported by the paper (Tables 1-5, Fig. 3).

These are the published numbers, kept verbatim so every experiment can
print "paper vs. measured" side by side.  Keys use (module, in_port,
out_port) naming; see :mod:`repro.target.wiring` for the port
numbering.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.permeability import PermeabilityMatrix
from repro.model.system import SystemModel

__all__ = [
    "PAPER_TABLE1",
    "PAPER_TABLE2_EXPOSURE",
    "PAPER_TABLE2_SELECTED",
    "PAPER_TABLE3_EA_COSTS",
    "PAPER_TABLE3_TOTALS",
    "PAPER_TABLE4",
    "PAPER_TABLE5_IMPACT",
    "PAPER_EH_SET",
    "PAPER_PA_SET",
    "paper_matrix",
]

#: Table 1 — estimated error permeability per input/output pair.
PAPER_TABLE1: Dict[Tuple[str, str, str], float] = {
    ("CLOCK", "ms_slot_nbr", "ms_slot_nbr"): 1.000,
    ("CLOCK", "ms_slot_nbr", "mscnt"): 0.000,
    ("DIST_S", "PACNT", "pulscnt"): 0.957,
    ("DIST_S", "TIC1", "pulscnt"): 0.000,
    ("DIST_S", "TCNT", "pulscnt"): 0.000,
    ("DIST_S", "PACNT", "slow_speed"): 0.010,
    ("DIST_S", "TIC1", "slow_speed"): 0.000,
    ("DIST_S", "TCNT", "slow_speed"): 0.000,
    ("DIST_S", "PACNT", "stopped"): 0.000,
    ("DIST_S", "TIC1", "stopped"): 0.000,
    ("DIST_S", "TCNT", "stopped"): 0.000,
    ("PRES_S", "ADC", "IsValue"): 0.000,
    ("CALC", "i", "i"): 1.000,
    ("CALC", "mscnt", "i"): 0.000,
    ("CALC", "pulscnt", "i"): 0.494,
    ("CALC", "slow_speed", "i"): 0.000,
    ("CALC", "stopped", "i"): 0.013,
    ("CALC", "i", "SetValue"): 0.056,
    ("CALC", "mscnt", "SetValue"): 0.530,
    ("CALC", "pulscnt", "SetValue"): 0.000,
    ("CALC", "slow_speed", "SetValue"): 0.892,
    ("CALC", "stopped", "SetValue"): 0.000,
    ("V_REG", "SetValue", "OutValue"): 0.885,
    ("V_REG", "IsValue", "OutValue"): 0.896,
    ("PRES_A", "OutValue", "TOC2"): 0.875,
}

#: Table 2 — signal error exposures.
PAPER_TABLE2_EXPOSURE: Dict[str, float] = {
    "OutValue": 1.781,
    "i": 1.507,
    "SetValue": 1.478,
    "ms_slot_nbr": 1.000,
    "pulscnt": 0.957,
    "TOC2": 0.875,
    "slow_speed": 0.010,
    "IsValue": 0.000,
    "mscnt": 0.000,
    "stopped": 0.000,
}

#: Table 2 — the PA-approach's selection decision per signal.
PAPER_TABLE2_SELECTED: Dict[str, bool] = {
    "OutValue": True,
    "i": True,
    "SetValue": True,
    "ms_slot_nbr": False,
    "pulscnt": True,
    "TOC2": False,
    "slow_speed": False,
    "IsValue": False,
    "mscnt": False,
    "stopped": False,
}

#: Table 3 — (ROM bytes, RAM bytes) per EA instance.
PAPER_TABLE3_EA_COSTS: Dict[str, Tuple[int, int]] = {
    "EA1": (50, 14),
    "EA2": (50, 14),
    "EA3": (25, 13),
    "EA4": (25, 13),
    "EA5": (37, 13),
    "EA6": (25, 13),
    "EA7": (50, 14),
}

#: Table 3 — (ROM, RAM) totals for the EH-set and the PA-set.
PAPER_TABLE3_TOTALS: Dict[str, Tuple[int, int]] = {
    "EH": (262, 94),
    "PA": (150, 54),
}

#: Table 4 — coverage per EA for errors injected at system inputs.
#: rows: target signal -> {n_err, per-EA coverage (None = dash), total}.
PAPER_TABLE4: Dict[str, Dict[str, Optional[float]]] = {
    "PACNT": {
        "n_err": 1856, "EA1": 0.218, "EA2": 0.105, "EA3": None,
        "EA4": 0.975, "EA5": None, "EA6": None, "EA7": 0.005,
        "total": 0.975,
    },
    "TIC1": {
        "n_err": 3712, "EA1": None, "EA2": None, "EA3": None,
        "EA4": None, "EA5": None, "EA6": None, "EA7": None, "total": 0.0,
    },
    "TCNT": {
        "n_err": 3712, "EA1": None, "EA2": None, "EA3": None,
        "EA4": None, "EA5": None, "EA6": None, "EA7": None, "total": 0.0,
    },
    "All": {
        "n_err": 9280, "EA1": 0.062, "EA2": 0.040, "EA3": None,
        "EA4": 0.195, "EA5": None, "EA6": None, "EA7": 0.001,
        "total": 0.195,
    },
}

#: Table 5 — impact on TOC2 per signal (None: no value assigned).
PAPER_TABLE5_IMPACT: Dict[str, Optional[float]] = {
    "PACNT": 0.027,
    "TCNT": 0.000,
    "TIC1": 0.000,
    "ADC": 0.000,
    "OutValue": 0.875,
    "i": 0.043,
    "SetValue": 0.774,
    "ms_slot_nbr": 0.000,
    "pulscnt": 0.021,
    "TOC2": None,
    "slow_speed": 0.691,
    "IsValue": 0.784,
    "mscnt": 0.410,
    "stopped": 0.001,
}

#: Section 5.1 / 5.3 — the two location sets.
PAPER_EH_SET = (
    "SetValue", "IsValue", "i", "pulscnt", "ms_slot_nbr", "mscnt", "OutValue",
)
PAPER_PA_SET = ("SetValue", "i", "pulscnt", "OutValue")


def paper_matrix(system: SystemModel) -> PermeabilityMatrix:
    """The paper's Table 1 as a :class:`PermeabilityMatrix`.

    Lets the analytic stages (exposure, impact, placement) be run on
    the published permeabilities — useful both as a cross-check of the
    analysis implementation (it must reproduce Tables 2 and 5 exactly)
    and as a reference profile.
    """
    values = {}
    for pair in system.io_pairs():
        key = (pair.module, pair.in_port, pair.out_port)
        values[pair] = PAPER_TABLE1[key]
    return PermeabilityMatrix.from_values(system, values)
