"""CLI entry point: ``python -m repro.experiments [ids...]``.

Options
-------
``--scale {test,bench,full}``
    Workload scale (default: ``REPRO_SCALE`` or ``bench``).
``--seed N``
    Campaign seed (default 2002).
``ids``
    Experiment ids to run (default: all).  Known ids:
    table1 table2 table3 table4 figure3 table5 profiles extended.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.context import ExperimentContext, SCALES, default_scale
from repro.experiments.runner import EXPERIMENTS, run_all


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "ids",
        nargs="*",
        choices=list(EXPERIMENTS) + [[]],
        help="experiments to run (default: all)",
    )
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default=default_scale()
    )
    parser.add_argument("--seed", type=int, default=2002)
    args = parser.parse_args(argv)
    ctx = ExperimentContext(scale=args.scale, seed=args.seed)
    run_all(ctx, only=args.ids or None)
    return 0


if __name__ == "__main__":
    sys.exit(main())
