"""CLI entry point: ``python -m repro.experiments [ids...]``.

Options
-------
``--scale {test,bench,full}``
    Workload scale (default: ``REPRO_SCALE`` or ``bench``).
``--seed N``
    Campaign seed (default 2002).
``--target NAME``
    Registered target system (default ``arrestment``).
``--jobs N``
    Worker processes for the fault-injection campaigns (default 1,
    i.e. serial; results are bit-identical either way).
``--resume`` / ``--checkpoint-dir DIR``
    Checkpoint campaigns to disk and resume partial ones.
``--task-timeout S`` / ``--retries N``
    Fault tolerance: per-run wall-clock budget and per-task attempt
    budget; exhausted tasks are quarantined instead of aborting.
``--event-log PATH``
    Append a JSONL log of campaign run events for forensics.
``--checkpoint-stride N`` / ``--no-fast-forward``
    Snapshot engine: distance between golden checkpoints in ticks,
    and an off switch (results are bit-identical either way).
``--audit-fraction F`` / ``--audit-seed N`` / ``--integrity-policy P``
    Result integrity: re-execute a seeded fraction of fast-forwarded
    runs full-length and field-diff the outcomes; ``strict`` aborts
    on a violation, ``repair`` (default) self-heals, ``off`` disables
    verification (audits, checkpoint digests and drift sentinels).
``ids``
    Experiment ids to run (default: all).  Known ids:
    table1 table2 table3 table4 figure3 table5 profiles extended.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.context import ExperimentContext, SCALES, default_scale
from repro.experiments.runner import EXPERIMENTS, run_all
from repro.targets import available_targets


def add_execution_options(parser: argparse.ArgumentParser) -> None:
    """The campaign-execution flags shared by the CLI entry points."""
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default=default_scale()
    )
    parser.add_argument("--seed", type=int, default=2002)
    parser.add_argument(
        "--target", choices=available_targets(), default="arrestment",
        help="registered target system (default: arrestment)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for campaigns (default: 1 = serial)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume partially completed campaigns from checkpoints",
    )
    parser.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="directory for campaign checkpoints "
        "(default with --resume: .repro-checkpoints/<target>-<scale>-<seed>)",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="S",
        help="per-run wall-clock budget in seconds "
        "(default: unlimited; exceeded runs are retried, then quarantined)",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="extra attempts for a failing run before it is "
        "quarantined as a TaskFailure (default: 1)",
    )
    parser.add_argument(
        "--event-log", default=None, metavar="PATH",
        help="append campaign run events (task finish/retry/failure, "
        "checkpoint flushes, pool respawns) to this JSONL file",
    )
    parser.add_argument(
        "--checkpoint-stride", type=int, default=None, metavar="N",
        help="ticks between golden snapshots for fast-forwarded "
        "injection runs (default: engine default)",
    )
    parser.add_argument(
        "--no-fast-forward", action="store_true",
        help="disable the snapshot/fast-forward engine and simulate "
        "every injected run from tick 0 (results are bit-identical)",
    )
    parser.add_argument(
        "--audit-fraction", type=float, default=0.0, metavar="F",
        help="fraction of fast-forwarded runs re-executed full-length "
        "and field-diffed against the fast-forward result (default: 0)",
    )
    parser.add_argument(
        "--audit-seed", type=int, default=None, metavar="N",
        help="seed of the deterministic audit sample "
        "(default: the campaign seed)",
    )
    parser.add_argument(
        "--integrity-policy", choices=("strict", "repair", "off"),
        default=None, metavar="P",
        help="how integrity violations are handled: strict aborts, "
        "repair self-heals from a trusted recomputation (default), "
        "off disables verification",
    )


def context_from_args(args: argparse.Namespace) -> ExperimentContext:
    return ExperimentContext(
        scale=args.scale,
        seed=args.seed,
        target=args.target,
        jobs=args.jobs,
        resume=args.resume,
        checkpoint_dir=args.checkpoint_dir,
        task_timeout=args.task_timeout,
        retries=args.retries,
        event_log=args.event_log,
        fast_forward=not args.no_fast_forward,
        checkpoint_stride=args.checkpoint_stride,
        audit_fraction=args.audit_fraction,
        audit_seed=args.audit_seed,
        integrity_policy=args.integrity_policy,
    )


def report_telemetry(ctx: ExperimentContext) -> None:
    for telemetry in ctx.telemetries.values():
        print(telemetry.render(), file=sys.stderr)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "ids",
        nargs="*",
        choices=list(EXPERIMENTS) + [[]],
        help="experiments to run (default: all)",
    )
    add_execution_options(parser)
    args = parser.parse_args(argv)
    ctx = context_from_args(args)
    run_all(ctx, only=args.ids or None)
    report_telemetry(ctx)
    return 0


if __name__ == "__main__":
    sys.exit(main())
