"""CLI entry point: ``python -m repro.experiments [ids...]``.

Options
-------
``--scale {test,bench,full}``
    Workload scale (default: ``REPRO_SCALE`` or ``bench``).
``--seed N``
    Campaign seed (default 2002).
``--target NAME``
    Registered target system (default ``arrestment``).
``--jobs N`` / ``--backend {serial,process}``
    Worker processes for the fault-injection campaigns (default 1,
    i.e. serial; results are bit-identical either way), and an
    explicit backend pin overriding the jobs-derived default.
``--resume`` / ``--checkpoint-dir DIR``
    Checkpoint campaigns to disk and resume partial ones.
``--task-timeout S`` / ``--retries N``
    Fault tolerance: per-run wall-clock budget and per-task attempt
    budget; exhausted tasks are quarantined instead of aborting.
``--event-log PATH``
    Append a JSONL log of campaign run events for forensics.
``--checkpoint-stride N`` / ``--no-fast-forward``
    Snapshot engine: distance between golden checkpoints in ticks,
    and an off switch (results are bit-identical either way).
``--audit-fraction F`` / ``--audit-seed N`` / ``--integrity-policy P``
    Result integrity: re-execute a seeded fraction of fast-forwarded
    runs full-length and field-diff the outcomes; ``strict`` aborts
    on a violation, ``repair`` (default) self-heals, ``off`` disables
    verification (audits, checkpoint digests and drift sentinels).
``--adaptive`` / ``--fixed-n``
    Campaign scheduling: ``--adaptive`` switches the sampled
    campaigns to sequential Wilson-bound batching with early
    stopping; ``--fixed-n`` (default) runs the full per-stratum
    budget unconditionally.
``--ci-level L`` / ``--ci-halfwidth W`` / ``--min-batch N`` / ``--max-runs N``
    Adaptive-sampling tuning: confidence level (default 0.95),
    two-sided half-width target (default 0.2; 0 disables early
    stopping while keeping the batched scheduler), per-stratum batch
    size per round (default 4), and per-stratum budget override
    (default: the scale's run count).
``--store {json,sqlite}`` / ``--results-db PATH`` / ``--run-name NAME``
    Result store: checkpoint backend selection (sqlite streams every
    campaign into one ``results.db``; results are bit-identical to
    the json backend), plus a results database that archives finished
    campaign results under ``<run-name>/<campaign>`` for
    ``python -m repro analyze`` to list, show and diff.
``ids``
    Experiment ids to run (default: all).  Known ids:
    table1 table2 table3 table4 figure3 table5 profiles extended.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.context import ExperimentContext, SCALES, default_scale
from repro.experiments.runner import EXPERIMENTS, run_all
from repro.targets import available_targets


def add_execution_options(parser: argparse.ArgumentParser) -> None:
    """The campaign-execution flags shared by the CLI entry points."""
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default=default_scale()
    )
    parser.add_argument("--seed", type=int, default=2002)
    parser.add_argument(
        "--target", choices=available_targets(), default="arrestment",
        help="registered target system (default: arrestment)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for campaigns (default: 1 = serial)",
    )
    parser.add_argument(
        "--backend", choices=("serial", "process"), default=None,
        help="pin the execution backend (default: derived from "
        "--jobs; results are bit-identical either way)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume partially completed campaigns from checkpoints",
    )
    parser.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="directory for campaign checkpoints "
        "(default with --resume: .repro-checkpoints/<target>-<scale>-<seed>)",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="S",
        help="per-run wall-clock budget in seconds "
        "(default: unlimited; exceeded runs are retried, then quarantined)",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="extra attempts for a failing run before it is "
        "quarantined as a TaskFailure (default: 1)",
    )
    parser.add_argument(
        "--event-log", default=None, metavar="PATH",
        help="append campaign run events (task finish/retry/failure, "
        "checkpoint flushes, pool respawns) to this JSONL file",
    )
    parser.add_argument(
        "--checkpoint-stride", type=int, default=None, metavar="N",
        help="ticks between golden snapshots for fast-forwarded "
        "injection runs (default: engine default)",
    )
    parser.add_argument(
        "--no-fast-forward", action="store_true",
        help="disable the snapshot/fast-forward engine and simulate "
        "every injected run from tick 0 (results are bit-identical)",
    )
    parser.add_argument(
        "--no-track-pool", action="store_true",
        help="keep golden checkpoint tracks as plain dicts instead "
        "of shared-memory columns (results are bit-identical)",
    )
    parser.add_argument(
        "--batch-width", type=int, default=0, metavar="N",
        help="vectorized batch core: advance up to N injected runs "
        "per tick in each worker (default: 0 = scalar path; results "
        "are bit-identical)",
    )
    parser.add_argument(
        "--audit-fraction", type=float, default=0.0, metavar="F",
        help="fraction of fast-forwarded runs re-executed full-length "
        "and field-diffed against the fast-forward result (default: 0)",
    )
    parser.add_argument(
        "--audit-seed", type=int, default=None, metavar="N",
        help="seed of the deterministic audit sample "
        "(default: the campaign seed)",
    )
    parser.add_argument(
        "--integrity-policy", choices=("strict", "repair", "off"),
        default=None, metavar="P",
        help="how integrity violations are handled: strict aborts, "
        "repair self-heals from a trusted recomputation (default), "
        "off disables verification",
    )
    scheduling = parser.add_mutually_exclusive_group()
    scheduling.add_argument(
        "--adaptive", action="store_true",
        help="sequential Wilson-bound scheduling: dispatch the "
        "sampled campaigns in per-stratum batches and stop each "
        "stratum once its estimates are certified (architectural "
        "zero, saturated, or within the half-width target)",
    )
    scheduling.add_argument(
        "--fixed-n", action="store_true",
        help="run the full per-stratum budget unconditionally "
        "(the default)",
    )
    parser.add_argument(
        "--ci-level", type=float, default=None, metavar="L",
        help="confidence level of the adaptive stopping intervals "
        "(default: 0.95)",
    )
    parser.add_argument(
        "--ci-halfwidth", type=float, default=None, metavar="W",
        help="two-sided Wilson half-width target that stops a "
        "stratum (default: 0.2; 0 disables early stopping entirely, "
        "making the adaptive schedule bit-identical to fixed-n)",
    )
    parser.add_argument(
        "--min-batch", type=int, default=None, metavar="N",
        help="injection runs dispatched per stratum per adaptive "
        "round (default: 4)",
    )
    parser.add_argument(
        "--max-runs", type=int, default=None, metavar="N",
        help="per-stratum budget cap for adaptive campaigns "
        "(default: the scale's per-stratum run count)",
    )
    parser.add_argument(
        "--store", choices=("json", "sqlite"), default=None,
        help="checkpoint store backend: json keeps one legacy "
        "<campaign>.json file per campaign, sqlite streams every "
        "campaign into one <checkpoint-dir>/results.db database "
        "(default: by path suffix, i.e. json)",
    )
    parser.add_argument(
        "--results-db", default=None, metavar="PATH",
        help="also save finished campaign results into this sqlite "
        "results database, queryable with 'python -m repro analyze'",
    )
    parser.add_argument(
        "--run-name", default=None, metavar="NAME",
        help="run name for results saved to --results-db "
        "(default: <target>-<scale>-seed<seed>)",
    )


def context_from_args(args: argparse.Namespace) -> ExperimentContext:
    return ExperimentContext(
        scale=args.scale,
        seed=args.seed,
        target=args.target,
        jobs=args.jobs,
        backend=args.backend,
        resume=args.resume,
        checkpoint_dir=args.checkpoint_dir,
        task_timeout=args.task_timeout,
        retries=args.retries,
        event_log=args.event_log,
        fast_forward=not args.no_fast_forward,
        checkpoint_stride=args.checkpoint_stride,
        track_pool=not args.no_track_pool,
        batch_width=args.batch_width,
        audit_fraction=args.audit_fraction,
        audit_seed=args.audit_seed,
        integrity_policy=args.integrity_policy,
        adaptive=args.adaptive,
        ci_level=args.ci_level,
        ci_halfwidth=args.ci_halfwidth,
        min_batch=args.min_batch,
        max_runs=args.max_runs,
        store_backend=args.store,
        results_db=args.results_db,
        run_name=args.run_name,
    )


def report_telemetry(ctx: ExperimentContext) -> None:
    for telemetry in ctx.telemetries.values():
        print(telemetry.render(), file=sys.stderr)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "ids",
        nargs="*",
        choices=list(EXPERIMENTS) + [[]],
        help="experiments to run (default: all)",
    )
    add_execution_options(parser)
    args = parser.parse_args(argv)
    ctx = context_from_args(args)
    run_all(ctx, only=args.ids or None)
    report_telemetry(ctx)
    return 0


if __name__ == "__main__":
    sys.exit(main())
