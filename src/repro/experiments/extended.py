"""Experiment: Section 10 — extended analysis and selection.

Runs the extended placement engine (propagation + effect analysis,
with the memory-error-model rule active) on the measured permeability
matrix and checks the paper's Section 10 narrative:

* the PA selection {SetValue, i, pulscnt, OutValue} is kept;
* effect analysis adds the high-impact signals IsValue and mscnt;
* slow_speed has high impact but is rejected (boolean — the EA
  catalogue is not geared at boolean values);
* ms_slot_nbr is added because its self-permeability is ~1 and the
  memory error model reaches its backing store directly;
* the resulting set equals the EH-set, so the extended framework
  recovers EH-level coverage under the harsher error model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.placement import PlacementResult, extended_placement
from repro.edm.catalogue import EH_SET
from repro.experiments.context import ExperimentContext

__all__ = ["ExtendedResult", "run_extended"]

#: effect-analysis selection threshold used for the target experiments;
#: the paper applies the rule qualitatively ("signals IsValue, mscnt and
#: slow_speed may be considered"), we fix a concrete threshold
IMPACT_THRESHOLD = 0.10
#: self-permeability threshold for the memory-error-model rule
SELF_PERMEABILITY_THRESHOLD = 0.8


@dataclass
class ExtendedResult:
    placement: PlacementResult

    @property
    def selected(self) -> List[str]:
        return self.placement.selected

    def matches_eh_set(self) -> bool:
        return set(self.selected) == set(EH_SET)

    def render(self) -> str:
        lines = [
            "Section 10: extended analysis of the target system "
            "(PA + effect analysis, memory error model)",
            self.placement.render(),
            "",
            f"selected set: {sorted(self.selected)}",
            f"EH-set:       {sorted(EH_SET)}",
            f"extended selection equals EH-set: {self.matches_eh_set()}",
        ]
        return "\n".join(lines)


def run_extended(ctx: ExperimentContext) -> ExtendedResult:
    placement = extended_placement(
        ctx.measured_matrix(),
        ctx.graph,
        impact_threshold=IMPACT_THRESHOLD,
        output="TOC2",
        memory_error_model=True,
        self_permeability_threshold=SELF_PERMEABILITY_THRESHOLD,
    )
    return ExtendedResult(placement=placement)
