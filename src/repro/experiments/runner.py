"""Run every paper experiment and print the full report."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments.context import ExperimentContext, default_scale
from repro.experiments.extended import run_extended
from repro.experiments.figure3 import run_figure3
from repro.experiments.profiles import run_profiles
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5

__all__ = ["EXPERIMENTS", "run_all"]

#: experiment id -> runner.  Order matches the paper's narrative.
EXPERIMENTS: Dict[str, Callable[[ExperimentContext], object]] = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "figure3": run_figure3,
    "table5": run_table5,
    "profiles": run_profiles,
    "extended": run_extended,
}


def run_all(
    ctx: Optional[ExperimentContext] = None,
    only: Optional[List[str]] = None,
    echo: Callable[[str], None] = print,
) -> Dict[str, object]:
    """Run the selected experiments; returns id -> result object."""
    if ctx is None:
        ctx = ExperimentContext(scale=default_scale())
    selected = only if only is not None else list(EXPERIMENTS)
    results: Dict[str, object] = {}
    for exp_id in selected:
        runner = EXPERIMENTS[exp_id]
        started = time.time()
        result = runner(ctx)
        elapsed = time.time() - started
        results[exp_id] = result
        echo("")
        echo("=" * 72)
        echo(f"[{exp_id}]  ({elapsed:.1f} s, scale={ctx.scale.name})")
        echo("=" * 72)
        echo(result.render())
    return results
