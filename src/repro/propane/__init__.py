"""PROPANE-style campaign orchestration.

Named after the tool the paper's campaigns ran on (reference [8]):
declarative experiment *descriptions*, a directory-backed experiment
*database* with persisted results, and *readouts* that render the
statistics.  Typical use::

    from repro.propane import (
        CampaignKind, ExperimentDatabase, ExperimentDescription, readout,
    )

    db = ExperimentDatabase("experiments/")
    db.add(ExperimentDescription(
        name="perm-envelope",
        kind=CampaignKind.PERMEABILITY,
        test_case_ids=(0, 6, 12, 18, 24),
        params={"runs_per_input": 24},
    ))
    results = db.run_all()
    print(readout(results["perm-envelope"]))
"""

from repro.propane.database import ExperimentDatabase
from repro.propane.description import CampaignKind, ExperimentDescription
from repro.propane.readout import (
    detection_readout,
    memory_readout,
    permeability_readout,
    readout,
)
from repro.propane.runner import run_description

__all__ = [
    "CampaignKind",
    "ExperimentDatabase",
    "ExperimentDescription",
    "detection_readout",
    "memory_readout",
    "permeability_readout",
    "readout",
    "run_description",
]
