"""Declarative experiment descriptions.

The paper's campaigns were driven by PROPANE ("A Tool for Examining
the Behavior of Faults and Errors in Software", the paper's reference
[8]), which separates the *description* of an injection experiment
from its execution and readout.  An :class:`ExperimentDescription`
captures everything needed to run one campaign reproducibly:

* which campaign kind (permeability / detection / memory / recovery);
* the workload (test-case selection out of the standard envelope);
* the campaign parameters (run counts, targets, location stride,
  injection period);
* the seed.

Descriptions serialize to plain dictionaries (and therefore JSON), so
an experiment plan can live in version control next to the code it
exercises.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ExperimentError

__all__ = ["CampaignKind", "ExperimentDescription"]


class CampaignKind(enum.Enum):
    PERMEABILITY = "permeability"
    DETECTION = "detection"
    MEMORY = "memory"
    RECOVERY = "recovery"


#: parameter names accepted per campaign kind (beyond the common ones)
_KIND_PARAMS = {
    CampaignKind.PERMEABILITY: {"runs_per_input", "direct_only"},
    CampaignKind.DETECTION: {"runs_per_signal", "targets"},
    CampaignKind.MEMORY: {"location_stride", "period_ticks"},
    CampaignKind.RECOVERY: {"location_stride", "period_ticks"},
}


@dataclass(frozen=True)
class ExperimentDescription:
    """One reproducible campaign specification.

    Parameters
    ----------
    name:
        Unique identity within a database (used as the file stem).
    kind:
        Campaign kind.
    test_case_ids:
        Indices into the standard 25-case envelope; an empty tuple
        means all 25.
    seed:
        Campaign RNG seed.
    params:
        Kind-specific parameters (see ``_KIND_PARAMS``); unknown keys
        are rejected so that typos fail loudly at description time,
        not after an hour of injections.
    notes:
        Free-text documentation carried alongside the results.
    """

    name: str
    kind: CampaignKind
    test_case_ids: tuple = ()
    seed: int = 2002
    params: Dict[str, Any] = field(default_factory=dict)
    notes: str = ""

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise ExperimentError(
                f"experiment name must be a non-empty path-safe string, "
                f"got {self.name!r}"
            )
        allowed = _KIND_PARAMS[self.kind]
        unknown = set(self.params) - allowed
        if unknown:
            raise ExperimentError(
                f"experiment {self.name!r}: unknown parameters "
                f"{sorted(unknown)} for kind {self.kind.value!r} "
                f"(allowed: {sorted(allowed)})"
            )
        for case_id in self.test_case_ids:
            if not 0 <= int(case_id) < 25:
                raise ExperimentError(
                    f"experiment {self.name!r}: test case id {case_id} "
                    f"out of range 0..24"
                )

    # ------------------------------------------------------------------
    # (De)serialization.
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind.value,
            "test_case_ids": list(self.test_case_ids),
            "seed": self.seed,
            "params": dict(self.params),
            "notes": self.notes,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentDescription":
        try:
            kind = CampaignKind(data["kind"])
        except (KeyError, ValueError) as exc:
            raise ExperimentError(
                f"invalid experiment description: {exc}"
            ) from exc
        return cls(
            name=data.get("name", ""),
            kind=kind,
            test_case_ids=tuple(data.get("test_case_ids", ())),
            seed=int(data.get("seed", 2002)),
            params=dict(data.get("params", {})),
            notes=data.get("notes", ""),
        )

    def resolve_test_cases(self):
        """Materialize the selected test cases."""
        from repro.target.testcases import standard_test_cases

        cases = standard_test_cases()
        if not self.test_case_ids:
            return cases
        return [cases[int(i)] for i in self.test_case_ids]
