"""Directory-backed experiment database.

One directory holds, per experiment, a description file
(``<name>.desc.json``), a result file (``<name>.result.json``, a
:class:`~repro.fi.store.JsonCheckpointStore` result envelope) and a status file
(``<name>.status.json`` with timing and completion metadata) — so a
long injection plan survives interruptions and re-runs skip completed
experiments unless forced.

Recovery-campaign results have no serializer (they are cheap to
re-run and their outcome objects carry simulator-specific labels), so
RECOVERY experiments are run-only: their results are returned but not
persisted.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.errors import ExperimentError
from repro.fi.store import JsonCheckpointStore
from repro.propane.description import CampaignKind, ExperimentDescription
from repro.propane.runner import run_description

__all__ = ["ExperimentDatabase"]


class ExperimentDatabase:
    """A plan of experiments plus their persisted outcomes."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Paths.
    # ------------------------------------------------------------------
    def _desc_path(self, name: str) -> Path:
        return self.root / f"{name}.desc.json"

    def _result_path(self, name: str) -> Path:
        return self.root / f"{name}.result.json"

    def _status_path(self, name: str) -> Path:
        return self.root / f"{name}.status.json"

    # ------------------------------------------------------------------
    # Plan management.
    # ------------------------------------------------------------------
    def add(self, description: ExperimentDescription) -> None:
        """Register a description (idempotent if unchanged)."""
        path = self._desc_path(description.name)
        payload = json.dumps(description.to_dict(), indent=2)
        if path.exists() and path.read_text() != payload:
            raise ExperimentError(
                f"experiment {description.name!r} already exists with a "
                f"different description; remove it or choose a new name"
            )
        path.write_text(payload)

    def names(self) -> List[str]:
        return sorted(
            p.name[: -len(".desc.json")]
            for p in self.root.glob("*.desc.json")
        )

    def description(self, name: str) -> ExperimentDescription:
        path = self._desc_path(name)
        if not path.exists():
            raise ExperimentError(f"no experiment {name!r} in {self.root}")
        return ExperimentDescription.from_dict(
            json.loads(path.read_text())
        )

    def is_complete(self, name: str) -> bool:
        status = self.status(name)
        return bool(status and status.get("completed"))

    def status(self, name: str) -> Optional[Dict]:
        path = self._status_path(name)
        if not path.exists():
            return None
        return json.loads(path.read_text())

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def run(
        self,
        name: str,
        factory: Optional[Callable] = None,
        force: bool = False,
    ):
        """Run one experiment; persists and returns its result.

        Completed experiments are loaded from disk unless *force*.
        """
        description = self.description(name)
        if (
            not force
            and self.is_complete(name)
            and description.kind is not CampaignKind.RECOVERY
        ):
            return JsonCheckpointStore(
                str(self._result_path(name))
            ).load_result()
        started = time.time()
        result = run_description(description, factory)
        elapsed = time.time() - started
        if description.kind is not CampaignKind.RECOVERY:
            JsonCheckpointStore(
                str(self._result_path(name))
            ).save_result(result)
        self._status_path(name).write_text(
            json.dumps(
                {
                    "completed": True,
                    "elapsed_seconds": elapsed,
                    "kind": description.kind.value,
                    "persisted": (
                        description.kind is not CampaignKind.RECOVERY
                    ),
                },
                indent=2,
            )
        )
        return result

    def run_all(
        self,
        factory: Optional[Callable] = None,
        force: bool = False,
    ) -> Dict[str, object]:
        """Run every registered experiment; returns name -> result."""
        return {
            name: self.run(name, factory=factory, force=force)
            for name in self.names()
        }

    def result(self, name: str):
        """Load a persisted result without running anything."""
        path = self._result_path(name)
        if not path.exists():
            raise ExperimentError(
                f"experiment {name!r} has no persisted result"
            )
        return JsonCheckpointStore(str(path)).load_result()
