"""Execution of experiment descriptions."""

from __future__ import annotations

from typing import Callable, Optional

from repro.edm.catalogue import EA_BY_NAME
from repro.errors import ExperimentError
from repro.fi.campaign import (
    DetectionCampaign,
    MemoryCampaign,
    PermeabilityCampaign,
    RecoveryCampaign,
)
from repro.fi.memory import MemoryMap
from repro.propane.description import CampaignKind, ExperimentDescription
from repro.target.simulation import ArrestmentSimulator

__all__ = ["run_description"]


def _default_factory(test_case):
    return ArrestmentSimulator(test_case)


def run_description(
    description: ExperimentDescription,
    factory: Optional[Callable] = None,
):
    """Run the campaign a description specifies; returns its result.

    *factory* builds simulators per test case and defaults to the
    standard arrestment target; pass
    :func:`repro.target.variants.telemetry_simulator` (or your own)
    for variant targets.
    """
    factory = factory or _default_factory
    cases = description.resolve_test_cases()
    params = description.params
    if description.kind is CampaignKind.PERMEABILITY:
        return PermeabilityCampaign(
            factory,
            cases,
            runs_per_input=params.get("runs_per_input", 16),
            seed=description.seed,
            direct_only=params.get("direct_only", True),
        ).run()
    if description.kind is CampaignKind.DETECTION:
        return DetectionCampaign(
            factory,
            cases,
            list(EA_BY_NAME.values()),
            runs_per_signal=params.get("runs_per_signal", 24),
            targets=params.get("targets"),
            seed=description.seed,
        ).run()
    if description.kind in (CampaignKind.MEMORY, CampaignKind.RECOVERY):
        probe = factory(cases[0])
        stride = int(params.get("location_stride", 1))
        if stride <= 0:
            raise ExperimentError(
                f"experiment {description.name!r}: location_stride must "
                f"be positive"
            )
        locations = MemoryMap(probe.system).locations()[::stride]
        common = dict(
            locations=locations,
            period_ticks=params.get("period_ticks", 20),
            seed=description.seed,
        )
        if description.kind is CampaignKind.MEMORY:
            return MemoryCampaign(
                factory, cases, list(EA_BY_NAME.values()), **common
            ).run()
        return RecoveryCampaign(
            factory, cases, list(EA_BY_NAME.values()), **common
        ).run()
    raise ExperimentError(
        f"unsupported campaign kind {description.kind!r}"
    )
