"""Readouts: turning persisted campaign results into reports.

PROPANE's third stage after description and execution.  Each readout
takes a campaign result and renders the analysis the paper's
corresponding table draws from it, with the statistical treatment from
:mod:`repro.analysis.coverage` applied.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.analysis.coverage import (
    binomial_estimate,
    detection_estimates,
    memory_estimates,
)
from repro.analysis.tables import render_table
from repro.edm.catalogue import EH_SET, PA_SET, assertion_names_for_signals
from repro.errors import ExperimentError
from repro.fi.campaign import (
    DetectionResult,
    MemoryCampaignResult,
    PermeabilityEstimate,
)

__all__ = [
    "permeability_readout",
    "detection_readout",
    "memory_readout",
    "readout",
]


def permeability_readout(estimate: PermeabilityEstimate) -> str:
    """Per-pair estimates with Wilson intervals."""
    rows = []
    for (module, in_port, out_port), value in sorted(
        estimate.values.items()
    ):
        n = estimate.active_runs[(module, in_port)]
        detected = estimate.direct_counts[(module, in_port, out_port)]
        interval = binomial_estimate(detected, n)
        rows.append(
            (
                module, in_port, out_port, value,
                interval.low, interval.high, n,
            )
        )
    return render_table(
        headers=[
            "Module", "Input", "Output", "P", "low95", "high95", "n",
        ],
        rows=rows,
        title="permeability readout (Wilson 95 % intervals)",
    )


def detection_readout(
    result: DetectionResult,
    ea_subsets: Optional[dict] = None,
) -> str:
    """Per-target coverage with intervals, per EA set."""
    subsets = (
        ea_subsets
        if ea_subsets is not None
        else {
            "EH": assertion_names_for_signals(EH_SET),
            "PA": assertion_names_for_signals(PA_SET),
        }
    )
    sections = []
    for set_name, eas in subsets.items():
        estimates = detection_estimates(result, eas)
        rows = [
            (
                target,
                result.n_err[target],
                est.point, est.low, est.high,
            )
            for target, est in estimates.items()
        ]
        latency = result.latency_stats(ea_subset=eas)
        table = render_table(
            headers=["Target", "n_err", "coverage", "low95", "high95"],
            rows=rows,
            title=f"detection readout: {set_name}-set",
        )
        sections.append(
            table
            + f"\nfirst-detection latency: mean {latency.mean:.1f} ticks, "
            f"median {latency.median:.1f}, max {latency.maximum} "
            f"({latency.count} detections)"
        )
    return "\n\n".join(sections)


def memory_readout(
    result: MemoryCampaignResult,
    ea_subsets: Optional[dict] = None,
) -> str:
    """Per-region coverage with intervals, per EA set."""
    subsets = (
        ea_subsets
        if ea_subsets is not None
        else {
            "EH": assertion_names_for_signals(EH_SET),
            "PA": assertion_names_for_signals(PA_SET),
        }
    )
    rows = []
    for set_name, eas in subsets.items():
        estimates = memory_estimates(result, eas)
        for area in ("ram", "stack", "total"):
            est = estimates[area]
            rows.append(
                (set_name, area, est.point, est.low, est.high, est.n)
            )
    return render_table(
        headers=["EA set", "Area", "coverage", "low95", "high95", "n"],
        rows=rows,
        title="memory-model readout (Wilson/stratified 95 % intervals)",
    )


def readout(result) -> str:
    """Dispatch on the result type."""
    if isinstance(result, PermeabilityEstimate):
        return permeability_readout(result)
    if isinstance(result, DetectionResult):
        return detection_readout(result)
    if isinstance(result, MemoryCampaignResult):
        return memory_readout(result)
    raise ExperimentError(
        f"no readout for result type {type(result).__name__}"
    )
