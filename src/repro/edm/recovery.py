"""Error recovery mechanisms (ERMs): containment wrappers on signals.

The paper's placement framework targets "EDM's *and* ERM's" — its
rules R2 and R3 explicitly reason about where recovery should live —
but its experiments only instantiate the detection side.  This module
supplies the recovery side: a :class:`RecoveringMonitorBank` whose
assertions do not merely record a violation but *contain* it, by
writing a recovery value back into the guarded signal's store before
the consumers of the signal read it.

Recovery policies (per assertion):

* ``HOLD_LAST_GOOD`` — substitute the last value that passed the
  assertion (the classic containment wrapper for transient errors);
* ``CLAMP_TO_SPEC`` — clamp into the assertion's [minimum, maximum]
  range (appropriate for magnitude violations on continuous signals);
* ``DETECT_ONLY`` — record but do not interfere (an EDM without ERM).

Recovery actions are recorded so campaigns can compare failure rates
with and without containment at the same locations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.edm.assertions import AssertionSpec, AssertionState
from repro.edm.monitors import MonitorBank
from repro.errors import AssertionSpecError
from repro.model.signal import Number

__all__ = ["RecoveryPolicy", "RecoveryAction", "RecoveringMonitorBank"]


class RecoveryPolicy(enum.Enum):
    DETECT_ONLY = "detect_only"
    HOLD_LAST_GOOD = "hold_last_good"
    CLAMP_TO_SPEC = "clamp_to_spec"


@dataclass(frozen=True)
class RecoveryAction:
    """One containment intervention."""

    tick: int
    ea_name: str
    signal: str
    observed: Number
    substituted: Number


class RecoveringMonitorBank(MonitorBank):
    """A monitor bank whose assertions contain the errors they detect.

    *policies* maps EA name to :class:`RecoveryPolicy`; unlisted EAs
    default to *default_policy*.  On a violation, the recovery value
    is poked into the signal store, and — crucially for the
    rate/sequence assertion classes — the assertion's own reference
    state continues from the *recovered* value, exactly as the wrapped
    variable now reads.
    """

    def __init__(
        self,
        specs: Sequence[AssertionSpec],
        policies: Optional[Dict[str, RecoveryPolicy]] = None,
        default_policy: RecoveryPolicy = RecoveryPolicy.HOLD_LAST_GOOD,
        period: Optional[int] = None,
    ):
        kwargs = {} if period is None else {"period": period}
        super().__init__(specs, **kwargs)
        self._policies = dict(policies or {})
        for name in self._policies:
            if name not in self._states:
                raise AssertionSpecError(
                    f"recovery policy given for unknown assertion {name!r}"
                )
        self._default_policy = default_policy
        self._last_good: Dict[str, Optional[Number]] = {
            name: None for name in self._states
        }
        self.actions: List[RecoveryAction] = []

    def policy_for(self, ea_name: str) -> RecoveryPolicy:
        return self._policies.get(ea_name, self._default_policy)

    def _recovery_value(
        self, state: AssertionState, observed: Number, policy: RecoveryPolicy
    ) -> Optional[Number]:
        spec = state.spec
        if policy is RecoveryPolicy.HOLD_LAST_GOOD:
            return self._last_good[spec.name]
        if policy is RecoveryPolicy.CLAMP_TO_SPEC:
            value = observed
            if spec.minimum is not None and value < spec.minimum:
                value = spec.minimum
            if spec.maximum is not None and value > spec.maximum:
                value = spec.maximum
            return value if value != observed else self._last_good[spec.name]
        return None

    def _on_tick(self, tick: int) -> None:
        if tick % self.period != self.period - 1:
            return
        store = self._store
        for name, state in self._states.items():
            observed = store[state.spec.signal]
            fired = state.evaluate(observed, tick)
            if not fired:
                self._last_good[name] = observed
                continue
            policy = self.policy_for(name)
            if policy is RecoveryPolicy.DETECT_ONLY:
                continue
            substituted = self._recovery_value(state, observed, policy)
            if substituted is None:
                continue  # nothing trustworthy to substitute yet
            store.poke(state.spec.signal, substituted)
            # the wrapper re-bases the assertion on the recovered value
            state.rebase(substituted)
            self.actions.append(
                RecoveryAction(
                    tick=tick,
                    ea_name=name,
                    signal=state.spec.signal,
                    observed=observed,
                    substituted=substituted,
                )
            )

    @property
    def recovery_count(self) -> int:
        return len(self.actions)
