"""Cost-optimal EA subset selection from fault-injection results.

The paper's Related Work (Section 2) discusses Steininger & Scherrer's
approach (FTCS-27, the paper's reference [18]): use per-run detection
records from fault-injection experiments to find combinations of EDMs
that minimize overlap and maximize the coverage obtained per unit of
cost.  This module implements that analysis over our campaign results:

* :func:`overlap_matrix` — pairwise overlap between EAs: the fraction
  of each EA's detections that another EA also detects (EA4's row in
  the paper's Table 4 discussion — "All errors detected by EA1, EA2 or
  EA7 were also detected by EA4" — shows up as overlap 1.0);
* :func:`marginal_coverages` — each EA's *exclusive* contribution on
  top of the rest of a set;
* :func:`select_subset` — weighted greedy set cover: repeatedly pick
  the EA with the best (new detections / memory cost) ratio, stopping
  when a coverage target is met or no EA adds anything.  Greedy set
  cover is the standard approximation for this NP-hard selection.

All functions consume per-run *fired sets* (``frozenset`` of EA names
per injected run), the common denominator of
:class:`~repro.fi.campaign.DetectionResult` (``run_records``) and
:class:`~repro.fi.campaign.MemoryCampaignResult` (``records[..].fired``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.edm.catalogue import EA_BY_NAME
from repro.errors import AnalysisError

__all__ = [
    "overlap_matrix",
    "marginal_coverages",
    "SubsetSelection",
    "select_subset",
    "fired_sets_of",
]


def fired_sets_of(result) -> List[FrozenSet[str]]:
    """Extract per-run fired sets from either campaign result type."""
    if hasattr(result, "run_records"):  # DetectionResult
        return [
            fired
            for records in result.run_records.values()
            for fired in records
        ]
    if hasattr(result, "records"):  # MemoryCampaignResult
        return [record.fired for record in result.records]
    raise AnalysisError(
        f"cannot extract fired sets from {type(result).__name__}"
    )


def overlap_matrix(
    fired_sets: Sequence[FrozenSet[str]],
    ea_names: Sequence[str],
) -> Dict[Tuple[str, str], float]:
    """``(a, b) -> fraction of a's detections that b also detected``.

    The diagonal is 1.0 by definition (for EAs with any detections);
    EAs that never fired map to 0.0 against everything including
    themselves.
    """
    counts = {name: 0 for name in ea_names}
    joint: Dict[Tuple[str, str], int] = {}
    for fired in fired_sets:
        for a in fired:
            if a not in counts:
                continue
            counts[a] += 1
            for b in fired:
                if b in counts:
                    joint[(a, b)] = joint.get((a, b), 0) + 1
    matrix: Dict[Tuple[str, str], float] = {}
    for a in ea_names:
        for b in ea_names:
            if counts[a] == 0:
                matrix[(a, b)] = 0.0
            else:
                matrix[(a, b)] = joint.get((a, b), 0) / counts[a]
    return matrix


def marginal_coverages(
    fired_sets: Sequence[FrozenSet[str]],
    ea_names: Sequence[str],
) -> Dict[str, float]:
    """Each EA's exclusive contribution to the full set's coverage.

    The fraction of runs detected by this EA and by *no other* EA of
    the set — what would be lost by removing it.
    """
    if not fired_sets:
        return {name: 0.0 for name in ea_names}
    names = set(ea_names)
    exclusive = {name: 0 for name in ea_names}
    for fired in fired_sets:
        relevant = fired & names
        if len(relevant) == 1:
            (only,) = relevant
            exclusive[only] += 1
    return {
        name: count / len(fired_sets)
        for name, count in exclusive.items()
    }


@dataclass
class SubsetSelection:
    """Result of the greedy cost-aware selection."""

    selected: List[str]
    coverage: float  #: coverage of the selected subset
    full_coverage: float  #: coverage of all candidates together
    cost_bytes: int
    full_cost_bytes: int
    #: per selection step: (ea, coverage after adding it, cost so far)
    steps: List[Tuple[str, float, int]]

    @property
    def cost_saving(self) -> float:
        if self.full_cost_bytes == 0:
            return 0.0
        return 1.0 - self.cost_bytes / self.full_cost_bytes

    def render(self) -> str:
        lines = [
            "greedy cost-aware EA subset selection:",
            f"  full set: coverage {self.full_coverage:.3f} at "
            f"{self.full_cost_bytes} bytes",
        ]
        for ea, coverage, cost in self.steps:
            lines.append(
                f"  + {ea}: coverage {coverage:.3f} at {cost} bytes"
            )
        lines.append(
            f"  selected {self.selected} -> coverage {self.coverage:.3f} "
            f"({self.coverage / self.full_coverage:.0%} of full) at "
            f"{self.cost_bytes} bytes "
            f"({self.cost_saving:.0%} cheaper)"
            if self.full_coverage > 0
            else "  nothing to detect"
        )
        return "\n".join(lines)


def _cost_of(name: str, costs: Optional[Dict[str, int]]) -> int:
    if costs is not None:
        if name not in costs:
            raise AnalysisError(f"no cost given for EA {name!r}")
        return costs[name]
    spec = EA_BY_NAME.get(name)
    if spec is None:
        raise AnalysisError(
            f"EA {name!r} is not in the catalogue; pass explicit costs"
        )
    return spec.rom_bytes + spec.ram_bytes


def select_subset(
    fired_sets: Sequence[FrozenSet[str]],
    candidates: Sequence[str],
    costs: Optional[Dict[str, int]] = None,
    coverage_target: Optional[float] = None,
) -> SubsetSelection:
    """Greedy cost-aware subset selection (after the paper's ref [18]).

    Repeatedly adds the candidate EA with the highest ratio of newly
    detected runs to memory cost until either *coverage_target*
    (absolute coverage over the given runs) is reached, or no
    remaining candidate detects anything new.  Costs default to the
    catalogue's ROM+RAM bytes.
    """
    if coverage_target is not None and not 0.0 <= coverage_target <= 1.0:
        raise AnalysisError(
            f"coverage_target must be in [0, 1], got {coverage_target}"
        )
    total_runs = len(fired_sets)
    candidate_list = list(candidates)
    detected_by: Dict[str, set] = {
        name: set() for name in candidate_list
    }
    for index, fired in enumerate(fired_sets):
        for name in fired:
            if name in detected_by:
                detected_by[name].add(index)
    all_detected = set()
    for runs in detected_by.values():
        all_detected |= runs
    full_coverage = len(all_detected) / total_runs if total_runs else 0.0
    full_cost = sum(_cost_of(name, costs) for name in candidate_list)

    covered: set = set()
    selected: List[str] = []
    steps: List[Tuple[str, float, int]] = []
    remaining = list(candidate_list)
    cost_so_far = 0
    while remaining:
        if (
            coverage_target is not None
            and total_runs
            and len(covered) / total_runs >= coverage_target
        ):
            break
        best_name = None
        best_ratio = 0.0
        best_new = 0
        for name in remaining:
            new = len(detected_by[name] - covered)
            if new == 0:
                continue
            ratio = new / max(1, _cost_of(name, costs))
            if ratio > best_ratio:
                best_ratio = ratio
                best_name = name
                best_new = new
        if best_name is None:
            break
        covered |= detected_by[best_name]
        remaining.remove(best_name)
        selected.append(best_name)
        cost_so_far += _cost_of(best_name, costs)
        steps.append(
            (
                best_name,
                len(covered) / total_runs if total_runs else 0.0,
                cost_so_far,
            )
        )
    return SubsetSelection(
        selected=selected,
        coverage=len(covered) / total_runs if total_runs else 0.0,
        full_coverage=full_coverage,
        cost_bytes=cost_so_far,
        full_cost_bytes=full_cost,
        steps=steps,
    )
