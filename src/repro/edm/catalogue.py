"""The EA catalogue of the target system (paper Table 3).

Seven executable assertions, EA1..EA7, one per guardable internal
signal, with the exact per-instance ROM/RAM byte costs reported in
Table 3.  The behavioural parameters (ranges, rate bounds) encode the
signals' *specified* behaviour — the constant parameters the paper
stores in ROM — and are chosen so that no assertion ever fires on a
fault-free run anywhere in the certified test envelope (verified by
the test suite).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.edm.assertions import AssertionSpec, EAKind
from repro.errors import AssertionSpecError

__all__ = [
    "EA_BY_NAME",
    "EA_BY_SIGNAL",
    "EH_SET",
    "PA_SET",
    "EXTENDED_SET",
    "assertions_for_signals",
    "assertion_names_for_signals",
]


def _build_catalogue() -> Dict[str, AssertionSpec]:
    # deferred import: the generic EDM layer must not hard-depend on
    # one concrete target at import time (the parameters below are the
    # arrestment target's, but only materialize on first access)
    from repro.target import constants as C

    max_program_counts = int(max(C.PRESSURE_PROGRAM) * C.VALUE_FULL_SCALE)
    # largest legitimate SetValue step: slew rate x the clamped dt
    setvalue_step = C.SETVALUE_RATE_PER_MS * 100
    specs = [
        AssertionSpec(
            name="EA1", signal="SetValue", kind=EAKind.RANGE_RATE,
            minimum=0, maximum=int(max_program_counts * 1.05),
            max_delta=int(setvalue_step * 1.10),
            rom_bytes=50, ram_bytes=14,
        ),
        AssertionSpec(
            name="EA2", signal="IsValue", kind=EAKind.RANGE_RATE,
            minimum=0, maximum=int(max_program_counts * 1.30),
            # PRES_S's plausibility gate bounds the per-sample slew;
            # allow twice that plus margin (median can move two samples)
            max_delta=6600,
            rom_bytes=50, ram_bytes=14,
        ),
        AssertionSpec(
            name="EA3", signal="i", kind=EAKind.MONOTONIC,
            minimum=0, maximum=len(C.PRESSURE_PROGRAM) - 1,
            max_delta=1,
            rom_bytes=25, ram_bytes=13,
        ),
        AssertionSpec(
            name="EA4", signal="pulscnt", kind=EAKind.MONOTONIC,
            minimum=0,
            maximum=int(
                (C.MAX_STOPPING_DISTANCE_M + C.OVERRUN_ABORT_MARGIN_M)
                * C.PULSES_PER_M * 1.2
            ),
            # max speed 70 m/s * 4 pulses/m * 20 ms = 5.6 pulses per
            # scheduler cycle, rounded up
            max_delta=6,
            rom_bytes=25, ram_bytes=13,
        ),
        AssertionSpec(
            name="EA5", signal="ms_slot_nbr", kind=EAKind.SEQUENCE,
            minimum=0, maximum=C.N_SLOTS - 1,
            # evaluated once per scheduler cycle: the slot number must
            # be back at the same phase every time
            exact_delta=0, modulus=1 << 16,
            rom_bytes=37, ram_bytes=13,
        ),
        AssertionSpec(
            name="EA6", signal="mscnt", kind=EAKind.SEQUENCE,
            # evaluated once per scheduler cycle: exactly N_SLOTS
            # milliseconds must have elapsed (modulo the 16-bit wrap)
            exact_delta=C.N_SLOTS, modulus=1 << 16,
            rom_bytes=25, ram_bytes=13,
        ),
        AssertionSpec(
            name="EA7", signal="OutValue", kind=EAKind.RANGE_RATE,
            minimum=0, maximum=C.VALUE_FULL_SCALE,
            # PI response to the largest legitimate error step, with margin
            max_delta=9000,
            rom_bytes=50, ram_bytes=14,
        ),
    ]
    return {spec.name: spec for spec in specs}


_CATALOGUE: Optional[Dict[str, AssertionSpec]] = None


def _catalogue() -> Dict[str, AssertionSpec]:
    global _CATALOGUE
    if _CATALOGUE is None:
        _CATALOGUE = _build_catalogue()
    return _CATALOGUE


def __getattr__(name: str):
    # PEP 562: EA_BY_NAME / EA_BY_SIGNAL are built on first access so
    # importing this module does not import the arrestment target.
    if name == "EA_BY_NAME":
        #: EA name -> specification (EA1..EA7, costs per paper Table 3).
        return dict(_catalogue())
    if name == "EA_BY_SIGNAL":
        #: guarded signal -> specification.
        return {spec.signal: spec for spec in _catalogue().values()}
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


#: The EH-approach's selected signals (paper Section 5.1).
EH_SET = (
    "SetValue", "IsValue", "i", "pulscnt", "ms_slot_nbr", "mscnt", "OutValue",
)
#: The PA-approach's selected signals (paper Section 5.3, Table 2).
PA_SET = ("SetValue", "i", "pulscnt", "OutValue")
#: The extended framework's selection (paper Section 10) — identical to
#: the EH set, which is the paper's point: effect analysis recovers the
#: full placement systematically.
EXTENDED_SET = EH_SET


def assertions_for_signals(signals: Sequence[str]) -> List[AssertionSpec]:
    """The EA instances guarding *signals* (order: catalogue order)."""
    by_signal = {spec.signal: spec for spec in _catalogue().values()}
    unknown = [s for s in signals if s not in by_signal]
    if unknown:
        raise AssertionSpecError(
            f"no executable assertion in the catalogue for signals "
            f"{unknown}; guardable signals: {sorted(by_signal)}"
        )
    wanted = set(signals)
    return [
        spec for spec in _catalogue().values() if spec.signal in wanted
    ]


def assertion_names_for_signals(signals: Sequence[str]) -> List[str]:
    return [spec.name for spec in assertions_for_signals(signals)]
