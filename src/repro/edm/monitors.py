"""Signal monitors: executable assertions attached to a running system.

A :class:`MonitorBank` instantiates one :class:`AssertionState` per
assertion specification.  The EAs of the target are "functions which
are executed sequentially ... invoked with roughly the same period"
(Section 6.1): once per scheduler cycle each assertion reads its
guarded signal's current value from the signal store and checks it.
Evaluating against the *store* (rather than intercepting producer
writes) matters under the harsher error model: a bit flip landing in
a signal's backing store between two producer invocations is exactly
what the EA must catch.

Monitoring is strictly passive — detection only, no recovery — so a
bank can carry the union of several EA sets in a single run and the
per-set coverages can be derived afterwards from the per-EA firing
records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.edm.assertions import AssertionSpec, AssertionState
from repro.errors import AssertionSpecError

__all__ = ["DetectionRecord", "MonitorBank"]


@dataclass(frozen=True)
class DetectionRecord:
    """Per-EA outcome of one run."""

    ea_name: str
    signal: str
    fired: bool
    first_fire_tick: Optional[int]
    fire_count: int


class MonitorBank:
    """All executable assertions active during one run.

    Parameters
    ----------
    specs:
        The assertion instances to run.
    period:
        Evaluation period in scheduler ticks.  ``None`` (the default)
        resolves to the attached simulator's slot-cycle length at
        :meth:`attach` time, i.e. the EAs run once per cycle like the
        other application functions — whatever the target's cycle is.
    """

    def __init__(
        self,
        specs: Sequence[AssertionSpec],
        period: Optional[int] = None,
    ):
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise AssertionSpecError(
                f"duplicate assertion names in monitor bank: {names}"
            )
        if period is not None and period <= 0:
            raise AssertionSpecError(
                f"evaluation period must be positive, got {period}"
            )
        self._states: Dict[str, AssertionState] = {
            spec.name: AssertionState(spec) for spec in specs
        }
        self.period = period
        self._store = None

    def attach(self, simulator) -> "MonitorBank":
        """Evaluate the bank once per cycle on *simulator*'s store."""
        system = simulator.system
        known = set(system.signal_names())
        for state in self._states.values():
            if state.spec.signal not in known:
                raise AssertionSpecError(
                    f"assertion {state.spec.name!r} guards unknown signal "
                    f"{state.spec.signal!r}"
                )
        if self.period is None:
            self.period = simulator.executor.schedule.n_slots
        self._store = simulator.executor.store
        simulator.add_post_tick(self._on_tick)
        return self

    def _on_tick(self, tick: int) -> None:
        # evaluate at the end of each slot cycle (the EA slot)
        if tick % self.period != self.period - 1:
            return
        store = self._store
        for state in self._states.values():
            state.evaluate(store[state.spec.signal], tick)

    # ------------------------------------------------------------------
    # Checkpointing (fast-forward support).
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, tuple]:
        """Per-EA state snapshots, for checkpoint capture."""
        return {name: state.snapshot() for name, state in self._states.items()}

    def restore(self, snapshot: Dict[str, tuple]) -> None:
        for name, state in self._states.items():
            state.restore(snapshot[name])

    def resyncable_with(
        self, at: Dict[str, tuple], final: Dict[str, tuple]
    ) -> bool:
        """Whether this bank's future evolution is provably identical
        to the golden bank's from the checkpoint with snapshot *at*.

        Only each EA's reference value (``_prev``) influences future
        fire decisions, so matching reference values suffice — the
        injected run's own fire accumulators ride along.  The one
        exception: if the *golden* bank fired after the checkpoint
        (``final`` accumulators differ from ``at``), the merged
        accumulators are only derivable when this bank's state equals
        the golden checkpoint state exactly.
        """
        for name, state in self._states.items():
            mine = state.snapshot()
            if mine[0] != at[name][0]:
                return False
            if final[name][1:] != at[name][1:] and mine != at[name]:
                return False
        return True

    def fast_forward_to(
        self, at: Dict[str, tuple], final: Dict[str, tuple]
    ) -> None:
        """Jump to run-end state from a checkpoint where
        :meth:`resyncable_with` held: take the golden final reference
        values, keep this bank's own fire accumulators (or the golden
        final ones where the states were exactly equal and golden fired
        after the checkpoint)."""
        for name, state in self._states.items():
            if final[name][1:] != at[name][1:]:
                state.restore(final[name])
            else:
                state.rebase(final[name][0])

    # ------------------------------------------------------------------
    # Results.
    # ------------------------------------------------------------------
    def state(self, ea_name: str) -> AssertionState:
        state = self._states.get(ea_name)
        if state is None:
            raise AssertionSpecError(
                f"no assertion {ea_name!r} in this bank"
            )
        return state

    def ea_names(self) -> List[str]:
        return list(self._states)

    def records(self) -> Dict[str, DetectionRecord]:
        return {
            name: DetectionRecord(
                ea_name=name,
                signal=state.spec.signal,
                fired=state.fired,
                first_fire_tick=state.first_fire_tick,
                fire_count=state.fire_count,
            )
            for name, state in self._states.items()
        }

    def fired_eas(self, after_tick: Optional[int] = None) -> List[str]:
        """Names of EAs that fired (optionally at/after *after_tick*)."""
        fired = []
        for name, state in self._states.items():
            if not state.fired:
                continue
            if after_tick is not None and (
                state.first_fire_tick is None
                or state.first_fire_tick < after_tick
            ):
                # the first firing predates the injection window; with
                # spec-calibrated parameters this cannot happen on a
                # healthy prefix, but guard anyway
                continue
            fired.append(name)
        return fired

    def any_fired(self, ea_subset: Optional[Iterable[str]] = None) -> bool:
        names = set(ea_subset) if ea_subset is not None else set(self._states)
        return any(
            self._states[name].fired for name in names if name in self._states
        )
