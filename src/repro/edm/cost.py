"""Resource cost model for EA sets (paper Table 3 and Section 6.1).

ROM holds the constant parameters defining allowed behaviour, RAM the
run-time data (previous value, firing bookkeeping).  The execution
time overhead is modelled per the paper's argument: the EAs "are all
functions which are executed sequentially ... invoked with roughly
the same period and require roughly the same execution time for each
invocation", so the overhead scales with the number of EAs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.edm.assertions import AssertionSpec
from repro.edm.catalogue import assertions_for_signals

__all__ = ["SetCost", "cost_of_assertions", "cost_of_signals", "compare_costs"]


@dataclass(frozen=True)
class SetCost:
    """Memory and execution-time cost of one EA set."""

    ea_names: tuple
    rom_bytes: int
    ram_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.rom_bytes + self.ram_bytes

    @property
    def ea_count(self) -> int:
        return len(self.ea_names)

    def execution_overhead_relative_to(self, other: "SetCost") -> float:
        """Execution-time overhead of this set relative to *other*.

        Per Section 6.1 the per-invocation cost is roughly equal across
        EAs, so the ratio of EA counts approximates the ratio of
        execution-time overheads.
        """
        if other.ea_count == 0:
            raise ZeroDivisionError(
                "cannot compare against an empty EA set"
            )
        return self.ea_count / other.ea_count


def cost_of_assertions(specs: Sequence[AssertionSpec]) -> SetCost:
    return SetCost(
        ea_names=tuple(spec.name for spec in specs),
        rom_bytes=sum(spec.rom_bytes for spec in specs),
        ram_bytes=sum(spec.ram_bytes for spec in specs),
    )


def cost_of_signals(signals: Sequence[str]) -> SetCost:
    """Cost of guarding *signals* with their catalogue EAs."""
    return cost_of_assertions(assertions_for_signals(signals))


def compare_costs(set_a: SetCost, set_b: SetCost) -> Dict[str, float]:
    """Relative savings of *set_b* over *set_a* (paper: ~40 %)."""
    return {
        "rom_saving": 1.0 - set_b.rom_bytes / set_a.rom_bytes,
        "ram_saving": 1.0 - set_b.ram_bytes / set_a.ram_bytes,
        "memory_saving": 1.0 - set_b.total_bytes / set_a.total_bytes,
        "execution_saving": 1.0 - set_b.ea_count / set_a.ea_count,
    }
