"""Error detection mechanisms: executable assertions (EA's).

Implements the paper's EDM substrate: generic parameterized executable
assertions (Section 5.1, after Hiller DSN 2000), the EA1..EA7
catalogue of the target with Table 3's memory costs, passive signal
monitors, and the EA-set resource cost model.
"""

from repro.edm.assertions import AssertionSpec, AssertionState, EAKind
from repro.edm.catalogue import (
    EH_SET,
    EXTENDED_SET,
    PA_SET,
    assertion_names_for_signals,
    assertions_for_signals,
)
from repro.edm.cost import (
    SetCost,
    compare_costs,
    cost_of_assertions,
    cost_of_signals,
)
from repro.edm.monitors import DetectionRecord, MonitorBank
from repro.edm.recovery import (
    RecoveringMonitorBank,
    RecoveryAction,
    RecoveryPolicy,
)
from repro.edm.subset import (
    SubsetSelection,
    fired_sets_of,
    marginal_coverages,
    overlap_matrix,
    select_subset,
)


def __getattr__(name: str):
    # EA_BY_NAME / EA_BY_SIGNAL stay lazy (PEP 562) so that importing
    # the EDM layer does not pull in the arrestment target's constants.
    if name in ("EA_BY_NAME", "EA_BY_SIGNAL"):
        from repro.edm import catalogue

        return getattr(catalogue, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AssertionSpec",
    "AssertionState",
    "DetectionRecord",
    "EAKind",
    "EA_BY_NAME",
    "EA_BY_SIGNAL",
    "EH_SET",
    "EXTENDED_SET",
    "MonitorBank",
    "PA_SET",
    "RecoveringMonitorBank",
    "RecoveryAction",
    "RecoveryPolicy",
    "SetCost",
    "SubsetSelection",
    "assertion_names_for_signals",
    "fired_sets_of",
    "marginal_coverages",
    "overlap_matrix",
    "select_subset",
    "assertions_for_signals",
    "compare_costs",
    "cost_of_assertions",
    "cost_of_signals",
]
