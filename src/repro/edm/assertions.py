"""Generic parameterized executable assertions (EA's).

The EDM's used in the paper are "generic parameterized Executable
Assertions (defined in [Hiller, DSN 2000])", a variant of acceptance
tests: small checks attached to individual signals, parameterized by
ROM constants that define the signal's *allowed behaviour* —
magnitude bounds, rate-of-change bounds, and monotonicity/sequence
constraints.  The EA fires (detects) when a newly produced value
violates its constraints relative to the previous value.

Four behaviour classes cover the target's signals:

* :class:`EAKind.RANGE_RATE` — bounded magnitude and bounded change
  per evaluation (continuous quantities: SetValue, IsValue, OutValue);
* :class:`EAKind.MONOTONIC` — non-decreasing with a bounded increment
  and bounded magnitude (accumulators: pulscnt, i);
* :class:`EAKind.SEQUENCE` — exact increment with wrap-around
  (counters: mscnt, ms_slot_nbr);
* :class:`EAKind.BOOLEAN` — value must be 0 or 1.  The paper notes
  that "it is difficult to detect errors in a boolean value": a
  flipped boolean is still a valid-looking boolean, so this EA class
  has essentially no detection power — which is exactly why boolean
  signals are not selected for guarding.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import AssertionSpecError
from repro.model.signal import Number

__all__ = ["EAKind", "AssertionSpec", "AssertionState"]


class EAKind(enum.Enum):
    RANGE_RATE = "range_rate"
    MONOTONIC = "monotonic"
    SEQUENCE = "sequence"
    BOOLEAN = "boolean"


@dataclass(frozen=True)
class AssertionSpec:
    """ROM parameters of one executable assertion.

    Parameters
    ----------
    name:
        The EA's identity, e.g. ``"EA4"``.
    signal:
        The guarded signal.
    kind:
        Behaviour class (see :class:`EAKind`).
    minimum / maximum:
        Magnitude bounds (ignored by BOOLEAN).
    max_delta:
        RANGE_RATE: largest allowed ``|new - old|`` per evaluation.
        MONOTONIC: largest allowed increment (decrease is a violation).
    exact_delta:
        SEQUENCE: required increment per evaluation.
    modulus:
        SEQUENCE: the counter's wrap modulus; the increment is checked
        modulo this value (e.g. 2**16 for a free-running 16-bit
        counter), so legitimate wrap-around never fires.
    rom_bytes / ram_bytes:
        Memory cost of this EA instance (paper Table 3).
    """

    name: str
    signal: str
    kind: EAKind
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    max_delta: Optional[float] = None
    exact_delta: Optional[int] = None
    modulus: Optional[int] = None
    rom_bytes: int = 0
    ram_bytes: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise AssertionSpecError("assertion name must be non-empty")
        if not self.signal:
            raise AssertionSpecError(
                f"assertion {self.name!r}: signal must be non-empty"
            )
        if self.kind in (EAKind.RANGE_RATE, EAKind.MONOTONIC):
            if self.max_delta is None or self.max_delta < 0:
                raise AssertionSpecError(
                    f"assertion {self.name!r}: {self.kind.value} needs a "
                    f"non-negative max_delta"
                )
        if self.kind is EAKind.SEQUENCE:
            if self.exact_delta is None:
                raise AssertionSpecError(
                    f"assertion {self.name!r}: sequence EA needs exact_delta"
                )
            if self.modulus is not None and self.modulus <= 0:
                raise AssertionSpecError(
                    f"assertion {self.name!r}: modulus must be positive"
                )
        if (
            self.minimum is not None
            and self.maximum is not None
            and self.minimum > self.maximum
        ):
            raise AssertionSpecError(
                f"assertion {self.name!r}: minimum exceeds maximum"
            )
        if self.rom_bytes < 0 or self.ram_bytes < 0:
            raise AssertionSpecError(
                f"assertion {self.name!r}: memory costs must be >= 0"
            )


class AssertionState:
    """Run-time state (RAM) of one executable assertion instance.

    Call :meth:`evaluate` with every newly produced value of the
    guarded signal; it returns ``True`` when the assertion *fires*
    (a violation is detected).  Detection is non-intrusive: the state
    always tracks the actually produced values so that one disturbed
    sample does not cascade into repeated rate violations.
    """

    def __init__(self, spec: AssertionSpec):
        self.spec = spec
        self._prev: Optional[Number] = None
        self.fire_count = 0
        self.first_fire_tick: Optional[int] = None

    def reset(self) -> None:
        self._prev = None
        self.fire_count = 0
        self.first_fire_tick = None

    def snapshot(self) -> tuple:
        """(reference value, fire accumulators) for checkpoint capture.
        Only ``_prev`` influences future evaluations; the accumulators
        are pure outcome bookkeeping."""
        return (self._prev, self.fire_count, self.first_fire_tick)

    def restore(self, snapshot: tuple) -> None:
        self._prev, self.fire_count, self.first_fire_tick = snapshot

    # ------------------------------------------------------------------
    def _violates_range(self, value: Number) -> bool:
        spec = self.spec
        if spec.minimum is not None and value < spec.minimum:
            return True
        if spec.maximum is not None and value > spec.maximum:
            return True
        return False

    def _violates(self, value: Number) -> bool:
        spec = self.spec
        if spec.kind is EAKind.BOOLEAN:
            return value not in (0, 1)
        if self._violates_range(value):
            return True
        prev = self._prev
        if prev is None:
            return False
        if spec.kind is EAKind.RANGE_RATE:
            return abs(value - prev) > spec.max_delta
        if spec.kind is EAKind.MONOTONIC:
            delta = value - prev
            return delta < 0 or delta > spec.max_delta
        if spec.kind is EAKind.SEQUENCE:
            delta = value - prev
            if spec.modulus is not None:
                delta %= spec.modulus
            return delta != spec.exact_delta
        raise AssertionSpecError(f"unknown EA kind {spec.kind!r}")

    def evaluate(self, value: Number, tick: int) -> bool:
        """Check one newly produced value; returns True on detection."""
        fired = self._violates(value)
        if fired:
            self.fire_count += 1
            if self.first_fire_tick is None:
                self.first_fire_tick = tick
        self._prev = value
        return fired

    def rebase(self, value: Number) -> None:
        """Re-base the reference state on *value*.

        Used by recovery wrappers after substituting a signal value:
        the assertion's rate/sequence checks must continue from what
        the wrapped variable now actually holds.
        """
        self._prev = value

    @property
    def fired(self) -> bool:
        return self.fire_count > 0
