"""Top-level CLI: ``python -m repro <subcommand>``.

Subcommands
-----------
``simulate``
    Run one arrestment and print the outcome.
``profile``
    Print the target's exposure/impact profiles and the three
    placement decisions, from the paper's published permeabilities.
``memmap``
    Print the fault injector's address space of the target.
``sensitivity``
    Placement-stability analysis under permeability perturbation.
``experiments``
    Regenerate the paper's tables and figures (see
    ``python -m repro.experiments --help`` for its options).
``table1`` .. ``extended``
    Run one experiment directly, e.g. ``python -m repro table1
    --jobs 4``.  Accepts ``--scale``, ``--seed``, ``--target``,
    ``--jobs``, ``--resume``, ``--checkpoint-dir``, ``--task-timeout``,
    ``--retries``, ``--event-log``, ``--checkpoint-stride``,
    ``--no-fast-forward``, ``--audit-fraction``, ``--audit-seed``,
    ``--integrity-policy``, ``--adaptive``/``--fixed-n``,
    ``--ci-level``, ``--ci-halfwidth``, ``--min-batch``,
    ``--max-runs``, ``--store``, ``--results-db`` and ``--run-name``;
    parallel and fast-forwarded runs are bit-identical to serial
    full-replay ones for the same seed, and failing runs are retried
    and quarantined instead of aborting the campaign.
``analyze``
    Query a campaign results database: ``list`` its contents, ``show``
    one stored result, ``diff`` two runs proportion-by-proportion with
    Wilson intervals, or ``import`` a legacy JSON checkpoint.
``place``
    Solve the budgeted EDM-placement problem over measured
    permeabilities: greedy + branch-and-bound ILP coverage
    maximization through the compositional per-module cache (see
    ``docs/placement.md``).  Exits 0 only when the solved set
    dominates both hand-derived sets on coverage per byte.
``serve`` / ``submit`` / ``status`` / ``cancel`` / ``drain``
    The campaign service (see ``docs/service.md``): a long-running
    daemon scheduling submitted campaign jobs over a shared worker
    budget with a durable sqlite queue, job-level retry, graceful
    drain and ``kill -9`` recovery from checkpoints.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

#: ids accepted as direct subcommands (validated against the runner's
#: EXPERIMENTS table at execution time; kept literal so the CLI parser
#: builds without importing the experiment machinery)
EXPERIMENT_IDS = (
    "table1", "table2", "table3", "table4",
    "figure3", "table5", "profiles", "extended",
)


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.target import ArrestmentSimulator, standard_test_cases

    cases = standard_test_cases()
    if not 0 <= args.case < len(cases):
        print(f"error: case must be 0..{len(cases) - 1}", file=sys.stderr)
        return 2
    test_case = cases[args.case]
    result = ArrestmentSimulator(test_case).run()
    print(f"test case  : {test_case.label}")
    print(f"arrested   : {result.arrested}")
    print(f"distance   : {result.stop_distance_m:.1f} m")
    print(f"time       : {result.stop_time_s:.2f} s")
    print(f"verdict    : {result.verdict.describe()}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.core.profile import SystemProfile
    from repro.core.placement import (
        eh_placement,
        extended_placement,
        pa_placement,
    )
    from repro.experiments.paper_data import paper_matrix
    from repro.model.graph import SignalGraph
    from repro.target.wiring import build_arrestment_system

    system = build_arrestment_system()
    graph = SignalGraph(system)
    matrix = paper_matrix(system)
    print(SystemProfile(matrix, graph, output="TOC2").render())
    print()
    print(eh_placement(system).render())
    print()
    print(pa_placement(matrix, graph).render())
    print()
    print(
        extended_placement(
            matrix, graph, impact_threshold=0.10, output="TOC2",
            memory_error_model=True, self_permeability_threshold=0.8,
        ).render()
    )
    return 0


def _cmd_memmap(args: argparse.Namespace) -> int:
    from repro.fi.memory import MemoryMap
    from repro.target.wiring import build_arrestment_system

    print(MemoryMap(build_arrestment_system()).describe())
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from repro.core.placement import pa_placement
    from repro.core.sensitivity import placement_sensitivity
    from repro.experiments.paper_data import paper_matrix
    from repro.model.graph import SignalGraph
    from repro.target.wiring import build_arrestment_system

    system = build_arrestment_system()
    graph = SignalGraph(system)
    report = placement_sensitivity(
        paper_matrix(system),
        graph,
        lambda m, g: pa_placement(m, g),
        epsilon=args.epsilon,
        n_samples=args.samples,
    )
    print(report.render())
    print()
    print(f"stable selections: {report.stable_selected()}")
    print(f"marginal signals : {report.marginal() or 'none'}")
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    from repro.core.profile import SystemProfile
    from repro.core.trees import build_backtrack_tree, build_impact_tree
    from repro.experiments.paper_data import paper_matrix
    from repro.model.graph import SignalGraph
    from repro.target.wiring import build_arrestment_system
    from repro.viz import profile_to_dot, system_to_dot, tree_to_dot

    system = build_arrestment_system()
    graph = SignalGraph(system)
    matrix = paper_matrix(system)
    if args.figure == "system":
        print(system_to_dot(system))
    elif args.figure == "exposure":
        print(profile_to_dot(
            SystemProfile(matrix, graph, output="TOC2"), "exposure"
        ))
    elif args.figure == "impact":
        print(profile_to_dot(
            SystemProfile(matrix, graph, output="TOC2"), "impact"
        ))
    elif args.figure == "impact-tree":
        print(tree_to_dot(build_impact_tree(graph, args.signal), matrix))
    else:  # backtrack
        print(tree_to_dot(build_backtrack_tree(graph, "TOC2"), matrix))
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.__main__ import main as experiments_main

    return experiments_main(args.rest)


def _render_result(result, run: str, meta: dict) -> str:
    """Human-readable summary of a stored campaign result."""
    from repro.fi.campaign import (
        DetectionResult,
        MemoryCampaignResult,
        PermeabilityEstimate,
    )

    lines = [f"run {run}"]
    if meta:
        pairs = ", ".join(f"{k}={meta[k]}" for k in sorted(meta))
        lines.append(f"  meta: {pairs}")
    if isinstance(result, PermeabilityEstimate):
        lines.append(
            f"  permeability estimate: {len(result.values)} "
            f"module-port pairs"
        )
        for (module, in_port, out_port), value in sorted(
            result.values.items()
        ):
            count = result.direct_counts.get((module, in_port, out_port), 0)
            runs = result.active_runs.get((module, in_port), 0)
            lines.append(
                f"    {module}.{in_port}->{out_port:<10} "
                f"{value:6.3f}  ({count}/{runs})"
            )
    elif isinstance(result, DetectionResult):
        lines.append(
            f"  detection result: {len(result.targets)} targets x "
            f"{len(result.ea_names)} EAs"
        )
        for target in result.targets:
            n = result.n_err.get(target, 0)
            any_count = result.any_detections.get(target, 0)
            coverage = f"{any_count / n:6.3f}" if n else f"{'—':>6}"
            per_ea = "  ".join(
                f"{ea}={result.detections.get((target, ea), 0)}"
                for ea in result.ea_names
            )
            lines.append(
                f"    {target:<10} any {coverage} "
                f"({any_count}/{n})  {per_ea}"
            )
    elif isinstance(result, MemoryCampaignResult):
        fired = sum(1 for r in result.records if r.fired)
        failed = sum(1 for r in result.records if r.failed)
        lines.append(
            f"  memory campaign result: {len(result.records)} runs, "
            f"{fired} with detections, {failed} failed; "
            f"EAs: {', '.join(result.ea_names)}"
        )
    else:
        lines.append(f"  {type(result).__name__}")
    return "\n".join(lines)


def _cmd_analyze(args: argparse.Namespace) -> int:
    import os

    from repro.analysis.compare import compare_results
    from repro.errors import AnalysisError, CampaignError, IntegrityError
    from repro.fi.store import SqliteResultStore

    # list/show/diff are read-only queries: pointing them at a missing
    # path must not silently create an empty database there
    if args.action != "import" and not os.path.exists(args.db):
        print(f"error: {args.db}: no such results database", file=sys.stderr)
        return 2
    try:
        with SqliteResultStore(args.db) as store:
            if args.action == "list":
                runs = store.list_results()
                campaigns = store.list_campaigns()
                if not runs and not campaigns:
                    print(f"{args.db}: empty results database")
                    return 0
                if runs:
                    print(f"results ({len(runs)}):")
                    for stored in runs:
                        meta = store.result_meta(stored.run)
                        pairs = ", ".join(
                            f"{k}={meta[k]}" for k in sorted(meta)
                        )
                        suffix = f"  [{pairs}]" if pairs else ""
                        print(
                            f"  {stored.run:<40} {stored.kind}{suffix}"
                        )
                if campaigns:
                    print(f"campaign checkpoints ({len(campaigns)}):")
                    for stored in campaigns:
                        print(
                            f"  {stored.campaign:<40} "
                            f"{stored.completed}/{stored.n_tasks} "
                            f"tasks, {stored.failures} quarantined "
                            f"(fingerprint {stored.fingerprint[:12]}…)"
                        )
                return 0
            if args.action == "show":
                result = store.load_result(args.run)
                print(
                    _render_result(
                        result, args.run, store.result_meta(args.run)
                    )
                )
                return 0
            if args.action == "diff":
                a = store.load_result(args.run_a)
                b = store.load_result(args.run_b)
                comparison = compare_results(
                    a, b, args.run_a, args.run_b, level=args.level
                )
                print(comparison.render())
                return 1 if comparison.regressions else 0
            # import
            stored = store.import_checkpoint(args.checkpoint)
            print(
                f"imported campaign {stored.campaign!r} from "
                f"{args.checkpoint} into {args.db}: "
                f"{stored.completed}/{stored.n_tasks} tasks, "
                f"{stored.failures} quarantined"
            )
            return 0
    except (AnalysisError, CampaignError, IntegrityError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_place(args: argparse.Namespace) -> int:
    from repro.edm.catalogue import EH_SET, PA_SET
    from repro.errors import (
        AnalysisError,
        CampaignError,
        ExperimentError,
        ModelError,
        PlacementError,
    )
    from repro.experiments.context import SCALES, default_scale
    from repro.fi.campaign import PermeabilityEstimate
    from repro.place import (
        Budget,
        PlacementCache,
        build_report,
        cached_estimate,
        greedy_solve,
        ilp_solve,
        instance_from_estimate,
        items_for_signals,
    )
    from repro.targets import get_target

    try:
        target = get_target(args.target)
        system = target.build_system()
        specs = target.assertion_specs()

        telemetry = None
        if args.run is not None:
            import os

            from repro.fi.store import SqliteResultStore

            # read-only query: must not create an empty database
            if not os.path.exists(args.db):
                print(
                    f"error: {args.db}: no such results database",
                    file=sys.stderr,
                )
                return 2
            with SqliteResultStore(args.db) as store:
                estimate = store.load_result(args.run)
            if not isinstance(estimate, PermeabilityEstimate):
                print(
                    f"error: stored run {args.run!r} is a "
                    f"{type(estimate).__name__}, not a permeability "
                    f"estimate",
                    file=sys.stderr,
                )
                return 2
        else:
            scale_name = (
                args.scale if args.scale is not None else default_scale()
            )
            if scale_name not in SCALES:
                print(
                    f"error: --scale must be one of {sorted(SCALES)}, "
                    f"got {scale_name!r}",
                    file=sys.stderr,
                )
                return 2
            scale = SCALES[scale_name]
            cases = list(target.standard_test_cases())
            cases = cases[:: scale.test_case_stride]
            runs = (
                args.runs if args.runs is not None else scale.runs_per_input
            )
            with PlacementCache(args.cache) as cache:
                estimate, telemetry = cached_estimate(
                    target,
                    cases,
                    cache,
                    runs_per_input=runs,
                    seed=args.seed,
                    invalidate=tuple(args.invalidate),
                )

        by_signal = {spec.signal: spec for spec in specs}
        if args.budget_rom is None and args.budget_ram is None \
                and args.budget_time is None:
            # default budget: the PA hand set's Table 3 footprint, so
            # "dominates PA" is an apples-to-apples claim
            pa_specs = [by_signal[s] for s in PA_SET if s in by_signal]
            budget = Budget(
                rom_bytes=sum(spec.rom_bytes for spec in pa_specs),
                ram_bytes=sum(spec.ram_bytes for spec in pa_specs),
            )
        else:
            budget = Budget(
                rom_bytes=args.budget_rom,
                ram_bytes=args.budget_ram,
                time_slots=args.budget_time,
            )

        instance = instance_from_estimate(
            system, estimate, specs, budget, level=args.level
        )
        greedy = ilp = None
        if args.solver in ("greedy", "both"):
            greedy = greedy_solve(instance)
        if args.solver in ("ilp", "both"):
            ilp = ilp_solve(instance)
        result = ilp if ilp is not None else greedy

        hand_sets = []
        for name, signals in (("EH", EH_SET), ("PA", PA_SET)):
            members = [s for s in signals if s in by_signal]
            if members:
                hand_sets.append(
                    (name, items_for_signals(instance, members))
                )
        report = build_report(target.name, instance, result, hand_sets)
        print(report.render())
        if greedy is not None and ilp is not None:
            agree = greedy.selected == ilp.selected
            print(
                f"Greedy cross-check: {'agrees' if agree else 'differs'} "
                f"(greedy coverage {greedy.coverage:.6f}, "
                f"certified >= {greedy.certified_fraction:.4f} of bound)"
            )
        if telemetry is not None:
            print(telemetry.describe())
        return 0 if report.dominates_all else 1
    except (
        AnalysisError, CampaignError, ExperimentError, ModelError,
        PlacementError,
    ) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _render_status(payload: dict) -> str:
    """Human-readable rendering of one status payload."""
    lines = []
    if payload.get("offline"):
        lines.append("daemon: not running (offline queue view)")
    else:
        suffix = " (draining)" if payload.get("draining") else ""
        lines.append(f"daemon: pid {payload.get('pid')}{suffix}")
    depth = payload.get("queue", {})
    lines.append(
        "queue : "
        + ", ".join(f"{depth.get(s, 0)} {s}" for s in (
            "queued", "running", "done", "failed", "cancelled"
        ))
    )
    counters = payload.get("counters", {})
    if counters:
        lines.append(
            "faults: "
            + " ".join(f"{k}={v}" for k, v in sorted(counters.items()))
        )
    for job in payload.get("jobs", []):
        note = f" [{job['degraded']}]" if job.get("degraded") else ""
        err = f"  ({job['error']})" if job.get("error") else ""
        lines.append(
            f"  #{job['id']:<3} {job['experiment']:<10} "
            f"{job['state']:<9} attempts={job['attempts']} "
            f"workers={job['workers']}{note}{err}"
        )
        for row in job.get("progress", []):
            lines.append(
                f"        {row['campaign']:<14} "
                f"{row['done']}/{row['total']} tasks, "
                f"{row['failures']} quarantined"
            )
    return "\n".join(lines)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.errors import ServiceError
    from repro.service import ServiceDaemon
    from repro.service.scheduler import SchedulerConfig

    try:
        kwargs = {}
        if args.budget is not None:
            kwargs["budget"] = args.budget
        config = SchedulerConfig(
            max_jobs=args.max_jobs,
            job_retries=args.job_retries,
            lease_timeout_s=args.lease_timeout,
            stop_grace_s=args.stop_grace,
            prewarm=not args.no_prewarm,
            **kwargs,
        )
        daemon = ServiceDaemon(
            args.spool,
            config,
            max_queued=args.max_queued,
            drain_when_idle=args.drain_when_idle,
        )
        return daemon.serve()
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.errors import ServiceError
    from repro.service import ServiceClient

    spec = {"experiment": args.experiment}
    for key in (
        "scale", "seed", "target", "jobs", "backend", "store",
        "batch_width", "run_name", "retries", "task_timeout",
        "audit_fraction", "integrity_policy",
    ):
        value = getattr(args, key)
        if value is not None:
            spec[key] = value
    if args.adaptive:
        spec["adaptive"] = True
    client = ServiceClient(args.spool)
    try:
        reply = client.submit(spec)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    job_id = reply["job"]
    where = "queued offline" if reply.get("offline") else "submitted"
    print(f"job #{job_id} {where} ({args.experiment})")
    if not args.wait:
        return 0
    if reply.get("offline"):
        print(
            "error: --wait needs a live daemon "
            f"(start one with 'repro serve --spool {args.spool}')",
            file=sys.stderr,
        )
        return 2
    final = None
    try:
        for payload in client.status_stream(job_id):
            final = payload
            rows = payload.get("jobs", [])
            mine_done = rows and rows[0]["state"] in (
                "done", "failed", "cancelled"
            )
            if mine_done or payload.get("final"):
                break
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if final is None:
        print("error: daemon went away while waiting", file=sys.stderr)
        return 2
    print(_render_status(final))
    states = [job["state"] for job in final.get("jobs", [])]
    return 0 if states and all(s == "done" for s in states) else 1


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.errors import ServiceError
    from repro.service import ServiceClient

    client = ServiceClient(args.spool)
    try:
        if not args.follow:
            print(_render_status(client.status(args.job)))
            return 0
        for payload in client.status_stream(args.job):
            print(_render_status(payload))
            if payload.get("final"):
                break
            print()
        return 0
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_cancel(args: argparse.Namespace) -> int:
    from repro.errors import ServiceError
    from repro.service import ServiceClient

    try:
        reply = ServiceClient(args.spool).cancel(args.job)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"job #{args.job}: {reply.get('state', 'cancel requested')}")
    return 0


def _cmd_drain(args: argparse.Namespace) -> int:
    from repro.errors import ServiceError
    from repro.service import ServiceClient

    try:
        ServiceClient(args.spool).drain()
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print("daemon draining (running jobs flush and requeue)")
    return 0


def _cmd_one_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.__main__ import report_telemetry
    from repro.experiments.context import ExperimentContext, default_scale
    from repro.experiments.runner import EXPERIMENTS

    ctx = ExperimentContext(
        scale=args.scale if args.scale is not None else default_scale(),
        seed=args.seed,
        target=args.target,
        jobs=args.jobs,
        backend=args.backend,
        resume=args.resume,
        checkpoint_dir=args.checkpoint_dir,
        task_timeout=args.task_timeout,
        retries=args.retries,
        event_log=args.event_log,
        fast_forward=not args.no_fast_forward,
        checkpoint_stride=args.checkpoint_stride,
        track_pool=not args.no_track_pool,
        batch_width=args.batch_width,
        audit_fraction=args.audit_fraction,
        audit_seed=args.audit_seed,
        integrity_policy=args.integrity_policy,
        adaptive=args.adaptive,
        ci_level=args.ci_level,
        ci_halfwidth=args.ci_halfwidth,
        min_batch=args.min_batch,
        max_runs=args.max_runs,
        store_backend=args.store,
        results_db=args.results_db,
        run_name=args.run_name,
    )
    result = EXPERIMENTS[args.command](ctx)
    print(result.render())
    report_telemetry(ctx)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Error propagation & effect analysis for EDM placement "
            "(reproduction of Hiller/Jhumka/Suri, DSN 2002)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="run one arrestment")
    p_sim.add_argument(
        "--case", type=int, default=12,
        help="standard test-case index, 0..24 (default: 12)",
    )
    p_sim.set_defaults(fn=_cmd_simulate)

    p_prof = sub.add_parser(
        "profile", help="profiles and placements (paper permeabilities)"
    )
    p_prof.set_defaults(fn=_cmd_profile)

    p_mem = sub.add_parser("memmap", help="print the injectable memory map")
    p_mem.set_defaults(fn=_cmd_memmap)

    p_sens = sub.add_parser(
        "sensitivity", help="placement stability under estimation noise"
    )
    p_sens.add_argument("--epsilon", type=float, default=0.05)
    p_sens.add_argument("--samples", type=int, default=100)
    p_sens.set_defaults(fn=_cmd_sensitivity)

    p_dot = sub.add_parser(
        "dot", help="emit Graphviz DOT for the paper's figures"
    )
    p_dot.add_argument(
        "figure",
        choices=["system", "exposure", "impact", "impact-tree", "backtrack"],
    )
    p_dot.add_argument(
        "--signal", default="pulscnt",
        help="root signal for impact-tree (default: pulscnt)",
    )
    p_dot.set_defaults(fn=_cmd_dot)

    p_exp = sub.add_parser(
        "experiments", help="regenerate the paper's tables and figures"
    )
    p_exp.add_argument("rest", nargs=argparse.REMAINDER)
    p_exp.set_defaults(fn=_cmd_experiments)

    for exp_id in EXPERIMENT_IDS:
        p_one = sub.add_parser(exp_id, help=f"run the {exp_id} experiment")
        p_one.add_argument(
            "--scale", default=None,
            help="workload scale (default: REPRO_SCALE or bench)",
        )
        p_one.add_argument("--seed", type=int, default=2002)
        p_one.add_argument(
            "--target", default="arrestment",
            help="registered target system (default: arrestment)",
        )
        p_one.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="worker processes for campaigns (default: 1 = serial)",
        )
        p_one.add_argument(
            "--backend", choices=("serial", "process"), default=None,
            help="pin the execution backend (default: derived from "
            "--jobs; results are bit-identical either way)",
        )
        p_one.add_argument(
            "--resume", action="store_true",
            help="resume partially completed campaigns from checkpoints",
        )
        p_one.add_argument("--checkpoint-dir", default=None, metavar="DIR")
        p_one.add_argument(
            "--task-timeout", type=float, default=None, metavar="S",
            help="per-run wall-clock budget in seconds "
            "(exceeded runs are retried, then quarantined)",
        )
        p_one.add_argument(
            "--retries", type=int, default=None, metavar="N",
            help="extra attempts for a failing run before quarantine "
            "(default: 1)",
        )
        p_one.add_argument(
            "--event-log", default=None, metavar="PATH",
            help="append campaign run events to this JSONL file",
        )
        p_one.add_argument(
            "--checkpoint-stride", type=int, default=None, metavar="N",
            help="ticks between golden snapshots for fast-forwarded "
            "injection runs (default: engine default)",
        )
        p_one.add_argument(
            "--no-fast-forward", action="store_true",
            help="disable the snapshot/fast-forward engine "
            "(results are bit-identical)",
        )
        p_one.add_argument(
            "--no-track-pool", action="store_true",
            help="keep golden checkpoint tracks as plain dicts "
            "instead of shared-memory columns (results are "
            "bit-identical)",
        )
        p_one.add_argument(
            "--batch-width", type=int, default=0, metavar="N",
            help="advance up to N injected runs per vectorized tick "
            "in each worker (default: 0 = scalar; results are "
            "bit-identical)",
        )
        p_one.add_argument(
            "--audit-fraction", type=float, default=0.0, metavar="F",
            help="fraction of fast-forwarded runs re-executed "
            "full-length and field-diffed (default: 0)",
        )
        p_one.add_argument(
            "--audit-seed", type=int, default=None, metavar="N",
            help="seed of the audit sample (default: campaign seed)",
        )
        p_one.add_argument(
            "--integrity-policy", choices=("strict", "repair", "off"),
            default=None, metavar="P",
            help="integrity violation handling: strict aborts, repair "
            "self-heals (default), off disables verification",
        )
        scheduling = p_one.add_mutually_exclusive_group()
        scheduling.add_argument(
            "--adaptive", action="store_true",
            help="sequential Wilson-bound scheduling with per-stratum "
            "early stopping for the sampled campaigns",
        )
        scheduling.add_argument(
            "--fixed-n", action="store_true",
            help="run the full per-stratum budget unconditionally "
            "(the default)",
        )
        p_one.add_argument(
            "--ci-level", type=float, default=None, metavar="L",
            help="confidence level of the adaptive stopping intervals "
            "(default: 0.95)",
        )
        p_one.add_argument(
            "--ci-halfwidth", type=float, default=None, metavar="W",
            help="Wilson half-width target stopping a stratum "
            "(default: 0.2; 0 disables early stopping entirely)",
        )
        p_one.add_argument(
            "--min-batch", type=int, default=None, metavar="N",
            help="runs dispatched per stratum per adaptive round "
            "(default: 4)",
        )
        p_one.add_argument(
            "--max-runs", type=int, default=None, metavar="N",
            help="per-stratum budget cap for adaptive campaigns "
            "(default: the scale's per-stratum run count)",
        )
        p_one.add_argument(
            "--store", choices=("json", "sqlite"), default=None,
            help="checkpoint store backend (default: by path suffix; "
            "json for the legacy per-campaign files)",
        )
        p_one.add_argument(
            "--results-db", default=None, metavar="PATH",
            help="also save finished campaign results into this sqlite "
            "results database (see 'repro analyze')",
        )
        p_one.add_argument(
            "--run-name", default=None, metavar="NAME",
            help="run name for saved results "
            "(default: <target>-<scale>-seed<seed>)",
        )
        p_one.set_defaults(fn=_cmd_one_experiment)

    def add_spool(p: argparse.ArgumentParser) -> None:
        from repro.service.client import default_spool

        p.add_argument(
            "--spool", default=default_spool(), metavar="DIR",
            help="service spool directory "
            "(default: REPRO_SPOOL or .repro-service)",
        )

    p_serve = sub.add_parser(
        "serve", help="run the campaign-service daemon"
    )
    add_spool(p_serve)
    p_serve.add_argument(
        "--budget", type=int, default=None, metavar="N",
        help="total worker-process budget shared by all jobs "
        "(default: cpu count)",
    )
    p_serve.add_argument(
        "--max-jobs", type=int, default=4, metavar="N",
        help="concurrently running jobs (default: 4)",
    )
    p_serve.add_argument(
        "--job-retries", type=int, default=2, metavar="N",
        help="extra attempts a failing job gets (default: 2)",
    )
    p_serve.add_argument(
        "--max-queued", type=int, default=64, metavar="N",
        help="admission bound on queued+running jobs (default: 64)",
    )
    p_serve.add_argument(
        "--lease-timeout", type=float, default=30.0, metavar="S",
        help="heartbeat age before a dead scheduler's lease is "
        "reclaimed (default: 30)",
    )
    p_serve.add_argument(
        "--stop-grace", type=float, default=30.0, metavar="S",
        help="grace between SIGTERM and SIGKILL when stopping a "
        "job child (default: 30)",
    )
    p_serve.add_argument(
        "--no-prewarm", action="store_true",
        help="do not pre-warm the golden-run cache for submitted "
        "targets",
    )
    p_serve.add_argument(
        "--drain-when-idle", action="store_true",
        help="exit once every submitted job is terminal (CI mode)",
    )
    p_serve.set_defaults(fn=_cmd_serve)

    p_sub = sub.add_parser(
        "submit", help="submit one experiment job to the service"
    )
    p_sub.add_argument("experiment", choices=EXPERIMENT_IDS)
    add_spool(p_sub)
    p_sub.add_argument("--scale", default=None)
    p_sub.add_argument("--seed", type=int, default=None)
    p_sub.add_argument("--target", default=None)
    p_sub.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="requested worker width (the scheduler grants a fair "
        "share of the daemon's budget)",
    )
    p_sub.add_argument(
        "--backend", choices=("serial", "process"), default=None,
    )
    p_sub.add_argument(
        "--store", choices=("json", "sqlite"), default=None,
    )
    p_sub.add_argument(
        "--batch-width", type=int, default=None, metavar="N",
    )
    p_sub.add_argument("--adaptive", action="store_true")
    p_sub.add_argument("--run-name", default=None, metavar="NAME")
    p_sub.add_argument("--retries", type=int, default=None, metavar="N")
    p_sub.add_argument(
        "--task-timeout", type=float, default=None, metavar="S",
    )
    p_sub.add_argument(
        "--audit-fraction", type=float, default=None, metavar="F",
    )
    p_sub.add_argument(
        "--integrity-policy", choices=("strict", "repair", "off"),
        default=None,
    )
    p_sub.add_argument(
        "--wait", action="store_true",
        help="follow the job until it is terminal (exit 0 only if "
        "it is done)",
    )
    p_sub.set_defaults(fn=_cmd_submit)

    p_stat = sub.add_parser(
        "status", help="show service queue and job progress"
    )
    add_spool(p_stat)
    p_stat.add_argument(
        "--job", type=int, default=None, metavar="N",
        help="restrict to one job id",
    )
    p_stat.add_argument(
        "--follow", action="store_true",
        help="stream status until every job is terminal",
    )
    p_stat.set_defaults(fn=_cmd_status)

    p_cancel = sub.add_parser("cancel", help="cancel one service job")
    p_cancel.add_argument("job", type=int)
    add_spool(p_cancel)
    p_cancel.set_defaults(fn=_cmd_cancel)

    p_drain = sub.add_parser(
        "drain", help="ask the daemon to drain and exit"
    )
    add_spool(p_drain)
    p_drain.set_defaults(fn=_cmd_drain)

    p_place = sub.add_parser(
        "place",
        help="solve the budgeted EDM placement (greedy + ILP over the "
        "compositional permeability cache)",
    )
    p_place.add_argument(
        "--target", default="arrestment",
        help="registered target system (default: arrestment)",
    )
    p_place.add_argument(
        "--budget-rom", type=int, default=None, metavar="BYTES",
        help="ROM budget in bytes (default: the PA hand set's ROM cost)",
    )
    p_place.add_argument(
        "--budget-ram", type=int, default=None, metavar="BYTES",
        help="RAM budget in bytes (default: the PA hand set's RAM cost)",
    )
    p_place.add_argument(
        "--budget-time", type=int, default=None, metavar="N",
        help="time budget: maximum number of EAs (default: none)",
    )
    p_place.add_argument(
        "--solver", choices=("greedy", "ilp", "both"), default="both",
        help="greedy (1-1/e certificate), ilp (proves optimality), or "
        "both with a cross-check line (the default)",
    )
    p_place.add_argument(
        "--cache", default="place-cache.json", metavar="PATH",
        help="compositional per-module permeability cache; .json or "
        ".db/.sqlite/.sqlite3 suffix picks the backend "
        "(default: place-cache.json)",
    )
    p_place.add_argument(
        "--invalidate", action="append", default=[], metavar="MODULE",
        help="force this module's cache entry stale so it is "
        "re-injected (repeatable)",
    )
    p_place.add_argument(
        "--scale", default=None,
        help="campaign scale for fresh injections "
        "(default: REPRO_SCALE or bench)",
    )
    p_place.add_argument("--seed", type=int, default=2002)
    p_place.add_argument(
        "--runs", type=int, default=None, metavar="N",
        help="override the scale's injection runs per module input",
    )
    p_place.add_argument(
        "--level", type=float, default=0.95, metavar="L",
        help="confidence level of the Wilson coverage bounds "
        "(default: 0.95)",
    )
    p_place.add_argument(
        "--db", default="results.db", metavar="PATH",
        help="results database for --run (default: results.db)",
    )
    p_place.add_argument(
        "--run", default=None, metavar="NAME",
        help="solve over this stored permeability estimate instead of "
        "injecting, e.g. arrestment-test-seed2002/permeability",
    )
    p_place.set_defaults(fn=_cmd_place)

    p_an = sub.add_parser(
        "analyze",
        help="query and diff a campaign results database",
    )
    p_an.add_argument(
        "--db", default="results.db", metavar="PATH",
        help="sqlite results database (default: results.db)",
    )
    an_sub = p_an.add_subparsers(dest="action", required=True)
    an_sub.add_parser(
        "list", help="list stored results and campaign checkpoints"
    )
    p_show = an_sub.add_parser("show", help="summarize one stored result")
    p_show.add_argument("run", help="run name, e.g. arrestment-test-seed2002/detection")
    p_diff = an_sub.add_parser(
        "diff",
        help="compare two runs proportion-by-proportion with Wilson CIs "
        "(exit 1 when a significant regression is found)",
    )
    p_diff.add_argument("run_a")
    p_diff.add_argument("run_b")
    p_diff.add_argument(
        "--level", type=float, default=0.95, metavar="L",
        help="confidence level of the Wilson intervals (default: 0.95)",
    )
    p_imp = an_sub.add_parser(
        "import",
        help="migrate a legacy JSON checkpoint into the database",
    )
    p_imp.add_argument("checkpoint", help="path of the checkpoint .json file")
    p_an.set_defaults(fn=_cmd_analyze)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
