"""Binomial interval estimation for sequential campaigns.

Every quantity a fault-injection campaign estimates — permeability,
detection coverage — is a binomial proportion, and the sequential
(adaptive) campaign engine stops sampling a stratum as soon as its
interval is tight enough.  This module is the statistics core behind
those decisions:

* :func:`wilson_interval` / :func:`wilson_halfwidth` — the Wilson
  score interval, the workhorse for two-sided precision targets (it
  behaves sanely at the small n and extreme proportions FI campaigns
  produce);
* :func:`wilson_lower_bound` / :func:`wilson_upper_bound` — one-sided
  Wilson bounds, used to certify "architectural zero" and "saturated
  pass-through" pairs (:func:`certifies_zero`,
  :func:`certifies_saturation`);
* :func:`jeffreys_interval` — the Bayesian Jeffreys interval
  (equal-tailed Beta(k+1/2, n-k+1/2) credible interval), an
  alternative with near-nominal frequentist coverage;
* :func:`clopper_pearson_interval` — the exact (conservative)
  interval, kept as the reference the property tests compare against;
* :func:`regularized_incomplete_beta` / :func:`beta_quantile` — the
  special functions behind the Beta-quantile intervals, implemented in
  pure Python (modified Lentz continued fraction plus bisection) so no
  SciPy dependency is needed.

The module deliberately imports nothing from :mod:`repro.fi` so the
campaign engine can import it without cycles; the public statistics
surface is re-exported through :mod:`repro.analysis.estimators`.
"""

from __future__ import annotations

import math
from statistics import NormalDist
from typing import Tuple

from repro.errors import AnalysisError

__all__ = [
    "z_value",
    "wilson_interval",
    "wilson_halfwidth",
    "wilson_lower_bound",
    "wilson_upper_bound",
    "jeffreys_interval",
    "clopper_pearson_interval",
    "certifies_zero",
    "certifies_saturation",
    "regularized_incomplete_beta",
    "beta_quantile",
]


def _check_counts(successes: int, n: int) -> None:
    if successes < 0 or n < 0 or successes > n:
        raise AnalysisError(
            f"invalid binomial counts: {successes} successes of {n}"
        )


def _check_level(level: float) -> None:
    if not 0.0 < level < 1.0:
        raise AnalysisError(
            f"confidence level must be within (0, 1), got {level}"
        )


def z_value(level: float, two_sided: bool = True) -> float:
    """Standard-normal quantile for a confidence *level*.

    ``two_sided=True`` gives the familiar interval quantile (1.96 at
    95 %); ``two_sided=False`` the one-sided bound quantile (1.645 at
    95 %).
    """
    _check_level(level)
    quantile = (1.0 + level) / 2.0 if two_sided else level
    return NormalDist().inv_cdf(quantile)


def _wilson_bounds(successes: int, n: int, z: float) -> Tuple[float, float]:
    """Wilson score bounds for a given normal quantile *z*."""
    _check_counts(successes, n)
    if n == 0:
        return (0.0, 1.0)
    phat = successes / n
    z2 = z * z
    denom = 1.0 + z2 / n
    centre = (phat + z2 / (2 * n)) / denom
    half = (
        z
        * math.sqrt(phat * (1 - phat) / n + z2 / (4 * n * n))
        / denom
    )
    low = max(0.0, centre - half)
    high = min(1.0, centre + half)
    # at the degenerate proportions the bounds are exactly 0/1 in
    # theory; keep them so despite floating-point rounding
    if successes == 0:
        low = 0.0
    if successes == n:
        high = 1.0
    return (low, high)


def wilson_interval(
    successes: int, n: int, level: float = 0.95
) -> Tuple[float, float]:
    """Two-sided Wilson score interval at confidence *level*.

    Returns ``(low, high)``; for ``n == 0`` the interval is the whole
    unit interval (no information).
    """
    return _wilson_bounds(successes, n, z_value(level, two_sided=True))


def wilson_halfwidth(successes: int, n: int, level: float = 0.95) -> float:
    """Half-width of the two-sided Wilson interval.

    The adaptive engine's precision measure: a stratum meets a
    ``--ci-halfwidth`` target once this drops below it.  ``n == 0``
    yields the maximal half-width 0.5.
    """
    low, high = wilson_interval(successes, n, level)
    return (high - low) / 2.0


def wilson_lower_bound(
    successes: int, n: int, level: float = 0.95
) -> float:
    """One-sided lower Wilson bound: ``P(p >= bound) >= level``."""
    low, _ = _wilson_bounds(successes, n, z_value(level, two_sided=False))
    return low


def wilson_upper_bound(
    successes: int, n: int, level: float = 0.95
) -> float:
    """One-sided upper Wilson bound: ``P(p <= bound) >= level``."""
    _, high = _wilson_bounds(successes, n, z_value(level, two_sided=False))
    return high


def certifies_zero(
    successes: int, n: int, level: float, threshold: float
) -> bool:
    """Whether the data certify an architectural-zero proportion.

    True when no success was ever observed **and** the one-sided upper
    bound excludes every proportion above *threshold* — i.e. the pair
    is, at confidence *level*, at most a rare-propagation pair, and no
    observation contradicts an exact zero.
    """
    _check_counts(successes, n)
    if successes != 0 or n == 0:
        return False
    return wilson_upper_bound(0, n, level) <= threshold


def certifies_saturation(
    successes: int, n: int, level: float, threshold: float
) -> bool:
    """Whether the data certify a saturated (pass-through) proportion.

    True when the one-sided lower bound puts the proportion above
    *threshold* at confidence *level*.
    """
    _check_counts(successes, n)
    if n == 0:
        return False
    return wilson_lower_bound(successes, n, level) >= threshold


# ----------------------------------------------------------------------
# Beta special functions (pure Python; no SciPy dependency).
# ----------------------------------------------------------------------
def _log_beta(a: float, b: float) -> float:
    return math.lgamma(a) + math.lgamma(b) - math.lgamma(a + b)


def _beta_continued_fraction(
    a: float, b: float, x: float, max_iter: int = 300, eps: float = 3e-14
) -> float:
    """Modified Lentz evaluation of the incomplete-beta continued
    fraction (Numerical Recipes 6.4)."""
    tiny = 1e-300
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, max_iter + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < eps:
            break
    return h


def regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """``I_x(a, b)``, the CDF of the Beta(a, b) distribution at *x*."""
    if a <= 0 or b <= 0:
        raise AnalysisError(
            f"beta shape parameters must be positive, got ({a}, {b})"
        )
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        a * math.log(x) + b * math.log1p(-x) - _log_beta(a, b)
    )
    front = math.exp(ln_front)
    # the continued fraction converges fast for x below the mean
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _beta_continued_fraction(a, b, x) / a
    return 1.0 - front * _beta_continued_fraction(b, a, 1.0 - x) / b


def beta_quantile(a: float, b: float, q: float, tol: float = 0.0) -> float:
    """Inverse Beta CDF by bisection (monotone, always converges).

    By default bisects until the bracket collapses to adjacent floats
    — the CDF can be extremely steep near 0/1 (small shape
    parameters), where any fixed x-tolerance translates into a large
    quantile error.  Pass *tol* > 0 to stop earlier.
    """
    if not 0.0 <= q <= 1.0:
        raise AnalysisError(f"quantile level must be within [0, 1], got {q}")
    if q == 0.0:
        return 0.0
    if q == 1.0:
        return 1.0
    low, high = 0.0, 1.0
    while True:
        mid = (low + high) / 2.0
        if mid == low or mid == high or (tol and high - low < tol):
            return mid
        if regularized_incomplete_beta(a, b, mid) < q:
            low = mid
        else:
            high = mid


def jeffreys_interval(
    successes: int, n: int, level: float = 0.95
) -> Tuple[float, float]:
    """Equal-tailed Jeffreys interval (Beta(k+1/2, n-k+1/2) prior).

    The standard Bayesian interval for a binomial proportion; its
    frequentist coverage is close to nominal even at small n.  The
    boundary conventions of Brown/Cai/DasGupta apply: the lower bound
    is exactly 0 at ``k == 0`` and the upper exactly 1 at ``k == n``.
    """
    _check_counts(successes, n)
    _check_level(level)
    if n == 0:
        return (0.0, 1.0)
    alpha = 1.0 - level
    a = successes + 0.5
    b = n - successes + 0.5
    low = 0.0 if successes == 0 else beta_quantile(a, b, alpha / 2.0)
    high = (
        1.0 if successes == n else beta_quantile(a, b, 1.0 - alpha / 2.0)
    )
    return (low, high)


def clopper_pearson_interval(
    successes: int, n: int, level: float = 0.95
) -> Tuple[float, float]:
    """Exact (Clopper-Pearson) interval — conservative by construction.

    Kept as the reference interval the property tests compare the
    approximate intervals against: its coverage never drops below the
    nominal level, and Jeffreys is contained in it.
    """
    _check_counts(successes, n)
    _check_level(level)
    if n == 0:
        return (0.0, 1.0)
    alpha = 1.0 - level
    low = (
        0.0
        if successes == 0
        else beta_quantile(successes, n - successes + 1, alpha / 2.0)
    )
    high = (
        1.0
        if successes == n
        else beta_quantile(successes + 1, n - successes, 1.0 - alpha / 2.0)
    )
    return (low, high)
