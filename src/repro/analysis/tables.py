"""Plain-text table rendering for experiment reports.

Small, dependency-free column formatting used by the experiment
harness to print the paper's tables side by side with the measured
values.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

__all__ = ["render_table", "fmt"]

Cell = Union[str, int, float, None]


def fmt(value: Cell, digits: int = 3) -> str:
    """Format one cell: floats to fixed digits, None to a dash."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: Optional[str] = None,
    digits: int = 3,
) -> str:
    """Render an aligned plain-text table."""
    str_rows: List[List[str]] = [
        [fmt(cell, digits) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has "
                f"{len(headers)} headers"
            )
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        h.ljust(widths[idx]) for idx, h in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append(
            "  ".join(cell.rjust(widths[idx]) for idx, cell in enumerate(row))
        )
    return "\n".join(lines)
