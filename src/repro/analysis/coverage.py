"""Statistical treatment of coverage estimates.

Fault-injection coverage estimation is a binomial estimation problem,
and the dependability literature the paper builds on treats it as such
(Powell et al., "Estimators for Fault Tolerance Coverage Evaluation",
IEEE ToC 44(2), 1995 — the paper's reference [14]).  This module
provides:

* :func:`wilson_interval` — the Wilson score interval for a binomial
  proportion, which behaves sanely for the small samples and extreme
  proportions (coverage 0 or 1) that FI campaigns routinely produce;
* :class:`CoverageEstimate` — a point estimate with its interval;
* :func:`stratified_coverage` — the stratified estimator: campaigns
  partition the fault space into strata (per test case, per memory
  region, per signal) and the overall coverage is the weighted
  combination of per-stratum estimates with the corresponding
  variance;
* bridges from the campaign result types.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.intervals import _wilson_bounds
from repro.errors import AnalysisError
from repro.fi.campaign import DetectionResult, MemoryCampaignResult
from repro.fi.memory import Region

__all__ = [
    "CoverageEstimate",
    "Stratum",
    "wilson_interval",
    "binomial_estimate",
    "stratified_coverage",
    "detection_estimates",
    "memory_estimates",
]


def wilson_interval(
    successes: int, n: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Returns ``(low, high)``; for ``n == 0`` the interval is the whole
    unit interval (no information).  This is the legacy z-parameterized
    entry point; the shared implementation (level-parameterized, with
    one-sided bounds and half-width helpers) lives in
    :mod:`repro.analysis.intervals`.
    """
    return _wilson_bounds(successes, n, z)


@dataclass(frozen=True)
class CoverageEstimate:
    """A coverage point estimate with its 95 % Wilson interval."""

    detected: int
    n: int
    point: float
    low: float
    high: float

    def overlaps(self, other: "CoverageEstimate") -> bool:
        """Whether the two intervals overlap (a crude equality test)."""
        return self.low <= other.high and other.low <= self.high

    def describe(self) -> str:
        return (
            f"{self.point:.3f} [{self.low:.3f}, {self.high:.3f}] "
            f"({self.detected}/{self.n})"
        )


def binomial_estimate(detected: int, n: int) -> CoverageEstimate:
    low, high = wilson_interval(detected, n)
    return CoverageEstimate(
        detected=detected,
        n=n,
        point=detected / n if n else 0.0,
        low=low,
        high=high,
    )


@dataclass(frozen=True)
class Stratum:
    """One stratum of a stratified campaign."""

    name: str
    detected: int
    n: int
    weight: float  #: relative occurrence weight of this stratum

    def __post_init__(self) -> None:
        if self.n < 0 or self.detected < 0 or self.detected > self.n:
            raise AnalysisError(
                f"stratum {self.name!r}: invalid counts "
                f"{self.detected}/{self.n}"
            )
        if self.weight < 0:
            raise AnalysisError(
                f"stratum {self.name!r}: negative weight {self.weight}"
            )


def stratified_coverage(strata: Sequence[Stratum]) -> CoverageEstimate:
    """Weighted stratified coverage estimate.

    The point estimate is ``sum_i w_i * c_i`` with normalized weights;
    the interval combines the per-stratum binomial variances
    (normal approximation, 95 %).  Strata with ``n == 0`` contribute
    their weight with maximal variance.
    """
    if not strata:
        raise AnalysisError("at least one stratum is required")
    total_weight = sum(s.weight for s in strata)
    if total_weight <= 0:
        raise AnalysisError("stratum weights must sum to a positive value")
    point = 0.0
    variance = 0.0
    detected = 0
    n = 0
    for stratum in strata:
        w = stratum.weight / total_weight
        detected += stratum.detected
        n += stratum.n
        if stratum.n == 0:
            point += w * 0.5
            variance += (w * 0.5) ** 2
            continue
        c = stratum.detected / stratum.n
        point += w * c
        variance += w * w * c * (1 - c) / stratum.n
    half = 1.96 * math.sqrt(variance)
    return CoverageEstimate(
        detected=detected,
        n=n,
        point=point,
        low=max(0.0, point - half),
        high=min(1.0, point + half),
    )


def detection_estimates(
    result: DetectionResult,
    ea_subset: Optional[Iterable[str]] = None,
) -> Dict[str, CoverageEstimate]:
    """Per-target coverage estimates with intervals from a
    :class:`DetectionCampaign` result."""
    subset = frozenset(ea_subset) if ea_subset is not None else None
    estimates: Dict[str, CoverageEstimate] = {}
    for target in result.targets:
        n = result.n_err.get(target, 0)
        if subset is None:
            detected = result.any_detections.get(target, 0)
        else:
            detected = sum(
                1 for fired in result.run_records[target] if fired & subset
            )
        estimates[target] = binomial_estimate(detected, n)
    return estimates


def memory_estimates(
    result: MemoryCampaignResult,
    ea_subset: Iterable[str],
) -> Dict[str, CoverageEstimate]:
    """Per-region (plus total) coverage estimates from a
    :class:`MemoryCampaign` result, as a stratified combination over
    the regions weighted by their run counts."""
    subset = frozenset(ea_subset)
    estimates: Dict[str, CoverageEstimate] = {}
    strata: List[Stratum] = []
    for region in (Region.RAM, Region.STACK):
        rows = [r for r in result.records if r.region is region]
        detected = sum(1 for r in rows if r.fired & subset)
        estimates[region.value] = binomial_estimate(detected, len(rows))
        strata.append(
            Stratum(region.value, detected, len(rows), weight=len(rows))
        )
    estimates["total"] = stratified_coverage(
        [s for s in strata if s.n > 0] or strata
    )
    return estimates
