"""Cross-campaign analytics over a results database.

The paper's placement decisions (Tables 1-5) are only as durable as
the campaign data behind them: change the code revision, the error
model or the EA set and every permeability and detection number can
move.  This module compares two saved campaign results — typically
two runs stored in one :class:`~repro.fi.store.SqliteResultStore` —
proportion by proportion, attaching the Wilson score interval
(:mod:`repro.analysis.intervals`) to each side so a delta is only
*flagged* when the intervals actually separate, not when sampling
noise wiggles a point estimate.

Comparable kinds:

* permeability estimates — per ``module.in_port->out_port`` pair,
  direct-error count over active runs;
* detection results — per ``target/EA`` pair (and the per-target
  "any EA" coverage), detections over active errors.

A significant decrease of detection coverage, or a significant
increase of permeability, is a **regression** (the system got worse
at containing or catching errors); the opposite direction is an
improvement.  :class:`RunComparison` carries the full per-key delta
list; ``repro analyze diff`` renders it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.intervals import wilson_interval
from repro.errors import AnalysisError
from repro.fi.campaign import (
    DetectionResult,
    MemoryCampaignResult,
    PermeabilityEstimate,
)

__all__ = [
    "ProportionDelta",
    "RunComparison",
    "compare_permeability",
    "compare_detection",
    "compare_results",
]


@dataclass(frozen=True)
class ProportionDelta:
    """One compared proportion (a key present in either run)."""

    #: what the proportion measures, e.g. ``CLOCK.tic->pulscnt``.
    key: str
    #: ``"permeability"`` or ``"detection"``.
    metric: str
    #: (successes, trials) in run A / run B.
    counts_a: Tuple[int, int]
    counts_b: Tuple[int, int]
    #: Wilson intervals at the comparison's confidence level.
    ci_a: Tuple[float, float]
    ci_b: Tuple[float, float]
    #: +1 when a larger proportion is *better* (detection coverage),
    #: -1 when it is worse (permeability: more propagation).
    polarity: int = 1

    @property
    def measured(self) -> bool:
        """Both runs actually sampled this proportion."""
        return self.counts_a[1] > 0 and self.counts_b[1] > 0

    @property
    def value_a(self) -> float:
        k, n = self.counts_a
        return k / n if n else math.nan

    @property
    def value_b(self) -> float:
        k, n = self.counts_b
        return k / n if n else math.nan

    @property
    def delta(self) -> float:
        """Run B minus run A (NaN when either stratum is unsampled)."""
        return self.value_b - self.value_a

    @property
    def significant(self) -> bool:
        """The two Wilson intervals do not overlap.

        An unsampled stratum (``n == 0``) is *unknown*, not a certified
        zero, so it can never separate from anything.
        """
        if not self.measured:
            return False
        (lo_a, hi_a), (lo_b, hi_b) = self.ci_a, self.ci_b
        return hi_a < lo_b or hi_b < lo_a

    @property
    def regression(self) -> bool:
        """Run B is significantly *worse* than run A."""
        return self.significant and self.delta * self.polarity < 0

    @property
    def improvement(self) -> bool:
        """Run B is significantly *better* than run A."""
        return self.significant and self.delta * self.polarity > 0

    def describe(self) -> str:
        ka, na = self.counts_a
        kb, nb = self.counts_b
        marker = "  "
        if self.regression:
            marker = "!!"
        elif self.improvement:
            marker = "++"

        def side(value: float, ci: Tuple[float, float], k: int, n: int) -> str:
            if n <= 0:
                return f"{'—':>6} [  —  ,  —  ] ({k}/{n})"
            return f"{value:6.3f} [{ci[0]:.3f},{ci[1]:.3f}] ({k}/{n})"

        tail = f"{self.delta:+.3f}" if self.measured else "    —"
        return (
            f"{marker} {self.key:<34} "
            f"{side(self.value_a, self.ci_a, ka, na)}  ->  "
            f"{side(self.value_b, self.ci_b, kb, nb)}  "
            f"{tail}"
        )


@dataclass
class RunComparison:
    """All proportion deltas between two campaign runs."""

    run_a: str
    run_b: str
    metric: str
    level: float
    deltas: List[ProportionDelta] = field(default_factory=list)

    @property
    def regressions(self) -> List[ProportionDelta]:
        return [d for d in self.deltas if d.regression]

    @property
    def improvements(self) -> List[ProportionDelta]:
        return [d for d in self.deltas if d.improvement]

    @property
    def significant(self) -> List[ProportionDelta]:
        return [d for d in self.deltas if d.significant]

    def render(self) -> str:
        head = (
            f"{self.metric} diff: {self.run_a} -> {self.run_b} "
            f"(Wilson {self.level:.0%} CIs; "
            f"!! regression, ++ improvement)"
        )
        lines = [head, "-" * len(head)]
        lines += [d.describe() for d in self.deltas]
        lines.append(
            f"{len(self.deltas)} keys compared: "
            f"{len(self.regressions)} regressions, "
            f"{len(self.improvements)} improvements, "
            f"{len(self.deltas) - len(self.significant)} within noise"
        )
        return "\n".join(lines)


def _delta(
    key: str,
    metric: str,
    a: Tuple[int, int],
    b: Tuple[int, int],
    level: float,
    polarity: int,
) -> ProportionDelta:
    def interval(counts: Tuple[int, int]) -> Tuple[float, float]:
        k, n = counts
        if n <= 0:
            return (0.0, 1.0)  # nothing measured: maximally uncertain
        return wilson_interval(k, n, level)

    return ProportionDelta(
        key=key,
        metric=metric,
        counts_a=a,
        counts_b=b,
        ci_a=interval(a),
        ci_b=interval(b),
        polarity=polarity,
    )


def compare_permeability(
    a: PermeabilityEstimate,
    b: PermeabilityEstimate,
    run_a: str = "A",
    run_b: str = "B",
    level: float = 0.95,
) -> RunComparison:
    """Per ``module.in_port->out_port`` permeability deltas.

    Higher permeability means more error propagation, so a significant
    *increase* is the regression direction.
    """
    comparison = RunComparison(
        run_a=run_a, run_b=run_b, metric="permeability", level=level
    )
    keys = sorted(set(a.direct_counts) | set(b.direct_counts))
    for module, in_port, out_port in keys:
        counts_a = (
            a.direct_counts.get((module, in_port, out_port), 0),
            a.active_runs.get((module, in_port), 0),
        )
        counts_b = (
            b.direct_counts.get((module, in_port, out_port), 0),
            b.active_runs.get((module, in_port), 0),
        )
        comparison.deltas.append(
            _delta(
                f"{module}.{in_port}->{out_port}",
                "permeability",
                counts_a,
                counts_b,
                level,
                polarity=-1,
            )
        )
    return comparison


def compare_detection(
    a: DetectionResult,
    b: DetectionResult,
    run_a: str = "A",
    run_b: str = "B",
    level: float = 0.95,
) -> RunComparison:
    """Per ``target/EA`` detection-coverage deltas.

    Covers every (target, EA) pair of either run plus the per-target
    "any EA fired" coverage (keyed ``target/*``).  The trial count is
    the target's active-error count, so runs with different EA sets —
    or different budgets — stay comparable.  A significant *decrease*
    is the regression direction.
    """
    comparison = RunComparison(
        run_a=run_a, run_b=run_b, metric="detection", level=level
    )
    targets = sorted(set(a.targets) | set(b.targets))
    eas = sorted(set(a.ea_names) | set(b.ea_names))
    for target in targets:
        n_a = a.n_err.get(target, 0)
        n_b = b.n_err.get(target, 0)
        for ea in eas:
            counts_a = (a.detections.get((target, ea), 0), n_a)
            counts_b = (b.detections.get((target, ea), 0), n_b)
            if counts_a[1] == 0 and counts_b[1] == 0:
                continue
            comparison.deltas.append(
                _delta(
                    f"{target}/{ea}",
                    "detection",
                    counts_a,
                    counts_b,
                    level,
                    polarity=1,
                )
            )
        comparison.deltas.append(
            _delta(
                f"{target}/*",
                "detection",
                (a.any_detections.get(target, 0), n_a),
                (b.any_detections.get(target, 0), n_b),
                level,
                polarity=1,
            )
        )
    return comparison


def compare_results(
    a: Any,
    b: Any,
    run_a: str = "A",
    run_b: str = "B",
    level: float = 0.95,
) -> RunComparison:
    """Dispatch on the result kind shared by both runs."""
    if isinstance(a, PermeabilityEstimate) and isinstance(
        b, PermeabilityEstimate
    ):
        return compare_permeability(a, b, run_a, run_b, level)
    if isinstance(a, DetectionResult) and isinstance(b, DetectionResult):
        return compare_detection(a, b, run_a, run_b, level)
    if isinstance(a, MemoryCampaignResult) or isinstance(
        b, MemoryCampaignResult
    ):
        raise AnalysisError(
            "memory campaign results have no per-proportion diff yet; "
            "compare their detection tables instead"
        )
    raise AnalysisError(
        f"cannot compare a {type(a).__name__} with a {type(b).__name__}"
    )
