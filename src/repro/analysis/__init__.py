"""Estimation statistics, bridging and report rendering."""

from repro.analysis.compare import (
    ProportionDelta,
    RunComparison,
    compare_detection,
    compare_permeability,
    compare_results,
)
from repro.analysis.estimators import (
    EstimateConfidence,
    bound_matrices_from_estimate,
    estimate_confidence,
    estimate_intervals,
    matrix_from_estimate,
)
from repro.analysis.intervals import (
    certifies_saturation,
    certifies_zero,
    clopper_pearson_interval,
    jeffreys_interval,
    wilson_halfwidth,
    wilson_interval,
    wilson_lower_bound,
    wilson_upper_bound,
    z_value,
)
from repro.analysis.tables import fmt, render_table

__all__ = [
    "EstimateConfidence",
    "ProportionDelta",
    "bound_matrices_from_estimate",
    "RunComparison",
    "compare_detection",
    "compare_permeability",
    "compare_results",
    "certifies_saturation",
    "certifies_zero",
    "clopper_pearson_interval",
    "estimate_confidence",
    "estimate_intervals",
    "fmt",
    "jeffreys_interval",
    "matrix_from_estimate",
    "render_table",
    "wilson_halfwidth",
    "wilson_interval",
    "wilson_lower_bound",
    "wilson_upper_bound",
    "z_value",
]
