"""Estimation bridging and report rendering."""

from repro.analysis.estimators import (
    EstimateConfidence,
    estimate_confidence,
    matrix_from_estimate,
)
from repro.analysis.tables import fmt, render_table

__all__ = [
    "EstimateConfidence",
    "estimate_confidence",
    "fmt",
    "matrix_from_estimate",
    "render_table",
]
