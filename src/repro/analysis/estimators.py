"""Bridging fault-injection estimates into the analysis framework.

A :class:`~repro.fi.campaign.PermeabilityEstimate` is keyed by
``(module, in_port, out_port)``; the analysis core's
:class:`~repro.core.permeability.PermeabilityMatrix` is keyed by the
paper's ``(module, in_index, out_index)``.  This module converts
between the two and computes simple confidence information for the
estimates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.permeability import PermeabilityMatrix
from repro.errors import AnalysisError
from repro.fi.campaign import PermeabilityEstimate
from repro.model.system import SystemModel

__all__ = [
    "matrix_from_estimate",
    "estimate_confidence",
    "EstimateConfidence",
]


def matrix_from_estimate(
    system: SystemModel, estimate: PermeabilityEstimate
) -> PermeabilityMatrix:
    """Build a complete :class:`PermeabilityMatrix` from campaign data."""
    values = {}
    for pair in system.io_pairs():
        key = (pair.module, pair.in_port, pair.out_port)
        if key not in estimate.values:
            raise AnalysisError(
                f"campaign produced no estimate for pair {key}"
            )
        values[pair] = estimate.values[key]
    return PermeabilityMatrix.from_values(system, values)


@dataclass(frozen=True)
class EstimateConfidence:
    """Binomial confidence information for one permeability estimate."""

    value: float
    n: int
    #: half-width of the normal-approximation 95 % confidence interval
    half_width_95: float

    @property
    def low(self) -> float:
        return max(0.0, self.value - self.half_width_95)

    @property
    def high(self) -> float:
        return min(1.0, self.value + self.half_width_95)


def estimate_confidence(
    estimate: PermeabilityEstimate,
) -> Dict[Tuple[str, str, str], EstimateConfidence]:
    """95 % confidence intervals for every pair's estimate.

    Permeability estimation is a per-run Bernoulli trial (direct error
    observed or not), so the normal approximation to the binomial
    proportion applies; for small n the half-width is conservative.
    """
    result: Dict[Tuple[str, str, str], EstimateConfidence] = {}
    for key, value in estimate.values.items():
        module, in_port, _ = key
        n = estimate.active_runs.get((module, in_port), 0)
        if n <= 0:
            result[key] = EstimateConfidence(value, 0, 1.0)
            continue
        half = 1.96 * math.sqrt(max(value * (1.0 - value), 1e-12) / n)
        result[key] = EstimateConfidence(value, n, half)
    return result
