"""Statistics for fault-injection estimates.

Two responsibilities live here:

* **Interval estimation** — every campaign-measured quantity is a
  binomial proportion, and this module is the public surface of the
  interval machinery in :mod:`repro.analysis.intervals`: Wilson score
  intervals (two-sided and one-sided), Jeffreys and exact
  Clopper-Pearson intervals, half-width precision measures, and the
  zero/saturation certification predicates the adaptive campaign
  engine (:mod:`repro.fi.adaptive`) stops strata on.

* **Bridging** — a :class:`~repro.fi.campaign.PermeabilityEstimate`
  is keyed by ``(module, in_port, out_port)``; the analysis core's
  :class:`~repro.core.permeability.PermeabilityMatrix` is keyed by the
  paper's ``(module, in_index, out_index)``.
  :func:`matrix_from_estimate` converts between the two, and
  :func:`estimate_confidence` / :func:`estimate_intervals` attach
  confidence information to every pair of an estimate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.analysis.intervals import (
    beta_quantile,
    certifies_saturation,
    certifies_zero,
    clopper_pearson_interval,
    jeffreys_interval,
    regularized_incomplete_beta,
    wilson_halfwidth,
    wilson_interval,
    wilson_lower_bound,
    wilson_upper_bound,
    z_value,
)
from repro.core.permeability import PermeabilityMatrix
from repro.errors import AnalysisError
from repro.fi.campaign import PermeabilityEstimate
from repro.model.system import SystemModel

__all__ = [
    "matrix_from_estimate",
    "bound_matrices_from_estimate",
    "estimate_confidence",
    "estimate_intervals",
    "EstimateConfidence",
    # interval machinery (re-exported from repro.analysis.intervals)
    "z_value",
    "wilson_interval",
    "wilson_halfwidth",
    "wilson_lower_bound",
    "wilson_upper_bound",
    "jeffreys_interval",
    "clopper_pearson_interval",
    "certifies_zero",
    "certifies_saturation",
    "regularized_incomplete_beta",
    "beta_quantile",
]


def matrix_from_estimate(
    system: SystemModel, estimate: PermeabilityEstimate
) -> PermeabilityMatrix:
    """Build a complete :class:`PermeabilityMatrix` from campaign data."""
    values = {}
    for pair in system.io_pairs():
        key = (pair.module, pair.in_port, pair.out_port)
        if key not in estimate.values:
            raise AnalysisError(
                f"campaign produced no estimate for pair {key}"
            )
        values[pair] = estimate.values[key]
    return PermeabilityMatrix.from_values(system, values)


def bound_matrices_from_estimate(
    system: SystemModel,
    estimate: PermeabilityEstimate,
    level: float = 0.95,
) -> Tuple[PermeabilityMatrix, PermeabilityMatrix]:
    """``(lower, upper)`` Wilson-bound matrices for every pair.

    Each permeability is replaced by the endpoint of its Wilson score
    interval at confidence *level*; downstream measures that are
    monotone in every permeability (exposure, impact, placement
    coverage) evaluated on these matrices bound the measured value.
    """
    intervals = estimate_intervals(estimate, level=level)
    lows: Dict[object, float] = {}
    highs: Dict[object, float] = {}
    for pair in system.io_pairs():
        key = (pair.module, pair.in_port, pair.out_port)
        if key not in intervals:
            raise AnalysisError(
                f"campaign produced no estimate for pair {key}"
            )
        lows[pair], highs[pair] = intervals[key]
    return (
        PermeabilityMatrix.from_values(system, lows),
        PermeabilityMatrix.from_values(system, highs),
    )


@dataclass(frozen=True)
class EstimateConfidence:
    """Binomial confidence information for one permeability estimate."""

    value: float
    n: int
    #: half-width of the normal-approximation 95 % confidence interval
    half_width_95: float

    @property
    def low(self) -> float:
        return max(0.0, self.value - self.half_width_95)

    @property
    def high(self) -> float:
        return min(1.0, self.value + self.half_width_95)


def estimate_confidence(
    estimate: PermeabilityEstimate,
) -> Dict[Tuple[str, str, str], EstimateConfidence]:
    """95 % confidence intervals for every pair's estimate.

    Permeability estimation is a per-run Bernoulli trial (direct error
    observed or not), so the normal approximation to the binomial
    proportion applies; for small n the half-width is conservative.
    """
    result: Dict[Tuple[str, str, str], EstimateConfidence] = {}
    for key, value in estimate.values.items():
        module, in_port, _ = key
        n = estimate.active_runs.get((module, in_port), 0)
        if n <= 0:
            result[key] = EstimateConfidence(value, 0, 1.0)
            continue
        half = 1.96 * math.sqrt(max(value * (1.0 - value), 1e-12) / n)
        result[key] = EstimateConfidence(value, n, half)
    return result


def estimate_intervals(
    estimate: PermeabilityEstimate, level: float = 0.95
) -> Dict[Tuple[str, str, str], Tuple[float, float]]:
    """Wilson score intervals for every pair of an estimate.

    Unlike :func:`estimate_confidence` (normal approximation, kept for
    backward compatibility), these intervals stay honest at the
    extreme proportions — exact zeros and saturated pass-throughs —
    that dominate a permeability matrix.
    """
    intervals: Dict[Tuple[str, str, str], Tuple[float, float]] = {}
    for key in estimate.values:
        module, in_port, out_port = key
        n = estimate.active_runs.get((module, in_port), 0)
        k = estimate.direct_counts.get(key, 0)
        intervals[key] = wilson_interval(min(k, n), n, level)
    return intervals
