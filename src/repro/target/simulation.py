"""Closed-loop arrestment simulation: software, plant, and verdict.

One :class:`ArrestmentSimulator` owns one engagement: it drives the
slot-scheduled software at the 1 ms tick, feeds the peripheral
registers from the plant's true state, applies the commanded brake
pressure back to the plant, and classifies the outcome.  Hooks expose
every marshaling, local write, and invocation to the fault injector;
:class:`SignalTraces` records the per-signal write streams that the
golden-run comparison diffs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.model.signal import Number
from repro.model.system import (
    ExecutorHooks,
    InvocationRecord,
    SlotSchedule,
    SystemExecutor,
    SystemModel,
)
from repro.target import constants as C
from repro.target.failure import FailureClassifier, FailureVerdict
from repro.target.hardware import SensorSuite
from repro.target.physics import ArrestmentPlant
from repro.target.testcases import TestCase
from repro.target.wiring import build_arrestment_system

__all__ = ["SignalTraces", "ArrestmentResult", "ArrestmentSimulator"]


class SignalTraces:
    """Per-signal streams of (tick, value) writes."""

    def __init__(self) -> None:
        self._streams: Dict[str, List[Tuple[int, Number]]] = {}

    def record(self, signal: str, tick: int, value: Number) -> None:
        self._streams.setdefault(signal, []).append((tick, value))

    def stream(self, signal: str) -> List[Tuple[int, Number]]:
        """The recorded write stream; empty for unknown signals."""
        return list(self._streams.get(signal, ()))

    def signals(self) -> List[str]:
        return list(self._streams)

    def first_difference(
        self, other: "SignalTraces", signal: str
    ) -> Optional[int]:
        """First tick at which the two streams of *signal* diverge.

        A difference is a changed value, a shifted write tick, or a
        write present in only one stream; ``None`` means the streams
        are identical.
        """
        mine = self.stream(signal)
        theirs = other.stream(signal)
        for (tick_a, value_a), (tick_b, value_b) in zip(mine, theirs):
            if (tick_a, value_a) != (tick_b, value_b):
                return min(tick_a, tick_b)
        if len(mine) != len(theirs):
            longer = mine if len(mine) > len(theirs) else theirs
            return longer[min(len(mine), len(theirs))][0]
        return None


@dataclass
class ArrestmentResult:
    """Outcome of one simulated engagement."""

    test_case: TestCase
    ticks_run: int
    completion_tick: Optional[int]
    verdict: FailureVerdict
    traces: SignalTraces
    stop_distance_m: float
    stop_time_s: float

    @property
    def arrested(self) -> bool:
        return self.completion_tick is not None

    @property
    def failed(self) -> bool:
        return self.verdict.failed


class ArrestmentSimulator:
    """One engagement of the arrestment system."""

    def __init__(
        self,
        test_case: TestCase,
        timeout_s: float = C.DEFAULT_TIMEOUT_S,
        record_traces: bool = True,
        system: Optional[SystemModel] = None,
        module_slots: Optional[Dict[str, int]] = None,
    ):
        self.test_case = test_case
        self.timeout_s = timeout_s
        self.record_traces = record_traces
        if system is None:
            system = build_arrestment_system(
                pressure_scale=C.pressure_scale_counts(test_case.mass_kg)
            )
        self.system: SystemModel = system
        if module_slots is None:
            module_slots = dict(C.MODULE_SLOTS)
        self.module_slots = dict(module_slots)
        schedule = SlotSchedule(C.N_SLOTS)
        schedule.every_tick("CLOCK")
        for module, slot in self.module_slots.items():
            schedule.assign(slot, module)
        self._pre_tick: List[Callable[[int], None]] = []
        self._marshal: List[
            Callable[[str, Dict[str, Number]], Dict[str, Number]]
        ] = []
        self._local_write: List[Callable[[str, str, Number], Number]] = []
        self._post_invoke: List[Callable[[InvocationRecord], None]] = []
        self._post_tick: List[Callable[[int], None]] = []
        hooks = ExecutorHooks(
            pre_tick=self._run_pre_tick,
            marshal=self._run_marshal,
            local_write=self._run_local_write,
            post_invoke=self._run_post_invoke,
            post_tick=self._run_post_tick,
        )
        self.executor = SystemExecutor(self.system, schedule, hooks)
        self.plant = ArrestmentPlant(
            test_case.mass_kg, test_case.engaging_velocity_ms
        )
        self.sensors = SensorSuite()
        self.classifier = FailureClassifier(test_case)
        self.traces = SignalTraces()
        self._slot_map: Dict[int, List[str]] = {}
        for module, slot in self.module_slots.items():
            self._slot_map.setdefault(slot, []).append(module)

    # ------------------------------------------------------------------
    # Hook plumbing (the fault injector's attachment points).
    # ------------------------------------------------------------------
    def add_pre_tick(self, handler) -> None:
        self._pre_tick.append(handler)

    def add_marshal(self, handler) -> None:
        self._marshal.append(handler)

    def add_local_write(self, handler) -> None:
        self._local_write.append(handler)

    def add_post_invoke(self, handler) -> None:
        self._post_invoke.append(handler)

    def add_post_tick(self, handler) -> None:
        self._post_tick.append(handler)

    def _run_pre_tick(self, tick: int) -> None:
        for handler in self._pre_tick:
            handler(tick)

    def _run_marshal(self, module, args):
        for handler in self._marshal:
            args = handler(module, args)
        return args

    def _run_local_write(self, module, name, value):
        for handler in self._local_write:
            value = handler(module, name, value)
        return value

    def _run_post_invoke(self, record: InvocationRecord) -> None:
        if self.record_traces:
            for port, value in record.outputs.items():
                signal = self.system.signal_of_output(record.module, port)
                self.traces.record(signal, record.tick, value)
        for handler in self._post_invoke:
            handler(record)

    def _run_post_tick(self, tick: int) -> None:
        for handler in self._post_tick:
            handler(tick)

    # ------------------------------------------------------------------
    # Injection support.
    # ------------------------------------------------------------------
    _REGISTER_OF = {
        "PACNT": "pacnt",
        "TIC1": "tic1",
        "TCNT": "tcnt",
        "ADC": "adc",
    }

    def corrupt_input(self, signal: str, bit: int) -> Tuple[Number, Number]:
        """Flip a bit of a peripheral register (a system input signal).

        The corruption lands in the register itself, so its persistence
        follows the register's refresh semantics: counters carry the
        error forward, the ADC result is overwritten at the next
        conversion.  Returns (before, after).
        """
        attr = self._REGISTER_OF[signal]
        spec = self.system.signal(signal)
        before = getattr(self.sensors, attr)
        after = spec.flip_bit(before, bit)
        setattr(self.sensors, attr, after)
        self.executor.store.poke(signal, after)
        return before, after

    # ------------------------------------------------------------------
    # The engagement loop.
    # ------------------------------------------------------------------
    def _write_sensor_inputs(self, tick: int) -> None:
        store = self.executor.store
        for signal, attr in self._REGISTER_OF.items():
            store[signal] = getattr(self.sensors, attr)
            if self.record_traces:
                self.traces.record(signal, tick, store[signal])

    def run(self) -> ArrestmentResult:
        executor = self.executor
        store = executor.store
        max_ticks = int(self.timeout_s / C.TICK_S)
        abort_distance = C.MAX_STOPPING_DISTANCE_M + C.OVERRUN_ABORT_MARGIN_M
        completion: Optional[int] = None
        stop_tick: Optional[int] = None
        ticks_run = 0
        for tick in range(max_ticks):
            self.sensors.advance(
                self.plant.state.distance_m, self.plant.state.pressure_pa
            )
            self._write_sensor_inputs(tick)
            executor.begin_tick()
            executor.invoke("CLOCK")
            slot = store["ms_slot_nbr"]
            for module in self._slot_map.get(slot, ()):
                executor.invoke(module)
            executor.end_tick()
            state = self.plant.step(
                SensorSuite.commanded_pressure(store["TOC2"])
            )
            self.classifier.observe(state)
            ticks_run = tick + 1
            if stop_tick is None and self.plant.is_stopped:
                stop_tick = tick
            if completion is None and store["stopped"] and self.plant.is_stopped:
                completion = tick
            if completion is not None and tick >= completion + C.POST_STOP_TICKS:
                break
            if state.distance_m > abort_distance:
                break
        return ArrestmentResult(
            test_case=self.test_case,
            ticks_run=ticks_run,
            completion_tick=completion,
            verdict=self.classifier.verdict(arrested=completion is not None),
            traces=self.traces,
            stop_distance_m=self.plant.state.distance_m,
            stop_time_s=(
                stop_tick if stop_tick is not None else ticks_run
            ) * C.TICK_S,
        )
