"""Closed-loop arrestment simulation: software, plant, and verdict.

One :class:`ArrestmentSimulator` owns one engagement: it drives the
slot-scheduled software at the 1 ms tick, feeds the peripheral
registers from the plant's true state, applies the commanded brake
pressure back to the plant, and classifies the outcome.  Hooks expose
every marshaling, local write, and invocation to the fault injector;
:class:`SignalTraces` records the per-signal write streams that the
golden-run comparison diffs.

The simulator is checkpointable: :meth:`ArrestmentSimulator.capture_state`
freezes the full closed loop (store, module locals, plant, registers,
classifier accumulators, loop bookkeeping) at the top of a tick and
:meth:`ArrestmentSimulator.restore_state` resumes from it
bit-identically — the substrate of the fast-forward engine in
``repro.fi.snapshot``.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.model.signal import Number
from repro.model.system import (
    ExecutorHooks,
    InvocationRecord,
    SlotSchedule,
    SystemExecutor,
    SystemModel,
)
from repro.target import constants as C
from repro.target.failure import FailureClassifier, FailureVerdict
from repro.target.hardware import SensorSuite
from repro.target.physics import ArrestmentPlant
from repro.target.testcases import TestCase
from repro.target.wiring import build_arrestment_system

__all__ = [
    "SignalTraces",
    "SimulatorState",
    "ArrestmentResult",
    "ArrestmentSimulator",
]

_EMPTY: Tuple = ()


class SignalTraces:
    """Per-signal streams of (tick, value) writes.

    Stored as parallel tick/value arrays per signal, so the golden-run
    comparison can diff whole streams at C speed without materializing
    pair lists, and the fast-forward engine can splice golden prefixes
    and suffixes by index (ticks within one stream are nondecreasing).
    """

    __slots__ = ("_ticks", "_values")

    def __init__(self) -> None:
        self._ticks: Dict[str, List[int]] = {}
        self._values: Dict[str, List[Number]] = {}

    def record(self, signal: str, tick: int, value: Number) -> None:
        ticks = self._ticks.get(signal)
        if ticks is None:
            ticks = self._ticks[signal] = []
            self._values[signal] = []
        ticks.append(tick)
        self._values[signal].append(value)

    def stream(self, signal: str) -> List[Tuple[int, Number]]:
        """The recorded write stream as (tick, value) pairs (a fresh
        list); empty for unknown signals."""
        return list(
            zip(self._ticks.get(signal, _EMPTY), self._values.get(signal, _EMPTY))
        )

    def signals(self) -> List[str]:
        return list(self._ticks)

    # ------------------------------------------------------------------
    # No-copy accessors (comparison hot path).
    # ------------------------------------------------------------------
    def ticks_of(self, signal: str) -> Sequence[int]:
        """Write ticks of *signal*, nondecreasing.  The internal array:
        treat as read-only."""
        return self._ticks.get(signal, _EMPTY)

    def values_of(self, signal: str) -> Sequence[Number]:
        """Write values of *signal*, parallel to :meth:`ticks_of`.
        The internal array: treat as read-only."""
        return self._values.get(signal, _EMPTY)

    def lengths(self) -> Dict[str, int]:
        """Per-signal stream lengths (a checkpoint's trace cut marks)."""
        return {signal: len(ticks) for signal, ticks in self._ticks.items()}

    # ------------------------------------------------------------------
    # Fast-forward splicing.
    # ------------------------------------------------------------------
    def splice_prefix(
        self, source: "SignalTraces", lengths: Mapping[str, int]
    ) -> None:
        """Replace this trace's streams with *source*'s first
        ``lengths[signal]`` writes (the golden prefix up to a
        checkpoint)."""
        for signal, n in lengths.items():
            if n:
                self._ticks[signal] = source._ticks[signal][:n]
                self._values[signal] = source._values[signal][:n]

    def extend_suffix(self, source: "SignalTraces", from_tick: int) -> None:
        """Append *source*'s writes at or after *from_tick* (the golden
        suffix after a resynchronization point)."""
        for signal, ticks in source._ticks.items():
            start = bisect_left(ticks, from_tick)
            if start < len(ticks):
                mine = self._ticks.get(signal)
                if mine is None:
                    mine = self._ticks[signal] = []
                    self._values[signal] = []
                mine.extend(ticks[start:])
                self._values[signal].extend(source._values[signal][start:])

    def first_difference(
        self, other: "SignalTraces", signal: str
    ) -> Optional[int]:
        """First tick at which the two streams of *signal* diverge.

        A difference is a changed value, a shifted write tick, or a
        write present in only one stream; ``None`` means the streams
        are identical.
        """
        mine_t = self._ticks.get(signal, _EMPTY)
        mine_v = self._values.get(signal, _EMPTY)
        theirs_t = other._ticks.get(signal, _EMPTY)
        theirs_v = other._values.get(signal, _EMPTY)
        # identical streams (the overwhelmingly common case) compare as
        # two array equalities at C speed
        if mine_t == theirs_t and mine_v == theirs_v:
            return None
        shorter = min(len(mine_t), len(theirs_t))
        for i in range(shorter):
            if mine_t[i] != theirs_t[i] or mine_v[i] != theirs_v[i]:
                return min(mine_t[i], theirs_t[i])
        longer = mine_t if len(mine_t) > len(theirs_t) else theirs_t
        return longer[shorter]


@dataclass
class SimulatorState:
    """Full closed-loop simulator state at the top of one tick.

    Captured before the sensor advance of ``tick``; restoring into a
    fresh simulator of the same test case and resuming ``run()``
    replays the remaining ticks bit-identically.  ``traces`` is a
    reference to the capturing simulator's trace object (golden
    checkpoints keep it so a restorer can splice the recorded prefix);
    :meth:`matches` ignores trace bookkeeping.
    """

    tick: int
    signals: Dict[str, Number]
    modules: Dict[str, Dict[str, Number]]
    plant: dict
    sensors: dict
    classifier: object
    loop: dict
    trace_lengths: Dict[str, int] = field(default_factory=dict)
    traces: Optional[SignalTraces] = None

    def matches(self, other: "SimulatorState") -> bool:
        """Exact state equality, ignoring trace bookkeeping."""
        return (
            self.tick == other.tick
            and self.signals == other.signals
            and self.modules == other.modules
            and self.plant == other.plant
            and self.sensors == other.sensors
            and self.classifier == other.classifier
            and self.loop == other.loop
        )


@dataclass
class ArrestmentResult:
    """Outcome of one simulated engagement."""

    test_case: TestCase
    ticks_run: int
    completion_tick: Optional[int]
    verdict: FailureVerdict
    traces: SignalTraces
    stop_distance_m: float
    stop_time_s: float

    @property
    def arrested(self) -> bool:
        return self.completion_tick is not None

    @property
    def failed(self) -> bool:
        return self.verdict.failed


class ArrestmentSimulator:
    """One engagement of the arrestment system."""

    def __init__(
        self,
        test_case: TestCase,
        timeout_s: float = C.DEFAULT_TIMEOUT_S,
        record_traces: bool = True,
        system: Optional[SystemModel] = None,
        module_slots: Optional[Dict[str, int]] = None,
    ):
        self.test_case = test_case
        self.timeout_s = timeout_s
        self._record_traces = record_traces
        if system is None:
            system = build_arrestment_system(
                pressure_scale=C.pressure_scale_counts(test_case.mass_kg)
            )
        self.system: SystemModel = system
        if module_slots is None:
            module_slots = dict(C.MODULE_SLOTS)
        self.module_slots = dict(module_slots)
        schedule = SlotSchedule(C.N_SLOTS)
        schedule.every_tick("CLOCK")
        for module, slot in self.module_slots.items():
            schedule.assign(slot, module)
        self._pre_tick: List[Callable[[int], None]] = []
        self._marshal: List[
            Callable[[str, Dict[str, Number]], Dict[str, Number]]
        ] = []
        self._local_write: List[Callable[[str, str, Number], Number]] = []
        self._post_invoke: List[Callable[[InvocationRecord], None]] = []
        self._post_tick: List[Callable[[int], None]] = []
        self._hooks = ExecutorHooks()
        self.executor = SystemExecutor(self.system, schedule, self._hooks)
        self.plant = ArrestmentPlant(
            test_case.mass_kg, test_case.engaging_velocity_ms
        )
        self.sensors = SensorSuite()
        self.classifier = FailureClassifier(test_case)
        self.traces = SignalTraces()
        self._slot_map: Dict[int, List[str]] = {}
        for module, slot in self.module_slots.items():
            self._slot_map.setdefault(slot, []).append(module)
        self._completion: Optional[int] = None
        self._stop_tick: Optional[int] = None
        self._ticks_run = 0
        self._start_tick = 0
        self._tick_probe: Optional[Callable[[int], bool]] = None
        self._rewire_hooks()

    # ------------------------------------------------------------------
    # Hook plumbing (the fault injector's attachment points).
    # ------------------------------------------------------------------
    def _rewire_hooks(self) -> None:
        """Install only the dispatchers with work to do.

        Hook dispatch costs a call (and a handler loop) per tick or
        per invocation; an empty handler list instead leaves the
        executor's ``hook is None`` fast path in place.
        """
        hooks = self._hooks
        hooks.pre_tick = self._run_pre_tick if self._pre_tick else None
        hooks.marshal = self._run_marshal if self._marshal else None
        hooks.local_write = (
            self._run_local_write if self._local_write else None
        )
        hooks.post_invoke = (
            self._run_post_invoke
            if self._record_traces or self._post_invoke
            else None
        )
        hooks.post_tick = self._run_post_tick if self._post_tick else None

    @property
    def record_traces(self) -> bool:
        return self._record_traces

    @record_traces.setter
    def record_traces(self, enabled: bool) -> None:
        self._record_traces = bool(enabled)
        self._rewire_hooks()

    def add_pre_tick(self, handler) -> None:
        self._pre_tick.append(handler)
        self._rewire_hooks()

    def add_marshal(self, handler) -> None:
        self._marshal.append(handler)
        self._rewire_hooks()

    def add_local_write(self, handler) -> None:
        self._local_write.append(handler)
        self._rewire_hooks()

    def add_post_invoke(self, handler) -> None:
        self._post_invoke.append(handler)
        self._rewire_hooks()

    def add_post_tick(self, handler) -> None:
        self._post_tick.append(handler)
        self._rewire_hooks()

    def set_tick_probe(self, probe: Optional[Callable[[int], bool]]) -> None:
        """Install a callable run at the top of every tick, before any
        simulation work.  Returning True stops the run immediately (the
        fast-forward engine's resynchronization exit); checkpoint
        recorders return False to keep the run going."""
        self._tick_probe = probe

    def _run_pre_tick(self, tick: int) -> None:
        for handler in self._pre_tick:
            handler(tick)

    def _run_marshal(self, module, args):
        for handler in self._marshal:
            args = handler(module, args)
        return args

    def _run_local_write(self, module, name, value):
        for handler in self._local_write:
            value = handler(module, name, value)
        return value

    def _run_post_invoke(self, record: InvocationRecord) -> None:
        if self._record_traces:
            for port, value in record.outputs.items():
                signal = self.system.signal_of_output(record.module, port)
                self.traces.record(signal, record.tick, value)
        for handler in self._post_invoke:
            handler(record)

    def _run_post_tick(self, tick: int) -> None:
        for handler in self._post_tick:
            handler(tick)

    # ------------------------------------------------------------------
    # Injection support.
    # ------------------------------------------------------------------
    _REGISTER_OF = {
        "PACNT": "pacnt",
        "TIC1": "tic1",
        "TCNT": "tcnt",
        "ADC": "adc",
    }

    def corrupt_input(self, signal: str, bit: int) -> Tuple[Number, Number]:
        """Flip a bit of a peripheral register (a system input signal).

        The corruption lands in the register itself, so its persistence
        follows the register's refresh semantics: counters carry the
        error forward, the ADC result is overwritten at the next
        conversion.  Returns (before, after).
        """
        attr = self._REGISTER_OF[signal]
        spec = self.system.signal(signal)
        before = getattr(self.sensors, attr)
        after = spec.flip_bit(before, bit)
        setattr(self.sensors, attr, after)
        self.executor.store.poke(signal, after)
        return before, after

    # ------------------------------------------------------------------
    # Checkpointing.
    # ------------------------------------------------------------------
    def capture_state(self) -> SimulatorState:
        """Freeze the full closed loop at the top of the current tick."""
        return SimulatorState(
            tick=self.executor.tick,
            signals=self.executor.store.snapshot(),
            modules={
                module.name: module.state.snapshot()
                for module in self.system.modules()
            },
            plant=self.plant.snapshot(),
            sensors=self.sensors.snapshot(),
            classifier=self.classifier.snapshot(),
            loop={
                "completion": self._completion,
                "stop_tick": self._stop_tick,
                "ticks_run": self._ticks_run,
            },
            trace_lengths=self.traces.lengths() if self._record_traces else {},
            traces=self.traces if self._record_traces else None,
        )

    def restore_state(
        self, state: SimulatorState, restore_traces: bool = True
    ) -> None:
        """Resume from a :meth:`capture_state` snapshot: the next
        :meth:`run` starts at ``state.tick`` and replays the remaining
        ticks bit-identically.  With ``restore_traces`` (and recording
        enabled on both sides) the recorded prefix is spliced in, so
        the final traces equal an uninterrupted run's."""
        self.executor.tick = state.tick
        self._start_tick = state.tick
        self.executor.store.restore(state.signals)
        for module in self.system.modules():
            module.state.restore(state.modules[module.name])
        self.plant.restore(state.plant)
        self.sensors.restore(state.sensors)
        self.classifier.restore(state.classifier)
        loop = state.loop
        self._completion = loop["completion"]
        self._stop_tick = loop["stop_tick"]
        self._ticks_run = loop["ticks_run"]
        if restore_traces and self._record_traces and state.traces is not None:
            self.traces.splice_prefix(state.traces, state.trace_lengths)

    # ------------------------------------------------------------------
    # The engagement loop.
    # ------------------------------------------------------------------
    def _write_sensor_inputs(self, tick: int) -> None:
        store = self.executor.store
        for signal, attr in self._REGISTER_OF.items():
            store[signal] = getattr(self.sensors, attr)
            if self._record_traces:
                self.traces.record(signal, tick, store[signal])

    def run(self) -> ArrestmentResult:
        executor = self.executor
        store = executor.store
        max_ticks = int(self.timeout_s / C.TICK_S)
        abort_distance = C.MAX_STOPPING_DISTANCE_M + C.OVERRUN_ABORT_MARGIN_M
        probe = self._tick_probe
        tick = self._start_tick
        while tick < max_ticks:
            if probe is not None and probe(tick):
                break
            self.sensors.advance(
                self.plant.state.distance_m, self.plant.state.pressure_pa
            )
            self._write_sensor_inputs(tick)
            executor.begin_tick()
            executor.invoke("CLOCK")
            slot = store["ms_slot_nbr"]
            for module in self._slot_map.get(slot, ()):
                executor.invoke(module)
            executor.end_tick()
            state = self.plant.step(
                SensorSuite.commanded_pressure(store["TOC2"])
            )
            self.classifier.observe(state)
            self._ticks_run = tick + 1
            if self._stop_tick is None and self.plant.is_stopped:
                self._stop_tick = tick
            if (
                self._completion is None
                and store["stopped"]
                and self.plant.is_stopped
            ):
                self._completion = tick
            if (
                self._completion is not None
                and tick >= self._completion + C.POST_STOP_TICKS
            ):
                break
            if state.distance_m > abort_distance:
                break
            tick += 1
        ticks_run = self._ticks_run
        stop_tick = self._stop_tick
        return ArrestmentResult(
            test_case=self.test_case,
            ticks_run=ticks_run,
            completion_tick=self._completion,
            verdict=self.classifier.verdict(
                arrested=self._completion is not None
            ),
            traces=self.traces,
            stop_distance_m=self.plant.state.distance_m,
            stop_time_s=(
                stop_tick if stop_tick is not None else ticks_run
            ) * C.TICK_S,
        )
