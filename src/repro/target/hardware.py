"""Peripheral registers with micro-controller semantics.

PACNT is an 8-bit free-wrapping pulse accumulator (4 pulses per metre
of run-out), TCNT a free-running 16-bit timer (250 counts per 1 ms
tick), TIC1 latches TCNT at each pulse (input capture), the 10-bit ADC
samples the applied brake pressure, and TOC2 (14 bits) commands it.

The fault injector corrupts these registers directly
(:meth:`repro.target.simulation.ArrestmentSimulator.corrupt_input`);
their refresh semantics decide whether a flip is persistent (counter
registers) or transient (the ADC result register is rewritten at the
next conversion).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.target import constants as C

__all__ = ["SensorSuite"]


@dataclass
class SensorSuite:
    """Sensor/actuator register file, advanced once per tick."""

    tcnt: int = 0
    pacnt: int = 0
    tic1: int = 0
    adc: int = 0
    #: unwrapped pulse total (diagnostic; not visible to the software).
    total_pulses: int = 0
    _pulse_mirror: int = 0

    def advance(self, distance_m: float, pressure_pa: float) -> None:
        """One tick of register updates from the plant's true state."""
        self.tcnt = (self.tcnt + C.TCNT_PER_TICK) & 0xFFFF
        pulses = int(distance_m * C.PULSES_PER_M)
        new = pulses - self._pulse_mirror
        if new > 0:
            self._pulse_mirror = pulses
            self.pacnt = (self.pacnt + new) & ((1 << C.PACNT_BITS) - 1)
            self.total_pulses += new
            self.tic1 = self.tcnt
        fraction = min(max(pressure_pa / C.ADC_FULL_SCALE_PA, 0.0), 1.0)
        full = (1 << C.ADC_BITS) - 1
        self.adc = min(full, int(fraction * full))

    @staticmethod
    def commanded_pressure(toc2: int) -> float:
        """Brake pressure commanded by the TOC2 register value."""
        full = (1 << C.TOC2_BITS) - 1
        fraction = min(max(toc2 / full, 0.0), 1.0)
        return fraction * C.P_MAX_PA

    def reset(self) -> None:
        self.tcnt = 0
        self.pacnt = 0
        self.tic1 = 0
        self.adc = 0
        self.total_pulses = 0
        self._pulse_mirror = 0

    def snapshot(self) -> dict:
        """Every register (incl. the pulse mirror), for checkpoint capture."""
        return {
            "tcnt": self.tcnt,
            "pacnt": self.pacnt,
            "tic1": self.tic1,
            "adc": self.adc,
            "total_pulses": self.total_pulses,
            "_pulse_mirror": self._pulse_mirror,
        }

    def restore(self, snapshot: dict) -> None:
        for name, value in snapshot.items():
            setattr(self, name, value)
