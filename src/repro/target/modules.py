"""The six software modules of the arrestment system (paper Fig. 4).

CLOCK drives the static slot schedule; DIST_S samples the run-out
pulse counters; CALC selects the pressure set-point from the
mass-setting calibration and the pressure program; PRES_S filters the
pressure feedback; V_REG closes the PI loop; PRES_A scales the output
to the actuator register.  Behavioural details and the calibration
rationale are documented in ``docs/target-system.md``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.model.module import CellSpec, ExecutionContext, Module
from repro.model.signal import Number, SignalType
from repro.target import constants as C

__all__ = ["Clock", "DistS", "Calc", "PresS", "VReg", "PresA"]

_U8 = dict(width=8)
_U16 = dict(width=16)


class Clock(Module):
    """Millisecond clock and slot sequencer (runs every tick).

    The successor of each slot lives in a RAM table, as on the real
    target where the scheduler walks a static dispatch structure — a
    corrupted table entry really does re-wire the cycle.
    """

    INPUTS = ("ms_slot_nbr",)
    OUTPUTS = ("ms_slot_nbr", "mscnt")
    STATE = (CellSpec("mscnt", **_U16),) + tuple(
        CellSpec(f"slot_succ{slot}", initial=(slot + 1) % C.N_SLOTS, **_U8)
        for slot in range(C.N_SLOTS)
    )
    LOCALS = (CellSpec("next_slot", **_U8),)

    def invoke(self, ctx: ExecutionContext) -> Dict[str, Number]:
        slot = ctx.arg("ms_slot_nbr")
        if 0 <= slot < C.N_SLOTS:
            nxt = self.state[f"slot_succ{slot}"]
        else:
            nxt = 0  # corrupted slot number: restart the cycle
        nxt = ctx.set_local("next_slot", nxt)
        self.state["mscnt"] = self.state["mscnt"] + 1
        return {"ms_slot_nbr": nxt, "mscnt": self.state["mscnt"]}


class DistS(Module):
    """Run-out distance and speed sensor module.

    Accumulates pulse-counter deltas into ``pulscnt``, estimates slow
    speed from a pulse-delta window (with a debounced capture-interval
    path as backup), and latches ``stopped`` after a quiet period.
    """

    INPUTS = ("PACNT", "TIC1", "TCNT")
    OUTPUTS = ("pulscnt", "slow_speed", "stopped")
    STATE = (
        (
            CellSpec("last_cnt", **_U8),
            CellSpec("pulscnt_acc", **_U16),
        )
        + tuple(
            CellSpec(f"win{j}", **_U8) for j in range(C.SPEED_WINDOW)
        )
        + (
            CellSpec("win_pos", **_U8),
            CellSpec("win_fill", **_U8),
            CellSpec("intv_streak", **_U8),
            CellSpec("quiet", **_U8),
            CellSpec("halted", width=1),
        )
    )
    LOCALS = (CellSpec("delta", **_U8),)

    def invoke(self, ctx: ExecutionContext) -> Dict[str, Number]:
        state = self.state
        delta = ctx.set_local(
            "delta", (ctx.arg("PACNT") - state["last_cnt"]) & 0xFF
        )
        state["last_cnt"] = ctx.arg("PACNT")
        state["pulscnt_acc"] = state["pulscnt_acc"] + delta

        # pulse-rate window: fewer than SLOW_PULSE_THRESHOLD pulses in
        # SPEED_WINDOW invocations (160 ms) means v < ~12.5 m/s.
        pos = state["win_pos"] % C.SPEED_WINDOW
        state[f"win{pos}"] = delta
        state["win_pos"] = state["win_pos"] + 1
        state["win_fill"] = min(state["win_fill"] + 1, C.SPEED_WINDOW)
        window_sum = sum(
            state[f"win{j}"] for j in range(C.SPEED_WINDOW)
        )
        pulse_slow = (
            state["win_fill"] >= C.SPEED_WINDOW
            and window_sum < C.SLOW_PULSE_THRESHOLD
        )

        # capture-interval backup path, debounced over two invocations
        # so a single corrupted capture cannot assert the flag.
        interval = (ctx.arg("TCNT") - ctx.arg("TIC1")) & 0xFFFF
        if interval > C.SLOW_INTERVAL_TCNT:
            state["intv_streak"] = min(state["intv_streak"] + 1, 255)
        else:
            state["intv_streak"] = 0
        interval_slow = state["intv_streak"] >= 2

        # stop detection: a latched quiet period with no pulses.
        if delta == 0:
            state["quiet"] = min(state["quiet"] + 1, 255)
        else:
            state["quiet"] = 0
        if state["quiet"] >= C.STOPPED_QUIET_INVOCATIONS:
            state["halted"] = 1

        return {
            "pulscnt": state["pulscnt_acc"],
            "slow_speed": 1 if (pulse_slow or interval_slow) else 0,
            "stopped": state["halted"],
        }


class Calc(Module):
    """Set-point calculation from the pressure program (paper: CALC).

    The program index ``i`` advances one segment per invocation as the
    run-out passes 64-pulse boundaries; the selected program fraction,
    scaled by the weight-setting calibration, becomes the target, which
    is bounded by the onset time ramp and slew-limited into SetValue.
    """

    INPUTS = ("i", "mscnt", "pulscnt", "slow_speed", "stopped")
    OUTPUTS = ("i", "SetValue")
    STATE = (
        CellSpec("set_prev", **_U16),
        CellSpec("last_mscnt", **_U16),
    )
    LOCALS = (CellSpec("target", **_U16),)

    def __init__(
        self,
        name: Optional[str] = None,
        pressure_scale: Optional[int] = None,
    ):
        super().__init__(name)
        if pressure_scale is None:
            pressure_scale = C.pressure_scale_counts(C.TEST_MASSES_KG[2])
        self.pressure_scale = pressure_scale

    def invoke(self, ctx: ExecutionContext) -> Dict[str, Number]:
        state = self.state
        i = ctx.arg("i")
        mscnt = ctx.arg("mscnt")

        i_out = i
        if (
            not ctx.arg("stopped")
            and i < len(C.PRESSURE_PROGRAM) - 1
            and (ctx.arg("pulscnt") >> C.SEG_SHIFT) > i
        ):
            i_out = i + 1

        fraction = C.PRESSURE_PROGRAM[i & (len(C.PRESSURE_PROGRAM) - 1)]
        if ctx.arg("slow_speed"):
            target = int(C.SLOW_SPEED_TARGET * self.pressure_scale)
        else:
            target = int(fraction * self.pressure_scale)
        target = min(target, mscnt * C.TIME_RAMP_PER_MS)
        target = ctx.set_local("target", target)

        prev = state["set_prev"]
        dt = (mscnt - state["last_mscnt"]) & 0xFFFF
        step = C.SETVALUE_RATE_PER_MS * min(dt, C.SETVALUE_DT_CLAMP)
        if target > prev:
            new = min(prev + step, target)
        elif target < prev:
            new = max(prev - step, target)
        else:
            new = prev
        state["set_prev"] = new
        state["last_mscnt"] = mscnt
        return {"i": i_out, "SetValue": new}


class PresS(Module):
    """Pressure sensor filter (paper: PRES_S).

    Scales the 10-bit ADC reading to engineering counts, gates
    implausible jumps (re-synchronizing after a persistent streak),
    median-filters the accepted history, and quantizes the output.
    """

    INPUTS = ("ADC",)
    OUTPUTS = ("IsValue",)

    #: output quantization step (counts).
    QUANTUM = 1024
    #: implausible readings tolerated before the gate re-synchronizes.
    MAX_REJECT_STREAK = 5
    #: median filter depth.
    DEPTH = 5

    STATE = (
        (CellSpec("last", **_U16),)
        + tuple(CellSpec(f"h{j}", **_U16) for j in range(DEPTH))
        + (CellSpec("rejects", **_U8),)
    )
    LOCALS = (CellSpec("scaled", **_U16),)

    def invoke(self, ctx: ExecutionContext) -> Dict[str, Number]:
        state = self.state
        scaled = ctx.set_local("scaled", ctx.arg("ADC") << 6)
        accept = True
        if abs(scaled - state["last"]) > C.PRES_MAX_JUMP:
            rejects = state["rejects"] + 1
            if rejects > self.MAX_REJECT_STREAK:
                state["rejects"] = 0  # persistent: re-synchronize
            else:
                state["rejects"] = rejects
                accept = False
        else:
            state["rejects"] = 0
        if accept:
            state["last"] = scaled
            for j in range(self.DEPTH - 1):
                state[f"h{j}"] = state[f"h{j + 1}"]
            state[f"h{self.DEPTH - 1}"] = scaled
        median = sorted(
            state[f"h{j}"] for j in range(self.DEPTH)
        )[self.DEPTH // 2]
        return {"IsValue": median & ~(self.QUANTUM - 1)}


class VReg(Module):
    """Fixed-point PI pressure regulator (paper: V_REG)."""

    INPUTS = ("SetValue", "IsValue")
    OUTPUTS = ("OutValue",)
    STATE = (CellSpec("integ", width=32, cell_type=SignalType.INT),)
    LOCALS = (CellSpec("err", width=32, cell_type=SignalType.INT),)

    def invoke(self, ctx: ExecutionContext) -> Dict[str, Number]:
        err = ctx.set_local(
            "err", ctx.arg("SetValue") - ctx.arg("IsValue")
        )
        clamp = C.VREG_INTEG_CLAMP * 16
        integ = max(-clamp, min(clamp, self.state["integ"] + err))
        self.state["integ"] = integ
        out = (C.VREG_KP_NUM * err + C.VREG_KI_NUM * integ) >> 8
        return {"OutValue": max(0, min(C.VALUE_FULL_SCALE, out))}


class PresA(Module):
    """Pressure actuator scaling (paper: PRES_A).

    Drops the two least-significant bits of the 16-bit regulator output
    to form the 14-bit TOC2 compare value.
    """

    INPUTS = ("OutValue",)
    OUTPUTS = ("TOC2",)
    LOCALS = (CellSpec("toc", width=C.TOC2_BITS),)

    def invoke(self, ctx: ExecutionContext) -> Dict[str, Number]:
        return {"TOC2": ctx.set_local("toc", ctx.arg("OutValue") >> 2)}
