"""Wiring of the arrestment system model (paper Fig. 4).

Fourteen signals over six modules; 25 module/input/output pairs, the
rows of the paper's Table 1.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.model.signal import SignalRole, SignalSpec, SignalType
from repro.model.system import SystemModel
from repro.target import constants as C
from repro.target.modules import Calc, Clock, DistS, PresA, PresS, VReg

__all__ = ["build_arrestment_system", "ARRESTMENT_SIGNAL_SPECS"]

ARRESTMENT_SIGNAL_SPECS: Dict[str, SignalSpec] = {
    spec.name: spec
    for spec in (
        SignalSpec(
            "PACNT", SignalType.UINT, width=C.PACNT_BITS,
            role=SignalRole.SYSTEM_INPUT,
            description="run-out pulse accumulator register",
        ),
        SignalSpec(
            "TIC1", SignalType.UINT, width=16,
            role=SignalRole.SYSTEM_INPUT,
            description="input-capture register (TCNT at last pulse)",
        ),
        SignalSpec(
            "TCNT", SignalType.UINT, width=16,
            role=SignalRole.SYSTEM_INPUT,
            description="free-running timer register",
        ),
        SignalSpec(
            "ADC", SignalType.UINT, width=C.ADC_BITS,
            role=SignalRole.SYSTEM_INPUT,
            description="pressure sensor ADC counts",
        ),
        SignalSpec(
            "ms_slot_nbr", SignalType.UINT, width=16,
            minimum=0, maximum=C.N_SLOTS - 1,
            description="current scheduler slot",
        ),
        SignalSpec(
            "mscnt", SignalType.UINT, width=16,
            description="millisecond tick counter",
        ),
        SignalSpec(
            "pulscnt", SignalType.UINT, width=16,
            description="accumulated run-out pulse count",
        ),
        SignalSpec(
            "slow_speed", SignalType.BOOL, width=1,
            description="slow-speed flag",
        ),
        SignalSpec(
            "stopped", SignalType.BOOL, width=1,
            description="aircraft-stopped flag (latched)",
        ),
        SignalSpec(
            "i", SignalType.UINT, width=16,
            minimum=0, maximum=len(C.PRESSURE_PROGRAM) - 1,
            description="pressure program segment index",
        ),
        SignalSpec(
            "SetValue", SignalType.UINT, width=16,
            minimum=0, maximum=C.VALUE_FULL_SCALE,
            description="pressure set-point (counts)",
        ),
        SignalSpec(
            "IsValue", SignalType.UINT, width=16,
            minimum=0, maximum=C.VALUE_FULL_SCALE,
            description="filtered pressure feedback (counts)",
        ),
        SignalSpec(
            "OutValue", SignalType.UINT, width=16,
            minimum=0, maximum=C.VALUE_FULL_SCALE,
            description="regulator output (counts)",
        ),
        SignalSpec(
            "TOC2", SignalType.UINT, width=C.TOC2_BITS,
            role=SignalRole.SYSTEM_OUTPUT,
            description="output-compare register: brake pressure command",
        ),
    )
}


def build_arrestment_system(
    pressure_scale: Optional[int] = None,
) -> SystemModel:
    """Construct and validate the six-module arrestment controller.

    ``pressure_scale`` is the weight-setting calibration in SetValue
    counts (defaults to the mid-envelope mass, see
    :func:`repro.target.constants.pressure_scale_counts`).
    """
    system = SystemModel("arrestment")
    for spec in ARRESTMENT_SIGNAL_SPECS.values():
        system.add_signal(spec)

    system.add_module(Clock("CLOCK"))
    system.add_module(DistS("DIST_S"))
    system.add_module(PresS("PRES_S"))
    system.add_module(Calc("CALC", pressure_scale=pressure_scale))
    system.add_module(VReg("V_REG"))
    system.add_module(PresA("PRES_A"))

    system.bind_output("ms_slot_nbr", "CLOCK", "ms_slot_nbr")
    system.bind_output("mscnt", "CLOCK", "mscnt")
    system.connect_input("ms_slot_nbr", "CLOCK", "ms_slot_nbr")

    system.connect_input("PACNT", "DIST_S", "PACNT")
    system.connect_input("TIC1", "DIST_S", "TIC1")
    system.connect_input("TCNT", "DIST_S", "TCNT")
    system.bind_output("pulscnt", "DIST_S", "pulscnt")
    system.bind_output("slow_speed", "DIST_S", "slow_speed")
    system.bind_output("stopped", "DIST_S", "stopped")

    system.connect_input("ADC", "PRES_S", "ADC")
    system.bind_output("IsValue", "PRES_S", "IsValue")

    system.connect_input("i", "CALC", "i")
    system.connect_input("mscnt", "CALC", "mscnt")
    system.connect_input("pulscnt", "CALC", "pulscnt")
    system.connect_input("slow_speed", "CALC", "slow_speed")
    system.connect_input("stopped", "CALC", "stopped")
    system.bind_output("i", "CALC", "i")
    system.bind_output("SetValue", "CALC", "SetValue")

    system.connect_input("SetValue", "V_REG", "SetValue")
    system.connect_input("IsValue", "V_REG", "IsValue")
    system.bind_output("OutValue", "V_REG", "OutValue")

    system.connect_input("OutValue", "PRES_A", "OutValue")
    system.bind_output("TOC2", "PRES_A", "TOC2")

    system.validate()
    return system
