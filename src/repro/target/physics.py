"""Plant model: aircraft, cable, and rotary friction brakes.

Point-mass longitudinal dynamics with a first-order actuator lag and a
linear pressure-to-force brake characteristic, plus passive tape drag.
Deliberately simple — the analyses consume the *software's* signal
traces; the plant only closes the loop with plausible, deterministic
dynamics (see ``docs/target-system.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError
from repro.target import constants as C

__all__ = ["PlantState", "ArrestmentPlant"]


@dataclass
class PlantState:
    """Instantaneous plant state, updated in place each tick."""

    velocity_ms: float = 0.0
    distance_m: float = 0.0
    pressure_pa: float = 0.0
    force_n: float = 0.0
    retardation_ms2: float = 0.0


class ArrestmentPlant:
    """One engagement: mass on a cable, brakes on the tape drums."""

    def __init__(self, mass_kg: float, engaging_velocity_ms: float):
        if mass_kg <= 0:
            raise ModelError(f"mass must be positive, got {mass_kg}")
        if engaging_velocity_ms <= 0:
            raise ModelError(
                f"engaging velocity must be positive, "
                f"got {engaging_velocity_ms}"
            )
        self.mass_kg = mass_kg
        self.engaging_velocity_ms = engaging_velocity_ms
        self.state = PlantState(velocity_ms=engaging_velocity_ms)
        self.peak_force_n = 0.0
        self.peak_retardation_ms2 = 0.0

    @property
    def is_stopped(self) -> bool:
        return self.state.velocity_ms == 0.0

    def step(self, commanded_pa: float, dt_s: float = C.TICK_S) -> PlantState:
        """Advance one tick under the commanded brake pressure."""
        state = self.state
        commanded = min(max(commanded_pa, 0.0), C.P_MAX_PA)
        state.pressure_pa += (
            (commanded - state.pressure_pa) * dt_s / C.ACTUATOR_TAU_S
        )
        if state.velocity_ms <= 0.0:
            state.force_n = 0.0
            state.retardation_ms2 = 0.0
            return state
        force = C.BRAKE_GAIN_N_PER_PA * state.pressure_pa + C.TAPE_DRAG_N
        retardation = force / self.mass_kg
        new_velocity = max(0.0, state.velocity_ms - retardation * dt_s)
        state.distance_m += (state.velocity_ms + new_velocity) * 0.5 * dt_s
        state.velocity_ms = new_velocity
        state.force_n = force
        state.retardation_ms2 = retardation
        if force > self.peak_force_n:
            self.peak_force_n = force
        if retardation > self.peak_retardation_ms2:
            self.peak_retardation_ms2 = retardation
        return state

    def reset(self) -> None:
        """Return to the engagement state (velocity restored, all else 0)."""
        self.state = PlantState(velocity_ms=self.engaging_velocity_ms)
        self.peak_force_n = 0.0
        self.peak_retardation_ms2 = 0.0

    def snapshot(self) -> dict:
        """Plant state plus peak accumulators, for checkpoint capture."""
        state = self.state
        return {
            "velocity_ms": state.velocity_ms,
            "distance_m": state.distance_m,
            "pressure_pa": state.pressure_pa,
            "force_n": state.force_n,
            "retardation_ms2": state.retardation_ms2,
            "peak_force_n": self.peak_force_n,
            "peak_retardation_ms2": self.peak_retardation_ms2,
        }

    def restore(self, snapshot: dict) -> None:
        values = dict(snapshot)
        self.peak_force_n = values.pop("peak_force_n")
        self.peak_retardation_ms2 = values.pop("peak_retardation_ms2")
        self.state = PlantState(**values)
