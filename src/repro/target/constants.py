"""Constants of the aircraft arrestment target (paper Section 4).

Everything the target needs in one place: scheduler timing, register
widths, plant parameters, the pressure program, and the safety limits
of MIL-A-38202C-style certification (Section 4.2).  The calibration
rationale is documented in ``docs/target-system.md``.
"""

from __future__ import annotations

__all__ = [
    "TICK_S",
    "N_SLOTS",
    "MODULE_SLOTS",
    "TCNT_PER_TICK",
    "PULSES_PER_M",
    "ADC_BITS",
    "PACNT_BITS",
    "TOC2_BITS",
    "VALUE_FULL_SCALE",
    "G",
    "MAX_RETARDATION_G",
    "MAX_STOPPING_DISTANCE_M",
    "OVERRUN_ABORT_MARGIN_M",
    "DEFAULT_TIMEOUT_S",
    "POST_STOP_TICKS",
    "P_MAX_PA",
    "ADC_FULL_SCALE_PA",
    "BRAKE_GAIN_N_PER_PA",
    "ACTUATOR_TAU_S",
    "TAPE_DRAG_N",
    "CALIB_RETARDATION_MS2",
    "TEST_MASSES_KG",
    "TEST_VELOCITIES_MS",
    "PRESSURE_PROGRAM",
    "SEG_SHIFT",
    "SLOW_SPEED_TARGET",
    "SETVALUE_RATE_PER_MS",
    "SETVALUE_DT_CLAMP",
    "TIME_RAMP_PER_MS",
    "SPEED_WINDOW",
    "SLOW_PULSE_THRESHOLD",
    "SLOW_INTERVAL_TCNT",
    "STOPPED_QUIET_INVOCATIONS",
    "PRES_MAX_JUMP",
    "VREG_KP_NUM",
    "VREG_KI_NUM",
    "VREG_INTEG_CLAMP",
    "pressure_scale_counts",
    "max_retardation_force_n",
]

# ----------------------------------------------------------------------
# Scheduler timing (Section 4.1): 1 ms tick, 20-slot cycle.
# ----------------------------------------------------------------------
TICK_S = 0.001
N_SLOTS = 20
#: application modules run once per 20 ms cycle; CLOCK runs every tick.
MODULE_SLOTS = {
    "DIST_S": 2,
    "CALC": 5,
    "PRES_S": 8,
    "V_REG": 11,
    "PRES_A": 14,
}

# ----------------------------------------------------------------------
# Peripheral registers (micro-controller semantics).
# ----------------------------------------------------------------------
#: free-running 16-bit timer: counts per 1 ms tick.
TCNT_PER_TICK = 250
#: run-out pulse encoder: pulses per metre of tape pay-out.
PULSES_PER_M = 4
ADC_BITS = 10
PACNT_BITS = 8
TOC2_BITS = 14
#: full scale of the 16-bit internal engineering values.
VALUE_FULL_SCALE = 65535

# ----------------------------------------------------------------------
# Safety limits (Section 4.2).
# ----------------------------------------------------------------------
G = 9.81
MAX_RETARDATION_G = 3.5
MAX_STOPPING_DISTANCE_M = 335.0
#: simulation aborts this far past the distance limit (clear overrun).
OVERRUN_ABORT_MARGIN_M = 40.0
DEFAULT_TIMEOUT_S = 12.0
#: ticks simulated after completion so the signal tail is traced.
POST_STOP_TICKS = 2 * N_SLOTS

# ----------------------------------------------------------------------
# Plant and actuator.
# ----------------------------------------------------------------------
#: maximum hydraulic brake pressure.
P_MAX_PA = 1.2e7
ADC_FULL_SCALE_PA = P_MAX_PA
#: braking force per pascal of applied pressure (both drums).
BRAKE_GAIN_N_PER_PA = 0.045
#: first-order actuator lag.
ACTUATOR_TAU_S = 0.15
#: passive drag of tape pay-out, always present while moving.
TAPE_DRAG_N = 20000.0
#: weight-setting calibration: program fraction 1.0 decelerates the
#: configured mass at this rate.
CALIB_RETARDATION_MS2 = 24.0

# ----------------------------------------------------------------------
# Certification envelope: 5 masses x 5 engaging velocities.
# ----------------------------------------------------------------------
TEST_MASSES_KG = (8000, 11000, 14000, 17000, 20000)
TEST_VELOCITIES_MS = (40.0, 47.5, 55.0, 62.5, 70.0)

# ----------------------------------------------------------------------
# CALC: pressure program and set-value shaping.
# ----------------------------------------------------------------------
#: pressure fraction per 64-pulse (16 m) run-out segment: a soft onset
#: ramp, then dithering around the working pressure (the real gear
#: modulates tape tension over the run-out).
PRESSURE_PROGRAM = (
    0.08, 0.22, 0.36, 0.46,
    0.50, 0.46, 0.50, 0.46, 0.50, 0.46,
    0.50, 0.46, 0.50, 0.46, 0.50, 0.46,
)
#: pulscnt >> SEG_SHIFT selects the program segment (64 pulses each).
SEG_SHIFT = 6
#: program fraction held when the slow-speed flag is asserted.
SLOW_SPEED_TARGET = 0.3
#: SetValue slew limit, counts per elapsed millisecond.
SETVALUE_RATE_PER_MS = 16
#: upper clamp on the elapsed-time term of the slew step.
SETVALUE_DT_CLAMP = 100
#: onset ramp: SetValue is bounded by mscnt * TIME_RAMP_PER_MS.
TIME_RAMP_PER_MS = 24

# ----------------------------------------------------------------------
# DIST_S: speed estimation and stop detection.
# ----------------------------------------------------------------------
#: pulse-delta window length (invocations; 20 ms each).
SPEED_WINDOW = 8
#: fewer pulses than this across the window => slow (v < 12.5 m/s).
SLOW_PULSE_THRESHOLD = 8
#: TCNT-TIC1 interval marking a slow pulse cadence (40 ms).
SLOW_INTERVAL_TCNT = 10000
#: consecutive pulse-free invocations before `stopped` latches (0.5 s).
STOPPED_QUIET_INVOCATIONS = 25

# ----------------------------------------------------------------------
# PRES_S: plausibility gate.
# ----------------------------------------------------------------------
#: largest accepted jump of the scaled pressure between invocations.
PRES_MAX_JUMP = 3000

# ----------------------------------------------------------------------
# V_REG: fixed-point PI regulator (gains are /256 numerators).
# ----------------------------------------------------------------------
VREG_KP_NUM = 160
VREG_KI_NUM = 16
#: anti-windup clamp on the integrator, in error units (x16 internal).
VREG_INTEG_CLAMP = 48000


def pressure_scale_counts(mass_kg: float) -> int:
    """Weight-setting calibration (Section 4): SetValue counts at
    program fraction 1.0 for the configured aircraft mass.

    Chosen so full program pressure decelerates the configured mass at
    :data:`CALIB_RETARDATION_MS2`, clamped at actuator full scale.
    """
    counts = int(
        mass_kg
        * CALIB_RETARDATION_MS2
        / BRAKE_GAIN_N_PER_PA
        / P_MAX_PA
        * VALUE_FULL_SCALE
    )
    return min(VALUE_FULL_SCALE, counts)


def max_retardation_force_n(mass_kg: float, velocity_ms: float) -> float:
    """Certified retardation-force limit F_max(mass, engaging velocity).

    Monotonically increasing in both arguments, as in the certification
    tables: heavier and faster aircraft are allowed more cable force.
    """
    return mass_kg * G * (2.5 + 2.0 * velocity_ms / 70.0)
