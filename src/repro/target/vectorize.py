"""Struct-of-arrays batch kernel for the arrestment target.

The arrestment counterpart of :mod:`repro.watertank.vectorize`: one
row per injected engagement, every register/state cell/plant quantity
an array, each module body transcribed in the scalar operation order.
Unlike the fixed-length tank mission, engagements end per row (post-
stop window or overrun abort), so the kernel keeps a ``running`` mask:
rows that left the engagement loop stop evaluating their monitor bank,
stop recording invocations, and freeze their completion latches, while
the batch advances the remaining rows.  Outcomes are bit-identical to
the scalar path; memory/recovery/detection rows dispatch per row
(masked invocations follow each row's own — possibly corrupted —
schedule), and only permeability rows retire on dispatch divergence,
because their recorded invocation streams assume the golden schedule.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.fi.vector import (
    BankArrays,
    GroupJob,
    GroupResult,
    MemoryFlipPlan,
    RecoveringBankArrays,
    RowInjection,
    q_bool,
    q_int,
    q_uint,
    vector_stats,
)
from repro.model.signal import SignalType
from repro.target import constants as C

__all__ = ["ArrestmentVectorKernel"]

_U8 = 0xFF
_U16 = 0xFFFF


def _rows(template_of, rows, pick, dtype=np.int64):
    """One array column per row, gathered from the rows' templates."""
    return np.array(
        [pick(template_of(row.case_id)) for row in rows], dtype=dtype
    )


class ArrestmentVectorKernel:
    """Vectorized engagement executor for batches of arrestment runs."""

    target_name = "arrestment"

    @staticmethod
    def supports(probe) -> bool:
        return type(probe).__name__ == "ArrestmentSimulator"

    def __init__(self, probe):
        self.max_ticks = int(probe.timeout_s / C.TICK_S)
        self.n_slots = C.N_SLOTS
        self.slot_modules: Dict[int, List[str]] = {}
        for module, slot in probe.module_slots.items():
            self.slot_modules.setdefault(slot, []).append(module)
        system = probe.system
        self.ports = {}
        for module in system.modules():
            name = module.name
            ins = list(module.inputs)
            outs = list(module.outputs)
            self.ports[name] = (
                ins,
                outs,
                [system.signal_of_input(name, p) for p in ins],
                [system.signal_of_output(name, p) for p in outs],
            )
        self.quant = {
            name: (system.signal(name).sig_type, system.signal(name).width)
            for name in system.signal_names()
        }
        #: (module, cell) -> (cell_type, width), for memory-row flips
        self.state_spec = {}
        self.local_spec = {}
        for module in system.modules():
            for spec in module.state.specs():
                self.state_spec[(module.name, spec.name)] = (
                    spec.cell_type, spec.width
                )
            for spec in module.local_specs:
                self.local_spec[(module.name, spec.name)] = (
                    spec.cell_type, spec.width
                )
        #: state cells feeding the gathered dispatch schedule
        self.succ_cells = frozenset(
            ("CLOCK", f"slot_succ{j}") for j in range(self.n_slots)
        )
        self._mem = None
        self._scale = None  #: per-row CALC pressure scale, set per group

    def module_ports(self, module: str):
        ins, outs, _, _ = self.ports[module]
        return ins, outs

    def supports_injection(self, inj: RowInjection) -> bool:
        """Whether a row's injection can strike inside a batch
        (memory rows: int-backed cells the kernel hooks only)."""
        kind = inj.memory_kind
        if kind is None:
            return True
        if kind == "state":
            spec = self.state_spec.get((inj.module, inj.cell))
        elif kind == "signal":
            spec = self.quant.get(inj.cell)
        elif kind == "arg":
            ports = self.ports.get(inj.module)
            if ports is None or inj.cell not in ports[0]:
                return False
            spec = self.quant.get(ports[2][ports[0].index(inj.cell)])
        elif kind == "local":
            spec = self.local_spec.get((inj.module, inj.cell))
        else:
            return False
        return spec is not None and spec[0] is not SignalType.FLOAT

    def _mem_local(self, module: str, name: str, values):
        """Hook point of one scalar ``set_local``: armed memory rows
        strike the freshly quantized local value here."""
        if self._mem is None:
            return values
        return self._mem.local(module, name, values)

    def _q_store(self, signal: str, values):
        sig_type, width = self.quant[signal]
        if sig_type is SignalType.BOOL:
            return q_bool(values)
        if sig_type is SignalType.INT:
            return q_int(values, width)
        if sig_type is SignalType.FLOAT:
            return np.array(values, dtype=np.int64, copy=True)
        return q_uint(np.asarray(values, dtype=np.int64), width)

    # ------------------------------------------------------------------
    def run_group(self, job: GroupJob) -> GroupResult:
        rows = job.rows
        n = len(rows)
        max_ticks = self.max_ticks
        template_of = job.templates.__getitem__
        case_of = job.cases.__getitem__

        signal_names = list(template_of(rows[0].case_id).signals)
        S = {
            name: _rows(template_of, rows, lambda t, n=name: t.signals[n])
            for name in signal_names
        }
        M: Dict[str, Dict[str, np.ndarray]] = {}
        for module in self.ports:
            cells = template_of(rows[0].case_id).modules[module]
            M[module] = {
                cell: _rows(
                    template_of, rows,
                    lambda t, m=module, c=cell: t.modules[m][c],
                )
                for cell in cells
            }

        velocity = _rows(
            template_of, rows, lambda t: t.plant["velocity_ms"], np.float64
        )
        distance = _rows(
            template_of, rows, lambda t: t.plant["distance_m"], np.float64
        )
        pressure = _rows(
            template_of, rows, lambda t: t.plant["pressure_pa"], np.float64
        )
        mass = np.array(
            [case_of(r.case_id).mass_kg for r in rows], np.float64
        )
        self._scale = np.array(
            [
                C.pressure_scale_counts(case_of(r.case_id).mass_kg)
                for r in rows
            ],
            dtype=np.int64,
        )
        regs = {
            "PACNT": _rows(template_of, rows, lambda t: t.sensors["pacnt"]),
            "TIC1": _rows(template_of, rows, lambda t: t.sensors["tic1"]),
            "TCNT": _rows(template_of, rows, lambda t: t.sensors["tcnt"]),
            "ADC": _rows(template_of, rows, lambda t: t.sensors["adc"]),
        }
        mirror = _rows(
            template_of, rows, lambda t: t.sensors["_pulse_mirror"]
        )

        inj = [row.injection for row in rows]
        bitmask = np.array([1 << i.bit for i in inj], dtype=np.int64)
        first_inj = np.full(n, -1, dtype=np.int64)
        mem = None
        inj_tick = inj_sig = None
        port_idx = from_tick = pending = None
        target = None
        if job.kind == "permeability":
            in_ports = self.ports[job.module][0]
            port_idx = np.array(
                [in_ports.index(i.port) for i in inj], dtype=np.int64
            )
            from_tick = np.array([i.tick for i in inj], dtype=np.int64)
            pending = np.ones(n, dtype=bool)
            target = job.module
        elif job.kind in ("memory", "recovery"):
            mem = MemoryFlipPlan(self, rows, first_inj)
        else:
            inj_tick = np.array([i.tick for i in inj], dtype=np.int64)
            inj_sig = {
                signal: np.array(
                    [i.signal == signal for i in inj], dtype=bool
                )
                for signal in regs
            }

        rec_ins = rec_outs = None
        rec_k = 0
        rec_len = np.zeros(n, dtype=np.int64)
        if target is not None:
            ins, outs, _, _ = self.ports[target]
            if target == "CLOCK":
                cap = max_ticks
            else:
                slot = next(
                    s for s, mods in self.slot_modules.items()
                    if target in mods
                )
                first = (slot - 1) % self.n_slots
                cap = max(0, (max_ticks - first + self.n_slots - 1)
                          // self.n_slots)
            rec_ins = np.zeros((n, cap, len(ins)), dtype=np.int64)
            rec_outs = np.zeros((n, cap, len(outs)), dtype=np.int64)

        bank = None
        if job.specs:
            if job.recover:
                bank = RecoveringBankArrays(
                    job.specs, n,
                    policies=job.policies, q_store=self._q_store,
                )
            else:
                bank = BankArrays(job.specs, n)

        # ---- failure-classifier accumulators (memory/recovery rows)
        if mem is not None:
            kinds = np.zeros(n, dtype=bool)
            force_limit = np.array(
                [
                    C.max_retardation_force_n(
                        case_of(r.case_id).mass_kg,
                        case_of(r.case_id).engaging_velocity_ms,
                    )
                    for r in rows
                ],
                np.float64,
            )
        else:
            kinds = force_limit = None
        self._mem = mem

        succ = np.stack(
            [M["CLOCK"][f"slot_succ{j}"] for j in range(self.n_slots)],
            axis=1,
        )
        retired = np.zeros(n, dtype=bool)
        running = np.ones(n, dtype=bool)
        completion = np.full(n, -1, dtype=np.int64)
        row_ix = np.arange(n)
        dt = C.TICK_S
        adc_full = (1 << C.ADC_BITS) - 1
        toc_full = (1 << C.TOC2_BITS) - 1
        abort_distance = C.MAX_STOPPING_DISTANCE_M + C.OVERRUN_ABORT_MARGIN_M
        batched = 0

        t = 0
        while t < max_ticks and running.any():
            entered = running.copy()
            batched += int(entered.sum())

            # --- SensorSuite.advance (state evolution is not gated:
            # rows past their engagement compute harmless garbage)
            regs["TCNT"] = (regs["TCNT"] + C.TCNT_PER_TICK) & _U16
            pulses = (distance * C.PULSES_PER_M).astype(np.int64)
            new = pulses - mirror
            upd = new > 0
            mirror = np.where(upd, pulses, mirror)
            regs["PACNT"] = np.where(
                upd,
                (regs["PACNT"] + new) & ((1 << C.PACNT_BITS) - 1),
                regs["PACNT"],
            )
            regs["TIC1"] = np.where(upd, regs["TCNT"], regs["TIC1"])
            fraction = np.minimum(
                np.maximum(pressure / C.ADC_FULL_SCALE_PA, 0.0), 1.0
            )
            regs["ADC"] = np.minimum(
                adc_full, (fraction * adc_full).astype(np.int64)
            )

            # --- _write_sensor_inputs
            for signal in ("PACNT", "TIC1", "TCNT", "ADC"):
                S[signal] = self._q_store(signal, regs[signal])

            # --- pre-tick system-input flips (detection, live rows)
            if inj_tick is not None:
                fire = (inj_tick == t) & entered
                if fire.any():
                    for signal, is_sig in inj_sig.items():
                        m = fire & is_sig
                        if m.any():
                            regs[signal][m] ^= bitmask[m]
                            S[signal][m] ^= bitmask[m]
                    first_inj = np.where(fire, t, first_inj)

            # --- pre-tick periodic memory flips (live rows)
            if mem is not None and mem.pre_tick(t, S, M, entered):
                succ = np.stack(
                    [
                        M["CLOCK"][f"slot_succ{j}"]
                        for j in range(self.n_slots)
                    ],
                    axis=1,
                )

            # --- CLOCK (every tick)
            arg = S["ms_slot_nbr"].copy()
            if target == "CLOCK":
                sel = pending & (t >= from_tick) & entered
                if sel.any():
                    arg[sel] ^= bitmask[sel]
                    pending &= ~sel
                    first_inj = np.where(sel, t, first_inj)
            if mem is not None:
                mem.marshal("CLOCK", [arg])
            in_range = (arg >= 0) & (arg < self.n_slots)
            gathered = succ[row_ix, arg % self.n_slots]
            nxt = self._mem_local(  # local u8
                "CLOCK", "next_slot",
                np.where(in_range, gathered, 0) & _U8,
            )
            clock = M["CLOCK"]
            clock["mscnt"] = (clock["mscnt"] + 1) & _U16
            S["ms_slot_nbr"] = self._q_store("ms_slot_nbr", nxt)
            S["mscnt"] = self._q_store("mscnt", clock["mscnt"])
            if target == "CLOCK":
                live = np.nonzero(entered)[0]
                rec_ins[live, rec_k, 0] = arg[live]
                rec_outs[live, rec_k, 0] = S["ms_slot_nbr"][live]
                rec_outs[live, rec_k, 1] = S["mscnt"][live]
                rec_len[live] = rec_k + 1
                rec_k += 1

            # --- the slot's module(s)
            slot = (t + 1) % self.n_slots
            cur = S["ms_slot_nbr"]
            if target is None:
                # per-row dispatch (memory/recovery/detection rows):
                # exactly like the scalar engagement loop, each row
                # runs the modules of its own — possibly corrupted —
                # ms_slot_nbr slot, so dispatch-divergent rows stay
                # in the batch instead of retiring to the scalar path
                if (cur == slot).all():
                    for module in self.slot_modules.get(slot, ()):
                        self._invoke(module, S, M, None)
                else:
                    for value in np.unique(cur):
                        modules = self.slot_modules.get(int(value), ())
                        if not modules:
                            continue
                        row_mask = cur == value
                        for module in modules:
                            self._invoke(module, S, M, None, mask=row_mask)
            else:
                # permeability rows: the recorded invocation stream
                # assumes the golden schedule — retire live rows whose
                # dispatch diverged from it
                diverged = entered & (~retired) & (cur != slot)
                if diverged.any():
                    retired |= diverged
                for module in self.slot_modules.get(slot, ()):
                    flip = None
                    if module == target:
                        sel = pending & (t >= from_tick) & entered
                        flip = (sel, port_idx, bitmask)
                    args, outs_arrays = self._invoke(module, S, M, flip)
                    if flip is not None and flip[0].any():
                        sel = flip[0]
                        pending &= ~sel
                        first_inj = np.where(sel, t, first_inj)
                    if module == target:
                        live = np.nonzero(entered)[0]
                        for j, a in enumerate(args):
                            rec_ins[live, rec_k, j] = a[live]
                        for k, o in enumerate(outs_arrays):
                            rec_outs[live, rec_k, k] = o[live]
                        rec_len[live] = rec_k + 1
                        rec_k += 1

            # --- monitor bank (end of each dispatch cycle, live rows)
            if bank is not None and t % self.n_slots == self.n_slots - 1:
                bank.evaluate(S, t, mask=entered)

            # --- ArrestmentPlant.step
            commanded_pa = np.minimum(
                np.maximum(S["TOC2"] / toc_full, 0.0), 1.0
            ) * C.P_MAX_PA
            commanded = np.minimum(
                np.maximum(commanded_pa, 0.0), C.P_MAX_PA
            )
            pressure = pressure + (commanded - pressure) * dt \
                / C.ACTUATOR_TAU_S
            moving = velocity > 0.0
            force = C.BRAKE_GAIN_N_PER_PA * pressure + C.TAPE_DRAG_N
            retardation = force / mass
            new_velocity = np.maximum(0.0, velocity - retardation * dt)
            distance = np.where(
                moving,
                distance + (velocity + new_velocity) * 0.5 * dt,
                distance,
            )
            velocity = np.where(moving, new_velocity, velocity)

            # --- FailureClassifier.observe (memory/recovery, live rows;
            # a stopped plant reports zero force and retardation)
            if mem is not None:
                obs_ret = np.where(moving, retardation, 0.0)
                obs_force = np.where(moving, force, 0.0)
                kinds |= entered & (
                    (obs_ret > C.MAX_RETARDATION_G * C.G)
                    | (obs_force > force_limit)
                    | (distance > C.MAX_STOPPING_DISTANCE_M)
                )

            # --- completion latch and loop exits (live rows only)
            is_stopped = velocity == 0.0
            newly_complete = (
                entered
                & (completion < 0)
                & (S["stopped"] != 0)
                & is_stopped
            )
            completion = np.where(newly_complete, t, completion)
            leave = entered & (
                (
                    (completion >= 0)
                    & (t >= completion + C.POST_STOP_TICKS)
                )
                | (distance > abort_distance)
            )
            running &= ~leave
            t += 1

        self._mem = None
        vector_stats.batched_ticks += batched

        injected = first_inj >= 0
        failed = kinds | (completion < 0) if kinds is not None else None
        return GroupResult(
            retired=retired.tolist(),
            injected=injected.tolist(),
            first_injection_tick=[
                int(v) if v >= 0 else None for v in first_inj
            ],
            completion_tick=[
                int(v) if v >= 0 else None for v in completion
            ],
            rec_len=rec_len.tolist() if rec_ins is not None else None,
            rec_ins=rec_ins,
            rec_outs=rec_outs,
            bank=[bank.row_records(r) for r in range(n)] if bank else None,
            failed=failed.tolist() if failed is not None else None,
            actions=(
                bank.actions.tolist()
                if bank is not None and hasattr(bank, "actions")
                else None
            ),
        )

    # ------------------------------------------------------------------
    def _invoke(self, module, S, M, flip, mask=None):
        """Args from the store, marshal flips, module body, quantized
        store write-back — returning the recorded (inputs, outputs).

        With *mask*, only the masked rows take the invocation: the
        body runs at full width, but outputs and state cells of rows
        outside the mask are merged back unchanged — those rows'
        (possibly corrupted) schedules did not dispatch *module* this
        tick — and armed memory strikes are confined to the mask."""
        ins, outs, in_sigs, out_sigs = self.ports[module]
        args = [S[sig].copy() for sig in in_sigs]
        if flip is not None:
            sel, port_idx, bitmask = flip
            if sel.any():
                for j in range(len(args)):
                    m = sel & (port_idx == j)
                    if m.any():
                        args[j][m] ^= bitmask[m]
        prev_live = None
        if self._mem is not None:
            if mask is not None:
                prev_live = self._mem.scoped_live(mask)
            self._mem.marshal(module, args)
        body = self._BODIES[module]
        st = M[module]
        out_arrays = []
        if mask is None:
            results = body(self, args, st)
            for sig, values in zip(out_sigs, results):
                S[sig] = self._q_store(sig, values)
                out_arrays.append(S[sig])
        else:
            saved_state = dict(st)
            saved_out = {sig: S[sig] for sig in out_sigs}
            results = body(self, args, st)
            for sig, values in zip(out_sigs, results):
                merged = np.where(
                    mask, self._q_store(sig, values), saved_out[sig]
                )
                S[sig] = merged
                out_arrays.append(merged)
            # module bodies reassign state cells (never mutate them in
            # place), so the pre-invoke references still hold the
            # unmasked rows' values
            for cell, old in saved_state.items():
                new = st[cell]
                if new is not old:
                    st[cell] = np.where(mask, new, old)
            if self._mem is not None:
                self._mem.restore_live(prev_live)
        return args, out_arrays

    # ------------------------------------------------------------------
    # Module bodies (exact transcriptions of repro.target.modules).
    # ------------------------------------------------------------------
    def _body_dist_s(self, args, st):
        pacnt, tic1, tcnt = args
        delta = self._mem_local(  # local u8
            "DIST_S", "delta", (pacnt - st["last_cnt"]) & _U8
        )
        st["last_cnt"] = pacnt & _U8
        st["pulscnt_acc"] = (st["pulscnt_acc"] + delta) & _U16
        pos = st["win_pos"] % C.SPEED_WINDOW
        w = np.stack(
            [st[f"win{j}"] for j in range(C.SPEED_WINDOW)], axis=1
        )
        w[np.arange(len(pacnt)), pos] = delta
        for j in range(C.SPEED_WINDOW):
            st[f"win{j}"] = w[:, j].copy()
        st["win_pos"] = (st["win_pos"] + 1) & _U8
        st["win_fill"] = np.minimum(st["win_fill"] + 1, C.SPEED_WINDOW)
        window_sum = w.sum(axis=1)
        pulse_slow = (st["win_fill"] >= C.SPEED_WINDOW) & (
            window_sum < C.SLOW_PULSE_THRESHOLD
        )
        interval = (tcnt - tic1) & _U16
        st["intv_streak"] = np.where(
            interval > C.SLOW_INTERVAL_TCNT,
            np.minimum(st["intv_streak"] + 1, 255),
            0,
        )
        interval_slow = st["intv_streak"] >= 2
        st["quiet"] = np.where(
            delta == 0, np.minimum(st["quiet"] + 1, 255), 0
        )
        st["halted"] = np.where(
            st["quiet"] >= C.STOPPED_QUIET_INVOCATIONS, 1, st["halted"]
        )
        return [
            st["pulscnt_acc"],
            np.where(pulse_slow | interval_slow, 1, 0),
            st["halted"],
        ]

    def _body_calc(self, args, st):
        i, mscnt, pulscnt, slow_speed, stopped = args
        n_prog = len(C.PRESSURE_PROGRAM)
        advance = (
            (stopped == 0)
            & (i < n_prog - 1)
            & ((pulscnt >> C.SEG_SHIFT) > i)
        )
        i_out = np.where(advance, i + 1, i)
        program = np.array(C.PRESSURE_PROGRAM, dtype=np.float64)
        fraction = program[i & (n_prog - 1)]
        # int() truncates toward zero; both products are non-negative
        target = np.where(
            slow_speed != 0,
            (C.SLOW_SPEED_TARGET * self._scale).astype(np.int64),
            (fraction * self._scale).astype(np.int64),
        )
        target = np.minimum(target, mscnt * C.TIME_RAMP_PER_MS)
        target = self._mem_local(  # local u16
            "CALC", "target", target & _U16
        )
        prev = st["set_prev"]
        dt = (mscnt - st["last_mscnt"]) & _U16
        step = C.SETVALUE_RATE_PER_MS * np.minimum(
            dt, C.SETVALUE_DT_CLAMP
        )
        new = np.where(
            target > prev,
            np.minimum(prev + step, target),
            np.where(
                target < prev, np.maximum(prev - step, target), prev
            ),
        )
        st["set_prev"] = new & _U16
        st["last_mscnt"] = mscnt & _U16
        return [i_out, new]

    def _body_pres_s(self, args, st):
        (adc,) = args
        scaled = self._mem_local(  # local u16
            "PRES_S", "scaled", (adc << 6) & _U16
        )
        jump = np.abs(scaled - st["last"]) > C.PRES_MAX_JUMP
        rejects_b = (st["rejects"] + 1) & _U8
        resync = jump & (rejects_b > 5)  # PresS.MAX_REJECT_STREAK
        hold = jump & ~resync  # the only rejecting branch
        st["rejects"] = np.where(hold, rejects_b, 0)
        accept = ~hold
        st["last"] = np.where(accept, scaled, st["last"])
        depth = 5  # PresS.DEPTH
        for j in range(depth - 1):
            st[f"h{j}"] = np.where(accept, st[f"h{j + 1}"], st[f"h{j}"])
        st[f"h{depth - 1}"] = np.where(
            accept, scaled, st[f"h{depth - 1}"]
        )
        history = np.stack(
            [st[f"h{j}"] for j in range(depth)], axis=1
        )
        median = np.sort(history, axis=1)[:, depth // 2]
        return [median & ~(1024 - 1)]  # PresS.QUANTUM

    def _body_v_reg(self, args, st):
        set_value, is_value = args
        err = self._mem_local(  # local i32
            "V_REG", "err", q_int(set_value - is_value, 32)
        )
        clamp = C.VREG_INTEG_CLAMP * 16
        integ = np.maximum(
            -clamp, np.minimum(clamp, st["integ"] + err)
        )
        st["integ"] = q_int(integ, 32)
        out = (C.VREG_KP_NUM * err + C.VREG_KI_NUM * integ) >> 8
        return [np.maximum(0, np.minimum(C.VALUE_FULL_SCALE, out))]

    def _body_pres_a(self, args, st):
        (out_value,) = args
        return [
            self._mem_local(  # local u14
                "PRES_A", "toc", (out_value >> 2) & ((1 << C.TOC2_BITS) - 1)
            )
        ]

    _BODIES = {
        "DIST_S": _body_dist_s,
        "CALC": _body_calc,
        "PRES_S": _body_pres_s,
        "V_REG": _body_v_reg,
        "PRES_A": _body_pres_a,
    }
