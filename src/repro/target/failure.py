"""Failure classification (paper Section 4.2).

"The system fails when it is unable to stop an aircraft within the
maximal allowed distance, or if the retardation force exceeds safety
limits" — three criteria, checked every tick:

1. retardation below 3.5 g,
2. retardation force below F_max(mass, engaging velocity),
3. stop within 335 m (a run that never arrests is a distance failure).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Tuple

from repro.target import constants as C
from repro.target.physics import PlantState
from repro.target.testcases import TestCase

__all__ = ["FailureKind", "FailureVerdict", "FailureClassifier"]


class FailureKind(Enum):
    RETARDATION = "retardation"
    FORCE = "force"
    DISTANCE = "distance"


@dataclass(frozen=True)
class FailureVerdict:
    """Outcome of one run against the safety specification."""

    failed: bool
    kinds: Tuple[FailureKind, ...]
    peak_retardation_g: float

    def describe(self) -> str:
        if not self.failed:
            return f"OK (peak {self.peak_retardation_g:.2f} g)"
        names = ", ".join(kind.value for kind in self.kinds)
        return f"FAILURE [{names}] (peak {self.peak_retardation_g:.2f} g)"


class FailureClassifier:
    """Accumulates safety violations over the course of one run."""

    def __init__(self, test_case: TestCase):
        self.test_case = test_case
        self.force_limit_n = C.max_retardation_force_n(
            test_case.mass_kg, test_case.engaging_velocity_ms
        )
        self._kinds: List[FailureKind] = []
        self._peak_retardation_ms2 = 0.0

    def _mark(self, kind: FailureKind) -> None:
        if kind not in self._kinds:
            self._kinds.append(kind)

    def observe(self, state: PlantState) -> None:
        """Check one tick's plant state against the limits."""
        if state.retardation_ms2 > self._peak_retardation_ms2:
            self._peak_retardation_ms2 = state.retardation_ms2
        if state.retardation_ms2 > C.MAX_RETARDATION_G * C.G:
            self._mark(FailureKind.RETARDATION)
        if state.force_n > self.force_limit_n:
            self._mark(FailureKind.FORCE)
        if state.distance_m > C.MAX_STOPPING_DISTANCE_M:
            self._mark(FailureKind.DISTANCE)

    def snapshot(self) -> Tuple[Tuple[FailureKind, ...], float]:
        """Violation accumulators, for checkpoint capture."""
        return (tuple(self._kinds), self._peak_retardation_ms2)

    def restore(self, snapshot: Tuple[Tuple[FailureKind, ...], float]) -> None:
        kinds, peak = snapshot
        self._kinds = list(kinds)
        self._peak_retardation_ms2 = peak

    def verdict(self, arrested: bool) -> FailureVerdict:
        """Final verdict; a run that never arrested failed by distance."""
        kinds = list(self._kinds)
        if not arrested and FailureKind.DISTANCE not in kinds:
            kinds.append(FailureKind.DISTANCE)
        return FailureVerdict(
            failed=bool(kinds),
            kinds=tuple(kinds),
            peak_retardation_g=self._peak_retardation_ms2 / C.G,
        )
