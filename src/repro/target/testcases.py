"""The certification test-case envelope (paper Section 5.2).

"25 different test cases ... combinations of five different masses and
five different engaging velocities" — the corners and interior of the
certified envelope.  Campaigns iterate these; the experiment context
subsamples them by scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ModelError
from repro.target import constants as C

__all__ = ["TestCase", "standard_test_cases"]


@dataclass(frozen=True)
class TestCase:
    """One (mass, engaging velocity) combination."""

    case_id: int
    mass_kg: float
    engaging_velocity_ms: float

    # not a pytest test class
    __test__ = False

    def __post_init__(self) -> None:
        if self.mass_kg <= 0:
            raise ModelError(
                f"test case mass must be positive, got {self.mass_kg}"
            )
        if self.engaging_velocity_ms <= 0:
            raise ModelError(
                f"engaging velocity must be positive, "
                f"got {self.engaging_velocity_ms}"
            )

    @property
    def label(self) -> str:
        return (
            f"tc{self.case_id:02d}[{self.mass_kg:g} kg @ "
            f"{self.engaging_velocity_ms:g} m/s]"
        )


def standard_test_cases() -> List[TestCase]:
    """The 5x5 envelope, mass-major (tc12 is 14 t at 55 m/s)."""
    cases: List[TestCase] = []
    case_id = 0
    for mass in C.TEST_MASSES_KG:
        for velocity in C.TEST_VELOCITIES_MS:
            cases.append(TestCase(case_id, mass, velocity))
            case_id += 1
    return cases
