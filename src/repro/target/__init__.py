"""The aircraft arrestment target system (paper Section 4).

The embedded controller of an aircraft arrestment gear: six slot-
scheduled software modules closing a pressure loop over a braked tape
drum, plus the plant, sensor registers, test-case envelope, and
failure classification needed to run full engagements and inject
faults into them.
"""

from repro.target.simulation import (
    ArrestmentResult,
    ArrestmentSimulator,
    SignalTraces,
)
from repro.target.testcases import TestCase, standard_test_cases
from repro.target.wiring import build_arrestment_system

__all__ = [
    "ArrestmentResult",
    "ArrestmentSimulator",
    "SignalTraces",
    "TestCase",
    "build_arrestment_system",
    "standard_test_cases",
]
