"""Target variants for the multi-output analyses (paper Eq. 4).

The telemetry variant adds a passive REPORT module that packs a status
word for the ground-support link, giving the system a second output
(``STATUS``) whose criticality differs sharply from the brake
command's — the setting where the paper's multi-output criticality
(C3) diverges from single-output impact.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.model.module import CellSpec, ExecutionContext, Module
from repro.model.signal import Number, SignalRole, SignalSpec, SignalType
from repro.target import constants as C
from repro.target.simulation import ArrestmentSimulator
from repro.target.testcases import TestCase
from repro.target.wiring import build_arrestment_system

__all__ = [
    "Report",
    "VARIANT_MODULE_SLOTS",
    "build_telemetry_arrestment_system",
    "telemetry_simulator",
]

#: the REPORT module rides in an otherwise free slot of the cycle.
VARIANT_MODULE_SLOTS: Dict[str, int] = {**C.MODULE_SLOTS, "REPORT": 17}

STATUS_SIGNAL = SignalSpec(
    "STATUS", SignalType.UINT, width=16,
    role=SignalRole.SYSTEM_OUTPUT,
    description="packed telemetry status word",
)


class Report(Module):
    """Telemetry packer: quantizes run state into a 16-bit status word.

    Layout: ``[15:8]`` pulscnt/8, ``[7:2]`` IsValue/1024, bit 1
    ``stopped``, bit 0 ``slow_speed`` — so low-order input bits are
    masked (the designer permeabilities used in the analyses).
    """

    INPUTS = ("pulscnt", "slow_speed", "stopped", "IsValue")
    OUTPUTS = ("STATUS",)
    STATE = (CellSpec("frames", width=16),)
    LOCALS = (CellSpec("packed", width=16),)

    def invoke(self, ctx: ExecutionContext) -> Dict[str, Number]:
        self.state["frames"] = self.state["frames"] + 1
        packed = (
            (((ctx.arg("pulscnt") >> 3) & 0xFF) << 8)
            | (((ctx.arg("IsValue") >> 10) & 0x3F) << 2)
            | ((1 if ctx.arg("stopped") else 0) << 1)
            | (1 if ctx.arg("slow_speed") else 0)
        )
        return {"STATUS": ctx.set_local("packed", packed)}


def build_telemetry_arrestment_system(pressure_scale: Optional[int] = None):
    """The base system plus the passive REPORT telemetry consumer."""
    system = build_arrestment_system(pressure_scale=pressure_scale)
    system.add_signal(STATUS_SIGNAL)
    system.add_module(Report("REPORT"))
    system.connect_input("pulscnt", "REPORT", "pulscnt")
    system.connect_input("slow_speed", "REPORT", "slow_speed")
    system.connect_input("stopped", "REPORT", "stopped")
    system.connect_input("IsValue", "REPORT", "IsValue")
    system.bind_output("STATUS", "REPORT", "STATUS")
    system.validate()
    return system


def telemetry_simulator(test_case: TestCase, **kwargs) -> ArrestmentSimulator:
    """An :class:`ArrestmentSimulator` running the telemetry variant."""
    kwargs.setdefault(
        "system",
        build_telemetry_arrestment_system(
            pressure_scale=C.pressure_scale_counts(test_case.mass_kg)
        ),
    )
    kwargs.setdefault("module_slots", VARIANT_MODULE_SLOTS)
    return ArrestmentSimulator(test_case, **kwargs)
