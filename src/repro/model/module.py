"""Black-box software modules with multiple inputs and outputs.

The paper's system model (Section 3, Fig. 2) views a module as a
generalized black box: a discrete software function with *m* input
ports and *n* output ports, communicating with other modules over
signals.  The propagation analysis never looks inside a module — it
only estimates, by fault injection, the conditional probability of an
error at input *i* producing an error at output *k* (error
permeability, Eq. 1).

For the fault-injection substrate we additionally need a *memory
model* of each module, because the harsher error model of Section 7
flips bits not only in system input signals but also in each module's
RAM area (persistent state) and in the stack area (arguments and
locals of the currently executing function).  Modules therefore
declare:

* **ports** — ordered, 1-indexed input and output port names (the
  paper numbers ports; e.g. ``PACNT`` is input #1 of ``DIST_S``);
* **state cells** — named persistent variables with a bit width, which
  the injector maps into the simulated RAM area;
* **locals** — named temporaries written and read through the
  execution context during :meth:`Module.invoke`, which the injector
  maps into the simulated stack area.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ModelError
from repro.model.signal import Number, SignalType, make_quantizer, quantize

__all__ = [
    "CellSpec",
    "ModuleState",
    "ExecutionContext",
    "Module",
    "FunctionModule",
]


@dataclass(frozen=True)
class CellSpec:
    """Declaration of one memory cell (a state variable or a local).

    ``width`` and ``cell_type`` define the bit-level representation used
    when the fault injector flips bits in this cell.
    """

    name: str
    width: int = 16
    cell_type: SignalType = SignalType.UINT
    initial: Number = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("cell name must be non-empty")
        if not 1 <= self.width <= 64:
            raise ModelError(
                f"cell {self.name!r}: width must be in 1..64, got {self.width}"
            )

    def quantize(self, value: Number) -> Number:
        return quantize(value, self.cell_type, self.width)


class ModuleState:
    """Persistent state of a module, stored as named, typed cells.

    Values written through :meth:`__setitem__` are quantized to the
    declared cell representation, exactly as stores to fixed-width
    variables behave on the embedded target.  The fault injector
    accesses cells through :meth:`peek` / :meth:`poke`, which do *not*
    re-derive anything — a poked value simply becomes the variable's
    value, as a bit flip in RAM would.
    """

    def __init__(self, cells: Sequence[CellSpec]):
        self._specs: Dict[str, CellSpec] = {}
        self._values: Dict[str, Number] = {}
        self._quantizers: Dict[str, object] = {}
        for spec in cells:
            if spec.name in self._specs:
                raise ModelError(f"duplicate state cell {spec.name!r}")
            self._specs[spec.name] = spec
            self._quantizers[spec.name] = make_quantizer(
                spec.cell_type, spec.width
            )
            self._values[spec.name] = spec.quantize(spec.initial)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __getitem__(self, name: str) -> Number:
        try:
            return self._values[name]
        except KeyError:
            raise ModelError(f"unknown state cell {name!r}") from None

    def __setitem__(self, name: str, value: Number) -> None:
        quantizer = self._quantizers.get(name)
        if quantizer is None:
            raise ModelError(f"unknown state cell {name!r}")
        self._values[name] = quantizer(value)

    def peek(self, name: str) -> Number:
        """Read a cell without any interpretation (injector interface)."""
        return self[name]

    def poke(self, name: str, value: Number) -> None:
        """Overwrite a cell (injector interface)."""
        self[name] = value

    def spec(self, name: str) -> CellSpec:
        spec = self._specs.get(name)
        if spec is None:
            raise ModelError(f"unknown state cell {name!r}")
        return spec

    def specs(self) -> List[CellSpec]:
        return list(self._specs.values())

    def names(self) -> List[str]:
        return list(self._specs)

    def reset(self) -> None:
        for name, spec in self._specs.items():
            self._values[name] = spec.quantize(spec.initial)

    def snapshot(self) -> Dict[str, Number]:
        return dict(self._values)

    def restore(self, snapshot: Mapping[str, Number]) -> None:
        for name, value in snapshot.items():
            self[name] = value


class ExecutionContext:
    """Per-invocation view of a module's arguments and stack locals.

    The scheduler marshals the module's input-signal values into the
    argument cells of this context, gives the fault injector a chance
    to corrupt them (modelling bit flips in the stack area where the
    caller placed the arguments), and then hands the context to
    :meth:`Module.invoke`.  Locals written via :meth:`set_local` pass
    through the injector's local-write hook for the same reason.
    """

    def __init__(
        self,
        module: "Module",
        args: Dict[str, Number],
        local_hook: Optional[Callable[[str, str, Number], Number]] = None,
    ):
        self._module = module
        self._args = args
        self._locals: Dict[str, Number] = {}
        self._local_hook = local_hook
        self._local_specs = module._local_spec_map
        self._local_quantizers = module._local_quantizers

    def arg(self, name: str) -> Number:
        """Read an input-port value (possibly corrupted by the injector)."""
        try:
            return self._args[name]
        except KeyError:
            raise ModelError(
                f"module {self._module.name!r} has no input {name!r}"
            ) from None

    def args(self) -> Dict[str, Number]:
        return dict(self._args)

    def set_local(self, name: str, value: Number) -> Number:
        """Write a named stack local; returns the value actually stored.

        The stored value is quantized to the declared cell width and may
        be corrupted by the injector's local-write hook — callers should
        continue computing with the *returned* value, just as the target
        code would read the variable back from its stack slot.
        """
        quantizer = self._local_quantizers.get(name)
        if quantizer is None:
            raise ModelError(
                f"module {self._module.name!r} declares no local {name!r}"
            )
        stored = quantizer(value)
        if self._local_hook is not None:
            stored = quantizer(
                self._local_hook(self._module.name, name, stored)
            )
        self._locals[name] = stored
        return stored

    def local(self, name: str) -> Number:
        """Read back a named stack local written earlier this invocation."""
        if name not in self._local_specs:
            raise ModelError(
                f"module {self._module.name!r} declares no local {name!r}"
            )
        if name not in self._locals:
            raise ModelError(
                f"local {name!r} read before first write in module "
                f"{self._module.name!r}"
            )
        return self._locals[name]

    def locals_snapshot(self) -> Dict[str, Number]:
        return dict(self._locals)


class Module:
    """Abstract black-box module.

    Subclasses define the port lists, the persistent state cells, the
    stack locals, and the transfer behaviour in :meth:`invoke`.
    """

    #: Ordered input port names; index 0 is the paper's input #1.
    INPUTS: Sequence[str] = ()
    #: Ordered output port names; index 0 is the paper's output #1.
    OUTPUTS: Sequence[str] = ()
    #: Persistent state cells mapped into the RAM area.
    STATE: Sequence[CellSpec] = ()
    #: Stack locals mapped into the stack area.
    LOCALS: Sequence[CellSpec] = ()

    def __init__(self, name: Optional[str] = None):
        self.name = name or type(self).__name__
        if not self.OUTPUTS:
            raise ModelError(f"module {self.name!r} must have at least one output")
        if len(set(self.INPUTS)) != len(self.INPUTS):
            raise ModelError(f"module {self.name!r} has duplicate input ports")
        if len(set(self.OUTPUTS)) != len(self.OUTPUTS):
            raise ModelError(f"module {self.name!r} has duplicate output ports")
        self.state = ModuleState(self.STATE)
        self._local_spec_map = {spec.name: spec for spec in self.LOCALS}
        self._local_quantizers = {
            spec.name: make_quantizer(spec.cell_type, spec.width)
            for spec in self.LOCALS
        }

    # ------------------------------------------------------------------
    # Port access, 1-indexed as in the paper's tables.
    # ------------------------------------------------------------------
    @property
    def inputs(self) -> List[str]:
        return list(self.INPUTS)

    @property
    def outputs(self) -> List[str]:
        return list(self.OUTPUTS)

    @property
    def local_specs(self) -> List[CellSpec]:
        return list(self.LOCALS)

    def input_index(self, port: str) -> int:
        """1-based index of input *port* (the ``i`` in ``P_{i,k}``)."""
        try:
            return list(self.INPUTS).index(port) + 1
        except ValueError:
            raise ModelError(
                f"module {self.name!r} has no input port {port!r}"
            ) from None

    def output_index(self, port: str) -> int:
        """1-based index of output *port* (the ``k`` in ``P_{i,k}``)."""
        try:
            return list(self.OUTPUTS).index(port) + 1
        except ValueError:
            raise ModelError(
                f"module {self.name!r} has no output port {port!r}"
            ) from None

    def input_name(self, index: int) -> str:
        """Input port name for 1-based *index*."""
        if not 1 <= index <= len(self.INPUTS):
            raise ModelError(
                f"module {self.name!r} has no input #{index} "
                f"(has {len(self.INPUTS)})"
            )
        return list(self.INPUTS)[index - 1]

    def output_name(self, index: int) -> str:
        """Output port name for 1-based *index*."""
        if not 1 <= index <= len(self.OUTPUTS):
            raise ModelError(
                f"module {self.name!r} has no output #{index} "
                f"(has {len(self.OUTPUTS)})"
            )
        return list(self.OUTPUTS)[index - 1]

    # ------------------------------------------------------------------
    # Behaviour.
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Return the module to its power-on state."""
        self.state.reset()

    def invoke(self, ctx: ExecutionContext) -> Dict[str, Number]:
        """Execute one invocation; return a value per output port."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name!r} "
            f"in={list(self.INPUTS)} out={list(self.OUTPUTS)}>"
        )


class FunctionModule(Module):
    """A module defined by a plain function over its input dict.

    Convenient for building small synthetic systems in examples and
    tests without subclassing::

        double = FunctionModule(
            "DOUBLE", inputs=["x"], outputs=["y"],
            fn=lambda args, state: {"y": 2 * args["x"]},
        )

    The function receives ``(args, state)`` and must return a dict with
    a value per output port.  Optional ``state_cells`` become the
    module's RAM cells.
    """

    def __init__(
        self,
        name: str,
        inputs: Iterable[str],
        outputs: Iterable[str],
        fn: Callable[[Dict[str, Number], ModuleState], Dict[str, Number]],
        state_cells: Sequence[CellSpec] = (),
        locals_: Sequence[CellSpec] = (),
    ):
        self.INPUTS = tuple(inputs)
        self.OUTPUTS = tuple(outputs)
        self.STATE = tuple(state_cells)
        self.LOCALS = tuple(locals_)
        self._fn = fn
        super().__init__(name)

    def invoke(self, ctx: ExecutionContext) -> Dict[str, Number]:
        result = self._fn(ctx.args(), self.state)
        missing = set(self.OUTPUTS) - set(result)
        if missing:
            raise ModelError(
                f"module {self.name!r} function did not produce outputs "
                f"{sorted(missing)}"
            )
        return {port: result[port] for port in self.OUTPUTS}
