"""System model: modules wired together by signals, plus execution.

A :class:`SystemModel` is the static description of a modular software
system in the sense of the paper's Section 3: a set of black-box
modules, a set of signals, and the wiring between them.  Every signal
is driven either by exactly one module output port or, for system
input signals, by the environment; every module input port reads
exactly one signal.

The runtime side consists of:

* :class:`SignalStore` — current value of every signal (the shared
  memory through which the modules communicate);
* :class:`SlotSchedule` — the slot-based, non-preemptive schedule of
  the target class of systems ("The scheduling is slot-based and
  non-preemptive", Section 4.1);
* :class:`SystemExecutor` — drives the modules tick by tick, with hook
  points used by the fault-injection substrate (argument marshaling,
  local writes, post-invocation output stores) and by the EDM
  substrate (signal monitors evaluated after each producing
  invocation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import (
    ModelError,
    SchedulingError,
    UnknownModuleError,
    UnknownSignalError,
    WiringError,
)
from repro.model.module import ExecutionContext, Module
from repro.model.signal import Number, SignalRole, SignalSpec

__all__ = [
    "PortRef",
    "IOPair",
    "SystemModel",
    "SignalStore",
    "SlotSchedule",
    "InvocationRecord",
    "ExecutorHooks",
    "SystemExecutor",
]


@dataclass(frozen=True)
class PortRef:
    """Reference to one port of one module."""

    module: str
    port: str

    def __str__(self) -> str:
        return f"{self.module}.{self.port}"


@dataclass(frozen=True)
class IOPair:
    """One input/output pair of a module — the unit of permeability.

    ``in_index``/``out_index`` are the 1-based indices used in the
    paper's ``P^M_{i,k}`` notation; ``in_signal``/``out_signal`` are the
    signals wired to those ports.
    """

    module: str
    in_index: int
    out_index: int
    in_port: str
    out_port: str
    in_signal: str
    out_signal: str

    @property
    def label(self) -> str:
        """The paper's name for this permeability, e.g. ``P^CALC_{3,1}``."""
        return f"P^{self.module}_{{{self.in_index},{self.out_index}}}"


class SystemModel:
    """Static wiring of modules and signals."""

    def __init__(self, name: str = "system"):
        self.name = name
        self._modules: Dict[str, Module] = {}
        self._signals: Dict[str, SignalSpec] = {}
        #: signal -> producing (module, output port); absent for system inputs
        self._producer: Dict[str, PortRef] = {}
        #: signal -> consuming (module, input port) list
        self._consumers: Dict[str, List[PortRef]] = {}
        #: (module, input port) -> signal
        self._input_binding: Dict[Tuple[str, str], str] = {}
        #: (module, output port) -> signal
        self._output_binding: Dict[Tuple[str, str], str] = {}

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------
    def add_module(self, module: Module) -> Module:
        if module.name in self._modules:
            raise ModelError(f"duplicate module name {module.name!r}")
        self._modules[module.name] = module
        return module

    def add_signal(self, spec: SignalSpec) -> SignalSpec:
        if spec.name in self._signals:
            raise ModelError(f"duplicate signal name {spec.name!r}")
        self._signals[spec.name] = spec
        self._consumers[spec.name] = []
        return spec

    def bind_output(self, signal: str, module: str, port: str) -> None:
        """Declare *signal* to be produced by ``module.port``."""
        self._require_signal(signal)
        mod = self._require_module(module)
        if port not in mod.outputs:
            raise WiringError(f"module {module!r} has no output port {port!r}")
        if signal in self._producer:
            raise WiringError(
                f"signal {signal!r} already driven by {self._producer[signal]}"
            )
        if (module, port) in self._output_binding:
            raise WiringError(
                f"output {module}.{port} already drives signal "
                f"{self._output_binding[(module, port)]!r}"
            )
        if self._signals[signal].role is SignalRole.SYSTEM_INPUT:
            raise WiringError(
                f"system input signal {signal!r} cannot be driven by a module"
            )
        self._producer[signal] = PortRef(module, port)
        self._output_binding[(module, port)] = signal

    def connect_input(self, signal: str, module: str, port: str) -> None:
        """Wire *signal* into ``module.port``."""
        self._require_signal(signal)
        mod = self._require_module(module)
        if port not in mod.inputs:
            raise WiringError(f"module {module!r} has no input port {port!r}")
        if (module, port) in self._input_binding:
            raise WiringError(
                f"input {module}.{port} already reads signal "
                f"{self._input_binding[(module, port)]!r}"
            )
        self._input_binding[(module, port)] = signal
        self._consumers[signal].append(PortRef(module, port))

    def validate(self) -> None:
        """Check the wiring is complete and consistent.

        Raises :class:`WiringError` listing every problem found.
        """
        problems: List[str] = []
        for mod in self._modules.values():
            for port in mod.inputs:
                if (mod.name, port) not in self._input_binding:
                    problems.append(f"input {mod.name}.{port} is unconnected")
            for port in mod.outputs:
                if (mod.name, port) not in self._output_binding:
                    problems.append(f"output {mod.name}.{port} drives no signal")
        for name, spec in self._signals.items():
            if spec.role is SignalRole.SYSTEM_INPUT:
                if name in self._producer:
                    problems.append(
                        f"system input {name!r} must not have a producer"
                    )
            elif name not in self._producer:
                problems.append(f"signal {name!r} has no producer")
            if spec.role is not SignalRole.SYSTEM_OUTPUT and not self._consumers[name]:
                problems.append(f"signal {name!r} has no consumer")
        if problems:
            raise WiringError(
                "invalid system wiring:\n  " + "\n  ".join(problems)
            )

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def _require_module(self, name: str) -> Module:
        mod = self._modules.get(name)
        if mod is None:
            raise UnknownModuleError(name, self._modules)
        return mod

    def _require_signal(self, name: str) -> SignalSpec:
        spec = self._signals.get(name)
        if spec is None:
            raise UnknownSignalError(name, self._signals)
        return spec

    def module(self, name: str) -> Module:
        return self._require_module(name)

    def modules(self) -> List[Module]:
        return list(self._modules.values())

    def module_names(self) -> List[str]:
        return list(self._modules)

    def signal(self, name: str) -> SignalSpec:
        return self._require_signal(name)

    def signals(self) -> List[SignalSpec]:
        return list(self._signals.values())

    def signal_names(self) -> List[str]:
        return list(self._signals)

    def system_inputs(self) -> List[str]:
        return [s.name for s in self._signals.values() if s.is_system_input]

    def system_outputs(self) -> List[str]:
        return [s.name for s in self._signals.values() if s.is_system_output]

    def producer_of(self, signal: str) -> Optional[PortRef]:
        """The (module, output port) driving *signal*; None for system inputs."""
        self._require_signal(signal)
        return self._producer.get(signal)

    def consumers_of(self, signal: str) -> List[PortRef]:
        self._require_signal(signal)
        return list(self._consumers[signal])

    def signal_of_input(self, module: str, port: str) -> str:
        sig = self._input_binding.get((module, port))
        if sig is None:
            raise WiringError(f"input {module}.{port} is unconnected")
        return sig

    def signal_of_output(self, module: str, port: str) -> str:
        sig = self._output_binding.get((module, port))
        if sig is None:
            raise WiringError(f"output {module}.{port} drives no signal")
        return sig

    def io_pairs(self, module: Optional[str] = None) -> List[IOPair]:
        """All input/output pairs (the rows of the paper's Table 1).

        With *module* given, restrict to that module's pairs.  Pairs are
        ordered by module insertion order, then input index, then output
        index — matching the paper's table layout.
        """
        mods: Iterable[Module]
        if module is None:
            mods = self._modules.values()
        else:
            mods = [self._require_module(module)]
        pairs: List[IOPair] = []
        for mod in mods:
            for i, in_port in enumerate(mod.inputs, start=1):
                for k, out_port in enumerate(mod.outputs, start=1):
                    pairs.append(
                        IOPair(
                            module=mod.name,
                            in_index=i,
                            out_index=k,
                            in_port=in_port,
                            out_port=out_port,
                            in_signal=self.signal_of_input(mod.name, in_port),
                            out_signal=self.signal_of_output(mod.name, out_port),
                        )
                    )
        return pairs

    def pairs_into_signal(self, signal: str) -> List[IOPair]:
        """All I/O pairs whose output drives *signal*.

        These are the permeabilities summed by the signal error
        exposure measure.
        """
        self._require_signal(signal)
        return [p for p in self.io_pairs() if p.out_signal == signal]

    def pairs_from_signal(self, signal: str) -> List[IOPair]:
        """All I/O pairs whose input reads *signal* (fan-out edges)."""
        self._require_signal(signal)
        return [p for p in self.io_pairs() if p.in_signal == signal]

    def module_of_state_cell(self, module: str) -> Module:
        return self._require_module(module)


class SignalStore:
    """Current value of every signal, quantized to its spec."""

    def __init__(self, system: SystemModel):
        self._system = system
        self._values: Dict[str, Number] = {}
        # precompiled per-signal quantizers: stores are the hottest
        # operation of a fault-injection campaign
        from repro.model.signal import make_quantizer

        self._quantizers = {
            spec.name: make_quantizer(spec.sig_type, spec.width)
            for spec in system.signals()
        }
        self.reset()

    def reset(self) -> None:
        for spec in self._system.signals():
            self._values[spec.name] = spec.quantize(spec.initial)

    def __getitem__(self, signal: str) -> Number:
        try:
            return self._values[signal]
        except KeyError:
            raise UnknownSignalError(signal, self._values) from None

    def __setitem__(self, signal: str, value: Number) -> None:
        quantizer = self._quantizers.get(signal)
        if quantizer is None:
            raise UnknownSignalError(signal, self._quantizers)
        self._values[signal] = quantizer(value)

    def poke(self, signal: str, value: Number) -> None:
        """Overwrite a signal value bit-for-bit (injector interface)."""
        self[signal] = value

    def snapshot(self) -> Dict[str, Number]:
        return dict(self._values)

    def restore(self, snapshot: Dict[str, Number]) -> None:
        """Overwrite every value from a :meth:`snapshot` of the same
        system.  Values bypass re-quantization: a snapshot only ever
        holds already-quantized values."""
        self._values = dict(snapshot)


class SlotSchedule:
    """Slot-based, non-preemptive schedule.

    The schedule cycles through ``n_slots`` slots, one slot per tick.
    Each slot runs an ordered list of modules.  Modules listed under
    slot ``None`` (the *every-tick* list) run at the start of every
    tick, before the slot's own modules — the target's ``CLOCK`` is
    scheduled this way so that ``mscnt`` counts every tick.
    """

    def __init__(self, n_slots: int):
        if n_slots <= 0:
            raise SchedulingError(f"n_slots must be positive, got {n_slots}")
        self.n_slots = n_slots
        self._every_tick: List[str] = []
        self._slots: Dict[int, List[str]] = {i: [] for i in range(n_slots)}

    def every_tick(self, module: str) -> "SlotSchedule":
        self._every_tick.append(module)
        return self

    def assign(self, slot: int, module: str) -> "SlotSchedule":
        if not 0 <= slot < self.n_slots:
            raise SchedulingError(
                f"slot {slot} out of range 0..{self.n_slots - 1}"
            )
        self._slots[slot].append(module)
        return self

    def modules_for_tick(self, tick: int) -> List[str]:
        slot = tick % self.n_slots
        return self._every_tick + self._slots[slot]

    def slot_of_tick(self, tick: int) -> int:
        return tick % self.n_slots

    def all_modules(self) -> List[str]:
        seen: List[str] = []
        for name in self._every_tick + [
            m for slot in range(self.n_slots) for m in self._slots[slot]
        ]:
            if name not in seen:
                seen.append(name)
        return seen

    def validate_against(self, system: SystemModel) -> None:
        known = set(system.module_names())
        scheduled = set(self.all_modules())
        unknown = scheduled - known
        if unknown:
            raise SchedulingError(
                f"schedule references unknown modules {sorted(unknown)}"
            )
        unscheduled = known - scheduled
        if unscheduled:
            raise SchedulingError(
                f"modules never scheduled: {sorted(unscheduled)}"
            )


@dataclass
class InvocationRecord:
    """What one module invocation consumed and produced."""

    tick: int
    module: str
    inputs: Dict[str, Number]
    outputs: Dict[str, Number]


@dataclass
class ExecutorHooks:
    """Hook points for fault injection and monitoring.

    All hooks are optional.  ``marshal`` may rewrite the argument dict
    (stack-area injection into arguments); ``local_write`` may rewrite
    a local's stored value (stack-area injection into locals);
    ``pre_tick`` runs before any module of the tick (RAM-area
    injection between invocations); ``post_invoke`` observes each
    completed invocation (EDM monitors, tracing).
    """

    pre_tick: Optional[Callable[[int], None]] = None
    marshal: Optional[
        Callable[[str, Dict[str, Number]], Dict[str, Number]]
    ] = None
    local_write: Optional[Callable[[str, str, Number], Number]] = None
    post_invoke: Optional[Callable[[InvocationRecord], None]] = None
    post_tick: Optional[Callable[[int], None]] = None


class SystemExecutor:
    """Tick-by-tick executor for a validated system model."""

    def __init__(
        self,
        system: SystemModel,
        schedule: SlotSchedule,
        hooks: Optional[ExecutorHooks] = None,
    ):
        system.validate()
        schedule.validate_against(system)
        self.system = system
        self.schedule = schedule
        self.hooks = hooks or ExecutorHooks()
        self.store = SignalStore(system)
        self.tick = 0
        # resolved wiring, precomputed for the per-invocation hot path
        self._bindings: Dict[str, Tuple[Module, List[Tuple[str, str]],
                                        List[Tuple[str, str]]]] = {}
        for module in system.modules():
            inputs = [
                (port, system.signal_of_input(module.name, port))
                for port in module.inputs
            ]
            outputs = [
                (port, system.signal_of_output(module.name, port))
                for port in module.outputs
            ]
            self._bindings[module.name] = (module, inputs, outputs)

    def reset(self) -> None:
        self.store.reset()
        for module in self.system.modules():
            module.reset()
        self.tick = 0

    def run_tick(self) -> List[InvocationRecord]:
        """Run one scheduler tick; return the invocations performed."""
        self.begin_tick()
        records = [
            self.invoke(name)
            for name in self.schedule.modules_for_tick(self.tick)
        ]
        self.end_tick()
        return records

    def begin_tick(self) -> None:
        """Start a tick: fire the pre-tick hook (RAM-area injection point).

        Use together with :meth:`invoke` and :meth:`end_tick` when the
        set of modules to run is not known up front — the target system's
        scheduler reads the ``ms_slot_nbr`` signal *produced during the
        tick* to decide which slot's modules to dispatch.
        """
        if self.hooks.pre_tick is not None:
            self.hooks.pre_tick(self.tick)

    def end_tick(self) -> None:
        """Finish a tick: fire the post-tick hook and advance the tick."""
        if self.hooks.post_tick is not None:
            self.hooks.post_tick(self.tick)
        self.tick += 1

    def invoke(self, module_name: str) -> InvocationRecord:
        binding = self._bindings.get(module_name)
        if binding is None:
            raise UnknownModuleError(module_name, self._bindings)
        module, input_binding, output_binding = binding
        store = self.store
        args = {port: store[signal] for port, signal in input_binding}
        if self.hooks.marshal is not None:
            args = self.hooks.marshal(module_name, args)
        ctx = ExecutionContext(module, args, local_hook=self.hooks.local_write)
        outputs = module.invoke(ctx)
        stored: Dict[str, Number] = {}
        for port, signal in output_binding:
            store[signal] = outputs[port]
            stored[port] = store[signal]
        record = InvocationRecord(
            tick=self.tick, module=module_name, inputs=args, outputs=stored
        )
        if self.hooks.post_invoke is not None:
            self.hooks.post_invoke(record)
        return record

    def run(self, ticks: int) -> None:
        for _ in range(ticks):
            self.run_tick()
