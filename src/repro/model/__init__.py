"""Software system model: signals, black-box modules, wiring, execution.

This package implements the paper's system model (Section 3): modular
black-box software in which modules with numbered input and output
ports communicate over signals, executed under a slot-based
non-preemptive scheduler.
"""

from repro.model.graph import PropagationPath, SignalGraph
from repro.model.module import (
    CellSpec,
    ExecutionContext,
    FunctionModule,
    Module,
    ModuleState,
)
from repro.model.signal import (
    Number,
    SignalRole,
    SignalSpec,
    SignalType,
    flip_bit,
    quantize,
)
from repro.model.system import (
    ExecutorHooks,
    InvocationRecord,
    IOPair,
    PortRef,
    SignalStore,
    SlotSchedule,
    SystemExecutor,
    SystemModel,
)

__all__ = [
    "CellSpec",
    "ExecutionContext",
    "ExecutorHooks",
    "FunctionModule",
    "InvocationRecord",
    "IOPair",
    "Module",
    "ModuleState",
    "Number",
    "PortRef",
    "PropagationPath",
    "SignalGraph",
    "SignalRole",
    "SignalSpec",
    "SignalStore",
    "SignalType",
    "SlotSchedule",
    "SystemExecutor",
    "SystemModel",
    "flip_bit",
    "quantize",
]
