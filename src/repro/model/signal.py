"""Signals: the software channels for data communication between modules.

The paper (Section 3) uses *signal* in an abstract manner: "a software
channel for data communication between modules", regardless of whether
the concrete mechanism is shared memory, messaging or parameter passing.
A signal is produced by exactly one source (a module output port or the
environment, for system inputs) and may fan out to any number of module
input ports.

This module defines the value model for signals:

* :class:`SignalType` — the small set of data types found in the kind of
  embedded control software the paper targets (fixed-width integers and
  booleans; floats are supported for plant-side quantities).
* :class:`SignalSpec` — the static description of one signal: name,
  type, bit width, valid range and role in the system.
* :class:`SignalRole` — whether the signal is a system input, a system
  output, or an internal (intermediate) signal.  The roles drive both
  the analyses (impact is measured *onto* system outputs, exposure is
  undefined *for* system inputs) and the error models (the "nice" error
  model of Section 6.2 only disturbs system inputs).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from repro.errors import ModelError

__all__ = [
    "SignalType",
    "SignalRole",
    "SignalSpec",
    "quantize",
    "make_quantizer",
    "flip_bit",
    "Number",
]

Number = Union[int, float, bool]


class SignalType(enum.Enum):
    """Data type carried by a signal."""

    UINT = "uint"  #: unsigned fixed-width integer (HW registers, counters)
    INT = "int"  #: signed fixed-width integer (two's complement)
    BOOL = "bool"  #: boolean flag, stored in a full cell (0 or 1)
    FLOAT = "float"  #: floating point (plant-side / analysis quantities)


class SignalRole(enum.Enum):
    """Role of a signal with respect to the system boundary."""

    SYSTEM_INPUT = "system_input"
    SYSTEM_OUTPUT = "system_output"
    INTERNAL = "internal"


def _mask(width: int) -> int:
    return (1 << width) - 1


def quantize(value: Number, sig_type: SignalType, width: int) -> Number:
    """Quantize *value* to the representable range of the signal type.

    Integer types wrap modulo ``2**width`` exactly like the hardware
    registers of the embedded target would; booleans collapse to 0/1;
    floats pass through unchanged.
    """
    if sig_type is SignalType.FLOAT:
        return float(value)
    if sig_type is SignalType.BOOL:
        return 1 if value else 0
    ivalue = int(value) & _mask(width)
    if sig_type is SignalType.INT and ivalue >= (1 << (width - 1)):
        ivalue -= 1 << width
    return ivalue


def make_quantizer(sig_type: SignalType, width: int):
    """Precompiled quantizer for one (type, width) representation.

    Semantically identical to :func:`quantize` with the same
    arguments, but with the type dispatch and bit mask resolved once —
    the simulator quantizes on every signal store and state write, so
    this is the hottest arithmetic in a fault-injection campaign.
    """
    if sig_type is SignalType.FLOAT:
        return float
    if sig_type is SignalType.BOOL:
        return lambda value: 1 if value else 0
    mask = _mask(width)
    if sig_type is SignalType.UINT:
        return lambda value: int(value) & mask
    sign_bit = 1 << (width - 1)
    full = 1 << width

    def quantize_int(value: Number) -> int:
        ivalue = int(value) & mask
        return ivalue - full if ivalue >= sign_bit else ivalue

    return quantize_int


def flip_bit(value: Number, bit: int, sig_type: SignalType, width: int) -> Number:
    """Return *value* with bit *bit* flipped, re-quantized to the type.

    For floats the bit flip is applied to the integer part interpreted
    as a fixed-point number scaled by 2**16; the target software under
    study uses integer arithmetic so float signals only appear on the
    plant side, where analyses never inject.
    """
    if not 0 <= bit < width:
        raise ModelError(f"bit index {bit} out of range for width {width}")
    if sig_type is SignalType.FLOAT:
        scaled = int(round(float(value) * 65536.0))
        scaled ^= 1 << bit
        return scaled / 65536.0
    raw = int(value) & _mask(width)
    raw ^= 1 << bit
    return quantize(raw, sig_type, width)


@dataclass(frozen=True)
class SignalSpec:
    """Static description of one signal.

    Parameters
    ----------
    name:
        Unique signal name within a system (e.g. ``"pulscnt"``).
    sig_type:
        Data type carried by the signal.
    width:
        Bit width of the signal's storage cell.  Defaults to 16, the
        natural word size of the micro-controller class the paper's
        target system runs on.
    initial:
        Reset value of the signal.
    minimum / maximum:
        Optional specification bounds used by executable assertions and
        by validity checks; these are *specified* behaviour, not the
        representable range.
    role:
        System-boundary role; see :class:`SignalRole`.
    description:
        Free-text description used in reports.
    """

    name: str
    sig_type: SignalType = SignalType.UINT
    width: int = 16
    initial: Number = 0
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    role: SignalRole = SignalRole.INTERNAL
    description: str = ""
    unit: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("signal name must be non-empty")
        if self.width <= 0 or self.width > 64:
            raise ModelError(
                f"signal {self.name!r}: width must be in 1..64, got {self.width}"
            )
        if self.sig_type is SignalType.BOOL and self.width > 8:
            raise ModelError(
                f"boolean signal {self.name!r} must fit a byte cell "
                f"(width <= 8), got {self.width}"
            )
        if (
            self.minimum is not None
            and self.maximum is not None
            and self.minimum > self.maximum
        ):
            raise ModelError(
                f"signal {self.name!r}: minimum {self.minimum} exceeds "
                f"maximum {self.maximum}"
            )

    @property
    def is_system_input(self) -> bool:
        return self.role is SignalRole.SYSTEM_INPUT

    @property
    def is_system_output(self) -> bool:
        return self.role is SignalRole.SYSTEM_OUTPUT

    @property
    def is_internal(self) -> bool:
        return self.role is SignalRole.INTERNAL

    def quantize(self, value: Number) -> Number:
        """Quantize *value* to this signal's representation."""
        return quantize(value, self.sig_type, self.width)

    def flip_bit(self, value: Number, bit: int) -> Number:
        """Return *value* with *bit* flipped in this signal's representation."""
        return flip_bit(value, bit, self.sig_type, self.width)

    def in_spec(self, value: Number) -> bool:
        """True if *value* lies within the specified min/max bounds."""
        if self.minimum is not None and value < self.minimum:
            return False
        if self.maximum is not None and value > self.maximum:
            return False
        return True

    def representable_range(self) -> Tuple[float, float]:
        """The (low, high) range representable by the signal's cell."""
        if self.sig_type is SignalType.FLOAT:
            return (float("-inf"), float("inf"))
        if self.sig_type is SignalType.BOOL:
            return (0, 1)
        if self.sig_type is SignalType.INT:
            return (-(1 << (self.width - 1)), (1 << (self.width - 1)) - 1)
        return (0, (1 << self.width) - 1)
