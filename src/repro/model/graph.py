"""Signal graph: propagation structure of a system model.

The propagation analyses of the paper operate on a directed graph
whose nodes are *signals* and whose edges are the module input/output
pairs: an edge from signal *a* to signal *b* labelled ``P^M_{i,k}``
exists when *a* is wired to input *i* of module *M* and output *k* of
*M* drives *b*.

The target system contains self-loops (``ms_slot_nbr`` feeds back into
``CLOCK``; ``i`` feeds back into ``CALC``), so path enumeration must be
cycle-aware: a propagation path visits each signal at most once, which
is exactly how the paper's Fig. 4 impact tree unrolls the ``i``
self-loop a single time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import AnalysisError, UnknownSignalError
from repro.model.system import IOPair, SystemModel

__all__ = ["PropagationPath", "SignalGraph"]


@dataclass(frozen=True)
class PropagationPath:
    """One acyclic propagation path through the signal graph.

    ``edges`` is the ordered tuple of I/O pairs traversed; ``signals``
    is the corresponding signal sequence (one longer than ``edges``).
    """

    edges: Tuple[IOPair, ...]

    def __post_init__(self) -> None:
        if not self.edges:
            raise AnalysisError("a propagation path needs at least one edge")
        for prev, nxt in zip(self.edges, self.edges[1:]):
            if prev.out_signal != nxt.in_signal:
                raise AnalysisError(
                    f"discontinuous path: {prev.out_signal!r} -> "
                    f"{nxt.in_signal!r}"
                )

    @property
    def source(self) -> str:
        return self.edges[0].in_signal

    @property
    def destination(self) -> str:
        return self.edges[-1].out_signal

    @property
    def signals(self) -> Tuple[str, ...]:
        return (self.edges[0].in_signal,) + tuple(
            e.out_signal for e in self.edges
        )

    def weight(self, permeability_of) -> float:
        """Product of permeabilities along the path (Fig. 4's ``w_i``).

        *permeability_of* maps an :class:`IOPair` to its permeability
        value; typically ``PermeabilityMatrix.__getitem__``.
        """
        w = 1.0
        for edge in self.edges:
            w *= float(permeability_of(edge))
        return w

    def describe(self) -> str:
        """Human-readable path, e.g. ``pulscnt -[P^CALC_{3,1}]-> i -...``."""
        parts = [self.edges[0].in_signal]
        for edge in self.edges:
            parts.append(f"-[{edge.label}]-> {edge.out_signal}")
        return " ".join(parts)

    def __len__(self) -> int:
        return len(self.edges)


class SignalGraph:
    """Directed signal-to-signal propagation graph of a system."""

    def __init__(self, system: SystemModel):
        self.system = system
        self._out_edges: Dict[str, List[IOPair]] = {
            name: [] for name in system.signal_names()
        }
        self._in_edges: Dict[str, List[IOPair]] = {
            name: [] for name in system.signal_names()
        }
        for pair in system.io_pairs():
            self._out_edges[pair.in_signal].append(pair)
            self._in_edges[pair.out_signal].append(pair)

    # ------------------------------------------------------------------
    # Basic structure.
    # ------------------------------------------------------------------
    def signals(self) -> List[str]:
        return self.system.signal_names()

    def out_edges(self, signal: str) -> List[IOPair]:
        self._check(signal)
        return list(self._out_edges[signal])

    def in_edges(self, signal: str) -> List[IOPair]:
        self._check(signal)
        return list(self._in_edges[signal])

    def _check(self, signal: str) -> None:
        if signal not in self._out_edges:
            raise UnknownSignalError(signal, self._out_edges)

    # ------------------------------------------------------------------
    # Path enumeration.
    # ------------------------------------------------------------------
    def paths(
        self,
        source: str,
        destination: str,
        max_length: Optional[int] = None,
    ) -> List[PropagationPath]:
        """All acyclic propagation paths from *source* to *destination*.

        Each signal appears at most once per path; a self-loop edge
        (``in_signal == out_signal``) can therefore never be part of a
        path, matching the paper's single unrolling of feedback loops.
        """
        self._check(source)
        self._check(destination)
        found: List[PropagationPath] = []
        limit = max_length if max_length is not None else len(self._out_edges)

        def visit(signal: str, trail: List[IOPair], seen: Set[str]) -> None:
            if len(trail) >= limit:
                return
            for edge in self._out_edges[signal]:
                nxt = edge.out_signal
                if nxt in seen:
                    continue
                trail.append(edge)
                if nxt == destination:
                    found.append(PropagationPath(tuple(trail)))
                else:
                    seen.add(nxt)
                    visit(nxt, trail, seen)
                    seen.remove(nxt)
                trail.pop()

        visit(source, [], {source})
        return found

    def paths_to_outputs(
        self, source: str, outputs: Optional[Sequence[str]] = None
    ) -> List[PropagationPath]:
        """All acyclic paths from *source* to any system output signal."""
        targets = list(outputs) if outputs is not None else self.system.system_outputs()
        result: List[PropagationPath] = []
        for target in targets:
            if target == source:
                continue
            result.extend(self.paths(source, target))
        return result

    def paths_from_inputs(
        self, destination: str, inputs: Optional[Sequence[str]] = None
    ) -> List[PropagationPath]:
        """All acyclic paths from any system input signal to *destination*."""
        sources = list(inputs) if inputs is not None else self.system.system_inputs()
        result: List[PropagationPath] = []
        for source in sources:
            if source == destination:
                continue
            result.extend(self.paths(source, destination))
        return result

    # ------------------------------------------------------------------
    # Reachability.
    # ------------------------------------------------------------------
    def reachable_from(self, source: str) -> Set[str]:
        """Signals reachable from *source* along propagation edges."""
        self._check(source)
        seen: Set[str] = set()
        stack = [source]
        while stack:
            current = stack.pop()
            for edge in self._out_edges[current]:
                if edge.out_signal not in seen:
                    seen.add(edge.out_signal)
                    stack.append(edge.out_signal)
        return seen

    def reaching(self, destination: str) -> Set[str]:
        """Signals from which *destination* is reachable."""
        self._check(destination)
        seen: Set[str] = set()
        stack = [destination]
        while stack:
            current = stack.pop()
            for edge in self._in_edges[current]:
                if edge.in_signal not in seen:
                    seen.add(edge.in_signal)
                    stack.append(edge.in_signal)
        return seen

    def has_cycle(self) -> bool:
        """True if the signal graph contains any directed cycle."""
        colors: Dict[str, int] = {}

        def dfs(node: str) -> bool:
            colors[node] = 1
            for edge in self._out_edges[node]:
                nxt = edge.out_signal
                state = colors.get(nxt, 0)
                if state == 1:
                    return True
                if state == 0 and dfs(nxt):
                    return True
            colors[node] = 2
            return False

        return any(
            colors.get(node, 0) == 0 and dfs(node) for node in self._out_edges
        )
