"""Target-system registry: the systems campaigns can be pointed at.

A :class:`TargetSystem` bundles everything a campaign or experiment
needs to know about one system under test — how to build its model,
how to simulate one test case, which test cases span its certified
envelope, and which executable assertions guard it — so campaign and
experiment code takes a target as a value instead of hardwiring
``repro.target.*`` imports.

Both shipped systems are registered here: ``arrestment`` (the paper's
six-module aircraft arrestment controller) and ``watertank`` (the
second, two-output system used to exercise the framework's
generality).  Third-party targets register through
:func:`register_target`; see ``docs/extending.md``.

Campaigns accept a :class:`TargetSystem` anywhere a simulator factory
is expected (the ``simulator_factory`` attribute is picked up
automatically), so the old factory-based call sites keep working
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ModelError

__all__ = [
    "TargetSystem",
    "register_target",
    "get_target",
    "available_targets",
]


@dataclass(frozen=True)
class TargetSystem:
    """Everything the framework needs to know about one target.

    ``build_system``, ``standard_test_cases`` and ``assertion_specs``
    are zero-argument callables (not values) so that registering a
    target stays cheap: nothing is constructed until a campaign asks.
    ``simulator_factory`` maps one test case to a fresh, runnable
    simulator and is handed directly to the campaign drivers.
    """

    name: str
    build_system: Callable[[], object]
    simulator_factory: Callable[[object], object]
    standard_test_cases: Callable[[], Sequence[object]]
    assertion_specs: Callable[[], List[object]]
    description: str = ""

    def memory_map(self):
        """The target's fault-injection memory map (RAM + stack)."""
        from repro.fi.memory import MemoryMap

        return MemoryMap(self.build_system())


_REGISTRY: Dict[str, TargetSystem] = {}


def register_target(target: TargetSystem, replace: bool = False) -> TargetSystem:
    """Register *target* under its name; returns it for chaining."""
    if not isinstance(target, TargetSystem):
        raise ModelError(
            f"expected a TargetSystem, got {type(target).__name__}"
        )
    if target.name in _REGISTRY and not replace:
        raise ModelError(
            f"target {target.name!r} is already registered "
            f"(pass replace=True to override)"
        )
    _REGISTRY[target.name] = target
    return target


def get_target(name: str) -> TargetSystem:
    """Look up a registered target by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ModelError(
            f"unknown target {name!r}; registered: {available_targets()}"
        ) from None


def available_targets() -> List[str]:
    return sorted(_REGISTRY)


# ======================================================================
# The two shipped targets.
# ======================================================================
def _build_arrestment():
    from repro.target.wiring import build_arrestment_system

    return build_arrestment_system()


def _arrestment_simulator(test_case):
    from repro.target.simulation import ArrestmentSimulator

    return ArrestmentSimulator(test_case)


def _arrestment_cases():
    from repro.target.testcases import standard_test_cases

    return standard_test_cases()


def _arrestment_assertions():
    from repro.edm import catalogue

    return list(catalogue.EA_BY_NAME.values())


def _build_watertank():
    from repro.watertank import build_watertank_system

    return build_watertank_system()


def _watertank_simulator(test_case):
    from repro.watertank import WaterTankSimulator

    return WaterTankSimulator(test_case)


def _watertank_cases():
    from repro.watertank import standard_tank_cases

    return standard_tank_cases()


def _watertank_assertions():
    from repro.watertank import tank_assertions

    return tank_assertions()


register_target(TargetSystem(
    name="arrestment",
    build_system=_build_arrestment,
    simulator_factory=_arrestment_simulator,
    standard_test_cases=_arrestment_cases,
    assertion_specs=_arrestment_assertions,
    description=(
        "six-module aircraft arrestment controller "
        "(the paper's target, Section 4)"
    ),
))

register_target(TargetSystem(
    name="watertank",
    build_system=_build_watertank,
    simulator_factory=_watertank_simulator,
    standard_test_cases=_watertank_cases,
    assertion_specs=_watertank_assertions,
    description="two-output water-tank level controller",
))
