"""FastFlip-style compositional permeability cache.

The permeability campaign's strata are per-module: an injection run
flips a bit of one module-input value and compares that module's
invocation stream against the golden run.  The per-module stratum
counts are therefore *compositional* — re-estimating one module never
changes another module's counts — which is the FastFlip observation
(PAPERS.md): cache per-module propagation results keyed by a
**module fingerprint** (the module's interface/state shape plus the
campaign parameters), and after a change re-inject *only* the modules
whose fingerprint moved.

:func:`cached_estimate` is the entry point ``repro place`` solves
over: it looks every module up in a :class:`PlacementCache`, runs one
restricted :class:`~repro.fi.campaign.PermeabilityCampaign` for the
misses (through the ordinary ``CampaignExecutor``/adaptive-sampler
stack via ``config=``), stores the fresh per-module counts, and
merges hits and misses into a single
:class:`~repro.fi.campaign.PermeabilityEstimate` that is
bit-identical to what an uncached full campaign with the same seed
would have produced.

Two backends, selected by path suffix exactly like
:mod:`repro.fi.store`: a human-readable JSON file, and a sqlite
database for concurrent access.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import PlacementError
from repro.fi.campaign import PermeabilityCampaign, PermeabilityEstimate
from repro.fi.store import SQLITE_SUFFIXES

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheTelemetry",
    "PlacementCache",
    "module_fingerprint",
    "system_fingerprints",
    "cached_estimate",
]

#: bumped when the payload layout changes; part of every fingerprint.
CACHE_SCHEMA_VERSION = 1


# ======================================================================
# Fingerprints.
# ======================================================================
def module_fingerprint(
    system,
    module_name: str,
    *,
    seed,
    runs_per_input: int,
    direct_only: bool,
    case_labels: Sequence[str],
    salt: Optional[str] = None,
    extra: Optional[str] = None,
) -> str:
    """Content fingerprint of one module's campaign contribution.

    Hashes the module's observable interface (ports, wired signals
    with their types and widths, state and local cell shapes) together
    with every campaign parameter that shapes its stratum counts.
    *salt* lets callers force an invalidation (a stand-in for source
    revisions the model layer cannot see); *extra* folds in execution
    settings such as the adaptive-sampling policy.
    """
    module = system.module(module_name)
    ports = []
    for port in module.inputs:
        signal = system.signal_of_input(module_name, port)
        spec = system.signal(signal)
        ports.append(["in", port, signal, spec.sig_type.value, spec.width])
    for port in module.outputs:
        signal = system.signal_of_output(module_name, port)
        spec = system.signal(signal)
        ports.append(["out", port, signal, spec.sig_type.value, spec.width])
    cells = [
        ["state", spec.name, spec.cell_type.value, spec.width]
        for spec in module.state.specs()
    ] + [
        ["local", spec.name, spec.cell_type.value, spec.width]
        for spec in module.local_specs
    ]
    blob = json.dumps(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "system": system.name,
            "module": module_name,
            "ports": ports,
            "cells": cells,
            "seed": seed,
            "runs_per_input": runs_per_input,
            "direct_only": direct_only,
            "cases": list(case_labels),
            "salt": salt,
            "extra": extra,
        },
        separators=(",", ":"),
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


def system_fingerprints(
    system,
    *,
    seed,
    runs_per_input: int,
    direct_only: bool,
    case_labels: Sequence[str],
    salts: Optional[Mapping[str, str]] = None,
    extra: Optional[str] = None,
) -> Dict[str, str]:
    """Fingerprint of every module of *system* (module -> hash)."""
    salts = dict(salts or {})
    known = {module.name for module in system.modules()}
    unknown = sorted(set(salts) - known)
    if unknown:
        raise PlacementError(
            f"salts name unknown modules {unknown}; "
            f"system has {sorted(known)}"
        )
    return {
        module.name: module_fingerprint(
            system,
            module.name,
            seed=seed,
            runs_per_input=runs_per_input,
            direct_only=direct_only,
            case_labels=case_labels,
            salt=salts.get(module.name),
            extra=extra,
        )
        for module in system.modules()
    }


# ======================================================================
# The cache store (json / sqlite by path suffix).
# ======================================================================
class PlacementCache:
    """Per-module stratum-count cache with json and sqlite backends."""

    def __init__(self, path: str, backend: Optional[str] = None):
        self.path = path
        if backend is None:
            suffix = os.path.splitext(path)[1].lower()
            backend = "sqlite" if suffix in SQLITE_SUFFIXES else "json"
        if backend not in ("json", "sqlite"):
            raise PlacementError(
                f"unknown cache backend {backend!r}; "
                f"expected 'json' or 'sqlite'"
            )
        self.backend = backend
        self._conn: Optional[sqlite3.Connection] = None
        if backend == "sqlite":
            self._conn = sqlite3.connect(path)
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS module_estimates ("
                " module TEXT PRIMARY KEY,"
                " fingerprint TEXT NOT NULL,"
                " payload TEXT NOT NULL)"
            )
            self._conn.commit()

    # -- json helpers --------------------------------------------------
    def _read_json(self) -> Dict:
        if not os.path.exists(self.path):
            return {"schema": CACHE_SCHEMA_VERSION, "modules": {}}
        with open(self.path, encoding="utf-8") as handle:
            data = json.load(handle)
        if data.get("schema") != CACHE_SCHEMA_VERSION:
            return {"schema": CACHE_SCHEMA_VERSION, "modules": {}}
        return data

    def _write_json(self, data: Dict) -> None:
        tmp = f"{self.path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=1, sort_keys=True)
        os.replace(tmp, self.path)

    # -- the API -------------------------------------------------------
    def lookup(self, module: str, fingerprint: str) -> Optional[Dict]:
        """The cached payload for *module*, or ``None`` when absent or
        stored under a different fingerprint (stale)."""
        if self._conn is not None:
            row = self._conn.execute(
                "SELECT fingerprint, payload FROM module_estimates"
                " WHERE module = ?",
                (module,),
            ).fetchone()
            if row is None or row[0] != fingerprint:
                return None
            return json.loads(row[1])
        entry = self._read_json()["modules"].get(module)
        if entry is None or entry.get("fingerprint") != fingerprint:
            return None
        return entry["payload"]

    def store(self, module: str, fingerprint: str, payload: Dict) -> None:
        if self._conn is not None:
            self._conn.execute(
                "INSERT INTO module_estimates (module, fingerprint, payload)"
                " VALUES (?, ?, ?)"
                " ON CONFLICT(module) DO UPDATE SET"
                " fingerprint = excluded.fingerprint,"
                " payload = excluded.payload",
                (module, fingerprint, json.dumps(payload, sort_keys=True)),
            )
            self._conn.commit()
            return
        data = self._read_json()
        data["modules"][module] = {
            "fingerprint": fingerprint,
            "payload": payload,
        }
        self._write_json(data)

    def modules(self) -> List[str]:
        if self._conn is not None:
            rows = self._conn.execute(
                "SELECT module FROM module_estimates ORDER BY module"
            ).fetchall()
            return [row[0] for row in rows]
        return sorted(self._read_json()["modules"])

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "PlacementCache":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ======================================================================
# Cache-aware estimation.
# ======================================================================
@dataclass(frozen=True)
class CacheTelemetry:
    """What one :func:`cached_estimate` call reused vs re-injected."""

    hits: Tuple[str, ...]  #: modules answered from the cache
    misses: Tuple[str, ...]  #: modules re-injected this call
    backend: str

    def describe(self) -> str:
        return (
            f"cache[{self.backend}]: hits={len(self.hits)} "
            f"misses={len(self.misses)}"
            + (f" reinjected={','.join(self.misses)}" if self.misses else "")
        )


def _module_payload(estimate: PermeabilityEstimate, module: str) -> Dict:
    """The per-module slice of an estimate, in a json-stable shape."""
    active = [
        {"in": in_port, "runs": runs}
        for (m, in_port), runs in sorted(estimate.active_runs.items())
        if m == module
    ]
    counts = [
        {"in": in_port, "out": out_port, "count": count}
        for (m, in_port, out_port), count in sorted(
            estimate.direct_counts.items()
        )
        if m == module
    ]
    return {"active": active, "counts": counts}


def _merge_payloads(
    system, payloads: Mapping[str, Dict], failures
) -> PermeabilityEstimate:
    direct: Dict[Tuple[str, str, str], int] = {}
    active: Dict[Tuple[str, str], int] = {}
    values: Dict[Tuple[str, str, str], float] = {}
    for module in system.modules():
        payload = payloads[module.name]
        for rec in payload["active"]:
            active[(module.name, rec["in"])] = int(rec["runs"])
        for rec in payload["counts"]:
            key = (module.name, rec["in"], rec["out"])
            direct[key] = int(rec["count"])
            runs = active.get((module.name, rec["in"]), 0)
            values[key] = direct[key] / runs if runs else 0.0
    return PermeabilityEstimate(
        direct_counts=direct,
        active_runs=active,
        values=values,
        task_failures=list(failures),
    )


def cached_estimate(
    factory,
    test_cases: Sequence,
    cache: PlacementCache,
    *,
    runs_per_input: int,
    seed,
    direct_only: bool = True,
    config=None,
    salts: Optional[Mapping[str, str]] = None,
    invalidate: Sequence[str] = (),
) -> Tuple[PermeabilityEstimate, CacheTelemetry]:
    """A full-system permeability estimate through the cache.

    Modules whose fingerprint matches a cache entry are answered from
    the stored counts; the rest are measured by one restricted
    :class:`PermeabilityCampaign` (``modules=missing``) and stored.
    With an empty cache this produces exactly the counts a full
    uncached campaign with the same seed yields, because the module
    iteration (and thus the RNG draw order) is the system order
    either way.

    *salts* folds per-module revision tokens into the fingerprints
    (a changed salt is a changed module); *invalidate* instead forces
    the named modules to miss once — they are re-injected and stored
    back under their ordinary fingerprint.
    """
    resolved = getattr(factory, "simulator_factory", factory)
    system = resolved(test_cases[0]).system
    extra = None
    if config is not None and getattr(config, "adaptive", False):
        extra = f"adaptive:max_runs={getattr(config, 'max_runs', None)}"
    fingerprints = system_fingerprints(
        system,
        seed=seed,
        runs_per_input=runs_per_input,
        direct_only=direct_only,
        case_labels=[case.label for case in test_cases],
        salts=salts,
        extra=extra,
    )
    forced = set(invalidate)
    unknown = sorted(forced - set(fingerprints))
    if unknown:
        raise PlacementError(
            f"cannot invalidate unknown modules {unknown}; "
            f"system has {sorted(fingerprints)}"
        )
    payloads: Dict[str, Dict] = {}
    hits: List[str] = []
    misses: List[str] = []
    for module in system.modules():
        if module.name in forced:
            misses.append(module.name)
            continue
        payload = cache.lookup(module.name, fingerprints[module.name])
        if payload is None:
            misses.append(module.name)
        else:
            hits.append(module.name)
            payloads[module.name] = payload
    failures = []
    if misses:
        campaign = PermeabilityCampaign(
            factory,
            test_cases,
            runs_per_input=runs_per_input,
            seed=seed,
            direct_only=direct_only,
            config=config,
            modules=misses,
        )
        fresh = campaign.run()
        failures = list(fresh.task_failures)
        for name in misses:
            payload = _module_payload(fresh, name)
            cache.store(name, fingerprints[name], payload)
            payloads[name] = payload
    estimate = _merge_payloads(system, payloads, failures)
    telemetry = CacheTelemetry(
        hits=tuple(sorted(hits)),
        misses=tuple(sorted(misses)),
        backend=cache.backend,
    )
    return estimate, telemetry
