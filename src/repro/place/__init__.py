"""Optimal EDM placement search (ROADMAP item 5).

The paper compares two hand-derived EA sets; this package *solves*
for the placement instead: :mod:`repro.place.model` turns measured
permeability estimates plus the Table 3 cost catalogue into a
budgeted coverage-maximization instance, :mod:`repro.place.solvers`
maximizes it (lazy greedy with a (1 - 1/e) certificate, and a
branch-and-bound ILP that proves optimality on bounded instances),
:mod:`repro.place.cache` reuses per-module campaign results
FastFlip-style so a re-solve only re-injects changed modules, and
:mod:`repro.place.report` renders the ``repro place`` table with
Wilson-CI coverage bounds and the coverage-per-byte dominance check
against the EH and PA hand sets.
"""

from repro.place.cache import (
    CacheTelemetry,
    PlacementCache,
    cached_estimate,
    module_fingerprint,
    system_fingerprints,
)
from repro.place.model import (
    Budget,
    PlacementInstance,
    PlacementItem,
    Stratum,
    build_instance,
    instance_from_estimate,
    items_for_signals,
)
from repro.place.report import (
    HandSetComparison,
    PlacementReport,
    build_report,
)
from repro.place.solvers import (
    EPS,
    GREEDY_GUARANTEE,
    MarginalExplanation,
    SolverResult,
    explain_selection,
    greedy_solve,
    ilp_solve,
)

__all__ = [
    "Budget",
    "CacheTelemetry",
    "EPS",
    "GREEDY_GUARANTEE",
    "HandSetComparison",
    "MarginalExplanation",
    "PlacementCache",
    "PlacementInstance",
    "PlacementItem",
    "PlacementReport",
    "SolverResult",
    "Stratum",
    "build_instance",
    "build_report",
    "cached_estimate",
    "explain_selection",
    "greedy_solve",
    "ilp_solve",
    "instance_from_estimate",
    "items_for_signals",
    "module_fingerprint",
    "system_fingerprints",
]
