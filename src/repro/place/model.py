"""The budgeted coverage-maximization placement model.

Turns measured per-module permeability estimates plus the Table 3
cost catalogue into a combinatorial optimization instance:

* **Strata** — the error sources of the propagation error model, one
  per (module, input port) pair: a fault-injection run flips one bit
  of one module-input value, so each stratum is exactly one row of
  the permeability campaign's sampling plan.  Strata are weighted
  uniformly by default (every error source equally likely, matching
  the campaigns' uniform sampling).

* **Items** — the executable assertions of the EA catalogue.  Each EA
  guards one signal and costs its Table 3 ROM/RAM bytes plus one
  dispatch time slot.

* **Coverage** — an EA guarding signal ``g`` detects a stratum
  ``(M, i)`` error with probability 1 when ``g`` is the signal wired
  to that input (the corrupted value is checked directly), and
  otherwise with the probability that the error *propagates* from the
  input signal to ``g``: the impact measure of Eq. 2,
  ``1 - prod_paths(1 - w_path)``, evaluated over the propagation
  paths whose first edge crosses module ``M``.  A set of EAs detects
  a stratum error under the noisy-or model, so total coverage

  .. math::

      f(S) = \\sum_s w_s \\Big(1 - \\prod_{a \\in S} (1 - p_{a,s})\\Big)

  is monotone submodular — the property the solvers in
  :mod:`repro.place.solvers` exploit.

Wilson confidence bounds on the campaign counts propagate through the
same formula: evaluating coverage with every permeability replaced by
its Wilson lower (upper) bound yields a coverage lower (upper) bound,
because ``f`` is monotone in every ``p``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import PlacementError
from repro.analysis.estimators import (
    bound_matrices_from_estimate,
    matrix_from_estimate,
)
from repro.core.permeability import PermeabilityMatrix
from repro.core.trees import build_impact_tree
from repro.model.graph import SignalGraph
from repro.model.system import SystemModel

__all__ = [
    "Stratum",
    "PlacementItem",
    "Budget",
    "PlacementInstance",
    "build_instance",
    "instance_from_estimate",
    "items_for_signals",
]


@dataclass(frozen=True)
class Stratum:
    """One error source: a bit flip entering (module, in_port)."""

    module: str
    in_port: str
    signal: str  #: the signal wired to the input port
    weight: float

    @property
    def label(self) -> str:
        return f"{self.module}.{self.in_port}"


@dataclass(frozen=True)
class PlacementItem:
    """One selectable EA with its cost and per-stratum coverage."""

    name: str
    signal: str
    rom_bytes: int
    ram_bytes: int
    time_cost: int
    #: detection probability per stratum (instance order), at the
    #: nominal / Wilson-lower / Wilson-upper permeability estimates
    p: Tuple[float, ...]
    p_low: Tuple[float, ...]
    p_high: Tuple[float, ...]

    @property
    def total_bytes(self) -> int:
        return self.rom_bytes + self.ram_bytes


@dataclass(frozen=True)
class Budget:
    """Resource ceilings; ``None`` leaves a dimension unconstrained."""

    rom_bytes: Optional[int] = None
    ram_bytes: Optional[int] = None
    time_slots: Optional[int] = None

    def dims(self) -> List[Tuple[str, int]]:
        out = []
        if self.rom_bytes is not None:
            out.append(("rom_bytes", self.rom_bytes))
        if self.ram_bytes is not None:
            out.append(("ram_bytes", self.ram_bytes))
        if self.time_slots is not None:
            out.append(("time_slots", self.time_slots))
        return out


_ITEM_COST = {
    "rom_bytes": lambda item: item.rom_bytes,
    "ram_bytes": lambda item: item.ram_bytes,
    "time_slots": lambda item: item.time_cost,
}


@dataclass(frozen=True)
class PlacementInstance:
    """A complete budgeted coverage-maximization instance."""

    strata: Tuple[Stratum, ...]
    items: Tuple[PlacementItem, ...]
    budget: Budget

    def __post_init__(self) -> None:
        names = [item.name for item in self.items]
        if len(set(names)) != len(names):
            raise PlacementError(f"duplicate item names in {names}")
        for item in self.items:
            for level in (item.p, item.p_low, item.p_high):
                if len(level) != len(self.strata):
                    raise PlacementError(
                        f"item {item.name!r} has {len(level)} coverage "
                        f"entries for {len(self.strata)} strata"
                    )

    def item(self, name: str) -> PlacementItem:
        for item in self.items:
            if item.name == name:
                return item
        raise PlacementError(
            f"no item {name!r}; instance has "
            f"{[item.name for item in self.items]}"
        )

    # ------------------------------------------------------------------
    # Cost and feasibility.
    # ------------------------------------------------------------------
    def cost_of(self, names: Sequence[str]) -> Dict[str, int]:
        items = [self.item(name) for name in names]
        return {
            dim: sum(cost(item) for item in items)
            for dim, cost in _ITEM_COST.items()
        }

    def item_cost(self, item: PlacementItem, dim: str) -> int:
        return _ITEM_COST[dim](item)

    def feasible(self, names: Sequence[str]) -> bool:
        cost = self.cost_of(names)
        return all(cost[dim] <= limit for dim, limit in self.budget.dims())

    def fits(self, names: Sequence[str], item: PlacementItem) -> bool:
        """Whether *item* still fits after *names* are selected."""
        cost = self.cost_of(names)
        return all(
            cost[dim] + _ITEM_COST[dim](item) <= limit
            for dim, limit in self.budget.dims()
        )

    # ------------------------------------------------------------------
    # The objective.
    # ------------------------------------------------------------------
    def coverage(self, names: Sequence[str], level: str = "nominal") -> float:
        """Noisy-or coverage of the named EA set.

        *level* selects the permeability table: ``nominal``, ``low``
        (Wilson lower bounds — a coverage lower bound) or ``high``.
        """
        attr = {"nominal": "p", "low": "p_low", "high": "p_high"}
        try:
            tables = [
                getattr(self.item(name), attr[level]) for name in names
            ]
        except KeyError:
            raise PlacementError(
                f"unknown coverage level {level!r}; "
                f"expected one of {sorted(attr)}"
            ) from None
        total = 0.0
        for s, stratum in enumerate(self.strata):
            miss = 1.0
            for p in tables:
                miss *= 1.0 - p[s]
            total += stratum.weight * (1.0 - miss)
        return total

    def marginal(self, names: Sequence[str], candidate: str) -> float:
        return self.coverage(list(names) + [candidate]) - self.coverage(names)

    def coverage_per_byte(self, names: Sequence[str]) -> float:
        """Coverage per ROM+RAM byte — the dominance metric."""
        if not names:
            return 0.0
        total = sum(self.item(name).total_bytes for name in names)
        return self.coverage(names) / total if total else float("inf")


# ======================================================================
# Instance construction.
# ======================================================================
def _propagation(
    matrix: PermeabilityMatrix,
    tree,
    module: str,
    dest: str,
) -> float:
    """Probability that an error entering *module* on the tree's root
    signal reaches *dest* (Eq. 2 over the impact-tree paths whose
    first edge crosses *module*)."""
    product = 1.0

    def visit(node, weight: float) -> None:
        nonlocal product
        if node.signal == dest and node.edge is not None:
            product *= 1.0 - weight
        for child in node.children:
            visit(child, weight * matrix[child.edge])

    for child in tree.root.children:
        if child.edge.module != module:
            continue
        visit(child, matrix[child.edge])
    return 1.0 - product


def build_instance(
    system: SystemModel,
    matrix: PermeabilityMatrix,
    specs: Sequence,
    budget: Budget,
    matrix_low: Optional[PermeabilityMatrix] = None,
    matrix_high: Optional[PermeabilityMatrix] = None,
    weights: Optional[Mapping[Tuple[str, str], float]] = None,
) -> PlacementInstance:
    """Build the instance for *system* under *matrix*.

    *specs* are :class:`~repro.edm.assertions.AssertionSpec`-shaped
    objects (``name``/``signal``/``rom_bytes``/``ram_bytes``).  When
    the Wilson-bound matrices are omitted the nominal matrix is used
    for all three coverage levels (point estimates, e.g. the paper's
    published Table 1).  *weights* overrides the uniform stratum
    weighting with per-(module, in_port) values (normalized here).
    """
    graph = SignalGraph(system)
    keys: List[Tuple[str, str, str]] = []
    for module in system.modules():
        for in_port in module.inputs:
            signal = system.signal_of_input(module.name, in_port)
            keys.append((module.name, in_port, signal))
    if not keys:
        raise PlacementError(f"system {system.name!r} has no module inputs")
    if weights is None:
        raw = {(m, i): 1.0 for (m, i, _) in keys}
    else:
        raw = {(m, i): float(weights[(m, i)]) for (m, i, _) in keys}
        if any(w < 0.0 for w in raw.values()):
            raise PlacementError("stratum weights must be non-negative")
    total = sum(raw.values())
    if total <= 0.0:
        raise PlacementError("stratum weights sum to zero")
    strata = tuple(
        Stratum(m, i, signal, raw[(m, i)] / total) for (m, i, signal) in keys
    )

    low = matrix_low if matrix_low is not None else matrix
    high = matrix_high if matrix_high is not None else matrix
    # one impact tree per distinct source signal, shared across every
    # item and all three permeability tables
    trees = {
        signal: build_impact_tree(graph, signal)
        for signal in {stratum.signal for stratum in strata}
    }
    items = []
    for spec in sorted(specs, key=lambda sp: sp.name):
        p_rows = []
        for mat in (matrix, low, high):
            row = []
            for stratum in strata:
                if spec.signal == stratum.signal:
                    row.append(1.0)
                else:
                    row.append(
                        _propagation(
                            mat, trees[stratum.signal],
                            stratum.module, spec.signal,
                        )
                    )
            p_rows.append(tuple(row))
        items.append(
            PlacementItem(
                name=spec.name,
                signal=spec.signal,
                rom_bytes=spec.rom_bytes,
                ram_bytes=spec.ram_bytes,
                time_cost=1,
                p=p_rows[0],
                p_low=p_rows[1],
                p_high=p_rows[2],
            )
        )
    return PlacementInstance(
        strata=strata, items=tuple(items), budget=budget
    )


def instance_from_estimate(
    system: SystemModel,
    estimate,
    specs: Sequence,
    budget: Budget,
    level: float = 0.95,
    weights: Optional[Mapping[Tuple[str, str], float]] = None,
) -> PlacementInstance:
    """Instance from a measured :class:`PermeabilityEstimate`, with
    Wilson interval bounds at confidence *level* feeding the coverage
    bound tables."""
    matrix = matrix_from_estimate(system, estimate)
    low, high = bound_matrices_from_estimate(system, estimate, level=level)
    return build_instance(
        system,
        matrix,
        specs,
        budget,
        matrix_low=low,
        matrix_high=high,
        weights=weights,
    )


def items_for_signals(
    instance: PlacementInstance, signals: Sequence[str]
) -> List[str]:
    """The instance item names guarding *signals* (the hand sets)."""
    by_signal = {item.signal: item.name for item in instance.items}
    unknown = [s for s in signals if s not in by_signal]
    if unknown:
        raise PlacementError(
            f"no placement item guards {unknown}; "
            f"guardable: {sorted(by_signal)}"
        )
    return [by_signal[s] for s in signals]
