"""Placement reporting: the ``repro place`` table and dominance check.

Renders a solved :class:`~repro.place.solvers.SolverResult` as the
placement table the CLI prints — one row per catalogue EA with its
Table 3 cost, selection mark and marginal coverage — followed by the
Wilson-CI coverage bounds of the solved set and the coverage-per-byte
comparison against the two hand-derived sets (EH and PA).  The
rendering is deliberately deterministic (fixed field formats, sorted
rows) so a cold solve and a cache-hit re-solve can be compared byte
for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.place.model import PlacementInstance
from repro.place.solvers import SolverResult

__all__ = ["HandSetComparison", "PlacementReport", "build_report"]


@dataclass(frozen=True)
class HandSetComparison:
    """Coverage-per-byte of one hand-derived set vs the solved set."""

    name: str  #: "EH" or "PA"
    members: Tuple[str, ...]
    coverage: float
    total_bytes: int
    coverage_per_byte: float
    dominated: bool  #: solved set's coverage/byte >= this set's


@dataclass(frozen=True)
class PlacementReport:
    """Everything ``repro place`` prints for one solve."""

    target: str
    instance: PlacementInstance
    result: SolverResult
    coverage_low: float
    coverage_high: float
    hand_sets: Tuple[HandSetComparison, ...]

    @property
    def dominates_all(self) -> bool:
        return all(comparison.dominated for comparison in self.hand_sets)

    def render(self) -> str:
        instance, result = self.instance, self.result
        budget = instance.budget
        marks = {name: i for i, name in enumerate(result.selected)}
        explained = {exp.name: exp for exp in result.explanations}

        def limit(value) -> str:
            return "-" if value is None else str(value)

        lines = [
            f"Budgeted EDM placement (target={self.target}, "
            f"solver={result.solver}"
            + (", optimal" if result.optimal else "")
            + ")",
            f"Budget: ROM<={limit(budget.rom_bytes)} "
            f"RAM<={limit(budget.ram_bytes)} "
            f"EAs<={limit(budget.time_slots)}  strata={len(instance.strata)}",
            "  EA    signal        ROM  RAM  sel  marginal",
        ]
        for item in sorted(instance.items, key=lambda it: it.name):
            if item.name in marks:
                mark = "yes"
                marginal = explained[item.name].marginal
            else:
                mark = "no "
                marginal = instance.marginal(list(result.selected), item.name)
            lines.append(
                f"  {item.name:<5} {item.signal:<12} "
                f"{item.rom_bytes:>4} {item.ram_bytes:>4}  {mark}  "
                f"{marginal:.6f}"
            )
        cost = instance.cost_of(result.selected)
        total = cost["rom_bytes"] + cost["ram_bytes"]
        lines.append(
            f"Coverage(solved) = {result.coverage:.6f} "
            f"[{self.coverage_low:.6f}, {self.coverage_high:.6f}] (Wilson)"
        )
        lines.append(
            f"Cost(solved): ROM={cost['rom_bytes']} RAM={cost['ram_bytes']} "
            f"bytes={total} EAs={cost['time_slots']}"
        )
        certificate = (
            "optimality proven"
            if result.optimal
            else (
                f"within {result.certified_fraction:.4f} of bound "
                f"{result.upper_bound:.6f}"
                + (
                    f" (guarantee {result.guarantee:.4f})"
                    if result.guarantee is not None
                    else ""
                )
            )
        )
        lines.append(f"Certificate: {certificate}")
        solved_cpb = (
            result.coverage / total if total else 0.0
        )
        lines.append(f"Coverage/byte: solved={solved_cpb:.8f}")
        for comparison in self.hand_sets:
            verdict = "dominated" if comparison.dominated else "NOT dominated"
            lines.append(
                f"  vs {comparison.name}: coverage={comparison.coverage:.6f} "
                f"bytes={comparison.total_bytes} "
                f"coverage/byte={comparison.coverage_per_byte:.8f} "
                f"-> {verdict}"
            )
        return "\n".join(lines)


def build_report(
    target: str,
    instance: PlacementInstance,
    result: SolverResult,
    hand_sets: Sequence[Tuple[str, Sequence[str]]],
    eps: float = 1e-12,
) -> PlacementReport:
    """Assemble the report: Wilson coverage bounds for the solved set
    plus the coverage-per-byte dominance verdict against each
    ``(name, members)`` hand set."""
    selected = list(result.selected)
    total = sum(instance.item(name).total_bytes for name in selected)
    solved_cpb = result.coverage / total if total else 0.0
    comparisons = []
    for name, members in hand_sets:
        members = tuple(members)
        coverage = instance.coverage(members)
        hand_bytes = sum(
            instance.item(member).total_bytes for member in members
        )
        cpb = coverage / hand_bytes if hand_bytes else 0.0
        comparisons.append(
            HandSetComparison(
                name=name,
                members=members,
                coverage=coverage,
                total_bytes=hand_bytes,
                coverage_per_byte=cpb,
                dominated=solved_cpb + eps >= cpb,
            )
        )
    return PlacementReport(
        target=target,
        instance=instance,
        result=result,
        coverage_low=instance.coverage(selected, level="low"),
        coverage_high=instance.coverage(selected, level="high"),
        hand_sets=tuple(comparisons),
    )
