"""Placement solvers: lazy greedy and branch-and-bound ILP.

Two exact-arithmetic-free, pure-python solvers over a
:class:`~repro.place.model.PlacementInstance`:

* :func:`greedy_solve` — the classic budgeted-submodular recipe
  (Khuller/Moss/Naor, Sviridenko): enumerate all feasible seed sets
  of up to ``seed_size`` items, complete each seed with a lazy greedy
  that picks the best marginal-coverage-per-normalized-cost item, and
  return the best completion.  With ``seed_size >= 3`` the result is
  guaranteed within ``1 - 1/e`` of the optimum for monotone
  submodular coverage under a knapsack budget; the returned
  :class:`SolverResult` carries that guarantee plus a data-dependent
  upper bound, so callers get a per-instance certificate
  ``coverage >= guarantee * upper_bound`` without running the ILP.

* :func:`ilp_solve` — depth-first branch-and-bound over the 0/1
  selection variables.  The node bound is the minimum of the
  monotonicity bound ``f(S ∪ remaining)`` and, per finite budget
  dimension, a fractional-knapsack bound on the remaining items'
  current marginals (valid because submodular marginals only shrink
  as the set grows).  The search is exhaustive, so a completed run
  *proves* optimality (``optimal=True``); ties are broken toward
  fewer total bytes, then lexicographically smaller selections, so
  results are deterministic and independent of item order.

Both solvers emit per-EA marginal-coverage explanations: the coverage
each selected assertion added at the moment it entered the solution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations
from typing import List, Optional, Sequence, Tuple

from repro.errors import PlacementError
from repro.place.model import PlacementInstance, PlacementItem

__all__ = [
    "EPS",
    "GREEDY_GUARANTEE",
    "MarginalExplanation",
    "SolverResult",
    "greedy_solve",
    "ilp_solve",
    "explain_selection",
]

#: tolerance below which a marginal coverage gain counts as zero.
EPS = 1e-12
#: the (1 - 1/e) approximation factor of the seeded greedy.
GREEDY_GUARANTEE = 1.0 - 1.0 / math.e


@dataclass(frozen=True)
class MarginalExplanation:
    """Why one EA entered the solution: its marginal contribution."""

    name: str
    signal: str
    marginal: float  #: coverage added when this EA was selected
    coverage_after: float  #: cumulative coverage including this EA
    rom_bytes: int
    ram_bytes: int


@dataclass(frozen=True)
class SolverResult:
    """A solved placement with its certificate."""

    solver: str
    selected: Tuple[str, ...]  #: item names, sorted
    coverage: float
    upper_bound: float  #: data-dependent bound on the optimum
    optimal: bool  #: True when the bound proves optimality
    guarantee: Optional[float]  #: approximation factor, if any
    explanations: Tuple[MarginalExplanation, ...]
    nodes: int = 0  #: branch-and-bound nodes explored (ILP only)

    @property
    def certified_fraction(self) -> float:
        """coverage / upper_bound — 1.0 means provably optimal."""
        if self.upper_bound <= EPS:
            return 1.0
        return min(1.0, self.coverage / self.upper_bound)


def _sorted_items(instance: PlacementInstance) -> List[PlacementItem]:
    """Items in name order: the canonical order every solver uses, so
    solutions are invariant under permutations of ``instance.items``."""
    return sorted(instance.items, key=lambda item: item.name)


def explain_selection(
    instance: PlacementInstance, names: Sequence[str]
) -> Tuple[MarginalExplanation, ...]:
    """Greedy-order marginal explanations for an arbitrary set: items
    are peeled off in order of largest marginal w.r.t. the already
    explained prefix (ties toward the smaller name)."""
    remaining = sorted(names)
    chosen: List[str] = []
    out: List[MarginalExplanation] = []
    while remaining:
        best = max(
            remaining,
            key=lambda name: (instance.marginal(chosen, name), name),
        )
        marginal = instance.marginal(chosen, best)
        chosen.append(best)
        item = instance.item(best)
        out.append(
            MarginalExplanation(
                name=item.name,
                signal=item.signal,
                marginal=marginal,
                coverage_after=instance.coverage(chosen),
                rom_bytes=item.rom_bytes,
                ram_bytes=item.ram_bytes,
            )
        )
        remaining.remove(best)
    return tuple(out)


# ======================================================================
# Shared bounding machinery.
# ======================================================================
def _upper_bound(
    instance: PlacementInstance,
    selected: List[str],
    remaining: List[PlacementItem],
) -> float:
    """Upper bound on the best coverage reachable from *selected*
    using any feasible subset of *remaining*."""
    base = instance.coverage(selected)
    if not remaining:
        return base
    # monotonicity bound: no completion beats taking everything
    bound = instance.coverage(selected + [item.name for item in remaining])
    if bound - base <= EPS:
        return base
    cost_now = instance.cost_of(selected)
    marginals = [
        (item, instance.marginal(selected, item.name)) for item in remaining
    ]
    for dim, limit in instance.budget.dims():
        slack = limit - cost_now[dim]
        if slack < 0:
            return base  # already infeasible; caller prunes on this
        # fractional knapsack on current marginals: valid because
        # submodular marginals only shrink as the set grows
        ranked = sorted(
            marginals,
            key=lambda pair: (
                -(pair[1] / max(1, instance.item_cost(pair[0], dim)))
            ),
        )
        total = base
        room = slack
        for item, marginal in ranked:
            if marginal <= 0.0:
                continue
            cost = instance.item_cost(item, dim)
            if cost <= 0:
                total += marginal
                continue
            if cost <= room:
                total += marginal
                room -= cost
            else:
                total += marginal * (room / cost)
                break
        bound = min(bound, total)
    return max(bound, base)


# ======================================================================
# Lazy greedy with seed enumeration.
# ======================================================================
def _greedy_complete(
    instance: PlacementInstance, seed: List[str]
) -> List[str]:
    """Complete *seed* with the lazy-greedy density rule."""
    selected = list(seed)
    dims = instance.budget.dims()

    def density(item: PlacementItem, marginal: float) -> float:
        if not dims:
            return marginal
        norm = sum(
            instance.item_cost(item, dim) / limit if limit > 0 else math.inf
            for dim, limit in dims
        )
        if norm <= 0.0:
            return math.inf if marginal > EPS else 0.0
        return marginal / norm

    chosen = set(selected)
    # lazy evaluation: cached (stale) marginals only shrink, so the
    # heap head needs refreshing only until a refreshed entry stays on
    # top.  n is small; a sorted list is the simplest exact heap.
    stale = {
        item.name: math.inf
        for item in _sorted_items(instance)
        if item.name not in chosen
    }
    while True:
        best_name = None
        best_key = (0.0, 0.0)
        for name in sorted(stale, key=lambda n: (-stale[n], n)):
            item = instance.item(name)
            if not instance.fits(selected, item):
                continue
            marginal = instance.marginal(selected, name)
            score = density(item, marginal)
            stale[name] = score
            if marginal <= EPS:
                continue
            key = (score, marginal)
            if best_name is None or key > best_key:
                best_name, best_key = name, key
            # lazy exit: every later entry's cached score is already
            # below the refreshed best, and true scores only shrink
            if all(
                stale[other] <= best_key[0]
                for other in stale
                if other != best_name
            ):
                break
        if best_name is None:
            return selected
        selected.append(best_name)
        del stale[best_name]


def greedy_solve(
    instance: PlacementInstance, seed_size: int = 3
) -> SolverResult:
    """Budgeted-coverage greedy with partial seed enumeration.

    Enumerates every feasible seed of at most *seed_size* items
    (including the empty seed), greedily completes each, and keeps
    the best completion — the (1 - 1/e) recipe for submodular
    maximization under a knapsack budget.  Deterministic: candidate
    orders and tie-breaks are by item name throughout.
    """
    if seed_size < 0:
        raise PlacementError(f"seed_size must be >= 0, got {seed_size}")
    items = _sorted_items(instance)
    names = [item.name for item in items]
    best: Optional[List[str]] = None
    best_key = None
    seeds: List[Tuple[str, ...]] = [()]
    for size in range(1, min(seed_size, len(names)) + 1):
        seeds.extend(combinations(names, size))
    for seed in seeds:
        if not instance.feasible(list(seed)):
            continue
        candidate = _greedy_complete(instance, list(seed))
        cost = instance.cost_of(candidate)
        key = (
            instance.coverage(candidate),
            -(cost["rom_bytes"] + cost["ram_bytes"]),
            tuple(sorted(candidate)),
        )
        # prefer higher coverage, then fewer bytes, then the
        # lexicographically smaller selection (stable determinism)
        if best is None:
            best, best_key = candidate, key
        elif key[0] > best_key[0] + EPS:
            best, best_key = candidate, key
        elif abs(key[0] - best_key[0]) <= EPS:
            if key[1] > best_key[1] or (
                key[1] == best_key[1] and key[2] < best_key[2]
            ):
                best, best_key = candidate, key
    if best is None:
        raise PlacementError(
            "no feasible placement: even the empty set violates a budget"
        )
    selected = tuple(sorted(best))
    upper = _upper_bound(
        instance, [],
        [item for item in items if instance.fits([], item)],
    )
    coverage = instance.coverage(selected)
    return SolverResult(
        solver="greedy",
        selected=selected,
        coverage=coverage,
        upper_bound=max(upper, coverage),
        optimal=coverage + EPS >= upper,
        guarantee=GREEDY_GUARANTEE,
        explanations=explain_selection(instance, selected),
    )


# ======================================================================
# Branch-and-bound ILP.
# ======================================================================
def ilp_solve(
    instance: PlacementInstance, max_items: int = 24
) -> SolverResult:
    """Prove-optimal placement by depth-first branch and bound.

    Bounded instances only: *max_items* caps the number of selectable
    items (the search is exponential in the worst case; the paper's
    target has 7).  A completed search certifies optimality — the
    returned result has ``optimal=True`` and
    ``upper_bound == coverage``.
    """
    items = _sorted_items(instance)
    if len(items) > max_items:
        raise PlacementError(
            f"instance has {len(items)} items; branch-and-bound is "
            f"capped at {max_items} (raise max_items explicitly)"
        )
    # branch on high root density first: good incumbents early
    root_order = sorted(
        items,
        key=lambda item: (
            -(instance.marginal([], item.name) / max(1, item.total_bytes)),
            item.name,
        ),
    )
    best_selected: List[str] = []
    best_coverage = instance.coverage([])
    best_bytes = 0
    nodes = 0

    def consider(selected: List[str]) -> None:
        nonlocal best_selected, best_coverage, best_bytes
        coverage = instance.coverage(selected)
        cost = instance.cost_of(selected)
        total = cost["rom_bytes"] + cost["ram_bytes"]
        if coverage > best_coverage + EPS:
            best_selected = sorted(selected)
            best_coverage, best_bytes = coverage, total
        elif abs(coverage - best_coverage) <= EPS:
            if total < best_bytes or (
                total == best_bytes and sorted(selected) < best_selected
            ):
                best_selected = sorted(selected)
                best_coverage, best_bytes = coverage, total

    def search(depth: int, selected: List[str]) -> None:
        nonlocal nodes
        nodes += 1
        remaining = [
            item
            for item in root_order[depth:]
            if instance.fits(selected, item)
        ]
        if not remaining:
            return
        # prune only subtrees that cannot even tie the incumbent:
        # coverage ties are still explored so byte-minimal sets win
        if _upper_bound(instance, selected, remaining) < best_coverage - EPS:
            return
        item = root_order[depth]
        if instance.fits(selected, item):
            selected.append(item.name)
            consider(selected)
            search(depth + 1, selected)
            selected.pop()
        search(depth + 1, selected)

    consider([])
    search(0, [])
    selected = tuple(sorted(best_selected))
    return SolverResult(
        solver="ilp",
        selected=selected,
        coverage=best_coverage,
        upper_bound=best_coverage,
        optimal=True,
        guarantee=None,
        explanations=explain_selection(instance, selected),
        nodes=nodes,
    )
