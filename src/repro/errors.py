"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError` so
that callers can catch library failures with a single ``except`` clause
while still being able to distinguish the individual failure classes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ModelError",
    "WiringError",
    "UnknownSignalError",
    "UnknownModuleError",
    "SchedulingError",
    "InjectionError",
    "CampaignError",
    "IntegrityError",
    "AssertionSpecError",
    "PlacementError",
    "AnalysisError",
    "ExperimentError",
    "ServiceError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ModelError(ReproError):
    """A software-system model is malformed or used inconsistently."""


class WiringError(ModelError):
    """A connection between module ports is invalid (bad port index,
    duplicate driver, dangling input, type mismatch...)."""


class UnknownSignalError(ModelError):
    """A signal name was looked up that does not exist in the system."""

    def __init__(self, signal: str, known: object = None):
        self.signal = signal
        msg = f"unknown signal {signal!r}"
        if known:
            msg += f" (known signals: {sorted(known)})"
        super().__init__(msg)


class UnknownModuleError(ModelError):
    """A module name was looked up that does not exist in the system."""

    def __init__(self, module: str, known: object = None):
        self.module = module
        msg = f"unknown module {module!r}"
        if known:
            msg += f" (known modules: {sorted(known)})"
        super().__init__(msg)


class SchedulingError(ReproError):
    """The slot-based scheduler was configured inconsistently."""


class InjectionError(ReproError):
    """A fault injection request cannot be honoured (bad location,
    bad bit index, injection outside the run window...)."""


class CampaignError(ReproError):
    """A fault-injection campaign was configured inconsistently."""


class IntegrityError(ReproError):
    """A campaign artefact failed its integrity verification (digest
    mismatch, audit-replay divergence, worker drift)."""


class AssertionSpecError(ReproError):
    """An executable assertion specification is invalid."""


class PlacementError(ReproError):
    """An EDM placement request is invalid (unknown signal, empty
    candidate set, contradictory thresholds...)."""


class AnalysisError(ReproError):
    """A propagation/effect analysis could not be carried out."""


class ExperimentError(ReproError):
    """A paper experiment could not be reproduced as requested."""


class ServiceError(ReproError):
    """The campaign service refused or failed a request (queue full,
    unreachable daemon, malformed job specification...)."""
