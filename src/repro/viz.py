"""Graphviz DOT export of systems, trees and profiles.

Dependency-free emitters producing DOT source text for the paper's
three kinds of pictures:

* :func:`system_to_dot` — the software structure (Fig. 1): modules as
  boxes, signals as edges, system inputs/outputs as ovals;
* :func:`tree_to_dot` — a backtrack / trace / impact tree (Fig. 4),
  optionally annotating each edge with its permeability;
* :func:`profile_to_dot` — the exposure or impact profile (Figs. 5-6):
  the system structure with per-signal line styling by value band
  (pen width for magnitude, dashed for zero, dotted for unassigned).

Render with any graphviz install: ``dot -Tpng out.dot -o out.png``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.permeability import PermeabilityMatrix
from repro.core.profile import SystemProfile, ValueBand
from repro.core.trees import PropagationTree, TreeNode
from repro.errors import AnalysisError
from repro.model.system import SystemModel

__all__ = ["system_to_dot", "tree_to_dot", "profile_to_dot"]


def _quote(name: str) -> str:
    return '"' + name.replace('"', r"\"") + '"'


def _signal_edges(system: SystemModel) -> List[str]:
    """Edges of the Fig.-1 style structure diagram."""
    lines: List[str] = []
    for spec in system.signals():
        producer = system.producer_of(spec.name)
        consumers = system.consumers_of(spec.name)
        if producer is None:
            # system input: environment node -> consumers
            for ref in consumers:
                lines.append(
                    f"  {_quote(spec.name)} -> {_quote(ref.module)} "
                    f"[label={_quote(spec.name)}];"
                )
            continue
        if spec.is_system_output or not consumers:
            lines.append(
                f"  {_quote(producer.module)} -> {_quote(spec.name)} "
                f"[label={_quote(spec.name)}];"
            )
        for ref in consumers:
            lines.append(
                f"  {_quote(producer.module)} -> {_quote(ref.module)} "
                f"[label={_quote(spec.name)}];"
            )
    return lines


def system_to_dot(system: SystemModel, title: Optional[str] = None) -> str:
    """DOT source for the system's software structure (Fig. 1)."""
    lines = [f"digraph {_quote(system.name)} {{"]
    lines.append("  rankdir=LR;")
    if title:
        lines.append(f"  label={_quote(title)};")
    lines.append("  node [shape=box];")
    for module in system.modules():
        lines.append(f"  {_quote(module.name)} [shape=box];")
    for name in system.system_inputs():
        lines.append(
            f"  {_quote(name)} [shape=oval, style=dashed];"
        )
    for name in system.system_outputs():
        lines.append(
            f"  {_quote(name)} [shape=oval, style=bold];"
        )
    lines.extend(_signal_edges(system))
    lines.append("}")
    return "\n".join(lines)


def tree_to_dot(
    tree: PropagationTree,
    matrix: Optional[PermeabilityMatrix] = None,
    title: Optional[str] = None,
) -> str:
    """DOT source for a propagation tree (e.g. the Fig. 4 impact tree).

    With *matrix* given, each edge is annotated with its permeability
    value; zero-permeability edges are drawn dashed.
    """
    lines = ["digraph tree {"]
    if title:
        lines.append(f"  label={_quote(title)};")
    lines.append("  node [shape=ellipse];")
    counter = [0]

    def emit(node: TreeNode, parent_id: Optional[str]) -> None:
        node_id = f"n{counter[0]}"
        counter[0] += 1
        lines.append(f"  {node_id} [label={_quote(node.signal)}];")
        if parent_id is not None and node.edge is not None:
            attrs = [f"label={_quote(node.edge.label)}"]
            if matrix is not None:
                value = matrix[node.edge]
                attrs = [f"label={_quote(f'{node.edge.label} = {value:.3f}')}"]
                if value == 0.0:
                    attrs.append("style=dashed")
            if tree.direction == "backward":
                lines.append(
                    f"  {node_id} -> {parent_id} [{', '.join(attrs)}];"
                )
            else:
                lines.append(
                    f"  {parent_id} -> {node_id} [{', '.join(attrs)}];"
                )
        for child in node.children:
            emit(child, node_id)

    emit(tree.root, None)
    lines.append("}")
    return "\n".join(lines)


#: pen width per band, mirroring the figures' line thickness
_BAND_STYLE: Dict[ValueBand, str] = {
    ValueBand.HIGHEST: "penwidth=4",
    ValueBand.HIGH: "penwidth=3",
    ValueBand.LOW: "penwidth=2",
    ValueBand.LOWEST: "penwidth=1",
    ValueBand.ZERO: "style=dashed",
    ValueBand.UNASSIGNED: "style=dotted",
}


def profile_to_dot(
    profile: SystemProfile,
    which: str = "exposure",
    title: Optional[str] = None,
) -> str:
    """DOT source for the exposure (Fig. 5) or impact (Fig. 6) profile."""
    if which not in ("exposure", "impact"):
        raise AnalysisError(
            f"profile selector must be 'exposure' or 'impact', got {which!r}"
        )
    system = profile.system
    lines = ["digraph profile {"]
    lines.append("  rankdir=LR;")
    lines.append(
        f"  label={_quote(title or f'{which} profile of {system.name}')};"
    )
    lines.append("  node [shape=box];")
    for module in system.modules():
        lines.append(f"  {_quote(module.name)};")
    for name in system.system_inputs() + system.system_outputs():
        lines.append(f"  {_quote(name)} [shape=oval];")
    for spec in system.signals():
        entry = profile.entry(spec.name)
        band = (
            entry.exposure_band if which == "exposure" else entry.impact_band
        )
        value = entry.exposure if which == "exposure" else entry.impact
        shown = "n/a" if value is None else f"{value:.3f}"
        style = _BAND_STYLE[band]
        label = _quote(f"{spec.name} ({shown})")
        producer = system.producer_of(spec.name)
        src = producer.module if producer is not None else spec.name
        targets = [ref.module for ref in system.consumers_of(spec.name)]
        if spec.is_system_output:
            targets.append(spec.name)  # edge to the output oval
        for target in targets:
            lines.append(
                f"  {_quote(src)} -> {_quote(target)} "
                f"[label={label}, {style}];"
            )
    lines.append("}")
    return "\n".join(lines)
